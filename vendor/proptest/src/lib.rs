//! Offline stand-in for the subset of `proptest` this workspace uses:
//! the `proptest!` macro, range and `vec` strategies, `any::<T>()`, tuple
//! strategies, `ProptestConfig::with_cases`, and the `prop_assert!`,
//! `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!` macros.
//!
//! Inputs are generated from a deterministic per-case PRNG. Failing cases
//! are reported with the sampled inputs (`Debug`) and the case's seed;
//! there is no shrinking — the printed input is the raw failing case.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, Just, Strategy};
pub use test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult, TestRng};

pub mod prelude {
    pub use crate::collection::vec;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declare property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::test_runner::run_cases(
                stringify!($name),
                &config,
                |rng: &mut $crate::TestRng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), rng);)+
                    let mut inputs = String::new();
                    $(
                        inputs.push_str(concat!("  ", stringify!($arg), " = "));
                        inputs.push_str(&format!("{:?}\n", &$arg));
                    )+
                    #[allow(unused_mut)]
                    let mut run = || -> $crate::TestCaseResult { $body; Ok(()) };
                    (run(), inputs)
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Assert inside a proptest body; failure reports the case instead of
/// panicking mid-case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: `{:?}` == `{:?}`", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{:?}` == `{:?}`: {}",
            a,
            b,
            format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: `{:?}` != `{:?}`", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{:?}` != `{:?}`: {}",
            a,
            b,
            format!($($fmt)*)
        );
    }};
}

/// Discard the current case (counted, not failed) when a precondition
/// does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}
