//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of values of one type.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategy producing one constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The whole-domain strategy for `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}
