//! Deterministic case runner.

/// Per-run configuration (`ProptestConfig`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Give up after this many consecutive `prop_assume` rejections.
    pub max_global_rejects: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// Assertion failure — fails the test.
    Fail(String),
    /// `prop_assume` rejection — the case is discarded, not failed.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// SplitMix64 — deterministic per (test, case) so failures reproduce.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Drive one test's cases; panics (failing the `#[test]`) on the first
/// failing case, printing the sampled inputs and the case seed.
pub fn run_cases<F>(name: &str, config: &Config, mut case: F)
where
    F: FnMut(&mut TestRng) -> (TestCaseResult, String),
{
    let base = fnv1a(name);
    let mut rejects = 0u32;
    let mut ran = 0u32;
    let mut index = 0u64;
    while ran < config.cases {
        let seed = base ^ index.wrapping_mul(0xA076_1D64_78BD_642F);
        let mut rng = TestRng::from_seed(seed);
        index += 1;
        match case(&mut rng) {
            (Ok(()), _) => ran += 1,
            (Err(TestCaseError::Reject(_)), _) => {
                rejects += 1;
                if rejects > config.max_global_rejects {
                    panic!(
                        "proptest '{name}': too many prop_assume rejections \
                         ({rejects}) — strategy cannot satisfy the assumption"
                    );
                }
            }
            (Err(TestCaseError::Fail(msg)), inputs) => {
                panic!(
                    "proptest '{name}' failed at case {ran} (seed {seed:#x}):\n\
                     {msg}\nwith inputs:\n{inputs}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in 0usize..=5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 5);
        }

        #[test]
        fn vec_sizes_respect_bounds(v in vec(0u32..4, 1..40)) {
            prop_assert!(!v.is_empty() && v.len() < 40);
            prop_assert!(v.iter().all(|&x| x < 4));
        }

        #[test]
        fn tuples_and_assume(pair in (vec(0u32..2, 1..8), any::<bool>()), n in 1usize..20) {
            prop_assume!(n > 2);
            let (items, flag) = pair;
            prop_assert!(n > 2);
            prop_assert_eq!(flag as u32 & 1, flag as u32);
            prop_assert_ne!(items.len(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest 'always_fails' failed")]
    fn failure_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
