//! Collection strategies: `vec(element, size_range)`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A length distribution for [`vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S: Strategy> {
    element: S,
    size: SizeRange,
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
        let len = self.size.lo + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
