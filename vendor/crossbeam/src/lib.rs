//! Offline stand-in for the subset of `crossbeam` this workspace uses:
//! [`channel`] with bounded MPMC channels (`bounded`, `try_send`, `send`,
//! `recv`, `try_recv`, `recv_timeout`, iteration, disconnect semantics).
//! Backed by a mutex-guarded ring buffer and two condvars — not lock-free,
//! but with identical blocking/backpressure semantics, which is what the
//! streaming service layer depends on.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error for [`Sender::send`]: all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error for [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity (backpressure signal).
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    /// Error for [`Receiver::recv`]: channel empty and all senders gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error for [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Error for [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        cap: usize,
    }

    /// The sending half; clonable (multi-producer).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; clonable (multi-consumer).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// A channel holding at most `cap` in-flight messages. `cap` must be
    /// positive (zero-capacity rendezvous channels are not provided).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "bounded(0) rendezvous channels are not supported");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(cap),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    /// A channel with no capacity bound (sends never block).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap: usize::MAX,
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Block until there is room, then enqueue.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                if st.queue.len() < self.shared.cap {
                    st.queue.push_back(value);
                    drop(st);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                st = self.shared.not_full.wait(st).unwrap();
            }
        }

        /// Enqueue if there is room; `Full` is the backpressure signal.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if st.queue.len() >= self.shared.cap {
                return Err(TrySendError::Full(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        pub fn is_full(&self) -> bool {
            self.len() >= self.shared.cap
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.not_empty.wait(st).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().unwrap();
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap();
                st = guard;
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator: yields until all senders disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }

        /// Non-blocking iterator: yields whatever is queued right now.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { rx: self }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.shared.not_full.notify_all();
            }
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    pub struct TryIter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.try_recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn bounded_backpressure() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            assert_eq!(rx.recv(), Ok(1));
            tx.try_send(3).unwrap();
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
        }

        #[test]
        fn blocked_send_wakes_on_recv() {
            let (tx, rx) = bounded::<u32>(1);
            tx.send(1).unwrap();
            let h = thread::spawn(move || tx.send(2));
            thread::sleep(std::time::Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            h.join().unwrap().unwrap();
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = bounded::<u32>(4);
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));

            let (tx, rx) = bounded::<u32>(4);
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn mpmc_roundtrip() {
            let (tx, rx) = bounded::<usize>(8);
            let mut producers = Vec::new();
            for p in 0..4 {
                let tx = tx.clone();
                producers.push(thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                }));
            }
            drop(tx);
            let mut consumers = Vec::new();
            for _ in 0..2 {
                let rx = rx.clone();
                consumers.push(thread::spawn(move || rx.iter().count()));
            }
            drop(rx);
            for p in producers {
                p.join().unwrap();
            }
            let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
            assert_eq!(total, 400);
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = bounded::<u32>(1);
            let r = rx.recv_timeout(Duration::from_millis(10));
            assert_eq!(r, Err(RecvTimeoutError::Timeout));
        }
    }
}
