//! Offline std-only stand-in for the `mio` readiness API surface this
//! workspace uses (see vendor/README.md).
//!
//! Two selector backends behind one [`Poll`] type:
//!
//! * **epoll** (Linux): `epoll_create1`/`epoll_ctl`/`epoll_wait` through
//!   `extern "C"` declarations against the libc that std already links —
//!   no external crates. Level-triggered (no `EPOLLET`), so a handler
//!   that stops mid-buffer is re-notified on the next wait.
//! * **poll(2)** (portable fallback, any unix): the registration table is
//!   kept in userspace and rebuilt into a `pollfd` array per wait. O(n)
//!   per wakeup instead of O(ready), but semantically identical — it is
//!   also selectable on Linux via `PDM_FORCE_POLL=1` for differential
//!   testing.
//!
//! Cross-thread wakeups use a [`Waker`]: a non-blocking self-pipe whose
//! read end is registered like any other source; [`Poll::poll`] drains it
//! internally and surfaces the waker's token as a readable [`Event`].
//!
//! Like the other shims, this keeps the real crate's names and shapes
//! (`Poll`, `Events`, `Token`, `Interest`, `Waker`) so a networked build
//! could swap in real mio with mechanical call-site changes only.

#![cfg(unix)]

use std::collections::HashMap;
use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::sync::Mutex;
use std::time::Duration;

/// Caller-chosen identifier attached to a registration; returned verbatim
/// in every [`Event`] for that source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Readiness interest: readable, writable, or both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    pub const READABLE: Interest = Interest(0b01);
    pub const WRITABLE: Interest = Interest(0b10);

    /// Combine interests (mio spells this `add`; `|` also works).
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    pub fn is_readable(self) -> bool {
        self.0 & Self::READABLE.0 != 0
    }

    pub fn is_writable(self) -> bool {
        self.0 & Self::WRITABLE.0 != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

/// Anything with a raw fd can be registered. Blanket-implemented so
/// `TcpListener`, `TcpStream`, `UnixStream`, … all work.
pub trait Source {
    fn raw_fd(&self) -> RawFd;
}

impl<T: AsRawFd> Source for T {
    fn raw_fd(&self) -> RawFd {
        self.as_raw_fd()
    }
}

/// One readiness notification.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: usize,
    readable: bool,
    writable: bool,
    error: bool,
    hup: bool,
}

impl Event {
    pub fn token(&self) -> Token {
        Token(self.token)
    }

    /// Readable, or in an error/hup state a read will surface (level
    /// semantics: try the read and let the syscall report the cause).
    pub fn is_readable(&self) -> bool {
        self.readable || self.error || self.hup
    }

    /// Writable, or in an error state a write will surface.
    pub fn is_writable(&self) -> bool {
        self.writable || self.error
    }

    pub fn is_error(&self) -> bool {
        self.error
    }
}

/// Reusable batch of events filled by [`Poll::poll`].
pub struct Events {
    inner: Vec<Event>,
    capacity: usize,
}

impl Events {
    pub fn with_capacity(capacity: usize) -> Events {
        let capacity = capacity.max(1);
        Events {
            inner: Vec::with_capacity(capacity),
            capacity,
        }
    }

    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.inner.iter()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

/// Which OS selector a [`Poll`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Linux `epoll` (O(ready) wakeups).
    Epoll,
    /// Portable `poll(2)` (O(registered) wakeups).
    Poll,
}

impl Backend {
    /// The default for this platform: epoll on Linux (unless
    /// `PDM_FORCE_POLL=1` selects the fallback), `poll(2)` elsewhere.
    pub fn detect() -> Backend {
        #[cfg(target_os = "linux")]
        {
            let forced = std::env::var("PDM_FORCE_POLL")
                .map(|v| !v.is_empty() && v != "0")
                .unwrap_or(false);
            if forced {
                Backend::Poll
            } else {
                Backend::Epoll
            }
        }
        #[cfg(not(target_os = "linux"))]
        {
            Backend::Poll
        }
    }
}

/// The selector. Register sources, then [`Poll::poll`] for readiness.
pub struct Poll {
    sel: Selector,
}

impl Poll {
    /// A selector on the platform-default backend (see [`Backend::detect`]).
    pub fn new() -> io::Result<Poll> {
        Poll::with_backend(Backend::detect())
    }

    /// A selector on an explicit backend (differential tests).
    pub fn with_backend(backend: Backend) -> io::Result<Poll> {
        let sel = match backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll => Selector::Epoll(epoll::Epoll::new()?),
            #[cfg(not(target_os = "linux"))]
            Backend::Epoll => {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "epoll backend is Linux-only",
                ))
            }
            Backend::Poll => Selector::Poll(fallback::PollSel::new()),
        };
        Ok(Poll { sel })
    }

    pub fn backend(&self) -> Backend {
        match self.sel {
            #[cfg(target_os = "linux")]
            Selector::Epoll(_) => Backend::Epoll,
            Selector::Poll(_) => Backend::Poll,
        }
    }

    /// Register a source for level-triggered readiness under `token`.
    pub fn register<S: Source + ?Sized>(
        &self,
        source: &S,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        match &self.sel {
            #[cfg(target_os = "linux")]
            Selector::Epoll(e) => e.register(source.raw_fd(), token.0, interest),
            Selector::Poll(p) => p.register(source.raw_fd(), token.0, interest),
        }
    }

    /// Change an existing registration's token/interest.
    pub fn reregister<S: Source + ?Sized>(
        &self,
        source: &S,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        match &self.sel {
            #[cfg(target_os = "linux")]
            Selector::Epoll(e) => e.reregister(source.raw_fd(), token.0, interest),
            Selector::Poll(p) => p.reregister(source.raw_fd(), token.0, interest),
        }
    }

    /// Remove a source. Must be called **before** the fd is closed — a
    /// closed fd is silently auto-removed by epoll but would poison the
    /// fallback's table with `POLLNVAL`.
    pub fn deregister<S: Source + ?Sized>(&self, source: &S) -> io::Result<()> {
        match &self.sel {
            #[cfg(target_os = "linux")]
            Selector::Epoll(e) => e.deregister(source.raw_fd()),
            Selector::Poll(p) => p.deregister(source.raw_fd()),
        }
    }

    /// Block until at least one source is ready, the timeout elapses, or a
    /// [`Waker`] fires. A signal (`EINTR`) returns early with zero events —
    /// callers treat that like a spurious wakeup.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        events.inner.clear();
        let cap = events.capacity;
        match &mut self.sel {
            #[cfg(target_os = "linux")]
            Selector::Epoll(e) => e.wait(&mut events.inner, cap, timeout),
            Selector::Poll(p) => p.wait(&mut events.inner, cap, timeout),
        }
    }

    fn add_waker(&self, read_fd: RawFd, token: Token) -> io::Result<()> {
        match &self.sel {
            #[cfg(target_os = "linux")]
            Selector::Epoll(e) => e.add_waker(read_fd, token.0),
            Selector::Poll(p) => p.add_waker(read_fd, token.0),
        }
    }
}

enum Selector {
    #[cfg(target_os = "linux")]
    Epoll(epoll::Epoll),
    Poll(fallback::PollSel),
}

/// Cross-thread wakeup for a [`Poll`] blocked in [`Poll::poll`]: a
/// non-blocking self-pipe. [`Waker::wake`] is async-signal-cheap (one
/// `write(2)`), idempotent while unconsumed, and safe from any thread.
/// The poll side sees a readable [`Event`] carrying the waker's token;
/// the pipe is drained internally.
pub struct Waker {
    write_fd: RawFd,
}

// A raw fd is just an integer; writes to a pipe are atomic at this size.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

impl Waker {
    /// Create a waker registered with `poll` under `token`. The read end
    /// lives inside the selector (closed on its drop); the returned value
    /// owns the write end.
    pub fn new(poll: &Poll, token: Token) -> io::Result<Waker> {
        let (r, w) = sys::pipe_nonblocking()?;
        if let Err(e) = poll.add_waker(r, token) {
            unsafe {
                sys::close(r);
                sys::close(w);
            }
            return Err(e);
        }
        Ok(Waker { write_fd: w })
    }

    /// Wake the associated [`Poll`]. Never blocks: a full pipe means a
    /// wakeup is already pending, which is all a waker promises.
    pub fn wake(&self) -> io::Result<()> {
        let buf = [1u8];
        let n = unsafe { sys::write(self.write_fd, buf.as_ptr().cast(), 1) };
        if n >= 0 {
            return Ok(());
        }
        let e = io::Error::last_os_error();
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted => Ok(()),
            _ => Err(e),
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe { sys::close(self.write_fd) };
    }
}

/// Raw libc surface: `extern "C"` against the C library std already
/// links, so no external crate is needed (the repo's vendoring rule).
mod sys {
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::{c_int, c_void};

    extern "C" {
        pub fn close(fd: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn pipe(fds: *mut c_int) -> c_int;
        fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    }

    const F_GETFD: c_int = 1;
    const F_SETFD: c_int = 2;
    const F_GETFL: c_int = 3;
    const F_SETFL: c_int = 4;
    const FD_CLOEXEC: c_int = 1;
    #[cfg(target_os = "linux")]
    const O_NONBLOCK: c_int = 0o4000;
    #[cfg(not(target_os = "linux"))]
    const O_NONBLOCK: c_int = 0x4;

    pub fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// `pipe()` with both ends set non-blocking + close-on-exec (portable
    /// spelling of `pipe2(O_NONBLOCK | O_CLOEXEC)`).
    pub fn pipe_nonblocking() -> io::Result<(RawFd, RawFd)> {
        let mut fds = [0 as c_int; 2];
        cvt(unsafe { pipe(fds.as_mut_ptr()) })?;
        for &fd in &fds {
            let set = (|| -> io::Result<()> {
                let fl = cvt(unsafe { fcntl(fd, F_GETFL, 0) })?;
                cvt(unsafe { fcntl(fd, F_SETFL, fl | O_NONBLOCK) })?;
                let fdfl = cvt(unsafe { fcntl(fd, F_GETFD, 0) })?;
                cvt(unsafe { fcntl(fd, F_SETFD, fdfl | FD_CLOEXEC) })?;
                Ok(())
            })();
            if let Err(e) = set {
                unsafe {
                    close(fds[0]);
                    close(fds[1]);
                }
                return Err(e);
            }
        }
        Ok((fds[0], fds[1]))
    }

    /// Drain a non-blocking self-pipe (waker read end).
    pub fn drain_pipe(fd: RawFd) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { read(fd, buf.as_mut_ptr().cast(), buf.len()) };
            if n <= 0 {
                break;
            }
        }
    }

    /// `Option<Duration>` → milliseconds for epoll/poll (−1 = forever).
    /// Sub-millisecond non-zero timeouts round **up** so a 100 µs request
    /// never busy-spins as 0.
    pub fn timeout_ms(timeout: Option<std::time::Duration>) -> c_int {
        match timeout {
            None => -1,
            Some(d) => {
                let ms = d.as_millis();
                if ms == 0 && !d.is_zero() {
                    1
                } else {
                    ms.min(c_int::MAX as u128) as c_int
                }
            }
        }
    }
}

#[cfg(target_os = "linux")]
mod epoll {
    use super::{sys, Event, Interest};
    use std::collections::HashMap;
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::c_int;
    use std::sync::Mutex;
    use std::time::Duration;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
    }

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    // The kernel ABI packs this struct on x86 so the 64-bit data field
    // sits at offset 4; other architectures use natural alignment.
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    fn interest_bits(interest: Interest) -> u32 {
        let mut bits = 0;
        if interest.is_readable() {
            bits |= EPOLLIN | EPOLLRDHUP;
        }
        if interest.is_writable() {
            bits |= EPOLLOUT;
        }
        bits
    }

    pub struct Epoll {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
        /// token → waker read-end fd (drained on readiness; closed on drop).
        wakers: Mutex<HashMap<usize, RawFd>>,
    }

    impl Epoll {
        pub fn new() -> io::Result<Epoll> {
            let epfd = sys::cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Epoll {
                epfd,
                buf: Vec::new(),
                wakers: Mutex::new(HashMap::new()),
            })
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: interest_bits(interest),
                data: token as u64,
            };
            sys::cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
        }

        pub fn register(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn reregister(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            // A dummy event keeps pre-2.6.9 kernels happy (NULL was EFAULT).
            let mut ev = EpollEvent { events: 0, data: 0 };
            sys::cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
        }

        pub fn add_waker(&self, read_fd: RawFd, token: usize) -> io::Result<()> {
            self.register(read_fd, token, Interest::READABLE)?;
            self.wakers.lock().unwrap().insert(token, read_fd);
            Ok(())
        }

        pub fn wait(
            &mut self,
            out: &mut Vec<Event>,
            cap: usize,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            self.buf.resize(cap, EpollEvent { events: 0, data: 0 });
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    cap as c_int,
                    sys::timeout_ms(timeout),
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                // A signal interrupting the wait is a spurious (0-event)
                // wakeup, not a failure.
                return if e.kind() == io::ErrorKind::Interrupted {
                    Ok(())
                } else {
                    Err(e)
                };
            }
            let wakers = self.wakers.lock().unwrap();
            for i in 0..n as usize {
                let raw = self.buf[i];
                let token = raw.data as usize;
                let bits = raw.events;
                if let Some(&rfd) = wakers.get(&token) {
                    sys::drain_pipe(rfd);
                }
                out.push(Event {
                    token,
                    readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    error: bits & EPOLLERR != 0,
                    hup: bits & EPOLLHUP != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            for (_, fd) in self.wakers.lock().unwrap().drain() {
                unsafe { sys::close(fd) };
            }
            unsafe { sys::close(self.epfd) };
        }
    }
}

mod fallback {
    use super::{sys, Event, Interest};
    use std::collections::HashMap;
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::{c_int, c_short};
    use std::sync::Mutex;
    use std::time::Duration;

    #[cfg(target_os = "linux")]
    type NFds = std::os::raw::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type NFds = std::os::raw::c_uint;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NFds, timeout: c_int) -> c_int;
    }

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;
    const POLLNVAL: c_short = 0x020;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    fn interest_bits(interest: Interest) -> c_short {
        let mut bits = 0;
        if interest.is_readable() {
            bits |= POLLIN;
        }
        if interest.is_writable() {
            bits |= POLLOUT;
        }
        bits
    }

    /// Userspace registration table + a `pollfd` array rebuilt per wait.
    pub struct PollSel {
        fds: Mutex<HashMap<RawFd, (usize, c_short)>>,
        wakers: Mutex<HashMap<usize, RawFd>>,
        buf: Vec<PollFd>,
    }

    impl PollSel {
        pub fn new() -> PollSel {
            PollSel {
                fds: Mutex::new(HashMap::new()),
                wakers: Mutex::new(HashMap::new()),
                buf: Vec::new(),
            }
        }

        pub fn register(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let mut fds = self.fds.lock().unwrap();
            if fds.contains_key(&fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            fds.insert(fd, (token, interest_bits(interest)));
            Ok(())
        }

        pub fn reregister(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let mut fds = self.fds.lock().unwrap();
            match fds.get_mut(&fd) {
                Some(slot) => {
                    *slot = (token, interest_bits(interest));
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            match self.fds.lock().unwrap().remove(&fd) {
                Some(_) => Ok(()),
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub fn add_waker(&self, read_fd: RawFd, token: usize) -> io::Result<()> {
            self.register(read_fd, token, Interest::READABLE)?;
            self.wakers.lock().unwrap().insert(token, read_fd);
            Ok(())
        }

        pub fn wait(
            &mut self,
            out: &mut Vec<Event>,
            cap: usize,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            self.buf.clear();
            {
                let fds = self.fds.lock().unwrap();
                for (&fd, &(_tok, events)) in fds.iter() {
                    self.buf.push(PollFd {
                        fd,
                        events,
                        revents: 0,
                    });
                }
            }
            let n = unsafe {
                poll(
                    self.buf.as_mut_ptr(),
                    self.buf.len() as NFds,
                    sys::timeout_ms(timeout),
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                return if e.kind() == io::ErrorKind::Interrupted {
                    Ok(())
                } else {
                    Err(e)
                };
            }
            let fds = self.fds.lock().unwrap();
            let wakers = self.wakers.lock().unwrap();
            for pfd in &self.buf {
                if out.len() >= cap {
                    break;
                }
                let bits = pfd.revents;
                if bits == 0 {
                    continue;
                }
                let Some(&(token, _)) = fds.get(&pfd.fd) else {
                    continue; // deregistered between snapshot and here
                };
                if let Some(&rfd) = wakers.get(&token) {
                    sys::drain_pipe(rfd);
                }
                out.push(Event {
                    token,
                    readable: bits & POLLIN != 0,
                    writable: bits & POLLOUT != 0,
                    error: bits & (POLLERR | POLLNVAL) != 0,
                    hup: bits & POLLHUP != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for PollSel {
        fn drop(&mut self) {
            for (_, fd) in self.wakers.lock().unwrap().drain() {
                unsafe { sys::close(fd) };
            }
        }
    }
}

// Keep the unused-import lint honest on non-linux builds.
#[allow(unused)]
fn _assert_send_sync() {
    fn ok<T: Send + Sync>() {}
    ok::<Waker>();
    ok::<Token>();
    let _ = HashMap::<usize, Mutex<()>>::new();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    const LISTENER: Token = Token(1);
    const CLIENT: Token = Token(2);
    const WAKER: Token = Token(0);

    fn backends() -> Vec<Backend> {
        #[cfg(target_os = "linux")]
        {
            vec![Backend::Epoll, Backend::Poll]
        }
        #[cfg(not(target_os = "linux"))]
        {
            vec![Backend::Poll]
        }
    }

    fn wait_for(
        poll: &mut Poll,
        events: &mut Events,
        token: Token,
        want_read: bool,
        want_write: bool,
    ) -> bool {
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            poll.poll(events, Some(Duration::from_millis(50))).unwrap();
            for ev in events.iter() {
                if ev.token() == token
                    && (!want_read || ev.is_readable())
                    && (!want_write || ev.is_writable())
                {
                    return true;
                }
            }
        }
        false
    }

    #[test]
    fn accept_and_stream_readiness_all_backends() {
        for backend in backends() {
            let mut poll = Poll::with_backend(backend).unwrap();
            assert_eq!(poll.backend(), backend);
            let mut events = Events::with_capacity(16);

            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.set_nonblocking(true).unwrap();
            poll.register(&listener, LISTENER, Interest::READABLE)
                .unwrap();

            // Nothing pending: a short poll returns without events for it.
            poll.poll(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(
                events.iter().all(|e| e.token() != LISTENER),
                "{backend:?}: phantom accept readiness"
            );

            let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            assert!(
                wait_for(&mut poll, &mut events, LISTENER, true, false),
                "{backend:?}: no accept readiness"
            );
            let (mut sock, _) = listener.accept().unwrap();
            sock.set_nonblocking(true).unwrap();
            poll.register(&sock, CLIENT, Interest::READABLE | Interest::WRITABLE)
                .unwrap();

            // A fresh connection with empty buffers is writable.
            assert!(
                wait_for(&mut poll, &mut events, CLIENT, false, true),
                "{backend:?}: no write readiness"
            );

            client.write_all(b"ping").unwrap();
            assert!(
                wait_for(&mut poll, &mut events, CLIENT, true, false),
                "{backend:?}: no read readiness"
            );
            let mut buf = [0u8; 8];
            let n = sock.read(&mut buf).unwrap();
            assert_eq!(&buf[..n], b"ping");

            // Level-triggered: unread bytes keep reporting readable.
            client.write_all(b"more").unwrap();
            assert!(wait_for(&mut poll, &mut events, CLIENT, true, false));
            assert!(
                wait_for(&mut poll, &mut events, CLIENT, true, false),
                "{backend:?}: level-triggered readiness did not persist"
            );

            poll.deregister(&sock).unwrap();
            poll.poll(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(
                events.iter().all(|e| e.token() != CLIENT),
                "{backend:?}: events after deregister"
            );
        }
    }

    #[test]
    fn waker_wakes_blocked_poll_all_backends() {
        for backend in backends() {
            let mut poll = Poll::with_backend(backend).unwrap();
            let waker = std::sync::Arc::new(Waker::new(&poll, WAKER).unwrap());
            let mut events = Events::with_capacity(4);

            let w = std::sync::Arc::clone(&waker);
            let t = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                w.wake().unwrap();
            });
            let start = Instant::now();
            poll.poll(&mut events, Some(Duration::from_secs(10)))
                .unwrap();
            t.join().unwrap();
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "{backend:?}: waker did not interrupt the wait"
            );
            assert!(
                events.iter().any(|e| e.token() == WAKER && e.is_readable()),
                "{backend:?}: waker event missing"
            );

            // The pipe was drained: no stale wakeup on the next poll.
            poll.poll(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(
                events.is_empty(),
                "{backend:?}: waker pipe not drained ({} events)",
                events.len()
            );

            // Coalescing: many wakes, one (batch of) wakeup, then quiet.
            for _ in 0..1000 {
                waker.wake().unwrap();
            }
            poll.poll(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            assert!(events.iter().any(|e| e.token() == WAKER));
            poll.poll(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{backend:?}: wakes not coalesced");
        }
    }

    #[test]
    fn reregister_moves_interest() {
        for backend in backends() {
            let mut poll = Poll::with_backend(backend).unwrap();
            let mut events = Events::with_capacity(8);
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (sock, _) = listener.accept().unwrap();
            sock.set_nonblocking(true).unwrap();

            // Write-only interest on an idle writable socket fires...
            poll.register(&sock, CLIENT, Interest::WRITABLE).unwrap();
            assert!(wait_for(&mut poll, &mut events, CLIENT, false, true));
            // ...until reregistered to read-only with nothing to read.
            poll.reregister(&sock, CLIENT, Interest::READABLE).unwrap();
            poll.poll(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert!(
                events
                    .iter()
                    .all(|e| e.token() != CLIENT || !e.is_writable()),
                "{backend:?}: writable after downgrade"
            );
            drop(client);
            // Peer hangup surfaces as readable (read() will return 0).
            assert!(
                wait_for(&mut poll, &mut events, CLIENT, true, false),
                "{backend:?}: hup not readable"
            );
        }
    }

    #[test]
    fn zero_and_subms_timeouts() {
        // 0 must not block; sub-millisecond must not spin as 0 forever.
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(4);
        let start = Instant::now();
        poll.poll(&mut events, Some(Duration::ZERO)).unwrap();
        poll.poll(&mut events, Some(Duration::from_micros(100)))
            .unwrap();
        assert!(start.elapsed() < Duration::from_secs(1));
        assert!(events.is_empty());
    }
}
