//! The persistent worker pool behind every parallel round.
//!
//! Workers are OS threads spawned **once** per [`Registry`] (lazily, on the
//! first round big enough to parallelize) and parked on a condvar between
//! rounds, so the steady-state cost of a round is an unpark + a handful of
//! atomic claims instead of `threads − 1` clone/spawn/join cycles.
//!
//! ## Round anatomy
//!
//! A round is a caller-provided `work(lo, hi)` closure that must be invoked
//! over disjoint ranges covering `0..len` exactly once. The range is dealt
//! out as follows:
//!
//! * `0..len` is pre-split into `width` contiguous **segments**, one per
//!   worker. Each segment's claim state is a single `AtomicU64` packing
//!   `(next, end)` offsets, so owner claims (advance `next`) and steals
//!   (retreat `end`) are both one CAS on the same word and can never hand
//!   out overlapping ranges.
//! * The segment's owner deals itself chunks of `chunk` items from the
//!   front (**chunked atomic-index dealing** — the chunk size amortizes the
//!   CAS, the index keeps the deal dynamic so a slow worker doesn't strand
//!   its tail).
//! * A participant whose own segment is empty — including the caller, which
//!   has no segment and joins purely as a thief — **steals half** of the
//!   fullest-looking victim's remaining range from the back, largest-first,
//!   until no segment has claimable work.
//!
//! Completion is a count of *processed* (not merely claimed) items: the
//! participant that retires the last item unparks the caller. The caller
//! never returns before that, which is what makes it sound for `work` to
//! borrow the caller's stack. A panic inside `work` cancels the round
//! (remaining claims are drained without executing), is carried back, and
//! re-thrown on the calling thread — matching rayon.
//!
//! Workers never block a round they cannot help with: a job whose segments
//! are all claimed is pruned from the queue, and a registry being shut down
//! ([`ThreadPool`](crate::ThreadPool) drop) lets in-flight callers finish
//! their own rounds by self-stealing — the caller alone is always enough to
//! drain a round, so worker death is a performance event, not a correctness
//! event.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

thread_local! {
    /// Marks pool worker threads: parallel rounds started *from* a worker run
    /// inline (no re-entry into the pool), which both bounds recursion and
    /// makes nested parallelism deadlock-free.
    static IS_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// True on pool worker threads (nested rounds must run inline there).
pub(crate) fn on_worker_thread() -> bool {
    IS_WORKER.with(std::cell::Cell::get)
}

// ---------------------------------------------------------------------------
// Segments: packed (next, end) interval claims
// ---------------------------------------------------------------------------

/// One worker's contiguous share of a round, claimable from both ends.
/// Offsets are relative to `base` and packed as `next << 32 | end`, both
/// `u32` — a single CAS word. Segments longer than `u32::MAX` items fall
/// back to inline execution in [`run_round`] (unreachable for in-memory
/// texts).
struct Seg {
    base: usize,
    state: AtomicU64,
}

#[inline]
fn pack(next: u32, end: u32) -> u64 {
    (u64::from(next) << 32) | u64::from(end)
}

#[inline]
fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

impl Seg {
    fn new(base: usize, len: usize) -> Self {
        Seg {
            base,
            state: AtomicU64::new(pack(0, len as u32)),
        }
    }

    /// Remaining claimable items (approximate: racy by design).
    fn remaining(&self) -> usize {
        let (next, end) = unpack(self.state.load(Ordering::Relaxed));
        end.saturating_sub(next) as usize
    }

    /// Owner side: claim up to `chunk` items from the front.
    fn claim_front(&self, chunk: usize) -> Option<(usize, usize)> {
        let mut cur = self.state.load(Ordering::Relaxed);
        loop {
            let (next, end) = unpack(cur);
            if next >= end {
                return None;
            }
            let take = chunk.min((end - next) as usize) as u32;
            match self.state.compare_exchange_weak(
                cur,
                pack(next + take, end),
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    let lo = self.base + next as usize;
                    return Some((lo, lo + take as usize));
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Thief side: claim half the remaining range (at least `chunk`, at most
    /// everything) from the back.
    fn claim_back_half(&self, chunk: usize) -> Option<(usize, usize)> {
        let mut cur = self.state.load(Ordering::Relaxed);
        loop {
            let (next, end) = unpack(cur);
            if next >= end {
                return None;
            }
            let avail = (end - next) as usize;
            let take = avail.div_ceil(2).max(chunk).min(avail) as u32;
            match self.state.compare_exchange_weak(
                cur,
                pack(next, end - take),
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    let hi = self.base + end as usize;
                    return Some((hi - take as usize, hi));
                }
                Err(seen) => cur = seen,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// A round in flight
// ---------------------------------------------------------------------------

type WorkFn = dyn Fn(usize, usize) + Sync;

/// Shared state of one round. Lives in an `Arc` so a lagging worker that
/// still holds a reference after the round completes only ever touches this
/// allocation — never the caller's (possibly unwound) stack. `work` points
/// into the caller's stack, and is only dereferenced for a claimed range;
/// once every item is processed no range is claimable, and the caller does
/// not return (keeping the closure alive) before that.
struct RoundJob {
    segs: Box<[Seg]>,
    chunk: usize,
    /// Items claimed *and executed*; the participant that takes this to zero
    /// unparks the caller.
    unfinished: AtomicUsize,
    /// Set on panic: remaining ranges are claimed but not executed.
    cancelled: AtomicBool,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    caller: thread::Thread,
    work: *const WorkFn,
}

// SAFETY: `work` crosses threads by design; the protocol above guarantees it
// is only called while the caller keeps the closure alive, and `&WorkFn` is
// `Sync` so shared calls are sound. Everything else is atomics and locks.
unsafe impl Send for RoundJob {}
unsafe impl Sync for RoundJob {}

impl RoundJob {
    /// No claimable work left (≠ complete: claims may still be executing).
    fn exhausted(&self) -> bool {
        self.segs.iter().all(|s| s.remaining() == 0)
    }

    /// Execute one claimed range, then retire it.
    fn execute(&self, lo: usize, hi: usize) {
        if !self.cancelled.load(Ordering::Relaxed) {
            // SAFETY: (lo, hi) was claimed exactly once; the caller keeps the
            // closure alive until `unfinished` reaches zero, which cannot
            // happen before this range is retired below.
            let work = unsafe { &*self.work };
            if let Err(payload) =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| work(lo, hi)))
            {
                self.cancelled.store(true, Ordering::Relaxed);
                let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
                slot.get_or_insert(payload);
            }
        }
        if self.unfinished.fetch_sub(hi - lo, Ordering::Release) == hi - lo {
            self.caller.unpark();
        }
    }

    /// Work the round as participant `me` (`None` = the caller, who owns no
    /// segment and only steals). Returns when nothing is claimable.
    fn participate(&self, me: Option<usize>) {
        if let Some(w) = me {
            let seg = &self.segs[w];
            while let Some((lo, hi)) = seg.claim_front(self.chunk) {
                self.execute(lo, hi);
            }
        }
        // Steal loop: largest victim first, half of its remainder at a time.
        loop {
            let victim = self
                .segs
                .iter()
                .max_by_key(|s| s.remaining())
                .filter(|s| s.remaining() > 0);
            let Some(seg) = victim else { return };
            if let Some((lo, hi)) = seg.claim_back_half(self.chunk) {
                self.execute(lo, hi);
            }
            // A failed claim just means someone beat us to it; re-scan.
        }
    }
}

// ---------------------------------------------------------------------------
// Registry: the persistent pool
// ---------------------------------------------------------------------------

struct Queue {
    jobs: VecDeque<Arc<RoundJob>>,
    shutdown: bool,
}

/// A persistent set of parked worker threads plus a round queue.
pub(crate) struct Registry {
    width: usize,
    queue: Mutex<Queue>,
    available: Condvar,
    started: std::sync::Once,
    handles: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("width", &self.width)
            .finish_non_exhaustive()
    }
}

impl Registry {
    pub(crate) fn new(width: usize) -> Arc<Registry> {
        Arc::new(Registry {
            width: width.max(1),
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            started: std::sync::Once::new(),
            handles: Mutex::new(Vec::new()),
        })
    }

    pub(crate) fn width(&self) -> usize {
        self.width
    }

    /// Spawn the workers exactly once (first parallel round).
    fn ensure_started(self: &Arc<Self>) {
        self.started.call_once(|| {
            let mut handles = self.handles.lock().unwrap_or_else(|e| e.into_inner());
            for id in 0..self.width {
                let registry = Arc::clone(self);
                let handle = thread::Builder::new()
                    .name(format!("pdm-worker-{id}"))
                    .spawn(move || worker_main(registry, id))
                    .expect("failed to spawn pool worker");
                handles.push(handle);
            }
        });
    }

    /// Next job with claimable work, or `None` on shutdown. Blocks parked.
    fn next_job(&self) -> Option<Arc<RoundJob>> {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            while let Some(front) = q.jobs.front() {
                if front.exhausted() {
                    q.jobs.pop_front();
                } else {
                    return Some(Arc::clone(front));
                }
            }
            if q.shutdown {
                return None;
            }
            q = self.available.wait(q).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn inject(&self, job: Arc<RoundJob>) {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.jobs.push_back(job);
        drop(q);
        self.available.notify_all();
    }

    /// Stop and join the workers. In-flight callers complete their rounds
    /// themselves (the caller is always a sufficient participant).
    pub(crate) fn shutdown(&self) {
        {
            let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.shutdown = true;
        }
        self.available.notify_all();
        let handles = std::mem::take(&mut *self.handles.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            let _ = h.join();
        }
    }
}

fn worker_main(registry: Arc<Registry>, id: usize) {
    IS_WORKER.with(|f| f.set(true));
    // Rounds running on this worker report the pool's width for nested
    // `current_num_threads`; a nested `install` overrides it (innermost
    // width wins, as in real rayon).
    crate::pool::with_width(registry.width, || {
        while let Some(job) = registry.next_job() {
            job.participate(Some(id % job.segs.len()));
        }
    });
}

// ---------------------------------------------------------------------------
// Round entry point
// ---------------------------------------------------------------------------

/// Run `work` over `0..len` on `registry`'s workers + the calling thread.
/// `chunk` is the per-claim granularity (≥ 1). Falls back to inline
/// execution for degenerate shapes (worker thread, width 1, oversized
/// segments).
pub(crate) fn run_round<'a>(
    registry: &Arc<Registry>,
    len: usize,
    chunk: usize,
    work: &'a (dyn Fn(usize, usize) + Sync + 'a),
) {
    let width = registry.width;
    let per_seg = len.div_ceil(width);
    if width <= 1 || on_worker_thread() || per_seg > u32::MAX as usize {
        work(0, len);
        return;
    }
    let segs: Vec<Seg> = (0..width)
        .map(|w| {
            let base = (w * per_seg).min(len);
            Seg::new(base, ((w + 1) * per_seg).min(len) - base)
        })
        .collect();
    // SAFETY: the `*const WorkFn` field nominally carries `'static`, but the
    // closure only lives for this call — sound because it is dereferenced
    // solely for claimed ranges, all of which retire before this function
    // returns (see the RoundJob invariant).
    let work: &'static WorkFn = unsafe {
        std::mem::transmute::<&'a (dyn Fn(usize, usize) + Sync + 'a), &'static WorkFn>(work)
    };
    let job = Arc::new(RoundJob {
        segs: segs.into_boxed_slice(),
        chunk: chunk.max(1),
        unfinished: AtomicUsize::new(len),
        cancelled: AtomicBool::new(false),
        panic: Mutex::new(None),
        caller: thread::current(),
        work,
    });
    registry.ensure_started();
    registry.inject(Arc::clone(&job));
    job.participate(None);
    // Wait for lagging participants to retire their claims. Spin briefly
    // (the common case: they are already done), then park.
    let mut spins = 0u32;
    while job.unfinished.load(Ordering::Acquire) != 0 {
        spins += 1;
        if spins < 64 {
            std::hint::spin_loop();
        } else {
            thread::park();
        }
    }
    let payload = job.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
    if let Some(p) = payload {
        std::panic::resume_unwind(p);
    }
}

// ---------------------------------------------------------------------------
// The global registry
// ---------------------------------------------------------------------------

/// Width of the global pool: `PDM_THREADS`, then `RAYON_NUM_THREADS`, then
/// the hardware parallelism.
pub(crate) fn default_width() -> usize {
    for var in ["PDM_THREADS", "RAYON_NUM_THREADS"] {
        if let Some(n) = std::env::var(var)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            if n >= 1 {
                return n;
            }
        }
    }
    thread::available_parallelism().map_or(1, |n| n.get())
}

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

/// The process-wide default pool (never shut down).
pub(crate) fn global_registry() -> &'static Arc<Registry> {
    GLOBAL.get_or_init(|| Registry::new(default_width()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU8;

    fn hit_counts(registry: &Arc<Registry>, len: usize, chunk: usize) -> Vec<u8> {
        let hits: Vec<AtomicU8> = (0..len).map(|_| AtomicU8::new(0)).collect();
        run_round(registry, len, chunk, &|lo, hi| {
            for h in &hits[lo..hi] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        hits.into_iter().map(|h| h.into_inner()).collect()
    }

    #[test]
    fn every_index_exactly_once() {
        let registry = Registry::new(4);
        for &(len, chunk) in &[
            (1usize, 1usize),
            (7, 2),
            (1000, 8),
            (10_000, 64),
            (4096, 4096),
        ] {
            let hits = hit_counts(&registry, len, chunk);
            assert!(hits.iter().all(|&h| h == 1), "len={len} chunk={chunk}");
        }
        registry.shutdown();
    }

    #[test]
    fn rounds_reuse_workers() {
        let registry = Registry::new(3);
        for _ in 0..50 {
            let hits = hit_counts(&registry, 500, 16);
            assert!(hits.iter().all(|&h| h == 1));
        }
        assert_eq!(
            registry.handles.lock().unwrap().len(),
            3,
            "workers must be spawned exactly once"
        );
        registry.shutdown();
    }

    #[test]
    fn concurrent_rounds_from_many_callers() {
        let registry = Registry::new(2);
        thread::scope(|s| {
            for _ in 0..4 {
                let registry = &registry;
                s.spawn(move || {
                    for _ in 0..20 {
                        let hits = hit_counts(registry, 300, 8);
                        assert!(hits.iter().all(|&h| h == 1));
                    }
                });
            }
        });
        registry.shutdown();
    }

    #[test]
    fn panic_propagates_to_caller() {
        let registry = Registry::new(2);
        let result = std::panic::catch_unwind(|| {
            run_round(&registry, 1000, 8, &|lo, _hi| {
                if lo == 0 {
                    panic!("boom");
                }
            });
        });
        assert!(result.is_err());
        // The pool survives a panicking round.
        let hits = hit_counts(&registry, 100, 4);
        assert!(hits.iter().all(|&h| h == 1));
        registry.shutdown();
    }

    #[test]
    fn caller_alone_drains_a_shut_down_pool() {
        let registry = Registry::new(2);
        registry.shutdown();
        let hits = hit_counts(&registry, 1000, 16);
        assert!(hits.iter().all(|&h| h == 1));
    }

    #[test]
    fn seg_claims_never_overlap() {
        let seg = Seg::new(10, 100);
        let mut seen = vec![false; 110];
        while let Some((lo, hi)) = seg.claim_front(7) {
            for s in &mut seen[lo..hi] {
                assert!(!*s);
                *s = true;
            }
            if let Some((lo, hi)) = seg.claim_back_half(7) {
                for s in &mut seen[lo..hi] {
                    assert!(!*s);
                    *s = true;
                }
            }
        }
        assert!(seen[10..110].iter().all(|&s| s));
        assert!(!seen[..10].iter().any(|&s| s));
    }
}
