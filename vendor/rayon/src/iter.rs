//! Indexed parallel iterators over the persistent worker pool.
//!
//! Everything here is built on one abstraction: an [`IndexedSource`] that
//! can hand out the item at index `i` to any thread, with the contract that
//! each index is consumed at most once. Adaptors (`map`, `zip`,
//! `enumerate`) compose sources; drivers hand `0..len` to the current
//! [`Registry`](crate::registry) — parked persistent workers dealt chunks
//! from per-worker segments with work stealing — with an adaptive
//! sequential cutoff: rounds of at most `min_len` items (and all rounds
//! started from inside a pool worker) run inline on the calling thread,
//! never crossing a thread boundary.

use crate::pool::current_exec;
use crate::registry::{on_worker_thread, run_round};
use std::mem::{ManuallyDrop, MaybeUninit};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// A random-access item producer that parallel drivers consume.
///
/// # Safety contract (for implementors and drivers)
/// Drivers call `get(i)` at most once per index, from one thread at a time
/// per index, after calling `begin()` exactly once.
pub trait IndexedSource: Sync {
    type Item: Send;
    fn len(&self) -> usize;
    /// Called once per index; may move the item out of the source.
    ///
    /// # Safety
    /// Caller must uphold the once-per-index contract above.
    unsafe fn get(&self, i: usize) -> Self::Item;
    /// Called once before the first `get`.
    fn begin(&self) {}
}

/// The parallel iterator: a source plus a minimum split length.
pub struct ParIter<S: IndexedSource> {
    src: S,
    min_len: usize,
}

/// Conversion into a [`ParIter`] (entry points: ranges, vectors, and the
/// identity conversion used by `zip`).
pub trait IntoParallelIterator {
    type Item: Send;
    type Source: IndexedSource<Item = Self::Item>;
    fn into_par_iter(self) -> ParIter<Self::Source>;
}

/// Marker re-export so `use rayon::prelude::*` mirrors the real crate; all
/// combinators are inherent methods on [`ParIter`].
pub trait ParallelIterator {}
impl<S: IndexedSource> ParallelIterator for ParIter<S> {}

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

/// Run `work(lo, hi)` over disjoint ranges covering `0..len` exactly once,
/// in parallel on the current pool. Inline when the round is too small to
/// benefit from crossing a thread boundary.
fn drive<W>(len: usize, min_len: usize, work: &W)
where
    W: Fn(usize, usize) + Sync,
{
    if len == 0 {
        return;
    }
    let min_len = min_len.max(1);
    if len <= min_len || on_worker_thread() {
        return work(0, len);
    }
    let (width, registry) = current_exec();
    if width <= 1 {
        return work(0, len);
    }
    // Adaptive granularity: a few claims per participant amortize the CAS
    // while leaving enough pieces for stealing to balance.
    let chunk = (len / (width * 4)).max(min_len);
    run_round(&registry, len, chunk, work);
}

/// Like [`drive`], collecting each executed range's result; parts are
/// returned ordered by range start, so folding them left-to-right is the
/// same grouping as a sequential left fold over contiguous ranges (no
/// commutativity required of the combiner).
fn drive_parts<R, W>(len: usize, min_len: usize, work: &W) -> Vec<R>
where
    R: Send,
    W: Fn(usize, usize) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let min_len = min_len.max(1);
    if len <= min_len || on_worker_thread() {
        return vec![work(0, len)];
    }
    let (width, registry) = current_exec();
    if width <= 1 {
        return vec![work(0, len)];
    }
    let chunk = (len / (width * 4)).max(min_len);
    let parts: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::new());
    run_round(&registry, len, chunk, &|lo, hi| {
        let r = work(lo, hi);
        parts
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((lo, r));
    });
    let mut v = parts.into_inner().unwrap_or_else(|e| e.into_inner());
    v.sort_unstable_by_key(|&(lo, _)| lo);
    v.into_iter().map(|(_, r)| r).collect()
}

/// Pointer that may cross thread boundaries (writes are index-disjoint).
struct SendPtr<T>(*mut T);
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<S: IndexedSource> ParIter<S> {
    fn new(src: S) -> Self {
        ParIter { src, min_len: 1 }
    }

    /// Scheduling hint: never hand a worker fewer than `n` items.
    pub fn with_min_len(mut self, n: usize) -> Self {
        self.min_len = n.max(1);
        self
    }

    pub fn map<T: Send, F: Fn(S::Item) -> T + Sync>(self, f: F) -> ParIter<Map<S, F>> {
        ParIter {
            src: Map { src: self.src, f },
            min_len: self.min_len,
        }
    }

    pub fn zip<O: IntoParallelIterator>(self, other: O) -> ParIter<Zip<S, O::Source>> {
        let o = other.into_par_iter();
        ParIter {
            src: Zip {
                a: self.src,
                b: o.src,
            },
            min_len: self.min_len,
        }
    }

    pub fn enumerate(self) -> ParIter<Enumerate<S>> {
        ParIter {
            src: Enumerate { src: self.src },
            min_len: self.min_len,
        }
    }

    pub fn for_each<F: Fn(S::Item) + Sync>(self, f: F) {
        self.src.begin();
        drive(self.src.len(), self.min_len, &|lo, hi| {
            for i in lo..hi {
                f(unsafe { self.src.get(i) });
            }
        });
    }

    /// Fold with an associative operator; `identity` seeds each part.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> S::Item
    where
        ID: Fn() -> S::Item + Sync,
        OP: Fn(S::Item, S::Item) -> S::Item + Sync,
    {
        self.src.begin();
        let parts = drive_parts(self.src.len(), self.min_len, &|lo, hi| {
            let mut acc = identity();
            for i in lo..hi {
                acc = op(acc, unsafe { self.src.get(i) });
            }
            acc
        });
        parts.into_iter().fold(identity(), op)
    }

    pub fn collect<C: FromParIter<S::Item>>(self) -> C {
        C::from_par_iter(self)
    }
}

/// Collection target for [`ParIter::collect`].
pub trait FromParIter<T: Send>: Sized {
    fn from_par_iter<S: IndexedSource<Item = T>>(iter: ParIter<S>) -> Self;
}

impl<T: Send> FromParIter<T> for Vec<T> {
    fn from_par_iter<S: IndexedSource<Item = T>>(iter: ParIter<S>) -> Self {
        let len = iter.src.len();
        let mut buf: Vec<MaybeUninit<T>> = Vec::with_capacity(len);
        // SAFETY: every slot is written exactly once below before the
        // transmute; MaybeUninit needs no initialization.
        unsafe { buf.set_len(len) };
        let out = SendPtr(buf.as_mut_ptr());
        iter.src.begin();
        drive(len, iter.min_len, &|lo, hi| {
            // Bind the whole SendPtr (not just its field) so 2021 disjoint
            // capture doesn't grab the raw pointer, which is not Sync.
            let dst = out;
            for i in lo..hi {
                // SAFETY: parts are disjoint, each slot written once.
                unsafe { (dst.0.add(i)).write(MaybeUninit::new(iter.src.get(i))) };
            }
        });
        let ptr = buf.as_mut_ptr() as *mut T;
        let cap = buf.capacity();
        std::mem::forget(buf);
        // SAFETY: all len items are initialized; layout of MaybeUninit<T>
        // equals T.
        unsafe { Vec::from_raw_parts(ptr, len, cap) }
    }
}

// ---------------------------------------------------------------------------
// Adaptor sources
// ---------------------------------------------------------------------------

pub struct Map<S, F> {
    src: S,
    f: F,
}
impl<S: IndexedSource, T: Send, F: Fn(S::Item) -> T + Sync> IndexedSource for Map<S, F> {
    type Item = T;
    fn len(&self) -> usize {
        self.src.len()
    }
    unsafe fn get(&self, i: usize) -> T {
        (self.f)(self.src.get(i))
    }
    fn begin(&self) {
        self.src.begin();
    }
}

pub struct Zip<A, B> {
    a: A,
    b: B,
}
impl<A: IndexedSource, B: IndexedSource> IndexedSource for Zip<A, B> {
    type Item = (A::Item, B::Item);
    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    unsafe fn get(&self, i: usize) -> Self::Item {
        (self.a.get(i), self.b.get(i))
    }
    fn begin(&self) {
        self.a.begin();
        self.b.begin();
    }
}

pub struct Enumerate<S> {
    src: S,
}
impl<S: IndexedSource> IndexedSource for Enumerate<S> {
    type Item = (usize, S::Item);
    fn len(&self) -> usize {
        self.src.len()
    }
    unsafe fn get(&self, i: usize) -> Self::Item {
        (i, self.src.get(i))
    }
    fn begin(&self) {
        self.src.begin();
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

pub struct RangeSource {
    start: usize,
    len: usize,
}
impl IndexedSource for RangeSource {
    type Item = usize;
    fn len(&self) -> usize {
        self.len
    }
    unsafe fn get(&self, i: usize) -> usize {
        self.start + i
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Source = RangeSource;
    fn into_par_iter(self) -> ParIter<RangeSource> {
        ParIter::new(RangeSource {
            start: self.start,
            len: self.end.saturating_sub(self.start),
        })
    }
}

/// Consuming source over a `Vec`: items are moved out by `ptr::read`, and
/// the drop impl frees either elements + capacity (never driven) or
/// capacity only (driven — elements were moved to consumers).
pub struct VecSource<T: Send> {
    data: ManuallyDrop<Vec<T>>,
    consumed: AtomicBool,
}
unsafe impl<T: Send> Sync for VecSource<T> {}
impl<T: Send> IndexedSource for VecSource<T> {
    type Item = T;
    fn len(&self) -> usize {
        self.data.len()
    }
    unsafe fn get(&self, i: usize) -> T {
        std::ptr::read(self.data.as_ptr().add(i))
    }
    fn begin(&self) {
        self.consumed.store(true, Ordering::Relaxed);
    }
}
impl<T: Send> Drop for VecSource<T> {
    fn drop(&mut self) {
        unsafe {
            if self.consumed.load(Ordering::Relaxed) {
                let mut v = ManuallyDrop::take(&mut self.data);
                v.set_len(0); // items already moved out
            } else {
                ManuallyDrop::drop(&mut self.data);
            }
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Source = VecSource<T>;
    fn into_par_iter(self) -> ParIter<VecSource<T>> {
        ParIter::new(VecSource {
            data: ManuallyDrop::new(self),
            consumed: AtomicBool::new(false),
        })
    }
}

impl<S: IndexedSource> IntoParallelIterator for ParIter<S> {
    type Item = S::Item;
    type Source = S;
    fn into_par_iter(self) -> ParIter<S> {
        self
    }
}

pub struct ChunksSource<'a, T> {
    slice: &'a [T],
    size: usize,
}
impl<'a, T: Sync> IndexedSource for ChunksSource<'a, T> {
    type Item = &'a [T];
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    unsafe fn get(&self, i: usize) -> &'a [T] {
        let lo = i * self.size;
        let hi = (lo + self.size).min(self.slice.len());
        &self.slice[lo..hi]
    }
}

pub struct ChunksMutSource<'a, T> {
    ptr: SendPtr<T>,
    len: usize,
    size: usize,
    _marker: std::marker::PhantomData<fn() -> &'a mut [T]>,
}
impl<'a, T: Send> IndexedSource for ChunksMutSource<'a, T> {
    type Item = &'a mut [T];
    fn len(&self) -> usize {
        self.len.div_ceil(self.size)
    }
    unsafe fn get(&self, i: usize) -> &'a mut [T] {
        let lo = i * self.size;
        let hi = (lo + self.size).min(self.len);
        // SAFETY: chunks are disjoint and each index is taken once, so the
        // &mut aliases nothing.
        std::slice::from_raw_parts_mut(self.ptr.0.add(lo), hi - lo)
    }
}

pub struct IterMutSource<'a, T> {
    ptr: SendPtr<T>,
    len: usize,
    _marker: std::marker::PhantomData<fn() -> &'a mut [T]>,
}
impl<'a, T: Send> IndexedSource for IterMutSource<'a, T> {
    type Item = &'a mut T;
    fn len(&self) -> usize {
        self.len
    }
    unsafe fn get(&self, i: usize) -> &'a mut T {
        // SAFETY: one &mut per index; indices disjoint.
        &mut *self.ptr.0.add(i)
    }
}

/// `par_chunks` on shared slices.
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, size: usize) -> ParIter<ChunksSource<'_, T>>;
}
impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParIter<ChunksSource<'_, T>> {
        assert!(size > 0, "chunk size must be positive");
        ParIter::new(ChunksSource { slice: self, size })
    }
}

/// `par_chunks_mut` / `par_iter_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<ChunksMutSource<'_, T>>;
    fn par_iter_mut(&mut self) -> ParIter<IterMutSource<'_, T>>;
}
impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<ChunksMutSource<'_, T>> {
        assert!(size > 0, "chunk size must be positive");
        ParIter::new(ChunksMutSource {
            ptr: SendPtr(self.as_mut_ptr()),
            len: self.len(),
            size,
            _marker: std::marker::PhantomData,
        })
    }
    fn par_iter_mut(&mut self) -> ParIter<IterMutSource<'_, T>> {
        ParIter::new(IterMutSource {
            ptr: SendPtr(self.as_mut_ptr()),
            len: self.len(),
            _marker: std::marker::PhantomData,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let v: Vec<usize> = (0..10_000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 10_000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn vec_into_par_iter_moves_items() {
        let data: Vec<String> = (0..1000).map(|i| i.to_string()).collect();
        let out: Vec<usize> = data.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn vec_source_drops_cleanly_when_unused() {
        let data: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let _iter = data.into_par_iter(); // dropped without driving
    }

    #[test]
    fn chunks_zip_enumerate_for_each() {
        let xs: Vec<u32> = (0..10_000).collect();
        let mut out = vec![0u32; 10_000];
        let offsets: Vec<u32> = (0..10u32).map(|b| b * 1000).collect();
        out.par_chunks_mut(1000)
            .zip(offsets.into_par_iter())
            .enumerate()
            .for_each(|(b, (chunk, off))| {
                assert_eq!(off as usize, b * 1000);
                for (i, slot) in chunk.iter_mut().enumerate() {
                    *slot = xs[b * 1000 + i] + off;
                }
            });
        assert!(out.iter().enumerate().all(|(i, &x)| {
            let b = (i / 1000) as u32;
            x == i as u32 + b * 1000
        }));
    }

    #[test]
    fn reduce_sums() {
        let total = (0..100_000usize)
            .into_par_iter()
            .with_min_len(1024)
            .map(|i| i as u64)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 99_999u64 * 100_000 / 2);
    }

    #[test]
    fn par_iter_mut_touches_every_slot() {
        let mut v = vec![0u8; 5000];
        v.par_iter_mut()
            .enumerate()
            .for_each(|(i, x)| *x = (i % 251) as u8);
        assert!(v.iter().enumerate().all(|(i, &x)| x == (i % 251) as u8));
    }

    #[test]
    fn pool_width_is_respected() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        pool.install(|| assert_eq!(crate::current_num_threads(), 3));
    }

    #[test]
    fn nested_install_sees_innermost_width() {
        let outer = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let inner = crate::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        outer.install(|| {
            assert_eq!(crate::current_num_threads(), 4);
            // Nested install on the *calling* thread.
            inner.install(|| assert_eq!(crate::current_num_threads(), 2));
            assert_eq!(crate::current_num_threads(), 4);
            // Nested install from *inside a worker-executed round*: the
            // innermost width must win there too.
            (0..20_000usize)
                .into_par_iter()
                .with_min_len(512)
                .for_each(|_| {
                    assert_eq!(crate::current_num_threads(), 4);
                    inner.install(|| assert_eq!(crate::current_num_threads(), 2));
                    assert_eq!(crate::current_num_threads(), 4);
                });
        });
    }

    #[test]
    fn rounds_run_on_a_bounded_persistent_thread_set() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        for _ in 0..25 {
            pool.install(|| {
                (0..50_000usize)
                    .into_par_iter()
                    .with_min_len(256)
                    .for_each(|_| {
                        seen.lock().unwrap().insert(std::thread::current().id());
                    });
            });
        }
        // 3 persistent workers + the caller; per-round spawning would have
        // produced dozens of distinct thread ids.
        let ids = seen.lock().unwrap().len();
        assert!(ids <= 4, "saw {ids} distinct threads across 25 rounds");
    }

    #[test]
    fn panic_in_parallel_closure_propagates() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                (0..10_000usize)
                    .into_par_iter()
                    .with_min_len(16)
                    .for_each(|i| {
                        if i == 4321 {
                            panic!("round panic");
                        }
                    });
            });
        }));
        assert!(result.is_err());
        // The pool stays usable afterwards.
        let v: Vec<usize> = pool.install(|| {
            (0..1000usize)
                .into_par_iter()
                .with_min_len(16)
                .map(|i| i)
                .collect()
        });
        assert_eq!(v.len(), 1000);
    }

    #[test]
    fn reduce_preserves_part_order_for_noncommutative_op() {
        // String concatenation is associative but not commutative: any
        // misordering of stolen parts would scramble the output.
        let want: String = (0..3000u32).map(|i| i.to_string()).collect();
        for _ in 0..5 {
            let got = (0..3000usize)
                .into_par_iter()
                .with_min_len(16)
                .map(|i| i.to_string())
                .reduce(String::new, |a, b| a + &b);
            assert_eq!(got, want);
        }
    }
}
