//! Thread-count bookkeeping. There is no persistent pool: parallel calls
//! spawn scoped threads per round. A `ThreadPool` is therefore just a
//! requested width that `install` makes current for the duration of a
//! closure (and that workers inherit, so nested parallel calls see it).

use std::cell::Cell;

thread_local! {
    /// Width set by the innermost `ThreadPool::install` (0 = unset).
    static CURRENT_WIDTH: Cell<usize> = const { Cell::new(0) };
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Number of worker threads parallel iterators will use on this thread.
pub fn current_num_threads() -> usize {
    let w = CURRENT_WIDTH.with(Cell::get);
    if w > 0 {
        w
    } else {
        hardware_threads()
    }
}

/// Run `f` with the current width forced to `width` (used by workers to
/// inherit their parent's pool width for nested calls).
pub(crate) fn with_width<R>(width: usize, f: impl FnOnce() -> R) -> R {
    let prev = CURRENT_WIDTH.with(|c| c.replace(width));
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT_WIDTH.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// A fixed-width execution scope. `install` runs a closure with parallel
/// iterators limited to this width.
#[derive(Debug)]
pub struct ThreadPool {
    width: usize,
}

impl ThreadPool {
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        with_width(self.width, f)
    }

    pub fn current_num_threads(&self) -> usize {
        self.width
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

/// Error type for [`ThreadPoolBuilder::build`]; construction cannot
/// actually fail here, but the signature mirrors rayon's.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let width = match self.num_threads {
            Some(0) | None => hardware_threads(),
            Some(n) => n,
        };
        Ok(ThreadPool { width })
    }
}
