//! Pool handles and width bookkeeping.
//!
//! A [`ThreadPool`] owns a persistent [`Registry`](crate::registry) of
//! parked workers; the lazily-started global registry backs everything
//! else. `install` makes a pool current for the duration of a closure:
//! parallel rounds inside dispatch to that pool's workers and
//! [`current_num_threads`] reports its width (innermost `install` wins,
//! including from inside a worker — matching real rayon).
//!
//! The global width honours `PDM_THREADS`, then `RAYON_NUM_THREADS`, then
//! the hardware parallelism.

use crate::registry::{self, Registry};
use std::cell::RefCell;
use std::sync::Arc;

thread_local! {
    /// Pool made current by the innermost `ThreadPool::install` (None =
    /// global), plus its width. Workers set the width on entry so nested
    /// width queries inherit their pool.
    static CURRENT: RefCell<Current> = const {
        RefCell::new(Current {
            width: 0,
            registry: None,
        })
    };
}

struct Current {
    /// 0 = unset (fall back to the global width).
    width: usize,
    registry: Option<Arc<Registry>>,
}

/// Number of worker threads parallel iterators will use on this thread.
pub fn current_num_threads() -> usize {
    let w = CURRENT.with(|c| c.borrow().width);
    if w > 0 {
        w
    } else {
        registry::default_width()
    }
}

/// Run `f` with the current width forced to `width`, leaving the current
/// registry untouched (workers use this to report their pool's width).
pub(crate) fn with_width<R>(width: usize, f: impl FnOnce() -> R) -> R {
    with_current(width, None, f)
}

/// (width, registry) the next parallel round on this thread should use.
pub(crate) fn current_exec() -> (usize, Arc<Registry>) {
    CURRENT.with(|c| {
        let cur = c.borrow();
        match &cur.registry {
            Some(r) => (r.width(), Arc::clone(r)),
            None => {
                let global = registry::global_registry();
                let w = if cur.width > 0 {
                    cur.width.min(global.width())
                } else {
                    global.width()
                };
                (w, Arc::clone(global))
            }
        }
    })
}

fn with_current<R>(width: usize, registry: Option<Arc<Registry>>, f: impl FnOnce() -> R) -> R {
    struct Restore(Current);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|c| {
                let mut cur = c.borrow_mut();
                cur.width = self.0.width;
                cur.registry = self.0.registry.take();
            });
        }
    }
    let prev = CURRENT.with(|c| {
        let mut cur = c.borrow_mut();
        Current {
            width: std::mem::replace(&mut cur.width, width),
            registry: std::mem::replace(&mut cur.registry, registry),
        }
    });
    let _restore = Restore(prev);
    f()
}

/// A dedicated pool of persistent workers. Workers are spawned lazily on
/// the first parallel round and parked between rounds; dropping the pool
/// stops and joins them.
#[derive(Debug)]
pub struct ThreadPool {
    registry: Arc<Registry>,
}

impl ThreadPool {
    /// Run `f` with parallel rounds dispatching to this pool.
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        with_current(self.registry.width(), Some(Arc::clone(&self.registry)), f)
    }

    pub fn current_num_threads(&self) -> usize {
        self.registry.width()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.shutdown();
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

/// Error type for [`ThreadPoolBuilder::build`]; construction cannot
/// actually fail here, but the signature mirrors rayon's.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let width = match self.num_threads {
            Some(0) | None => registry::default_width(),
            Some(n) => n,
        };
        Ok(ThreadPool {
            registry: Registry::new(width),
        })
    }
}
