//! Offline stand-in for the subset of `rayon` this workspace uses.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! a small data-parallel engine with rayon's names: indexed parallel
//! iterators over ranges, vectors and slice chunks, driven by scoped OS
//! threads. Semantics match rayon for the combinators provided here —
//! every index is visited exactly once, items are produced in index order
//! within a split, and `collect`/`map` preserve ordering. Scheduling is
//! static (contiguous splits, one per worker) rather than work-stealing,
//! which is the right trade for this workspace's regular, data-parallel
//! rounds.
//!
//! Provided: `ThreadPool`, `ThreadPoolBuilder`, `current_num_threads`, and
//! in [`prelude`]: `into_par_iter()` on `Range<usize>` and `Vec<T>`,
//! `par_iter_mut`, `par_chunks`, `par_chunks_mut`, and the adaptors
//! `map`, `zip`, `enumerate`, `with_min_len`, `for_each`, `reduce`,
//! `collect`.

mod iter;
mod pool;

pub use pool::{current_num_threads, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder};

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}
