//! Offline stand-in for the subset of `rayon` this workspace uses.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! a small data-parallel engine with rayon's names: indexed parallel
//! iterators over ranges, vectors and slice chunks, executed on a
//! **persistent worker pool** ([`registry`]) — workers spawned once
//! (lazily; a global default pool plus per-[`ThreadPool`] pools), parked
//! between rounds, dealt chunks from per-worker segments by atomic-index
//! claims with back-half work stealing. Semantics match rayon for the
//! combinators provided here — every index is visited exactly once, items
//! are produced in index order within a split, `collect`/`map` preserve
//! ordering, and `reduce` combines parts in range order (associativity,
//! not commutativity, is required). Rounds of at most `min_len` items run
//! inline on the caller; panics inside parallel closures propagate to the
//! caller, as in rayon.
//!
//! The global pool width honours `PDM_THREADS`, then `RAYON_NUM_THREADS`,
//! then the hardware parallelism.
//!
//! Provided: `ThreadPool`, `ThreadPoolBuilder`, `current_num_threads`, and
//! in [`prelude`]: `into_par_iter()` on `Range<usize>` and `Vec<T>`,
//! `par_iter_mut`, `par_chunks`, `par_chunks_mut`, and the adaptors
//! `map`, `zip`, `enumerate`, `with_min_len`, `for_each`, `reduce`,
//! `collect`.

mod iter;
mod pool;
mod registry;

pub use pool::{current_num_threads, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder};

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}
