//! Offline stand-in for the subset of `criterion` this workspace uses:
//! `criterion_group!` / `criterion_main!`, `Criterion`, benchmark groups
//! with `sample_size` / `throughput`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, `black_box`.
//!
//! Measurement model: each benchmark runs a short warm-up, then
//! `sample_size` timed samples; the report prints min / median / mean
//! wall time per iteration and, when a throughput is declared,
//! elements-or-bytes per second at the median. No statistics framework,
//! no HTML reports — a table on stdout.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared work-per-iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A `group/function/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Top-level driver, one per `criterion_group!` function.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Accepted for CLI compatibility; arguments are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.default_sample_size;
        println!("\n## {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size,
            throughput: None,
        }
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name, self.default_sample_size, None, f);
        self
    }
}

/// A named group sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.sample_size, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` times the hot loop.
pub struct Bencher {
    /// Total measured time across `iters` calls, accumulated by `iter`.
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let t0 = Instant::now();
        black_box(f());
        self.elapsed += t0.elapsed();
        self.iters += 1;
    }
}

/// CI smoke mode: `PDM_BENCH_SMOKE=1` clamps every benchmark to a single
/// sample so `cargo bench` merely proves the harness runs and the
/// benchmarked code doesn't panic — numbers are meaningless there.
fn smoke_mode() -> bool {
    std::env::var_os("PDM_BENCH_SMOKE").is_some_and(|v| v != "0" && !v.is_empty())
}

fn run_bench(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let sample_size = if smoke_mode() { 1 } else { sample_size };
    // Warm-up: one untimed run.
    let mut warm = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut warm);
    if warm.iters == 0 {
        println!("{label:<48} (no iterations)");
        return;
    }
    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        samples.push(b.elapsed / b.iters.max(1) as u32);
    }
    samples.sort();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let rate = throughput.map(|t| {
        let per_sec = |units: u64| units as f64 / median.as_secs_f64();
        match t {
            Throughput::Elements(n) => format!("{:>12.3} Melem/s", per_sec(n) / 1e6),
            Throughput::Bytes(n) => format!("{:>12.3} MB/s", per_sec(n) / 1e6),
        }
    });
    println!(
        "{label:<48} min {min:>12?}  median {median:>12?}  mean {mean:>12?}{}",
        rate.map(|r| format!("  {r}")).unwrap_or_default()
    );
}

/// Mirrors `criterion_group!`: defines a function running each benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirrors `criterion_main!`: a `main` that runs every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
