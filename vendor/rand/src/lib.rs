//! Offline stand-in for the subset of `rand` this workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` methods
//! `gen_range` (half-open and inclusive integer ranges), `gen::<f64>()`,
//! `gen::<bool>()` and `gen_bool`.
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — deterministic for
//! a given seed, which is all the workspace's generators and tests rely on
//! (the real `StdRng` documents its stream as non-portable anyway).

use std::ops::{Range, RangeInclusive};

/// Core entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Sample from the "standard" distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types uniformly samplable from an integer-bounded interval.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi]` (inclusive); requires `lo <= hi`.
    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// The immediate predecessor of `hi` (for half-open ranges).
    fn pred(hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                // Debiased multiply-shift (Lemire); retry the biased zone.
                loop {
                    let x = rng.next_u64();
                    let m = (x as u128) * (span as u128);
                    let lowbits = m as u64;
                    if lowbits >= span || lowbits >= (u64::MAX - span + 1) % span {
                        return lo.wrapping_add((m >> 64) as u64 as $t);
                    }
                }
            }
            fn pred(hi: Self) -> Self { hi - 1 }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range argument to [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_inclusive(rng, self.start, T::pred(self.end))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// The standard distribution: uniform over the type's natural domain
/// (`[0, 1)` for floats).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u32 = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = r.gen_range(0..=5);
            assert!(y <= 5);
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}
