//! Quickstart: build a dictionary, match a text, read the output.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use pdm::prelude::*;

fn main() {
    // A dictionary is a set of distinct, non-empty patterns over u32
    // symbols; `symbolize` converts byte strings.
    let patterns = symbolize(&["he", "she", "his", "hers"]);

    // Any Ctx works; `par` uses the global rayon pool and also counts PRAM
    // rounds/work in ctx.cost.
    let ctx = Ctx::par();
    let matcher = StaticMatcher::build(&ctx, &patterns).expect("valid dictionary");

    let text = to_symbols("ushers and sheriffs share his shares");
    let out = matcher.match_text(&ctx, &text);

    println!("text: ushers and sheriffs share his shares");
    println!("{:>4}  {:<10} prefix-len", "pos", "longest");
    for (i, pat) in out.longest_pattern.iter().enumerate() {
        if let Some(p) = pat {
            println!(
                "{i:>4}  {:<10} {}",
                String::from_utf8_lossy(
                    &patterns[*p as usize]
                        .iter()
                        .map(|&c| c as u8)
                        .collect::<Vec<_>>()
                ),
                out.prefix_len[i]
            );
        }
    }

    let s = ctx.cost.snapshot();
    println!("\nPRAM cost: {} rounds, {} operations", s.rounds, s.work);
}
