//! Longest-prefix lookup against a wordlist — the Phase-1 (§4.1)
//! prefix-matching output used directly: at every position of a typed
//! buffer, how far does some dictionary word agree, and which word is it
//! (the retrieve-index `I_p` output)? Plus all-matches expansion (§2
//! remark) at one position.
//!
//! ```text
//! cargo run --example wordlist_autocomplete
//! ```

use pdm::core::allmatches;
use pdm::prelude::*;

fn word(s: &str) -> Vec<u32> {
    to_symbols(s)
}

fn main() {
    let words = [
        "par",
        "parallel",
        "parallelism",
        "parse",
        "parser",
        "part",
        "particle",
        "match",
        "matcher",
        "matching",
        "dict",
        "dictionary",
        "pattern",
    ];
    let dict: Vec<Vec<u32>> = words.iter().map(|w| word(w)).collect();

    let ctx = Ctx::seq();
    let matcher = StaticMatcher::build(&ctx, &dict).expect("distinct words");

    let buffer = "parallelmatchingdictx";
    let text = word(buffer);
    let out = matcher.match_text(&ctx, &text);

    println!("buffer: {buffer}\n");
    println!(
        "{:>3}  {:>10} {:<14} {:<14}",
        "pos", "prefix-len", "a word with it", "longest word"
    );
    for i in 0..text.len() {
        if out.prefix_len[i] == 0 {
            continue;
        }
        let owner = out.prefix_owner[i]
            .map(|p| words[p as usize])
            .unwrap_or("-");
        let longest = out.longest_pattern[i]
            .map(|p| words[p as usize])
            .unwrap_or("-");
        println!(
            "{i:>3}  {:>10} {owner:<14} {longest:<14}",
            out.prefix_len[i]
        );
    }

    // All complete words starting at position 0, longest first.
    let all = allmatches::enumerate_all(&ctx, &matcher, &out);
    let at0: Vec<&str> = all.at(0).iter().map(|&p| words[p as usize]).collect();
    println!("\nall dictionary words at position 0 (longest first): {at0:?}");
    assert_eq!(at0, ["parallel", "par"]);
}
