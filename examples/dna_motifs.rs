//! Dynamic motif scanning over DNA: a motif dictionary that changes while
//! scans keep running — the §6 fully dynamic matcher, plus the §4.4
//! small-alphabet matcher (|Σ| = 4 is exactly its regime).
//!
//! ```text
//! cargo run --release --example dna_motifs
//! ```

use pdm::core::smallalpha::SmallAlphaMatcher;
use pdm::prelude::*;
use pdm::textgen::{strings, Alphabet};

const BASES: [char; 4] = ['A', 'C', 'G', 'T'];

fn motif(s: &str) -> Vec<u32> {
    s.chars()
        .map(|c| BASES.iter().position(|&b| b == c).expect("ACGT only") as u32)
        .collect()
}

fn show(p: &[u32]) -> String {
    p.iter().map(|&c| BASES[c as usize]).collect()
}

fn main() {
    let ctx = Ctx::par();
    let mut r = strings::rng(7);
    let genome = strings::random_text(&mut r, Alphabet::Dna, 1 << 20);
    println!("genome: {} bases", genome.len());

    // --- Fully dynamic session (§6) -----------------------------------
    let mut dict = DynamicMatcher::new();
    let tata = dict.insert(&ctx, &motif("TATAAA")).unwrap();
    let caat = dict.insert(&ctx, &motif("CCAAT")).unwrap();
    let gc = dict.insert(&ctx, &motif("GGGCGG")).unwrap();

    let count = |d: &DynamicMatcher, tag: &str| {
        let out = d.match_text(&ctx, &genome);
        let mut per: Vec<usize> = Vec::new();
        for p in out.longest_pattern.iter().flatten() {
            let p = *p as usize;
            if per.len() <= p {
                per.resize(p + 1, 0);
            }
            per[p] += 1;
        }
        println!("{tag}: {:?} (motif id → hits)", per);
        per
    };

    println!("\nscanning with TATA-box, CAAT-box, GC-box:");
    let before = count(&dict, "  hits");
    let _ = (tata, caat, gc);

    println!("\ndeleting the GC-box, adding a poly-A and a palindrome:");
    dict.delete(&ctx, &motif("GGGCGG")).unwrap();
    dict.insert(&ctx, &motif("AAAAAAAA")).unwrap();
    dict.insert(&ctx, &motif("GAATTC")).unwrap(); // EcoRI site
    let after = count(&dict, "  hits");
    assert!(after.len() >= before.len());
    println!(
        "  dictionary now holds {} motifs across {} live symbols ({} rebuilds so far)",
        dict.pattern_count(),
        dict.symbol_count(),
        dict.rebuilds()
    );

    // --- Small-alphabet static matcher (§4.4) on the same motifs -------
    let motifs: Vec<Vec<u32>> = ["TATAAA", "CCAAT", "AAAAAAAA", "GAATTC", "TTAGGG"]
        .iter()
        .map(|s| motif(s))
        .collect();
    let sa = SmallAlphaMatcher::build(&ctx, &motifs, 4).expect("valid motifs");
    println!(
        "\n§4.4 matcher over |Σ|=4 picked collapse parameter L = {}",
        sa.l_param()
    );
    let out = sa.match_text(&ctx, &genome);
    let hits = out.longest_pattern.iter().flatten().count();
    println!("small-alphabet scan: {hits} motif hits");
    // Cross-check with the base matcher.
    let base = StaticMatcher::build(&ctx, &motifs).unwrap();
    let base_out = base.match_text(&ctx, &genome);
    assert_eq!(
        out.longest_pattern
            .iter()
            .map(|o| o.map(|p| p as usize))
            .collect::<Vec<_>>(),
        base_out
            .longest_pattern
            .iter()
            .map(|o| o.map(|p| p as usize))
            .collect::<Vec<_>>()
    );
    println!("✓ agrees with the §4 matcher");
    for (name, m) in ["TATAAA", "CCAAT", "AAAAAAAA", "GAATTC", "TTAGGG"]
        .iter()
        .zip(&motifs)
    {
        let c = out
            .longest_pattern
            .iter()
            .zip(out.longest_pattern_len.iter())
            .filter(|(p, l)| p.is_some() && **l == m.len() as u32)
            .filter(|(p, _)| motifs[p.unwrap() as usize] == *m)
            .count();
        println!("  {name:<9} ({}) longest-hit at {c} sites", show(m));
    }
}
