//! Tail-style log matching with `StreamMatcher`: follow a growing file,
//! feed each newly appended slice as a chunk, and report every dictionary
//! hit with its **absolute byte offset** in the log — including hits that
//! straddle two reads, which the `m − 1` carry catches exactly once.
//!
//! ```text
//! cargo run --example log_stream                     # self-contained demo
//! cargo run --example log_stream -- app.log err.txt  # tail a real log
//! ```
//!
//! With no arguments the example writes its own temporary log from a
//! background thread (deliberately splitting a pattern across two writes)
//! and tails it for a couple of seconds. With `<log> <dict>` arguments it
//! tails `<log>` against the patterns in `<dict>` until killed.

use std::io::{Read, Seek, SeekFrom};
use std::sync::Arc;
use std::time::Duration;

use pdm::prelude::*;

fn tail(
    path: &std::path::Path,
    matcher: Arc<StaticMatcher>,
    pats: &[Vec<Sym>],
    rounds: Option<usize>,
) -> std::io::Result<()> {
    let ctx = Ctx::seq();
    let mut sm = StreamMatcher::new(matcher);
    let mut f = std::fs::File::open(path)?;
    let mut pos = 0u64;
    let mut buf = Vec::new();
    let mut round = 0usize;
    loop {
        let len = f.metadata()?.len();
        if len > pos {
            f.seek(SeekFrom::Start(pos))?;
            buf.clear();
            f.by_ref().take(len - pos).read_to_end(&mut buf)?;
            pos = len;
            let syms: Vec<Sym> = buf.iter().map(|&b| b as Sym).collect();
            for occ in sm.push(&ctx, &syms) {
                let text: String = pats[occ.pat as usize]
                    .iter()
                    .map(|&c| char::from(c as u8))
                    .collect();
                println!("offset {:>8}  pattern #{} {:?}", occ.start, occ.pat, text);
            }
        }
        round += 1;
        if let Some(r) = rounds {
            if round >= r {
                return Ok(());
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ctx = Ctx::seq();

    if let [log, dict] = args.as_slice() {
        let pats = pdm::cli::load_dictionary(dict)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        let matcher = Arc::new(StaticMatcher::build(&ctx, &pats).expect("build dictionary"));
        println!("tailing {log} for {} patterns (^C to stop)", pats.len());
        return tail(std::path::Path::new(log), matcher, &pats, None);
    }

    // Self-contained demo: a writer thread appends log lines, splitting
    // "timeout" across two writes to show the boundary carry at work.
    let pats = symbolize(&["ERROR", "timeout", "disk full"]);
    let matcher = Arc::new(StaticMatcher::build(&ctx, &pats).expect("build dictionary"));
    let dir = std::env::temp_dir().join(format!("pdm-log-stream-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("demo.log");
    std::fs::write(&path, b"")?;

    let writer_path = path.clone();
    let writer = std::thread::spawn(move || {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&writer_path)
            .unwrap();
        let half = |f: &mut std::fs::File, s: &str| {
            f.write_all(s.as_bytes()).unwrap();
            f.flush().unwrap();
            std::thread::sleep(Duration::from_millis(120));
        };
        half(&mut f, "boot ok\nERROR: request timed out after retry\n");
        // The next pattern is split mid-write: "time" ... "out".
        half(&mut f, "worker 3: connect time");
        half(&mut f, "out on shard 9\n");
        half(&mut f, "disk fu");
        half(&mut f, "ll on /var\nshutdown\n");
    });

    println!("demo log: {}", path.display());
    tail(&path, matcher, &pats, Some(30))?;
    writer.join().expect("writer thread");
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
