//! Intrusion-detection-style signature scanning: a dictionary of byte
//! signatures matched against a synthetic traffic stream, with the static
//! shrink-and-spawn matcher checked against (and timed next to) a
//! from-scratch Aho–Corasick.
//!
//! ```text
//! cargo run --release --example network_ids
//! ```

use pdm::baselines::AhoCorasick;
use pdm::prelude::*;
use pdm::textgen::{strings, Alphabet};
use std::time::Instant;

fn main() {
    let mut r = strings::rng(2024);

    // "Signatures": 256 byte patterns of 4..48 bytes, some nested/overlapping.
    let mut signatures = strings::random_dictionary(&mut r, Alphabet::Bytes, 240, 4, 48);
    signatures.extend(strings::nested_dictionary(&mut r, Alphabet::Bytes, 16));
    let m_total: usize = signatures.iter().map(Vec::len).sum();

    // "Traffic": 4 MiB of noise with 2000 planted signature hits.
    let n = 4 << 20;
    let mut traffic = strings::random_text(&mut r, Alphabet::Bytes, n);
    let planted = strings::plant_occurrences(&mut r, &mut traffic, &signatures, 2000);

    println!("signatures: {} (M = {m_total} bytes)", signatures.len());
    println!("traffic:    {n} bytes, {} planted hits", planted.len());

    let ctx = Ctx::par();
    let t0 = Instant::now();
    let matcher = StaticMatcher::build(&ctx, &signatures).expect("distinct signatures");
    println!(
        "\npreprocess (shrink-and-spawn): {:.1} ms",
        t0.elapsed().as_secs_f64() * 1e3
    );

    let t0 = Instant::now();
    let out = matcher.match_text(&ctx, &traffic);
    let ours_ms = t0.elapsed().as_secs_f64() * 1e3;
    let hits = out.occurrences();
    println!(
        "scan: {:.1} ms — {} positions with a signature hit",
        ours_ms,
        hits.len()
    );

    // Cross-check against Aho–Corasick.
    let t0 = Instant::now();
    let ac = AhoCorasick::new(&signatures);
    let ac_build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let ac_out = ac.longest_match_per_position(&traffic);
    let ac_ms = t0.elapsed().as_secs_f64() * 1e3;
    let ac_hits = ac_out.iter().filter(|p| p.is_some()).count();
    println!("aho-corasick: build {ac_build_ms:.1} ms, scan {ac_ms:.1} ms — {ac_hits} hits");

    assert_eq!(hits.len(), ac_hits, "matchers must agree");
    for (i, p) in hits.iter().take(hits.len()) {
        assert_eq!(ac_out[*i], Some(*p as usize), "disagreement at {i}");
    }
    println!("\n✓ outputs identical; longest hit per position:");
    for (i, p) in hits.iter().take(5) {
        println!(
            "  offset {:>8}: signature #{p} ({} bytes)",
            i,
            signatures[*p as usize].len()
        );
    }
    let s = ctx.cost.snapshot();
    println!(
        "\nPRAM cost of this session: {} rounds, {} ops",
        s.rounds, s.work
    );
}
