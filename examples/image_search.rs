//! 2-D template dictionary over a synthetic "image": find, at every pixel,
//! the largest template whose square matches there (§5), and locate one
//! specific template with the optimal-work §7 tensor matcher.
//!
//! ```text
//! cargo run --release --example image_search
//! ```

use pdm::core::dict2d::{Dict2DMatcher, Grid2};
use pdm::core::multidim::{match_tensor, Tensor};
use pdm::pram::Ctx;
use pdm::textgen::{grid, strings, Alphabet};

fn main() {
    let ctx = Ctx::par();
    let mut r = strings::rng(99);

    // A 512×512 "image" with 16 grey levels.
    let mut image = grid::random_grid(&mut r, Alphabet::Wide(16), 512, 512);

    // Template dictionary: 12 square crops (4..24 px), re-stamped around the
    // image so every template occurs somewhere.
    let crops = grid::excerpt_square_dictionary(&mut r, &image, 12, 4, 24);
    let sites = grid::plant_squares(&mut r, &mut image, &crops, 30);
    println!(
        "image 512×512, {} templates (sides {:?}), {} stamped sites",
        crops.len(),
        crops.iter().map(|c| c.rows).collect::<Vec<_>>(),
        sites.len()
    );

    let templates: Vec<Grid2> = crops
        .iter()
        .map(|c| Grid2::new(c.rows, c.cols, c.data.clone()))
        .collect();
    let text = Grid2::new(image.rows, image.cols, image.data.clone());

    let matcher = Dict2DMatcher::build(&ctx, &templates).expect("distinct templates");
    let out = matcher.match_grid(&ctx, &text);

    let mut per = vec![0usize; templates.len()];
    for p in out.largest_pattern.iter().flatten() {
        per[*p as usize] += 1;
    }
    println!("\nlargest-template hits per template:");
    for (i, c) in per.iter().enumerate() {
        println!(
            "  template {i:>2} ({:>2}×{:<2}): {c} pixels",
            templates[i].rows, templates[i].cols
        );
    }
    let covered = out.largest_pattern.iter().flatten().count();
    println!("pixels with some template match: {covered}");

    // Verify every stamped site still intact is found.
    let mut verified = 0;
    for &(r0, c0, pid) in &sites {
        let t = &templates[pid];
        let intact =
            (0..t.rows).all(|i| (0..t.cols).all(|j| text.at(r0 + i, c0 + j) == t.at(i, j)));
        if intact {
            let got = out.at(r0, c0).expect("stamped site must match");
            // A larger template may win; the reported side can only be ≥.
            assert!(
                out.largest_pattern_side[r0 * text.cols + c0] as usize >= t.rows,
                "site ({r0},{c0})"
            );
            let _ = got;
            verified += 1;
        }
    }
    println!("✓ verified {verified} intact stamped sites are reported");

    // Single-template search with the §7 optimal-work tensor matcher.
    let needle = &templates[0];
    let hits = match_tensor(
        &ctx,
        &Tensor::new(vec![text.rows, text.cols], text.data.clone()),
        &Tensor::new(vec![needle.rows, needle.cols], needle.data.clone()),
    );
    let found: Vec<usize> = hits
        .iter()
        .enumerate()
        .filter(|(_, &b)| b)
        .map(|(i, _)| i)
        .collect();
    println!(
        "\n§7 tensor search for template 0 ({}×{}): {} occurrence(s), first at {:?}",
        needle.rows,
        needle.cols,
        found.len(),
        found.first().map(|&i| (i / text.cols, i % text.cols))
    );
    let s = ctx.cost.snapshot();
    println!(
        "\nPRAM cost of this session: {} rounds, {} ops",
        s.rounds, s.work
    );
}
