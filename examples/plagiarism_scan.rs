//! Plagiarism-style overlap detection: index n-gram shingles of a source
//! corpus as a dictionary, then scan a suspect document for copied spans —
//! using the *all-matches* output (§2 remark) so overlapping shingles chain
//! into contiguous regions. Runs on Markov ("English-like") text where long
//! accidental overlaps actually occur, unlike uniform noise.
//!
//! ```text
//! cargo run --release --example plagiarism_scan
//! ```

use pdm::core::allmatches;
use pdm::prelude::*;
use pdm::textgen::{markov, strings};

const SHINGLE: usize = 12;

fn main() {
    let mut r = strings::rng(4242);

    // "Source corpus": 64 KiB of English-like symbols.
    let corpus = markov::english_like(&mut r, 64 << 10);

    // "Suspect document": fresh text with three spans lifted verbatim.
    let mut doc = markov::english_like(&mut r, 8 << 10);
    let lifts = [(500usize, 300usize), (3000, 150), (6000, 700)];
    for &(at, len) in &lifts {
        doc[at..at + len].copy_from_slice(&corpus[10_000 + at..10_000 + at + len]);
    }

    // Dictionary: every distinct SHINGLE-gram of the corpus.
    let mut seen = std::collections::HashSet::new();
    let mut shingles: Vec<Vec<u32>> = Vec::new();
    for w in corpus.windows(SHINGLE) {
        if seen.insert(w) {
            shingles.push(w.to_vec());
        }
    }
    println!(
        "corpus {} symbols → {} distinct {SHINGLE}-gram shingles",
        corpus.len(),
        shingles.len()
    );

    let ctx = Ctx::par();
    let t0 = std::time::Instant::now();
    let matcher = StaticMatcher::build(&ctx, &shingles).expect("distinct shingles");
    println!("index build: {:.0} ms", t0.elapsed().as_secs_f64() * 1e3);

    let t0 = std::time::Instant::now();
    let out = matcher.match_text(&ctx, &doc);
    let all = allmatches::enumerate_all(&ctx, &matcher, &out);
    println!(
        "scan {} symbols: {:.0} ms, {} shingle occurrences",
        doc.len(),
        t0.elapsed().as_secs_f64() * 1e3,
        all.total()
    );

    // Chain hit positions into maximal copied regions.
    let hit: Vec<bool> = (0..doc.len()).map(|i| !all.at(i).is_empty()).collect();
    let mut regions: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < doc.len() {
        if hit[i] {
            let start = i;
            while i < doc.len() && hit[i] {
                i += 1;
            }
            let span = i - start + SHINGLE - 1;
            if span >= 2 * SHINGLE {
                regions.push((start, span));
            }
        } else {
            i += 1;
        }
    }
    println!("\ncopied regions (≥ {} symbols):", 2 * SHINGLE);
    for (start, span) in &regions {
        println!("  doc[{start}..{}] — {span} symbols", start + span);
    }
    // Every planted lift must be covered by some detected region.
    for &(at, len) in &lifts {
        assert!(
            regions
                .iter()
                .any(|&(s, sp)| s <= at && at + len <= s + sp + SHINGLE),
            "lift at {at} (len {len}) not detected"
        );
    }
    println!("\n✓ all {} planted lifts detected", lifts.len());
}
