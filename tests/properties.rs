//! Property-based tests (proptest) for the core invariants of the paper's
//! machinery: naming injectivity, prefix-name identification, the
//! match-preserving property of shrink-and-spawn, and matcher-vs-oracle
//! equivalence on arbitrary inputs.

use pdm::baselines::naive;
use pdm::naming::kmr::aligned_block_names;
use pdm::naming::prefix::prefix_names;
use pdm::naming::{NamePool, NameTable};
use pdm::prelude::*;
use proptest::collection::vec;
use proptest::prelude::*;

fn tables(levels: usize) -> (NameTable, Vec<NameTable>, NameTable) {
    let pool = NamePool::dictionary();
    let sym = NameTable::with_capacity(1 << 12, pool.clone());
    let pair = (0..levels)
        .map(|_| NameTable::with_capacity(1 << 14, pool.clone()))
        .collect();
    let fold = NameTable::with_capacity(1 << 14, pool.clone());
    (sym, pair, fold)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Naming (paper §3.1): names are equal iff strings are equal — over
    /// every pair of prefixes of every pair of generated strings.
    #[test]
    fn prefix_names_identify_content(
        strs in vec(vec(0u32..4, 1..40), 1..6)
    ) {
        let (sym, pair, fold) = tables(6);
        let prefs: Vec<Vec<u32>> = strs.iter().map(|s| {
            let b = aligned_block_names(s, 6, &sym, &pair);
            prefix_names(&b, s.len(), &fold)
        }).collect();
        for (i, a) in strs.iter().enumerate() {
            for (j, b) in strs.iter().enumerate() {
                for la in 1..=a.len() {
                    for lb in 1..=b.len() {
                        let equal_content = a[..la] == b[..lb];
                        let equal_names = prefs[i][la-1] == prefs[j][lb-1];
                        prop_assert_eq!(equal_content, equal_names,
                            "strings {} and {}, prefixes {} and {}", i, j, la, lb);
                    }
                }
            }
        }
    }

    /// Shrink-and-spawn is match-preserving (paper §3.1): occurrences of V
    /// in U at offset r correspond exactly to occurrences of the shrunk V
    /// in the r-mod-l spawned copy of U.
    #[test]
    fn shrink_and_spawn_preserves_matches(
        u in vec(0u32..3, 4..80),
        v_len in 2usize..10,
        l in 2usize..4,
        seed in 0u32..100,
    ) {
        // Derive V from U half the time so matches actually occur.
        let v: Vec<u32> = if seed % 2 == 0 && u.len() > v_len {
            let at = (seed as usize * 7) % (u.len() - v_len);
            u[at..at+v_len].to_vec()
        } else {
            (0..v_len).map(|i| (seed + i as u32) % 3).collect()
        };
        prop_assume!(v.len() >= l);
        let pool = NamePool::dictionary();
        let t = NameTable::with_capacity(1 << 12, pool);
        // Name every length-l block of both strings with one function δ.
        let name_block = |s: &[u32], at: usize| t.name_tuple(&s[at..at+l]);
        // Shrunk V: non-overlapping blocks (residue ignored per the paper).
        let vb = v.len() / l;
        let v_shrunk: Vec<u32> = (0..vb).map(|b| name_block(&v, b*l)).collect();
        // Spawned copies of U: copy r holds names at r, r+l, r+2l, ...
        let spawn = |r: usize| -> Vec<u32> {
            let mut c = Vec::new();
            let mut i = r;
            while i + l <= u.len() { c.push(name_block(&u, i)); i += l; }
            c
        };
        // Check: V's first vb·l symbols match U at position p  ⇔  the
        // shrunk V matches copy (p mod l) at index p/l.
        for p in 0..u.len() {
            let direct = p + vb*l <= u.len() && u[p..p+vb*l] == v[..vb*l];
            let copy = spawn(p % l);
            let idx = p / l;
            let reduced = idx + v_shrunk.len() <= copy.len()
                && copy[idx..idx+v_shrunk.len()] == v_shrunk[..];
            prop_assert_eq!(direct, reduced, "position {}", p);
        }
    }

    /// The static matcher equals the brute-force oracle on arbitrary
    /// dictionaries and texts (the headline correctness property).
    #[test]
    fn static_matcher_equals_oracle(
        pats in vec(vec(0u32..3, 1..12), 1..8),
        text in vec(0u32..3, 0..120),
    ) {
        // Deduplicate (the dictionary must be a set).
        let mut uniq = pats;
        uniq.sort();
        uniq.dedup();
        let ctx = Ctx::seq();
        let m = StaticMatcher::build(&ctx, &uniq).unwrap();
        let out = m.match_text(&ctx, &text);
        let want = naive::longest_pattern_per_position(&uniq, &text);
        let got: Vec<Option<usize>> = out.longest_pattern.iter()
            .map(|o| o.map(|p| p as usize)).collect();
        prop_assert_eq!(got, want);
        // Phase 1 also equals its oracle.
        let want_pref = naive::longest_prefix_per_position(&uniq, &text);
        let got_pref: Vec<usize> = out.prefix_len.iter().map(|&l| l as usize).collect();
        prop_assert_eq!(got_pref, want_pref);
    }

    /// Dynamic insert/delete sequences preserve oracle equality at every
    /// prefix of the trace.
    #[test]
    fn dynamic_trace_equals_oracle(
        ops in vec((vec(0u32..2, 1..8), any::<bool>()), 1..20),
        text in vec(0u32..2, 0..60),
    ) {
        let ctx = Ctx::seq();
        let mut d = DynamicMatcher::new();
        let mut live: Vec<(PatId, Vec<u32>)> = Vec::new();
        for (pat, is_insert) in ops {
            if is_insert {
                if let Ok(id) = d.insert(&ctx, &pat) {
                    live.push((id, pat)); // Err = duplicate — fine
                }
            } else if let Some(pos) = live.iter().position(|(_, p)| *p == pat) {
                let (id, p) = live.remove(pos);
                prop_assert_eq!(d.delete(&ctx, &p), Ok(id));
            }
            let got = d.match_text(&ctx, &text);
            for i in 0..text.len() {
                let want = live.iter()
                    .filter(|(_, p)| i + p.len() <= text.len() && text[i..i+p.len()] == p[..])
                    .max_by_key(|(_, p)| p.len())
                    .map(|(id, _)| *id);
                prop_assert_eq!(got.longest_pattern[i], want, "pos {}", i);
            }
        }
    }

    /// Theorem 11 matcher equals the oracle on arbitrary equal-length
    /// dictionaries (exercising every residue class and recursion depth).
    #[test]
    fn equal_len_matcher_equals_oracle(
        m in 1usize..20,
        kappa in 1usize..5,
        text in vec(0u32..3, 0..100),
        seed in any::<u64>(),
    ) {
        // Derive patterns from a seeded generator (distinct, equal length).
        let mut r = pdm::textgen::strings::rng(seed);
        use rand::Rng;
        let mut pats: Vec<Vec<u32>> = Vec::new();
        let mut guard = 0;
        while pats.len() < kappa && guard < 200 {
            guard += 1;
            let p: Vec<u32> = (0..m).map(|_| r.gen_range(0..3u32)).collect();
            if !pats.contains(&p) {
                pats.push(p);
            }
        }
        let matcher = pdm::core::equal_len::EqualLenMatcher::new(&pats).unwrap();
        let ctx = Ctx::seq();
        let got: Vec<Option<usize>> = matcher
            .match_text(&ctx, &text)
            .into_iter()
            .map(|o| o.map(|p| p as usize))
            .collect();
        let want = naive::longest_pattern_per_position(&pats, &text);
        prop_assert_eq!(got, want);
    }

    /// The §4.4 matcher equals the §4 matcher for every valid L.
    #[test]
    fn smallalpha_equals_base_for_all_l(
        pats in vec(vec(0u32..2, 1..10), 1..5),
        text in vec(0u32..2, 0..80),
        l in 1usize..6,
    ) {
        let mut uniq = pats;
        uniq.sort();
        uniq.dedup();
        let ctx = Ctx::seq();
        let base = StaticMatcher::build(&ctx, &uniq).unwrap();
        let want = base.match_text(&ctx, &text).longest_pattern;
        let sa = pdm::core::smallalpha::SmallAlphaMatcher::build_with_l(&ctx, &uniq, 2, l).unwrap();
        let got = sa.match_text(&ctx, &text).longest_pattern;
        prop_assert_eq!(got, want);
    }

    /// 2-D matcher equals the naive oracle on arbitrary small grids.
    #[test]
    fn dict2d_equals_oracle(
        t_rows in 1usize..12,
        t_cols in 1usize..12,
        sides in vec(1usize..5, 1..4),
        seed in any::<u64>(),
    ) {
        use pdm::core::dict2d::{Dict2DMatcher, Grid2};
        let mut r = pdm::textgen::strings::rng(seed);
        use rand::Rng;
        let text = Grid2::from_fn(t_rows, t_cols, |_, _| r.gen_range(0..2u32));
        let mut pats: Vec<Grid2> = Vec::new();
        for s in sides {
            let g = Grid2::from_fn(s, s, |_, _| r.gen_range(0..2u32));
            if !pats.iter().any(|p| p.data == g.data) {
                pats.push(g);
            }
        }
        let ctx = Ctx::seq();
        let m = Dict2DMatcher::build(&ctx, &pats).unwrap();
        let got: Vec<Option<usize>> = m
            .match_grid(&ctx, &text)
            .largest_pattern
            .into_iter()
            .map(|o| o.map(|p| p as usize))
            .collect();
        let n_pats: Vec<naive::Grid> = pats
            .iter()
            .map(|g| naive::Grid::new(g.rows, g.cols, g.data.clone()))
            .collect();
        let n_text = naive::Grid::new(text.rows, text.cols, text.data.clone());
        let want = naive::largest_square_pattern_per_cell(&n_pats, &n_text);
        prop_assert_eq!(got, want);
    }

    /// Output structural invariants that hold for any input.
    #[test]
    fn match_output_invariants(
        pats in vec(vec(0u32..5, 1..10), 1..6),
        text in vec(0u32..5, 0..80),
    ) {
        let mut uniq = pats;
        uniq.sort();
        uniq.dedup();
        let ctx = Ctx::seq();
        let m = StaticMatcher::build(&ctx, &uniq).unwrap();
        let out = m.match_text(&ctx, &text);
        for i in 0..text.len() {
            // The matched prefix really matches.
            let pl = out.prefix_len[i] as usize;
            prop_assert!(i + pl <= text.len());
            if pl > 0 {
                let owner = out.prefix_owner[i].expect("owner for matched prefix") as usize;
                prop_assert!(uniq[owner].len() >= pl);
                prop_assert_eq!(&uniq[owner][..pl], &text[i..i+pl]);
            }
            // Longest pattern is consistent with the prefix.
            if let Some(p) = out.longest_pattern[i] {
                let plen = out.longest_pattern_len[i] as usize;
                prop_assert_eq!(uniq[p as usize].len(), plen);
                prop_assert!(plen <= pl);
                prop_assert_eq!(&uniq[p as usize][..], &text[i..i+plen]);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Serialized indexes round-trip to behaviourally identical matchers.
    #[test]
    fn index_serialization_roundtrip(
        pats in vec(vec(0u32..4, 1..10), 1..6),
        text in vec(0u32..4, 0..60),
    ) {
        let mut uniq = pats;
        uniq.sort();
        uniq.dedup();
        let ctx = Ctx::seq();
        let m = StaticMatcher::build(&ctx, &uniq).unwrap();
        let loaded = StaticMatcher::from_bytes(&m.to_bytes()).unwrap();
        prop_assert_eq!(m.match_text(&ctx, &text), loaded.match_text(&ctx, &text));
    }

    /// Chunked matching equals whole-text matching for any chunk size.
    #[test]
    fn chunked_equals_whole(
        pats in vec(vec(0u32..3, 1..8), 1..5),
        text in vec(0u32..3, 0..90),
        chunk in 1usize..100,
    ) {
        let mut uniq = pats;
        uniq.sort();
        uniq.dedup();
        let ctx = Ctx::seq();
        let m = StaticMatcher::build(&ctx, &uniq).unwrap();
        prop_assert_eq!(
            m.match_text_chunked(&ctx, &text, chunk),
            m.match_text(&ctx, &text)
        );
    }
}
