//! Stress and scale tests. The medium ones run in the default suite; the
//! heavyweight ones are `#[ignore]`d and run with `cargo test -- --ignored`
//! (used before releases and for memory regressions).

use pdm::baselines::AhoCorasick;
use pdm::prelude::*;
use pdm::textgen::{markov, strings, Alphabet};

#[test]
fn medium_scale_static_matches_ac() {
    let mut r = strings::rng(77);
    let mut text = strings::random_text(&mut r, Alphabet::Bytes, 200_000);
    let pats = strings::excerpt_dictionary(&mut r, &text, 200, 2, 300);
    strings::plant_occurrences(&mut r, &mut text, &pats, 500);
    let ctx = Ctx::par();
    let m = StaticMatcher::build(&ctx, &pats).unwrap();
    let out = m.match_text(&ctx, &text);
    let ac = AhoCorasick::new(&pats);
    let want = ac.longest_match_per_position(&text);
    let got: Vec<Option<usize>> = out
        .longest_pattern
        .iter()
        .map(|o| o.map(|p| p as usize))
        .collect();
    assert_eq!(got, want);
}

#[test]
fn markov_text_deep_prefix_matches() {
    // Markov text creates much longer accidental prefix matches than
    // uniform text; the matcher must stay correct under that stress.
    let mut r = strings::rng(5);
    let text = markov::english_like(&mut r, 50_000);
    let pats = strings::excerpt_dictionary(&mut r, &text, 100, 4, 200);
    let ctx = Ctx::par();
    let m = StaticMatcher::build(&ctx, &pats).unwrap();
    let out = m.match_text(&ctx, &text);
    let ac = AhoCorasick::new(&pats);
    let want_prefix = ac.longest_prefix_per_position(&text);
    let got_prefix: Vec<usize> = out.prefix_len.iter().map(|&l| l as usize).collect();
    assert_eq!(got_prefix, want_prefix);
    // Sanity: the workload really is "deep" — some long prefix matches.
    assert!(
        out.prefix_len.iter().any(|&l| l >= 50),
        "expected deep matches on Markov text (max {})",
        out.prefix_len.iter().max().unwrap()
    );
}

#[test]
fn dynamic_thousand_op_trace() {
    use rand::Rng;
    let ctx = Ctx::seq();
    let mut r = strings::rng(11);
    let base = strings::random_text(&mut r, Alphabet::Dna, 5000);
    let mut d = DynamicMatcher::new();
    let mut live: Vec<Vec<u32>> = Vec::new();
    for _ in 0..1000 {
        match r.gen_range(0..3) {
            0 | 1 => {
                let len = r.gen_range(1..=40);
                let at = r.gen_range(0..=base.len() - len);
                let p = base[at..at + len].to_vec();
                if d.insert(&ctx, &p).is_ok() {
                    live.push(p);
                }
            }
            _ => {
                if !live.is_empty() {
                    let k = r.gen_range(0..live.len());
                    let p = live.swap_remove(k);
                    d.delete(&ctx, &p).unwrap();
                }
            }
        }
    }
    // Final state must equal a fresh static matcher over the live set.
    if !live.is_empty() {
        let st = StaticMatcher::build(&ctx, &live).unwrap();
        let probe = &base[..2000];
        let a = d.match_text(&ctx, probe);
        let b = st.match_text(&ctx, probe);
        assert_eq!(a.prefix_len, b.prefix_len);
        // Compare by content (ids differ across the two matchers).
        for i in 0..probe.len() {
            let da = a.longest_pattern[i].map(|_p| {
                let l = a.longest_pattern_len[i] as usize;
                probe[i..i + l].to_vec()
            });
            let db = b.longest_pattern[i].map(|p| live[p as usize].clone());
            assert_eq!(da, db, "position {i}");
        }
    }
}

#[test]
#[ignore = "heavy: ~1 GiB-scale text; run with --ignored"]
fn huge_text_static_match() {
    let mut r = strings::rng(1);
    let mut text = strings::random_text(&mut r, Alphabet::Bytes, 16 << 20);
    let pats = strings::excerpt_dictionary(&mut r, &text, 1000, 8, 1024);
    strings::plant_occurrences(&mut r, &mut text, &pats, 5000);
    let ctx = Ctx::par();
    let m = StaticMatcher::build(&ctx, &pats).unwrap();
    let out = m.match_text(&ctx, &text);
    let ac = AhoCorasick::new(&pats);
    let want = ac.longest_match_per_position(&text);
    let got: Vec<Option<usize>> = out
        .longest_pattern
        .iter()
        .map(|o| o.map(|p| p as usize))
        .collect();
    assert_eq!(got, want);
}

#[test]
#[ignore = "heavy: long equal-length recursion at m = 65536"]
fn very_long_equal_length_patterns() {
    let mut r = strings::rng(2);
    let m = 1 << 16;
    let mut text = strings::random_text(&mut r, Alphabet::Dna, 1 << 20);
    let pats = strings::excerpt_dictionary(&mut r, &text, 4, m, m);
    strings::plant_occurrences(&mut r, &mut text, &pats, 8);
    let matcher = EqualLenMatcher::new(&pats).unwrap();
    let ctx = Ctx::par();
    let got = matcher.match_text(&ctx, &text);
    // Verify against direct comparison at the hit positions only.
    for (i, hit) in got.iter().enumerate() {
        if let Some(p) = hit {
            assert_eq!(&text[i..i + m], pats[*p as usize].as_slice());
        }
    }
    assert!(got.iter().flatten().count() >= 4, "plants must be found");
}
