//! Crash-point enumeration over the storage plane.
//!
//! Requires `--features fault-injection`. The suite runs a fixed store
//! workload (appends, commits, compactions with snapshot sidecar writes)
//! once fault-free to (a) count every mutating disk operation it issues
//! and (b) record a per-epoch oracle of `find_all` output. It then
//! replays the workload once per operation index with a crash-stop
//! installed at that op — modelling a power cut at every possible
//! instant — reopens whatever is left on disk, and asserts:
//!
//! * the store opens and boots (recovery never wedges);
//! * its committed epoch is one the fault-free run passed through, and
//!   never regresses as the crash point moves later;
//! * `find_all` over the boot snapshot is byte-identical to the oracle
//!   for that epoch;
//! * `pdm fsck` finds nothing unrepairable, and after `--repair` the
//!   store is clean.
//!
//! Fault plans are process-global, so every test serializes on one
//! mutex; this file is its own test binary and nothing else links the
//! hooks in.

#![cfg(feature = "fault-injection")]

use pdm_core::dict::to_symbols;
use pdm_core::{PatId, Sym};
use pdm_dict::fsck::fsck_store;
use pdm_dict::DictStore;
use pdm_pram::Ctx;
use pdm_primitives::vfs::{self, faults};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

static PLANE: Mutex<()> = Mutex::new(());

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("pdm-chaos-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// The probe text every oracle comparison matches against.
fn probe_text() -> Vec<Sym> {
    to_symbols("usherssheherhishershe and hers again")
}

/// The fixed workload: three epochs of staged updates, two compactions
/// (log rewrite + snapshot sidecar), and an uncommitted staged tail.
/// Stops at the first error — under a crash-stop plan that models the
/// process dying at that disk op.
fn workload(path: &Path, ctx: &Ctx) -> Result<(), Box<dyn std::error::Error>> {
    let mut store = DictStore::open(path)?;
    for p in ["he", "she", "his"] {
        store.stage_add(&to_symbols(p))?;
    }
    store.commit(ctx)?; // epoch 1
    store.compact(ctx)?; // rewrite + .snap sidecar
    store.stage_add(&to_symbols("hers"))?;
    store.stage_remove(&to_symbols("his"))?;
    store.commit(ctx)?; // epoch 2
    store.stage_add(&to_symbols("usher"))?;
    store.commit(ctx)?; // epoch 3
    store.compact(ctx)?;
    store.stage_add(&to_symbols("handshake"))?; // staged, never committed
    Ok(())
}

/// `find_all` output of the committed dictionary at each epoch the
/// fault-free workload passes through (epoch 0 = empty store).
fn build_oracle(ctx: &Ctx) -> Vec<Vec<(usize, PatId)>> {
    let dir = tmp_dir("oracle");
    let path = dir.join("dict.pdml");
    let text = probe_text();
    let mut oracle = vec![Vec::new()]; // epoch 0: nothing committed
    {
        let mut store = DictStore::open(&path).unwrap();
        for p in ["he", "she", "his"] {
            store.stage_add(&to_symbols(p)).unwrap();
        }
        oracle.push(store.commit(ctx).unwrap().snapshot.find_all(ctx, &text));
        store.compact(ctx).unwrap();
        store.stage_add(&to_symbols("hers")).unwrap();
        store.stage_remove(&to_symbols("his")).unwrap();
        oracle.push(store.commit(ctx).unwrap().snapshot.find_all(ctx, &text));
        store.stage_add(&to_symbols("usher")).unwrap();
        oracle.push(store.commit(ctx).unwrap().snapshot.find_all(ctx, &text));
        store.compact(ctx).unwrap();
    }
    std::fs::remove_dir_all(&dir).ok();
    oracle
}

/// Total mutating disk ops the fault-free workload issues — the number
/// of distinct crash points the sweep enumerates.
fn count_ops(ctx: &Ctx) -> u64 {
    let dir = tmp_dir("count");
    let path = dir.join("dict.pdml");
    faults::install(faults::DiskFaultPlan::default()); // count only
    workload(&path, ctx).expect("no faults scheduled");
    let ops = faults::counts().ops;
    faults::clear();
    std::fs::remove_dir_all(&dir).ok();
    ops
}

/// Crash the workload at mutating op `at` (tearing `torn_bytes` of the
/// dying write), then recover and check every invariant. Returns the
/// committed epoch the store reopened at.
fn crash_and_recover(ctx: &Ctx, oracle: &[Vec<(usize, PatId)>], at: u64, torn_bytes: u64) -> u64 {
    let dir = tmp_dir(&format!("sweep-{at}-{torn_bytes}"));
    let path = dir.join("dict.pdml");
    faults::install(faults::DiskFaultPlan {
        crash_at_op: at,
        crash_torn_bytes: torn_bytes,
        ..Default::default()
    });
    let crashed = workload(&path, ctx).is_err();
    assert!(
        faults::counts().crashed && crashed,
        "crash point {at} never fired"
    );
    faults::clear();

    // fsck must be able to repair whatever the crash left behind…
    let report = fsck_store(&path, true).unwrap_or_else(|e| panic!("fsck at crash {at}: {e}"));
    assert!(
        report.bootable,
        "crash {at} left an unbootable store: {:?}",
        report.findings
    );
    // …and a second pass must come back with nothing actionable (exit 0).
    let clean = fsck_store(&path, false).unwrap();
    assert_eq!(
        clean.unrepaired(),
        0,
        "crash {at}: unrepaired findings after repair: {:?}",
        clean.findings
    );

    // The store boots and serves exactly the oracle for its epoch.
    let mut store =
        DictStore::open(&path).unwrap_or_else(|e| panic!("reopen after crash {at}: {e}"));
    let epoch = store.epoch();
    assert!(
        (epoch as usize) < oracle.len(),
        "crash {at} booted to unknown epoch {epoch}"
    );
    let boot = store.boot_snapshot(ctx).unwrap();
    assert_eq!(boot.snapshot.epoch(), epoch);
    assert_eq!(
        boot.snapshot.find_all(ctx, &probe_text()),
        oracle[epoch as usize],
        "crash {at}: find_all diverged from the never-crashed oracle at epoch {epoch}"
    );
    std::fs::remove_dir_all(&dir).ok();
    epoch
}

#[test]
fn workload_has_enough_injection_sites() {
    let _g = PLANE.lock().unwrap();
    let ctx = Ctx::seq();
    let ops = count_ops(&ctx);
    eprintln!("workload issues {ops} mutating disk ops (crash points)");
    assert!(
        ops >= 30,
        "workload issues only {ops} mutating ops; the sweep needs ≥ 30 crash points"
    );
}

#[test]
fn crash_sweep_every_op_recovers_to_oracle() {
    let _g = PLANE.lock().unwrap();
    let ctx = Ctx::seq();
    let oracle = build_oracle(&ctx);
    let total = count_ops(&ctx);
    let mut last_epoch = 0u64;
    for at in 1..=total {
        let epoch = crash_and_recover(&ctx, &oracle, at, 0);
        assert!(
            epoch >= last_epoch,
            "committed epoch regressed ({last_epoch} -> {epoch}) as the crash moved to op {at}"
        );
        last_epoch = epoch;
    }
    assert_eq!(
        last_epoch,
        (oracle.len() - 1) as u64,
        "a crash at the very last op should preserve every commit"
    );
}

#[test]
fn crash_sweep_with_torn_writes_recovers_to_oracle() {
    let _g = PLANE.lock().unwrap();
    let ctx = Ctx::seq();
    let oracle = build_oracle(&ctx);
    let total = count_ops(&ctx);
    // Same sweep, but the dying write lands a 3-byte prefix: every torn
    // tail the log or a sidecar can be left with.
    for at in 1..=total {
        crash_and_recover(&ctx, &oracle, at, 3);
    }
}

#[test]
fn scheduled_write_failures_surface_and_do_not_corrupt() {
    let _g = PLANE.lock().unwrap();
    let ctx = Ctx::seq();
    let oracle = build_oracle(&ctx);
    let dir = tmp_dir("flaky");
    let path = dir.join("dict.pdml");
    // A single failed write (no crash-stop): the op errors, the store
    // object is discarded, and on-disk state still boots consistently.
    faults::install(faults::DiskFaultPlan {
        fail_write_every: 7,
        fail_write_max: 1,
        ..Default::default()
    });
    let _ = workload(&path, &ctx);
    faults::clear();
    let mut store = DictStore::open(&path).unwrap();
    let epoch = store.epoch() as usize;
    assert!(epoch < oracle.len());
    let boot = store.boot_snapshot(&ctx).unwrap();
    assert_eq!(boot.snapshot.find_all(&ctx, &probe_text()), oracle[epoch]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pdmx_write_crash_sweep_never_tears_the_sidecar() {
    let _g = PLANE.lock().unwrap();
    let ctx = Ctx::seq();
    let dir = tmp_dir("pdmx");
    let path = dir.join("c.pdmx");
    let old = pdm_index::CorpusIndex::build_from_bytes(&ctx, b"abracadabra");
    let new = pdm_index::CorpusIndex::build_from_bytes(&ctx, b"mississippi bananas");
    old.write_to(&path).unwrap();

    // `write_to` is one atomic_write: create + write + sync + rename +
    // syncdir. Crash at each of the five ops (and one past the end).
    for at in 1..=6u64 {
        faults::install(faults::DiskFaultPlan {
            crash_at_op: at,
            crash_torn_bytes: 11,
            ..Default::default()
        });
        let r = new.write_to(&path);
        faults::clear();
        let loaded = pdm_index::CorpusIndex::read_from(&path)
            .unwrap_or_else(|e| panic!("sidecar unreadable after crash at op {at}: {e}"));
        if r.is_ok() {
            assert_eq!(loaded, new, "write reported success at crash {at}");
        } else {
            assert!(
                loaded == old || loaded == new,
                "crash at op {at} left a third state"
            );
            // The failed replacement may strand a temp file; fsck's
            // sweep (exercised via the dict-side tests and the smoke
            // script) removes it — here just clean up for the next lap.
            std::fs::remove_file(vfs::tmp_path(&path)).ok();
        }
        old.write_to(&path).unwrap(); // reset for the next crash point
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn short_reads_never_serve_truncated_data() {
    let _g = PLANE.lock().unwrap();
    let ctx = Ctx::seq();
    let dir = tmp_dir("shortread");
    let path = dir.join("c.pdmx");
    let idx = pdm_index::CorpusIndex::build_from_bytes(&ctx, b"abracadabra");
    idx.write_to(&path).unwrap();
    // Every read comes back truncated to 64 bytes: the CRC'd formats
    // must reject the prefix, never decode it.
    faults::install(faults::DiskFaultPlan {
        short_read_every: 1,
        short_read_bytes: 64,
        ..Default::default()
    });
    let err = pdm_index::CorpusIndex::read_from(&path);
    faults::clear();
    assert!(err.is_err(), "a truncated PDMX read must not decode");
    assert_eq!(pdm_index::CorpusIndex::read_from(&path).unwrap(), idx);
    std::fs::remove_dir_all(&dir).ok();
}
