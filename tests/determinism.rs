//! Width invariance: the same matcher must produce identical output under
//! sequential execution and under the work-stealing pool at any width.
//! Stealing makes chunk assignment nondeterministic, so this is exactly
//! the property that catches a racy round (overlapping claims, part-order
//! mixups in `reduce`, …) — every PRAM round is independent writes, so the
//! schedule must never show through.

use pdm::prelude::*;
use proptest::collection::vec;
use proptest::prelude::*;

/// Widths 1 / 2 / max (plus 4 to exercise stealing even when max is small).
fn widths() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut w = vec![1, 2, 4];
    if !w.contains(&max) {
        w.push(max);
    }
    w
}

/// Drop duplicate patterns (builders require a set; first occurrence wins
/// so pattern ids agree across every context).
fn dedup(patterns: Vec<Vec<Sym>>) -> Vec<Vec<Sym>> {
    let mut seen = std::collections::HashSet::new();
    patterns
        .into_iter()
        .filter(|p| seen.insert(p.clone()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn static_matcher_output_is_width_invariant(
        pats in vec(vec(0u32..4, 1..24), 1..8),
        text in vec(0u32..4, 0..4000),
    ) {
        let pats = dedup(pats);
        // One build, shared across widths: isolates the execution
        // substrate (name *values* may differ between separate builds).
        let m = StaticMatcher::build(&Ctx::seq(), &pats).unwrap();
        let want = m.match_text(&Ctx::seq(), &text);
        for w in widths() {
            let ctx = Ctx::with_threads(w);
            let got = m.match_text(&ctx, &text);
            prop_assert_eq!(&got.longest_pattern, &want.longest_pattern, "width {}", w);
            prop_assert_eq!(&got.longest_pattern_len, &want.longest_pattern_len, "width {}", w);
            prop_assert_eq!(&got.prefix_len, &want.prefix_len, "width {}", w);
            prop_assert_eq!(&got.prefix_owner, &want.prefix_owner, "width {}", w);
        }
    }

    #[test]
    fn equal_len_matcher_output_is_width_invariant(
        pats in vec(vec(0u32..3, 7..8), 1..6),
        text in vec(0u32..3, 0..4000),
    ) {
        let pats = dedup(pats);
        let m = EqualLenMatcher::new(&pats).unwrap();
        let want = m.match_text(&Ctx::seq(), &text);
        for w in widths() {
            let got = m.match_text(&Ctx::with_threads(w), &text);
            prop_assert_eq!(&got, &want, "width {}", w);
        }
    }

    #[test]
    fn facade_matchers_are_width_invariant(
        pats in vec(vec(0u32..4, 1..16), 1..6),
        text in vec(0u32..4, 0..2000),
    ) {
        let pats = dedup(pats);
        let m = MatcherBuilder::new()
            .patterns(pats)
            .build(&Ctx::seq())
            .unwrap();
        let want = m.match_text(&Ctx::seq(), &text);
        for w in widths() {
            let got = m.match_text(&Ctx::with_threads(w), &text);
            prop_assert_eq!(&got.longest_pattern, &want.longest_pattern, "width {}", w);
            prop_assert_eq!(&got.longest_pattern_len, &want.longest_pattern_len, "width {}", w);
        }
    }
}
