//! Regression: parallel matching must reuse the persistent worker pool,
//! never spawn per-round threads. The seed's executor spawned a fresh
//! scoped thread set for every `Ctx::for_each`/`map` round, so a single
//! `match_text` call (dozens of rounds) cost dozens of thread creations;
//! the registry parks its workers between rounds instead. We prove it by
//! watching the process's OS-thread set across many matching rounds.

#![cfg(target_os = "linux")]

use pdm::prelude::*;
use std::collections::BTreeSet;

/// `Threads:` line of /proc/self/status.
fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .expect("read /proc/self/status")
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("Threads: line")
        .trim()
        .parse()
        .expect("thread count")
}

/// The live TID set — catches spawn+exit churn that a stable count hides.
fn tids() -> BTreeSet<u64> {
    std::fs::read_dir("/proc/self/task")
        .expect("read /proc/self/task")
        .map(|e| {
            e.expect("task entry")
                .file_name()
                .to_string_lossy()
                .parse()
                .expect("tid")
        })
        .collect()
}

/// One test (not several) so no sibling test's lazily-spawned pool can
/// perturb the measured thread set mid-loop.
#[test]
fn repeated_matching_rounds_spawn_no_new_threads() {
    let text: Vec<Sym> = (0..200_000).map(|i| (i % 3) as Sym).collect();
    let pats = symbolize(&["abab", "baba", "aabb", "bbaa"]);
    let pats: Vec<Vec<Sym>> = pats
        .iter()
        .map(|p| p.iter().map(|&c| c % 3).collect())
        .collect();

    // Dedicated pool: the first round spawns its workers, after which the
    // thread set must be frozen.
    let ctx = Ctx::with_threads(4);
    let m = StaticMatcher::build(&ctx, &pats).unwrap();
    let warm = m.match_text(&ctx, &text);
    let before_count = thread_count();
    let before_tids = tids();
    for _ in 0..50 {
        let out = m.match_text(&ctx, &text);
        assert_eq!(out.longest_pattern, warm.longest_pattern);
    }
    assert_eq!(
        thread_count(),
        before_count,
        "dedicated pool grew across rounds"
    );
    assert_eq!(
        tids(),
        before_tids,
        "per-round threads were spawned (TID churn)"
    );

    // Global pool (Ctx::par): same contract.
    let gctx = Ctx::par();
    let _ = m.match_text(&gctx, &text); // spawns the global workers once
    let before_count = thread_count();
    let before_tids = tids();
    for _ in 0..20 {
        let _ = m.match_text(&gctx, &text);
    }
    assert_eq!(thread_count(), before_count, "global pool grew");
    assert_eq!(tids(), before_tids, "global pool TID churn");
}
