//! Cross-matcher integration tests: every matcher in the workspace must
//! agree with every other (and with the baselines) wherever their problem
//! statements overlap.

use pdm::baselines::{naive, AhoCorasick};
use pdm::core::equal_len::EqualLenMatcher;
use pdm::core::smallalpha::SmallAlphaMatcher;
use pdm::prelude::*;
use pdm::textgen::{strings, Alphabet};

fn as_usize(v: &[Option<PatId>]) -> Vec<Option<usize>> {
    v.iter().map(|o| o.map(|p| p as usize)).collect()
}

/// One workload, five matchers, one answer.
#[test]
fn all_matchers_agree_on_equal_length_workload() {
    let ctx = Ctx::seq();
    for seed in 0..10 {
        let mut r = strings::rng(seed);
        let mut text = strings::random_text(&mut r, Alphabet::Dna, 600);
        let m = 12;
        let pats = strings::excerpt_dictionary(&mut r, &text, 6, m, m);
        strings::plant_occurrences(&mut r, &mut text, &pats, 12);

        let want = naive::longest_pattern_per_position(&pats, &text);

        let st = StaticMatcher::build(&ctx, &pats).unwrap();
        assert_eq!(
            as_usize(&st.match_text(&ctx, &text).longest_pattern),
            want,
            "static s{seed}"
        );

        let eq = EqualLenMatcher::new(&pats).unwrap();
        assert_eq!(
            as_usize(&eq.match_text(&ctx, &text)),
            want,
            "equal_len s{seed}"
        );

        let sa = SmallAlphaMatcher::build_with_l(&ctx, &pats, 4, 3).unwrap();
        assert_eq!(
            as_usize(&sa.match_text(&ctx, &text).longest_pattern),
            want,
            "smallalpha s{seed}"
        );

        let dy = DynamicMatcher::with_dictionary(&ctx, &pats).unwrap();
        assert_eq!(
            as_usize(&dy.match_text(&ctx, &text).longest_pattern),
            want,
            "dynamic s{seed}"
        );

        let ac = AhoCorasick::new(&pats);
        assert_eq!(ac.longest_match_per_position(&text), want, "ac s{seed}");
    }
}

#[test]
fn static_and_dynamic_agree_on_mixed_lengths() {
    let ctx = Ctx::seq();
    for seed in 20..28 {
        let mut r = strings::rng(seed);
        let mut text = strings::random_text(&mut r, Alphabet::Letters, 800);
        let pats = strings::excerpt_dictionary(&mut r, &text, 20, 1, 50);
        strings::plant_occurrences(&mut r, &mut text, &pats, 25);

        let st = StaticMatcher::build(&ctx, &pats).unwrap();
        let dy = DynamicMatcher::with_dictionary(&ctx, &pats).unwrap();
        let a = st.match_text(&ctx, &text);
        let b = dy.match_text(&ctx, &text);
        assert_eq!(a.longest_pattern, b.longest_pattern, "s{seed}");
        assert_eq!(a.prefix_len, b.prefix_len, "s{seed} prefix lens");
    }
}

#[test]
fn dynamic_after_churn_equals_static_of_live_set() {
    // Insert everything, delete a subset (triggering rebuilds), and compare
    // against a fresh static matcher over exactly the live patterns.
    let ctx = Ctx::seq();
    let mut r = strings::rng(77);
    let mut text = strings::random_text(&mut r, Alphabet::Dna, 700);
    let pats = strings::excerpt_dictionary(&mut r, &text, 24, 2, 30);
    strings::plant_occurrences(&mut r, &mut text, &pats, 20);

    let mut dy = DynamicMatcher::new();
    for p in &pats {
        dy.insert(&ctx, p).unwrap();
    }
    // Delete every other pattern.
    let mut live: Vec<Vec<u32>> = Vec::new();
    for (i, p) in pats.iter().enumerate() {
        if i % 2 == 0 {
            dy.delete(&ctx, p).unwrap();
        } else {
            live.push(p.clone());
        }
    }
    let st = StaticMatcher::build(&ctx, &live).unwrap();
    let a = dy.match_text(&ctx, &text);
    let b = st.match_text(&ctx, &text);
    // Ids differ (dynamic keeps original ids), so compare by pattern content.
    for i in 0..text.len() {
        let da = a.longest_pattern[i].map(|p| pats[p as usize].clone());
        let db = b.longest_pattern[i].map(|p| live[p as usize].clone());
        assert_eq!(da, db, "position {i}");
        assert_eq!(a.prefix_len[i], b.prefix_len[i], "prefix len at {i}");
    }
}

#[test]
fn small_alpha_matches_static_across_l_values() {
    let ctx = Ctx::seq();
    let mut r = strings::rng(5);
    let mut text = strings::random_text(&mut r, Alphabet::Binary, 500);
    let pats = strings::excerpt_dictionary(&mut r, &text, 10, 1, 24);
    strings::plant_occurrences(&mut r, &mut text, &pats, 15);
    let st = StaticMatcher::build(&ctx, &pats).unwrap();
    let want = as_usize(&st.match_text(&ctx, &text).longest_pattern);
    for l in 1..=6 {
        let sa = SmallAlphaMatcher::build_with_l(&ctx, &pats, 2, l).unwrap();
        let got = as_usize(&sa.match_text(&ctx, &text).longest_pattern);
        assert_eq!(got, want, "L={l}");
    }
}

#[test]
fn parallel_and_sequential_outputs_identical_everywhere() {
    let mut r = strings::rng(31);
    let mut text = strings::random_text(&mut r, Alphabet::Letters, 4000);
    let pats = strings::excerpt_dictionary(&mut r, &text, 30, 2, 64);
    strings::plant_occurrences(&mut r, &mut text, &pats, 50);

    let seq = Ctx::seq();
    let par = Ctx::par();
    let st = StaticMatcher::build(&seq, &pats).unwrap();
    assert_eq!(
        st.match_text(&seq, &text).longest_pattern,
        st.match_text(&par, &text).longest_pattern
    );
    // Matchers built under different policies also agree.
    let st_par = StaticMatcher::build(&par, &pats).unwrap();
    assert_eq!(
        st.match_text(&seq, &text).longest_pattern,
        st_par.match_text(&par, &text).longest_pattern
    );
}
