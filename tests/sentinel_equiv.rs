//! Sentinel-naming and frozen-table equivalence (DESIGN.md §11).
//!
//! The text hot path replaces per-position text-local name allocation with
//! the single `TEXT_MISS` sentinel and probes frozen (atomics-free)
//! snapshots of the dictionary tables. Both transformations must be
//! invisible in the output: this suite checks the fast paths against the
//! retained text-local reference paths (and the naive oracle) across every
//! matcher family and at PRAM widths 1, 2, and 4, plus the zero-alloc
//! steady-state guarantee for streaming sessions.

use std::sync::Arc;

use pdm::baselines::naive;
use pdm::core::equal_len::EqualLenMatcher;
use pdm::core::smallalpha::SmallAlphaMatcher;
use pdm::core::static1d::{match_text_ref, ConcView};
use pdm::naming::{FrozenNameTable, NamePool, NameTable};
use pdm::prelude::*;
use pdm::textgen::{strings, Alphabet};
use proptest::collection::vec;
use proptest::prelude::*;

/// The widths the issue calls out: sequential, and pools of 2 and 4.
fn ctxs() -> Vec<Ctx> {
    vec![Ctx::seq(), Ctx::with_threads(2), Ctx::with_threads(4)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A frozen snapshot answers every lookup exactly like the concurrent
    /// table it was taken from — present pairs, absent pairs, and
    /// left-chained tuple folds alike.
    #[test]
    fn frozen_table_equals_concurrent_table(
        pairs in vec((0u32..50, 0u32..50), 0..120),
        probes in vec((0u32..60, 0u32..60), 0..60),
        tuple in vec(0u32..60, 0..6),
    ) {
        let pool = NamePool::dictionary();
        let live = NameTable::with_capacity(512, pool);
        for &(a, b) in &pairs {
            live.name(a, b);
        }
        let frozen: FrozenNameTable = live.freeze();
        for &(a, b) in pairs.iter().chain(probes.iter()) {
            prop_assert_eq!(live.lookup(a, b), frozen.lookup(a, b), "({}, {})", a, b);
        }
        prop_assert_eq!(live.lookup_tuple(&tuple), frozen.lookup_tuple(&tuple));
    }

    /// Static matcher: the sentinel text-naming fast path equals the
    /// text-local reference descent — both over the frozen read tables and
    /// over the original concurrent tables (`ConcView`) — at every width.
    #[test]
    fn static_sentinel_equals_text_local(seed in 0u64..24) {
        let mut r = strings::rng(seed);
        let mut text = strings::random_text(&mut r, Alphabet::Letters, 400);
        let pats = strings::excerpt_dictionary(&mut r, &text, 10, 1, 24);
        strings::plant_occurrences(&mut r, &mut text, &pats, 10);

        let build_ctx = Ctx::seq();
        let st = StaticMatcher::build(&build_ctx, &pats).unwrap();
        for ctx in ctxs() {
            let fast = st.match_text(&ctx, &text);
            let frozen_ref = match_text_ref(&ctx, st.tables(), &text);
            let conc_ref = match_text_ref(&ctx, &ConcView(st.tables()), &text);
            prop_assert_eq!(&fast, &frozen_ref, "frozen ref, width {}", ctx.exec.threads());
            prop_assert_eq!(&fast, &conc_ref, "conc ref, width {}", ctx.exec.threads());
        }
    }

    /// Equal-length matcher: the per-level freeze boundary (pattern inserts
    /// precede text probes) is output-invisible at every width.
    #[test]
    fn equal_len_frozen_equals_live(seed in 0u64..16, m in 2usize..20) {
        let mut r = strings::rng(1000 + seed);
        let mut text = strings::random_text(&mut r, Alphabet::Dna, 300);
        let pats = strings::excerpt_dictionary(&mut r, &text, 6, m, m);
        strings::plant_occurrences(&mut r, &mut text, &pats, 8);

        let eq = EqualLenMatcher::new(&pats).unwrap();
        let texts = vec![text];
        for ctx in ctxs() {
            prop_assert_eq!(
                eq.match_texts(&ctx, &texts),
                eq.match_texts_ref(&ctx, &texts),
                "width {}", ctx.exec.threads()
            );
        }
    }

    /// Small-alphabet matcher (and its binary-encoded wrapper, which
    /// delegates to it): the frozen block-tuple probe equals the live one,
    /// and both agree with the oracle, at every width.
    #[test]
    fn smallalpha_frozen_equals_live(seed in 0u64..16) {
        let mut r = strings::rng(2000 + seed);
        let mut text = strings::random_text(&mut r, Alphabet::Dna, 400);
        let pats = strings::excerpt_dictionary(&mut r, &text, 8, 9, 9);
        strings::plant_occurrences(&mut r, &mut text, &pats, 10);
        let want = naive::longest_pattern_per_position(&pats, &text);

        let sa = SmallAlphaMatcher::build_with_l(&Ctx::seq(), &pats, 4, 3).unwrap();
        for ctx in ctxs() {
            let fast = sa.match_text(&ctx, &text);
            let live = sa.match_text_ref(&ctx, &text);
            prop_assert_eq!(&fast.longest_pattern, &live.longest_pattern,
                "width {}", ctx.exec.threads());
            let got: Vec<Option<usize>> = fast
                .longest_pattern
                .iter()
                .map(|o| o.map(|p| p as usize))
                .collect();
            prop_assert_eq!(&got, &want, "oracle, width {}", ctx.exec.threads());
        }
    }

    /// Dynamic matcher still matches through the concurrent tables; its
    /// answers must agree with the static text-local reference, so the
    /// sentinel rewrite cannot have drifted either side.
    #[test]
    fn dynamic_agrees_with_static_reference(seed in 0u64..12) {
        let mut r = strings::rng(3000 + seed);
        let mut text = strings::random_text(&mut r, Alphabet::Letters, 300);
        let pats = strings::excerpt_dictionary(&mut r, &text, 8, 2, 20);
        strings::plant_occurrences(&mut r, &mut text, &pats, 8);

        let st = StaticMatcher::build(&Ctx::seq(), &pats).unwrap();
        let dy = DynamicMatcher::with_dictionary(&Ctx::seq(), &pats).unwrap();
        for ctx in ctxs() {
            let dyn_out = dy.match_text(&ctx, &text);
            let ref_out = match_text_ref(&ctx, st.tables(), &text);
            prop_assert_eq!(&dyn_out.longest_pattern, &ref_out.longest_pattern,
                "width {}", ctx.exec.threads());
        }
    }
}

#[test]
fn binary_encoded_frozen_path_matches_oracle() {
    let ctx = Ctx::seq();
    let mut r = strings::rng(42);
    let mut text = strings::random_text(&mut r, Alphabet::Letters, 500);
    let pats = strings::excerpt_dictionary(&mut r, &text, 8, 12, 12);
    strings::plant_occurrences(&mut r, &mut text, &pats, 12);
    let want = naive::longest_pattern_per_position(&pats, &text);

    let m = BinaryEncodedMatcher::build(&ctx, &pats, 26).unwrap();
    for ctx in ctxs() {
        let got: Vec<Option<usize>> = m
            .match_text(&ctx, &text)
            .longest_pattern
            .iter()
            .map(|o| o.map(|p| p as usize))
            .collect();
        assert_eq!(got, want, "width {}", ctx.exec.threads());
    }
}

/// The tentpole's steady-state guarantee: once a streaming session is warm
/// (its scratch has grown to the working-set size), further same-sized
/// pushes perform **zero** heap allocation in the match path — observed
/// through the scratch grow counter and the matcher's alloc-event counter.
#[test]
fn streaming_steady_state_allocates_nothing() {
    let ctx = Ctx::seq();
    let mut r = strings::rng(7);
    let mut text = strings::random_text(&mut r, Alphabet::Letters, 16 << 10);
    let pats = strings::excerpt_dictionary(&mut r, &text, 16, 2, 32);
    strings::plant_occurrences(&mut r, &mut text, &pats, 400);

    let m = Arc::new(StaticMatcher::build(&ctx, &pats).unwrap());
    let mut s = StreamMatcher::new(Arc::clone(&m));

    const CHUNK: usize = 1 << 10;
    let chunks: Vec<&[Sym]> = text.chunks(CHUNK).collect();

    // Warm-up: the first pushes must grow the scratch (it starts empty).
    let mut total = 0usize;
    for c in &chunks[..4] {
        total += s.push(&ctx, c).len();
    }
    assert!(s.scratch_grow_events() > 0, "warm-up must grow the scratch");

    // Steady state: counters freeze while matches keep flowing.
    let grows = s.scratch_grow_events();
    let allocs = m.stats().alloc_events;
    for c in &chunks[4..14] {
        total += s.push(&ctx, c).len();
    }
    assert!(total > 0, "workload must actually produce matches");
    assert_eq!(
        s.scratch_grow_events(),
        grows,
        "steady-state pushes must not grow session scratch"
    );
    assert_eq!(
        m.stats().alloc_events,
        allocs,
        "steady-state pushes must not allocate in the matcher"
    );
}

/// Same guarantee through the versioned-dictionary serving path: a
/// [`pdm_dict::Snapshot`]-backed stream session reuses its scratch too.
#[test]
fn snapshot_streaming_steady_state_allocates_nothing() {
    let ctx = Ctx::seq();
    let mut r = strings::rng(11);
    let mut text = strings::random_text(&mut r, Alphabet::Dna, 8 << 10);
    let pats = strings::excerpt_dictionary(&mut r, &text, 10, 2, 24);
    strings::plant_occurrences(&mut r, &mut text, &pats, 200);

    let snap = Arc::new(pdm_dict::Snapshot::build_static(&ctx, 0, pats).unwrap());
    let mut s: StreamMatcher<pdm_dict::Snapshot> = StreamMatcher::new(snap);

    const CHUNK: usize = 512;
    let chunks: Vec<&[Sym]> = text.chunks(CHUNK).collect();
    let mut total = 0usize;
    for c in &chunks[..4] {
        total += s.push(&ctx, c).len();
    }
    let grows = s.scratch_grow_events();
    for c in &chunks[4..12] {
        total += s.push(&ctx, c).len();
    }
    assert!(total > 0);
    assert_eq!(
        s.scratch_grow_events(),
        grows,
        "snapshot-backed steady state must not grow session scratch"
    );
}
