//! End-to-end `pdm serve` protocol test: bind an ephemeral port, speak the
//! length-prefixed protocol over a real TCP socket, and verify a match
//! whose occurrence spans a chunk boundary comes back exactly once with
//! its absolute stream offset.

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Arc;

use pdm::prelude::*;
use pdm::stream::proto::{
    decode_match, decode_summary, read_frame, write_frame, TAG_CHUNK, TAG_CLOSE, TAG_MATCH,
    TAG_SUMMARY,
};
use pdm::stream::{Server, ServerConfig, ServiceConfig, StreamMatch};

fn start_server() -> Server {
    let ctx = Ctx::seq();
    let dict =
        Arc::new(StaticMatcher::build(&ctx, &symbolize(&["he", "she", "his", "hers"])).unwrap());
    Server::bind(
        ("127.0.0.1", 0),
        dict,
        ServerConfig {
            service: ServiceConfig {
                workers: 2,
                queue_cap: 4,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("bind ephemeral port")
}

fn roundtrip(chunks: &[&[u8]]) -> (Vec<StreamMatch>, pdm::stream::SessionSummary) {
    let server = start_server();
    let sock = TcpStream::connect(server.local_addr()).expect("connect");
    let mut w = BufWriter::new(sock.try_clone().unwrap());
    for c in chunks {
        write_frame(&mut w, TAG_CHUNK, c).unwrap();
    }
    write_frame(&mut w, TAG_CLOSE, b"").unwrap();
    w.flush().unwrap();

    let mut r = BufReader::new(sock);
    let mut matches = Vec::new();
    let summary = loop {
        match read_frame(&mut r).expect("read frame") {
            Some((TAG_MATCH, p)) => matches.push(decode_match(&p).expect("match payload")),
            Some((TAG_SUMMARY, p)) => break decode_summary(&p).expect("summary payload"),
            Some((tag, p)) => panic!("unexpected frame {tag:#x} ({} bytes)", p.len()),
            None => panic!("EOF before summary"),
        }
    };
    server.shutdown();
    (matches, summary)
}

#[test]
fn boundary_spanning_match_arrives_once() {
    // "ush" + "ers": "she" occupies 1..4, "hers" 2..6 — both span the
    // chunk boundary at offset 3; "he" (2..4) also crosses it.
    let (mut matches, summary) = roundtrip(&[b"ush", b"ers"]);
    matches.sort_unstable();
    let got: Vec<(u64, u32)> = matches.iter().map(|m| (m.start, m.len)).collect();
    assert_eq!(got, vec![(1, 3), (2, 2), (2, 4)]); // she@1, he@2, hers@2
    assert_eq!(summary.consumed, 6);
    assert_eq!(summary.chunks, 2);
    assert_eq!(summary.matches, 3);
}

#[test]
fn single_byte_chunks_and_absolute_offsets() {
    let text = b"xxushersxx";
    let chunks: Vec<&[u8]> = text.chunks(1).collect();
    let (mut matches, summary) = roundtrip(&chunks);
    matches.sort_unstable();
    let starts: Vec<u64> = matches.iter().map(|m| m.start).collect();
    assert_eq!(starts, vec![3, 4, 4]); // she@3, he@4, hers@4
    assert_eq!(summary.consumed, text.len() as u64);
    assert_eq!(summary.chunks, text.len() as u64);
}

#[test]
fn concurrent_connections_share_one_dictionary() {
    let server = start_server();
    let addr = server.local_addr();
    let handles: Vec<_> = (0..4)
        .map(|k| {
            std::thread::spawn(move || {
                let sock = TcpStream::connect(addr).unwrap();
                let mut w = BufWriter::new(sock.try_clone().unwrap());
                // Connection k sends k+1 copies of "ushers", split mid-"she".
                for _ in 0..=k {
                    write_frame(&mut w, TAG_CHUNK, b"ush").unwrap();
                    write_frame(&mut w, TAG_CHUNK, b"ers").unwrap();
                }
                write_frame(&mut w, TAG_CLOSE, b"").unwrap();
                w.flush().unwrap();
                let mut r = BufReader::new(sock);
                let mut n_matches = 0u64;
                loop {
                    match read_frame(&mut r).unwrap() {
                        Some((TAG_MATCH, _)) => n_matches += 1,
                        Some((TAG_SUMMARY, p)) => {
                            let s = decode_summary(&p).unwrap();
                            assert_eq!(s.matches, n_matches);
                            return (k, n_matches);
                        }
                        other => panic!("unexpected frame {other:?}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        let (k, n) = h.join().unwrap();
        assert_eq!(n, 3 * (k as u64 + 1), "connection {k}");
    }
    let g = server.metrics();
    assert_eq!(g.sessions_opened, 4);
    assert_eq!(g.sessions_closed, 4);
    server.shutdown();
}
