//! End-to-end pipeline tests: textgen workloads through matchers through
//! output expansion, plus the 2-D pipeline — the paths a downstream user
//! would actually run.

use pdm::baselines::naive;
use pdm::core::allmatches;
use pdm::core::dict2d::{Dict2DMatcher, Grid2};
use pdm::core::multidim::{match_tensor_multi, Tensor};
use pdm::prelude::*;
use pdm::textgen::workload::{DictShape, WorkloadSpec};
use pdm::textgen::{grid, strings, Alphabet};

#[test]
fn workload_spec_to_match_to_allmatches() {
    for shape in [
        DictShape::Random,
        DictShape::Excerpt,
        DictShape::SharedPrefix,
    ] {
        let mut spec = WorkloadSpec::new(1, 2000, 12, 16);
        spec.shape = shape;
        let (text, pats) = spec.generate();
        let ctx = Ctx::par();
        let m = StaticMatcher::build(&ctx, &pats).unwrap();
        let out = m.match_text(&ctx, &text);
        let all = allmatches::enumerate_all(&ctx, &m, &out);
        // Expansion must contain exactly the naive occurrence multiset.
        let occ = naive::find_all(&pats, &text);
        assert_eq!(all.total(), occ.len(), "{shape:?}");
        for i in 0..text.len() {
            let got: Vec<usize> = all.at(i).iter().map(|&p| p as usize).collect();
            let mut want: Vec<usize> = occ.iter().filter(|o| o.start == i).map(|o| o.pat).collect();
            want.sort_by_key(|&p| std::cmp::Reverse(pats[p].len()));
            assert_eq!(got, want, "{shape:?} at {i}");
        }
    }
}

#[test]
fn excerpt_workloads_always_have_hits() {
    let mut spec = WorkloadSpec::new(9, 5000, 20, 24);
    spec.shape = DictShape::Excerpt;
    let (text, pats) = spec.generate();
    let ctx = Ctx::seq();
    let m = StaticMatcher::build(&ctx, &pats).unwrap();
    let out = m.match_text(&ctx, &text);
    assert!(
        out.longest_pattern.iter().flatten().count() >= pats.len(),
        "every excerpt pattern occurs at least once"
    );
}

#[test]
fn two_d_pipeline_matches_naive() {
    let mut r = strings::rng(3);
    let mut tg = grid::random_grid(&mut r, Alphabet::Letters, 40, 40);
    let pats = grid::excerpt_square_dictionary(&mut r, &tg, 6, 2, 9);
    grid::plant_squares(&mut r, &mut tg, &pats, 8);
    let g_pats: Vec<Grid2> = pats
        .iter()
        .map(|g| Grid2::new(g.rows, g.cols, g.data.clone()))
        .collect();
    let text = Grid2::new(tg.rows, tg.cols, tg.data.clone());
    let ctx = Ctx::par();
    let m = Dict2DMatcher::build(&ctx, &g_pats).unwrap();
    let out = m.match_grid(&ctx, &text);
    let n_pats: Vec<naive::Grid> = pats
        .iter()
        .map(|g| naive::Grid::new(g.rows, g.cols, g.data.clone()))
        .collect();
    let n_text = naive::Grid::new(tg.rows, tg.cols, tg.data.clone());
    let want = naive::largest_square_pattern_per_cell(&n_pats, &n_text);
    let got: Vec<Option<usize>> = out
        .largest_pattern
        .iter()
        .map(|o| o.map(|p| p as usize))
        .collect();
    assert_eq!(got, want);
}

#[test]
fn tensor_multi_pattern_equal_shapes() {
    // 2-D multi-pattern via §7 reduction agrees with the naive oracle.
    let mut r = strings::rng(11);
    let tg = grid::random_grid(&mut r, Alphabet::Dna, 30, 30);
    let text = Tensor::new(vec![30, 30], tg.data.clone());
    // Three 3x3 excerpts (deduplicated).
    let mut pats: Vec<Tensor> = Vec::new();
    for (r0, c0) in [(0usize, 0usize), (5, 7), (20, 11)] {
        let mut data = Vec::new();
        for i in 0..3 {
            for j in 0..3 {
                data.push(tg.at(r0 + i, c0 + j));
            }
        }
        let t = Tensor::new(vec![3, 3], data);
        if !pats.contains(&t) {
            pats.push(t);
        }
    }
    let ctx = Ctx::seq();
    let got = match_tensor_multi(&ctx, &text, &pats);
    #[allow(clippy::needless_range_loop)]
    for idx in 0..text.len() {
        let (i, j) = (idx / 30, idx % 30);
        let want = pats.iter().position(|p| {
            i + 3 <= 30
                && j + 3 <= 30
                && (0..3).all(|a| (0..3).all(|b| tg.at(i + a, j + b) == p.data[a * 3 + b]))
        });
        assert_eq!(got[idx].map(|x| x as usize), want, "({i},{j})");
    }
}

#[test]
fn cost_model_accumulates_across_pipeline() {
    let ctx = Ctx::seq();
    let (text, pats) = WorkloadSpec::new(2, 1000, 8, 8).generate();
    let before = ctx.cost.snapshot();
    let m = StaticMatcher::build(&ctx, &pats).unwrap();
    let mid = ctx.cost.snapshot();
    assert!(mid.work > before.work, "build charges work");
    let _ = m.match_text(&ctx, &text);
    let end = ctx.cost.snapshot();
    assert!(end.work > mid.work, "match charges work");
    let phases = ctx.cost.phases();
    for name in [
        "dict/blocks",
        "dict/prefix-naming",
        "text/ascent",
        "text/descent",
    ] {
        assert!(
            phases.iter().any(|p| p.name == name),
            "phase {name} recorded"
        );
    }
}
