//! Name pools and namestamping tables.
//!
//! A *name* is a `u32` identifying string content. All dictionary-side
//! tables of one matcher share one [`NamePool`], so every allocated name is
//! globally unique across tables: if a name appears anywhere, it denotes
//! exactly one string. Text processing allocates from a second pool based at
//! [`TEXT_NAME_BASE`], realizing the paper's requirement that substrings
//! appearing only in the text get "special symbols" distinct from
//! dictionary names (§3.1) — a text-local name can never be mistaken for a
//! dictionary name.

use pdm_primitives::{ConcPairTable, FrozenPairTable};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Name of the empty string (the fold identity of prefix-naming).
pub const IDENTITY: u32 = 0;

/// First name of the text-local name space.
pub const TEXT_NAME_BASE: u32 = 0x8000_0000;

/// The collapsed text-local name: every substring that occurs in the text
/// but not in the dictionary gets *this one* name on the fast path.
///
/// Dictionary tables only ever contain pairs of dictionary names, so a pair
/// with any text-local half misses the table no matter *which* text-local
/// name it carries — distinct text-local names are indistinguishable to
/// every dictionary-side lookup. Collapsing them to a single sentinel
/// therefore preserves all match output while eliminating the shared-pool
/// `fetch_add` and the text-side table insertion per novel substring
/// (argument spelled out in DESIGN.md §11; verified against the
/// text-local-overlay scheme by the `sentinel_equiv` proptests).
///
/// The value sits inside the text-local space so [`NamePool::is_text_local`]
/// holds for it, and clear of the reserved `u32::MAX` / `u32::MAX - 1`
/// sentinels used by tables and matchers.
pub const TEXT_MISS: u32 = u32::MAX - 7;

/// Monotone allocator of fresh names.
#[derive(Debug)]
pub struct NamePool {
    next: AtomicU32,
    base: u32,
    limit: u32,
}

impl NamePool {
    /// Dictionary-side pool: names `1 .. TEXT_NAME_BASE`.
    pub fn dictionary() -> Arc<Self> {
        Arc::new(Self {
            next: AtomicU32::new(1),
            base: 1,
            limit: TEXT_NAME_BASE,
        })
    }

    /// Dictionary-side pool resumed past already-allocated names (for
    /// deserialized tables, where the names come from the serialized form).
    pub fn dictionary_resumed(allocated: u32) -> Arc<Self> {
        Arc::new(Self {
            next: AtomicU32::new(1 + allocated),
            base: 1,
            limit: TEXT_NAME_BASE,
        })
    }

    /// Text-local pool: names `TEXT_NAME_BASE .. u32::MAX`.
    pub fn text_local() -> Arc<Self> {
        Arc::new(Self {
            next: AtomicU32::new(TEXT_NAME_BASE),
            base: TEXT_NAME_BASE,
            limit: u32::MAX,
        })
    }

    /// Allocate a fresh name.
    #[inline]
    pub fn fresh(&self) -> u32 {
        let n = self.next.fetch_add(1, Ordering::Relaxed);
        assert!(n < self.limit, "name pool exhausted");
        n
    }

    /// Number of names allocated so far.
    pub fn allocated(&self) -> u32 {
        self.next.load(Ordering::Relaxed) - self.base
    }

    /// Whether `name` belongs to the text-local space.
    #[inline]
    pub fn is_text_local(name: u32) -> bool {
        name >= TEXT_NAME_BASE && name != u32::MAX
    }
}

/// A namestamping table: injective `(u32, u32) → name` with names drawn from
/// a shared pool. This is the paper's Fact 1 object — constant-time
/// concurrent stamping with an arbitrary winner allocating the stamp.
#[derive(Debug)]
pub struct NameTable {
    table: ConcPairTable,
    pool: Arc<NamePool>,
}

impl NameTable {
    pub fn with_capacity(cap: usize, pool: Arc<NamePool>) -> Self {
        Self {
            table: ConcPairTable::with_capacity(cap),
            pool,
        }
    }

    /// Name of `(a, b)`, allocated on first sight. Thread-safe.
    #[inline]
    pub fn name(&self, a: u32, b: u32) -> u32 {
        self.table.get_or_insert(a, b, || self.pool.fresh())
    }

    /// Read-only lookup.
    #[inline]
    pub fn lookup(&self, a: u32, b: u32) -> Option<u32> {
        self.table.get(a, b)
    }

    /// Associate `(a, b)` with a caller-provided value instead of a fresh
    /// name — for tables whose values are *existing* names, e.g. the
    /// extension tables of §4.1 mapping `(prefix-name, block-name)` to the
    /// longer prefix's name. Concurrent writers of the same key must carry
    /// equal values (they do: the value is a function of the key's content);
    /// the first writer wins and the winner's value is returned.
    #[inline]
    pub fn insert_assoc(&self, a: u32, b: u32, v: u32) -> u32 {
        let got = self.table.get_or_insert(a, b, || v);
        debug_assert_eq!(got, v, "insert_assoc callers must agree on the value");
        got
    }

    /// Name of a short tuple, by chaining pairs left to right:
    /// `δ(((t₀,t₁),t₂),…)`. Every arity uses this same fixed shape, so equal
    /// tuples get equal names. Single-element tuples name `(t₀, IDENTITY)`
    /// to stay injective against pair names.
    pub fn name_tuple(&self, t: &[u32]) -> u32 {
        match t.len() {
            0 => IDENTITY,
            1 => self.name(t[0], IDENTITY),
            _ => {
                let mut acc = self.name(t[0], t[1]);
                for &x in &t[2..] {
                    acc = self.name(acc, x);
                }
                acc
            }
        }
    }

    /// Read-only tuple lookup with the same shape as [`Self::name_tuple`].
    pub fn lookup_tuple(&self, t: &[u32]) -> Option<u32> {
        match t.len() {
            0 => Some(IDENTITY),
            1 => self.lookup(t[0], IDENTITY),
            _ => {
                let mut acc = self.lookup(t[0], t[1])?;
                for &x in &t[2..] {
                    acc = self.lookup(acc, x)?;
                }
                Some(acc)
            }
        }
    }

    pub fn len(&self) -> usize {
        self.table.len()
    }

    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// All `(a, b, name)` entries, unordered (serialization support).
    pub fn entries(&self) -> Vec<(u32, u32, u32)> {
        self.table.entries()
    }

    /// Rebuild a table from serialized entries, preserving name values.
    pub fn from_entries(entries: &[(u32, u32, u32)], pool: Arc<NamePool>) -> Self {
        let t = Self::with_capacity(entries.len(), pool);
        for &(a, b, v) in entries {
            t.insert_assoc(a, b, v);
        }
        t
    }

    /// Freeze the current contents into a read-only, atomics-free table for
    /// the text-side fast path. The live table keeps working (builds, §6
    /// dynamic updates); the frozen copy never sees later inserts.
    pub fn freeze(&self) -> FrozenNameTable {
        FrozenNameTable {
            table: FrozenPairTable::freeze(&self.table),
        }
    }
}

/// Read-only snapshot of a [`NameTable`]: plain-array open addressing, no
/// atomics, no allocation. Text-side lookups go through this; the live
/// [`NameTable`] remains the write side.
#[derive(Debug, Clone)]
pub struct FrozenNameTable {
    table: FrozenPairTable,
}

impl FrozenNameTable {
    /// Freeze an explicit entry list (mirror of [`NameTable::from_entries`]).
    pub fn from_entries(entries: &[(u32, u32, u32)]) -> Self {
        Self {
            table: FrozenPairTable::from_entries(entries),
        }
    }

    /// Read-only lookup (mirror of [`NameTable::lookup`]).
    #[inline]
    pub fn lookup(&self, a: u32, b: u32) -> Option<u32> {
        self.table.get(a, b)
    }

    /// Read-only tuple lookup with the same left-chained shape as
    /// [`NameTable::name_tuple`].
    pub fn lookup_tuple(&self, t: &[u32]) -> Option<u32> {
        match t.len() {
            0 => Some(IDENTITY),
            1 => self.lookup(t[0], IDENTITY),
            _ => {
                let mut acc = self.lookup(t[0], t[1])?;
                for &x in &t[2..] {
                    acc = self.lookup(acc, x)?;
                }
                Some(acc)
            }
        }
    }

    pub fn len(&self) -> usize {
        self.table.len()
    }

    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The underlying frozen pair table — raw slot-array access for
    /// serializers that dump the table without rehashing.
    pub fn raw(&self) -> &FrozenPairTable {
        &self.table
    }

    /// Reassemble from a deserialized [`FrozenPairTable`] (see
    /// [`FrozenPairTable::from_raw_parts`]). Lookups are identical to the
    /// table that was serialized: probe order depends only on key and slot
    /// count, both preserved by the raw round trip.
    pub fn from_raw(table: FrozenPairTable) -> Self {
        Self { table }
    }

    /// All `(a, b, name)` entries in slot order (serialization support,
    /// mirror of [`NameTable::entries`]).
    pub fn entries(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        self.table.entries()
    }
}

/// Read-through pair of tables for text processing: dictionary layer first,
/// then a text-local layer that allocates from the text pool.
///
/// Guarantees: keys already named by the dictionary resolve to dictionary
/// names; keys the dictionary never saw resolve to consistent text-local
/// names (`≥ TEXT_NAME_BASE`), so two equal text substrings still compare
/// equal — required for the spawned text copies to match each other's
/// structure — while never colliding with any dictionary name.
#[derive(Debug)]
pub struct Overlay<'a> {
    dict: &'a NameTable,
    local: NameTable,
}

impl<'a> Overlay<'a> {
    pub fn new(dict: &'a NameTable, local_cap: usize, text_pool: Arc<NamePool>) -> Self {
        Self {
            dict,
            local: NameTable::with_capacity(local_cap, text_pool),
        }
    }

    /// Resolve `(a, b)`: dictionary name if known, else text-local name.
    #[inline]
    pub fn name(&self, a: u32, b: u32) -> u32 {
        match self.dict.lookup(a, b) {
            Some(n) => n,
            None => self.local.name(a, b),
        }
    }

    /// Entries allocated in the local layer (diagnostics/experiments).
    pub fn local_len(&self) -> usize {
        self.local.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_disjoint() {
        let d = NamePool::dictionary();
        let t = NamePool::text_local();
        let dn = d.fresh();
        let tn = t.fresh();
        assert!(dn < TEXT_NAME_BASE);
        assert!(NamePool::is_text_local(tn));
        assert!(!NamePool::is_text_local(dn));
        assert_eq!(d.allocated(), 1);
        assert_eq!(t.allocated(), 1);
    }

    #[test]
    fn identity_is_not_allocatable() {
        let d = NamePool::dictionary();
        assert_ne!(d.fresh(), IDENTITY);
    }

    #[test]
    fn table_names_consistent() {
        let pool = NamePool::dictionary();
        let t = NameTable::with_capacity(100, pool);
        let a = t.name(3, 4);
        assert_eq!(t.name(3, 4), a);
        assert_eq!(t.lookup(3, 4), Some(a));
        assert_eq!(t.lookup(4, 3), None);
        assert_ne!(t.name(4, 3), a);
    }

    #[test]
    fn tuple_naming_shapes() {
        let pool = NamePool::dictionary();
        let t = NameTable::with_capacity(100, pool);
        assert_eq!(t.name_tuple(&[]), IDENTITY);
        let one = t.name_tuple(&[7]);
        let pair = t.name_tuple(&[7, 0]);
        // (7) names (7, IDENTITY) == (7, 0) — identical content by design:
        // IDENTITY is the empty string, so (7)++"" == (7, "").
        assert_eq!(one, pair);
        let triple = t.name_tuple(&[1, 2, 3]);
        assert_eq!(t.name_tuple(&[1, 2, 3]), triple);
        assert_ne!(t.name_tuple(&[1, 3, 2]), triple);
        assert_eq!(t.lookup_tuple(&[1, 2, 3]), Some(triple));
        assert_eq!(t.lookup_tuple(&[9, 9, 9]), None);
    }

    #[test]
    fn overlay_prefers_dictionary() {
        let dpool = NamePool::dictionary();
        let dict = NameTable::with_capacity(10, dpool);
        let known = dict.name(1, 2);
        let ov = Overlay::new(&dict, 10, NamePool::text_local());
        assert_eq!(ov.name(1, 2), known);
        let local = ov.name(5, 6);
        assert!(NamePool::is_text_local(local));
        assert_eq!(ov.name(5, 6), local);
        assert_eq!(ov.local_len(), 1);
        // The overlay never writes into the dictionary layer.
        assert_eq!(dict.lookup(5, 6), None);
    }

    #[test]
    fn text_miss_is_text_local_and_clear_of_sentinels() {
        assert!(NamePool::is_text_local(TEXT_MISS));
        assert_ne!(TEXT_MISS, u32::MAX); // ConcPairTable PENDING
        assert_ne!(TEXT_MISS, u32::MAX - 1); // matcher UNKNOWN sentinels
        assert_ne!(TEXT_MISS, IDENTITY);
    }

    #[test]
    fn frozen_table_mirrors_live_lookups() {
        let pool = NamePool::dictionary();
        let t = NameTable::with_capacity(64, pool);
        let ab = t.name(1, 2);
        let tri = t.name_tuple(&[4, 5, 6]);
        let f = t.freeze();
        assert_eq!(f.len(), t.len());
        assert_eq!(f.lookup(1, 2), Some(ab));
        assert_eq!(f.lookup(2, 1), None);
        assert_eq!(f.lookup_tuple(&[4, 5, 6]), Some(tri));
        assert_eq!(f.lookup_tuple(&[4, 6, 5]), None);
        assert_eq!(f.lookup_tuple(&[]), Some(IDENTITY));
        // Later inserts into the live table are invisible to the snapshot.
        t.name(9, 9);
        assert_eq!(f.lookup(9, 9), None);
    }

    #[test]
    fn frozen_raw_round_trip_preserves_lookups() {
        let pool = NamePool::dictionary();
        let t = NameTable::with_capacity(64, pool);
        for i in 0..40u32 {
            t.name(i, i * 3);
        }
        let f = t.freeze();
        let raw = f.raw();
        let rebuilt = FrozenNameTable::from_raw(
            FrozenPairTable::from_raw_parts(
                raw.keys().to_vec().into(),
                raw.vals().to_vec().into(),
                raw.len(),
            )
            .expect("valid raw parts"),
        );
        assert_eq!(rebuilt.len(), f.len());
        for i in 0..40u32 {
            assert_eq!(rebuilt.lookup(i, i * 3), f.lookup(i, i * 3));
        }
        assert_eq!(rebuilt.lookup(100, 100), None);
        assert_eq!(rebuilt.entries().count(), f.len());
    }

    #[test]
    fn shared_pool_names_globally_unique() {
        let pool = NamePool::dictionary();
        let t1 = NameTable::with_capacity(100, pool.clone());
        let t2 = NameTable::with_capacity(100, pool.clone());
        let mut all = Vec::new();
        for i in 0..50 {
            all.push(t1.name(i, 0));
            all.push(t2.name(i, 0));
        }
        all.sort_unstable();
        all.dedup();
        assert_eq!(
            all.len(),
            100,
            "same key in different tables ⇒ different names"
        );
    }
}
