//! Dynamic namestamping variants (paper §6).
//!
//! * **Partly-dynamic namestamping** (§6.1.1): inserts only. Realized by
//!   [`DynTable`] with reference counting ignored (counts still maintained —
//!   they are free — but never decremented).
//! * **Dynamic stamp-counting** (§6.2.1): each element tracks how many live
//!   tuples carry it; deleting a pattern decrements, and the entry (and its
//!   name) disappears at zero. [`DynTable::release`].
//! * **Dynamic stamp-listing** (§6.2.1): each element tracks the *set* of
//!   stamps of its live tuples, for when the surviving stamp's identity
//!   matters (the retrieve-index problem). [`StampList`].
//!
//! The paper notes stamp-counting is exactly as hard as integer sorting and
//! implements lists over quadratic-space arrays; we substitute hash-backed
//! storage with identical semantics (DESIGN.md §2). Batched insert/delete
//! can route through `pdm_primitives::radix` if orders matter.

use crate::arena::NamePool;
use pdm_primitives::{FxHashMap, PairMap};
use std::sync::Arc;

/// Growable pair→name table with reference counts, for the dynamic
/// dictionary. Single-writer (the dictionary owner); matching only reads.
/// Cloning copies the map but shares the pool, so a clone can keep
/// allocating names without colliding with the original.
#[derive(Debug, Clone)]
pub struct DynTable {
    map: PairMap,
    pool: Arc<NamePool>,
}

impl DynTable {
    pub fn new(pool: Arc<NamePool>) -> Self {
        Self {
            map: PairMap::new(),
            pool,
        }
    }

    /// Name of `(a, b)`, allocating if absent; increments the entry's
    /// reference count (one count per contributing pattern occurrence).
    #[inline]
    pub fn name_ref(&mut self, a: u32, b: u32) -> u32 {
        self.map.get_or_insert_ref(a, b, || self.pool.fresh())
    }

    /// Read-only lookup (used by `match` operations).
    #[inline]
    pub fn lookup(&self, a: u32, b: u32) -> Option<u32> {
        self.map.get(a, b)
    }

    /// Associate `(a, b)` with a caller-provided existing name (extension
    /// tables) and add one reference. All writers of a key carry the same
    /// value, as in [`crate::arena::NameTable::insert_assoc`].
    #[inline]
    pub fn assoc_ref(&mut self, a: u32, b: u32, v: u32) -> u32 {
        let got = self.map.get_or_insert_ref(a, b, || v);
        debug_assert_eq!(got, v, "assoc_ref callers must agree on the value");
        got
    }

    /// Drop one reference to `(a, b)`; the entry vanishes at zero.
    /// Returns `true` if the entry was removed.
    #[inline]
    pub fn release(&mut self, a: u32, b: u32) -> bool {
        self.map.release(a, b)
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn refs(&self, a: u32, b: u32) -> u32 {
        self.map.refs(a, b)
    }
}

/// Dynamic stamp-listing: element name → multiset of stamps.
///
/// `any` returns an arbitrary live stamp (the arbitrary-CRCW answer);
/// `remove` deletes one occurrence of a specific stamp.
#[derive(Debug, Default, Clone)]
pub struct StampList {
    map: FxHashMap<u32, Vec<u32>>,
}

impl StampList {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one occurrence of `stamp` under `element`.
    pub fn insert(&mut self, element: u32, stamp: u32) {
        self.map.entry(element).or_default().push(stamp);
    }

    /// Remove one occurrence of `stamp` under `element`.
    /// Returns `true` if found and removed.
    pub fn remove(&mut self, element: u32, stamp: u32) -> bool {
        if let Some(v) = self.map.get_mut(&element) {
            if let Some(pos) = v.iter().position(|&s| s == stamp) {
                v.swap_remove(pos);
                if v.is_empty() {
                    self.map.remove(&element);
                }
                return true;
            }
        }
        false
    }

    /// An arbitrary live stamp for `element`.
    pub fn any(&self, element: u32) -> Option<u32> {
        self.map.get(&element).and_then(|v| v.first().copied())
    }

    /// All live stamps for `element` (order unspecified).
    pub fn all(&self, element: u32) -> &[u32] {
        self.map.get(&element).map_or(&[], |v| v.as_slice())
    }

    /// Number of live stamps for `element`.
    pub fn count(&self, element: u32) -> usize {
        self.map.get(&element).map_or(0, |v| v.len())
    }

    /// Number of distinct elements with live stamps.
    pub fn elements(&self) -> usize {
        self.map.len()
    }
}

/// The §6.1.1 worst-case table-growth scheme, implemented faithfully.
///
/// The paper de-amortizes dictionary growth: when the current table (sized
/// for `2M₀`) fills past half, a table of twice the size is procured and
/// the old entries are *incrementally* copied — a constant number per
/// subsequent insert — "being careful to read any relevant entries in the
/// old table" during the migration. By the time another `M₀` entries have
/// arrived, the copy has finished and the old table is discarded, so every
/// individual insert is `O(1)` worst case (no rebuild spikes).
///
/// Our hash maps grow amortized anyway, so the matchers don't need this —
/// but it is part of the paper's contribution, so it exists, is tested, and
/// is benchmarked as a substrate on its own. `COPIES_PER_INSERT = 4`
/// guarantees migration completes before the new table itself fills.
/// Migration state: the drained table, its entry snapshot, and the copy
/// cursor.
type Migration = (PairMap, Vec<(u64, u32)>, usize);

#[derive(Debug)]
pub struct DeamortizedTable {
    /// The table being filled.
    new: PairMap,
    /// The table being drained (None once migration finishes).
    old: Option<Migration>,
    /// Capacity threshold of `new` that triggers the next migration.
    threshold: usize,
    pool: Arc<NamePool>,
}

const COPIES_PER_INSERT: usize = 4;

impl DeamortizedTable {
    pub fn new(pool: Arc<NamePool>, initial_capacity: usize) -> Self {
        DeamortizedTable {
            new: PairMap::with_capacity(2 * initial_capacity.max(4)),
            old: None,
            threshold: initial_capacity.max(4),
            pool,
        }
    }

    /// Distinct keys currently reachable (both layers during migration;
    /// keys already re-read into the new table are not double-counted).
    pub fn len(&self) -> usize {
        let dup = self.old.as_ref().map_or(0, |(_, pending, at)| {
            pending[*at..]
                .iter()
                .filter(|(k, _)| {
                    let (a, b) = pdm_primitives::table::unpack(*k);
                    self.new.get(a, b).is_some()
                })
                .count()
        });
        let uncopied = self
            .old
            .as_ref()
            .map_or(0, |(_, pending, at)| pending.len() - at);
        self.new.len() + uncopied - dup
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether a migration is in flight (diagnostics).
    pub fn migrating(&self) -> bool {
        self.old.is_some()
    }

    /// Name of `(a, b)`, allocating if absent — `O(1)` worst case.
    pub fn name(&mut self, a: u32, b: u32) -> u32 {
        // Read through to the old table during migration.
        let from_old = self.old.as_ref().and_then(|(t, _, _)| t.get(a, b));
        let v = match from_old {
            Some(v) => self.new.get_or_insert(a, b, || v),
            None => {
                let pool = &self.pool;
                self.new.get_or_insert(a, b, || pool.fresh())
            }
        };
        self.step_migration();
        if self.new.len() >= self.threshold && self.old.is_none() {
            // Procure the next table: snapshot current entries and start
            // draining them incrementally.
            let drained =
                std::mem::replace(&mut self.new, PairMap::with_capacity(4 * self.threshold));
            let pending: Vec<(u64, u32)> = drained.iter_entries().collect();
            self.old = Some((drained, pending, 0));
            self.threshold *= 2;
        }
        v
    }

    /// Lookup through both layers.
    pub fn lookup(&self, a: u32, b: u32) -> Option<u32> {
        self.new
            .get(a, b)
            .or_else(|| self.old.as_ref().and_then(|(t, _, _)| t.get(a, b)))
    }

    fn step_migration(&mut self) {
        if let Some((_, pending, at)) = self.old.as_mut() {
            for _ in 0..COPIES_PER_INSERT {
                if *at >= pending.len() {
                    self.old = None;
                    return;
                }
                let (key, v) = pending[*at];
                *at += 1;
                let (a, b) = pdm_primitives::table::unpack(key);
                self.new.get_or_insert(a, b, || v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dyn_table_insert_lookup_release() {
        let mut t = DynTable::new(NamePool::dictionary());
        let n = t.name_ref(1, 2);
        assert_eq!(t.name_ref(1, 2), n);
        assert_eq!(t.refs(1, 2), 2);
        assert_eq!(t.lookup(1, 2), Some(n));
        assert!(!t.release(1, 2));
        assert_eq!(t.lookup(1, 2), Some(n));
        assert!(t.release(1, 2));
        assert_eq!(t.lookup(1, 2), None);
        assert!(t.is_empty());
    }

    #[test]
    fn dyn_table_reinsert_gets_fresh_name() {
        let mut t = DynTable::new(NamePool::dictionary());
        let n1 = t.name_ref(1, 2);
        t.release(1, 2);
        let n2 = t.name_ref(1, 2);
        // Names need not be reused after full deletion; only consistency of
        // live entries matters.
        assert_ne!(n1, n2);
    }

    #[test]
    fn stamp_list_lifecycle() {
        let mut s = StampList::new();
        s.insert(10, 100);
        s.insert(10, 200);
        s.insert(10, 100);
        s.insert(20, 300);
        assert_eq!(s.count(10), 3);
        assert_eq!(s.elements(), 2);
        assert!(s.any(10).is_some());
        assert!(s.remove(10, 100));
        assert_eq!(s.count(10), 2);
        assert!(s.remove(10, 100));
        assert!(!s.remove(10, 100), "only two occurrences existed");
        assert_eq!(s.all(10), &[200]);
        assert!(s.remove(10, 200));
        assert_eq!(s.any(10), None);
        assert_eq!(s.elements(), 1);
    }

    #[test]
    fn stamp_list_remove_absent_element() {
        let mut s = StampList::new();
        assert!(!s.remove(5, 5));
        assert_eq!(s.any(5), None);
        assert_eq!(s.all(5), &[] as &[u32]);
    }

    #[test]
    fn deamortized_names_stay_consistent_across_migrations() {
        let mut t = DeamortizedTable::new(NamePool::dictionary(), 4);
        let mut names = std::collections::HashMap::new();
        // Insert enough keys to force several migrations.
        for i in 0..200u32 {
            let n = t.name(i, i + 1);
            names.insert(i, n);
            // Re-query a few old keys mid-migration: names must be stable.
            for j in (0..=i).step_by(7) {
                assert_eq!(t.name(j, j + 1), names[&j], "key {j} after {i}");
                assert_eq!(t.lookup(j, j + 1), Some(names[&j]));
            }
        }
        assert_eq!(t.len(), 200);
        assert_eq!(t.lookup(999, 0), None);
    }

    #[test]
    fn deamortized_migration_completes() {
        let mut t = DeamortizedTable::new(NamePool::dictionary(), 4);
        for i in 0..8u32 {
            t.name(i, 0);
        }
        assert!(t.migrating() || t.len() == 8);
        // COPIES_PER_INSERT = 4 ≫ growth rate: a few more inserts finish it.
        for i in 8..32u32 {
            t.name(i, 0);
        }
        // Drive remaining copies with repeat queries of one key.
        for _ in 0..32 {
            t.name(0, 0);
        }
        assert_eq!(t.len(), 32);
    }

    #[test]
    fn deamortized_distinct_keys_distinct_names() {
        let mut t = DeamortizedTable::new(NamePool::dictionary(), 2);
        let mut seen = std::collections::HashSet::new();
        for i in 0..100u32 {
            assert!(seen.insert(t.name(i, i * 3)), "duplicate name at {i}");
        }
    }
}
