//! Block names by doubling (Karp–Miller–Rosenberg).
//!
//! `name_k(i)` names the substring `s[i .. i+2^k]`. Level 0 names single
//! symbols through the matcher's symbol table; level `k` names come from
//! `δ(name_{k−1}(i), name_{k−1}(i + 2^{k−1}))`.
//!
//! Two access patterns correspond to the two halves of shrink-and-spawn:
//!
//! * **Dictionary (shrink):** only block-aligned positions are needed —
//!   `i ≡ 0 (mod 2^k)` — because the shrunk pattern at level `k` is exactly
//!   the sequence of its aligned block names. `Σ_k len/2^k = O(len)` names
//!   per string.
//! * **Text (spawn):** *every* position is needed — the level-`k` names at
//!   offsets `i, i+2^k, i+2^k·2, …` for each `i < 2^k` are the `2^k` spawned
//!   copies. `O(n)` names per level, `O(n log m)` overall, matching the
//!   text-side work bound of Theorem 1.

use crate::arena::{NameTable, Overlay};
use pdm_pram::Ctx;

/// Aligned block names of a dictionary string.
///
/// `blocks[k][b]` names `s[b·2^k .. (b+1)·2^k]`, for `0 ≤ k ≤ levels` and
/// all `b` with `(b+1)·2^k ≤ s.len()`. `blocks[0]` is the symbol naming of
/// every position.
pub fn aligned_block_names(
    s: &[u32],
    levels: usize,
    sym: &NameTable,
    pair: &[NameTable],
) -> Vec<Vec<u32>> {
    assert!(pair.len() >= levels, "need one pair table per level");
    let mut blocks: Vec<Vec<u32>> = Vec::with_capacity(levels + 1);
    blocks.push(s.iter().map(|&c| sym.name(c, 0)).collect());
    for k in 1..=levels {
        let prev = &blocks[k - 1];
        let cnt = prev.len() / 2;
        let t = &pair[k - 1];
        let cur: Vec<u32> = (0..cnt)
            .map(|b| t.name(prev[2 * b], prev[2 * b + 1]))
            .collect();
        blocks.push(cur);
    }
    blocks
}

/// Level-0 names of a text slice, resolved through the overlay (dictionary
/// symbol table first, text-local names for unseen symbols), written into a
/// caller-provided buffer (cleared first; capacity is reused across calls —
/// the `TextScratch` discipline).
pub fn text_symbol_names_into(t: &[u32], sym: &Overlay, out: &mut Vec<u32>) {
    out.clear();
    out.extend(t.iter().map(|&c| sym.name(c, 0)));
}

/// Allocating convenience wrapper around [`text_symbol_names_into`].
pub fn text_symbol_names(t: &[u32], sym: &Overlay) -> Vec<u32> {
    let mut out = Vec::new();
    text_symbol_names_into(t, sym, &mut out);
    out
}

/// One doubling step over *all* positions: given `prev[i]` naming
/// `t[i..i+half]`, write names of `t[i..i+2·half]` for every valid `i` into
/// a caller-provided buffer (cleared first; capacity reused across calls).
pub fn text_double_step_into(prev: &[u32], half: usize, table: &Overlay, out: &mut Vec<u32>) {
    out.clear();
    if prev.len() < 2 * half {
        return;
    }
    let cnt = prev.len() - half; // positions i with i + 2·half ≤ t.len()
    out.extend((0..cnt).map(|i| table.name(prev[i], prev[i + half])));
}

/// Allocating convenience wrapper around [`text_double_step_into`].
pub fn text_double_step(prev: &[u32], half: usize, table: &Overlay) -> Vec<u32> {
    let mut out = Vec::new();
    text_double_step_into(prev, half, table, &mut out);
    out
}

// --- Ordered rank levels (the suffix-array view of the recurrence) -------
//
// Dictionary and text naming push `(name_{k−1}(i), name_{k−1}(i+2^{k−1}))`
// through a namestamping table: names are equal iff blocks are equal, but
// their integer values carry no order. Suffix-array construction
// (`pdm-index`) runs the *same* doubling recurrence with an
// order-preserving codomain instead: pack the pair of previous ranks into
// one sortable `u64` key, sort, and densely re-rank. These helpers emit the
// keys so the index crate is a sort-and-rescan loop over this module's
// recurrence rather than a from-scratch suffix-array port.

/// Level-0 ordered keys: `out[i] = (symbol(i) + 1, i)`. Sorting by key and
/// densely re-ranking yields `rank_0`, the ordered counterpart of the
/// symbol naming in [`text_symbol_names_into`]. One PRAM round, `O(n)`
/// work; the buffer is cleared first and its capacity reused across calls.
pub fn symbol_rank_keys_into(ctx: &Ctx, t: &[u32], out: &mut Vec<(u64, u32)>) {
    out.clear();
    out.resize(t.len(), (0, 0));
    ctx.for_each_mut(out, |i, slot| *slot = (u64::from(t[i]) + 1, i as u32));
}

/// One ordered doubling step: given dense `prev[i]` ranking `t[i .. i+half]`
/// (ranks equal iff blocks equal, ordered as the blocks are), emit for every
/// suffix `i` the key `(prev[i], prev[i+half])` packed high/low into a
/// `u64`, with suffixes shorter than `2·half` taking 0 in the low half —
/// rank values are stored `+1` so the out-of-range 0 sorts first, realizing
/// the shorter-suffix-first convention of suffix order. Sorting these keys
/// and densely re-ranking yields `rank_k` exactly as
/// [`text_double_step_into`] yields `name_k`. One PRAM round, `O(n)` work.
pub fn rank_pair_keys_into(ctx: &Ctx, prev: &[u32], half: usize, out: &mut Vec<(u64, u32)>) {
    let n = prev.len();
    out.clear();
    out.resize(n, (0, 0));
    ctx.for_each_mut(out, |i, slot| {
        let hi = u64::from(prev[i]) + 1;
        let lo = if i + half < n {
            u64::from(prev[i + half]) + 1
        } else {
            0
        };
        *slot = ((hi << 32) | lo, i as u32);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::{NamePool, NameTable};

    fn setup(levels: usize) -> (NameTable, Vec<NameTable>) {
        let pool = NamePool::dictionary();
        let sym = NameTable::with_capacity(1024, pool.clone());
        let pair = (0..levels)
            .map(|_| NameTable::with_capacity(4096, pool.clone()))
            .collect();
        (sym, pair)
    }

    #[test]
    fn aligned_names_identify_equal_blocks() {
        let (sym, pair) = setup(3);
        let s1: Vec<u32> = vec![1, 2, 3, 4, 1, 2, 3, 4];
        let s2: Vec<u32> = vec![1, 2, 3, 4, 9, 9, 9, 9];
        let b1 = aligned_block_names(&s1, 3, &sym, &pair);
        let b2 = aligned_block_names(&s2, 3, &sym, &pair);
        // Level 2 blocks: s1 = [1234][1234], s2 = [1234][9999].
        assert_eq!(b1[2][0], b1[2][1]);
        assert_eq!(b1[2][0], b2[2][0]);
        assert_ne!(b2[2][0], b2[2][1]);
        // Level 3 (whole string) differs.
        assert_ne!(b1[3][0], b2[3][0]);
        // Counts: floor(len / 2^k).
        assert_eq!(b1[0].len(), 8);
        assert_eq!(b1[1].len(), 4);
        assert_eq!(b1[2].len(), 2);
        assert_eq!(b1[3].len(), 1);
    }

    #[test]
    fn aligned_names_with_residue_lengths() {
        let (sym, pair) = setup(2);
        let s: Vec<u32> = vec![5, 6, 7, 8, 9]; // len 5: residues ignored per §3.1
        let b = aligned_block_names(&s, 2, &sym, &pair);
        assert_eq!(b[0].len(), 5);
        assert_eq!(b[1].len(), 2);
        assert_eq!(b[2].len(), 1);
    }

    #[test]
    fn text_doubling_matches_aligned_dictionary_names() {
        let (sym, pair) = setup(2);
        let pat: Vec<u32> = vec![7, 8, 7, 9];
        let blocks = aligned_block_names(&pat, 2, &sym, &pair);

        // Text containing the pattern at unaligned offset 1; run the
        // doubling through reused caller buffers (the `_into` API).
        let text: Vec<u32> = vec![3, 7, 8, 7, 9, 3];
        let tp = NamePool::text_local();
        let ov_sym = Overlay::new(&sym, 64, tp.clone());
        let (mut l0, mut l1, mut l2) = (Vec::new(), Vec::new(), Vec::new());
        text_symbol_names_into(&text, &ov_sym, &mut l0);
        let ov1 = Overlay::new(&pair[0], 64, tp.clone());
        text_double_step_into(&l0, 1, &ov1, &mut l1);
        let ov2 = Overlay::new(&pair[1], 64, tp.clone());
        text_double_step_into(&l1, 2, &ov2, &mut l2);

        // t[1..5] == pattern, so its level-2 name equals the pattern's.
        assert_eq!(l2[1], blocks[2][0]);
        // Non-matching position must differ.
        assert_ne!(l2[0], blocks[2][0]);
    }

    #[test]
    fn text_unknown_blocks_get_local_names() {
        let (sym, pair) = setup(1);
        let _ = aligned_block_names(&[1, 2], 1, &sym, &pair);
        let tp = NamePool::text_local();
        let ov_sym = Overlay::new(&sym, 64, tp.clone());
        let l0 = text_symbol_names(&[1, 2, 5, 5], &ov_sym);
        assert!(!NamePool::is_text_local(l0[0]));
        assert!(NamePool::is_text_local(l0[2]));
        // Equal unseen symbols share their local name.
        assert_eq!(l0[2], l0[3]);
        let ov1 = Overlay::new(&pair[0], 64, tp);
        let l1 = text_double_step(&l0, 1, &ov1);
        // (1,2) is a dictionary block; (2,5) and (5,5) are not.
        assert!(!NamePool::is_text_local(l1[0]));
        assert!(NamePool::is_text_local(l1[1]));
        assert!(NamePool::is_text_local(l1[2]));
    }

    #[test]
    fn short_text_produces_empty_levels() {
        let (sym, pair) = setup(2);
        let tp = NamePool::text_local();
        let ov_sym = Overlay::new(&sym, 8, tp.clone());
        let l0 = text_symbol_names(&[1], &ov_sym);
        let ov1 = Overlay::new(&pair[0], 8, tp);
        assert!(text_double_step(&l0, 1, &ov1).is_empty());
    }

    #[test]
    fn rank_keys_follow_suffix_order() {
        // Sorting the level-0 keys of "banana" orders positions by symbol;
        // one doubling step distinguishes "na…" suffixes by what follows.
        let t: Vec<u32> = vec![1, 0, 2, 0, 2, 0]; // b a n a n a
        let ctx = Ctx::seq();
        let mut keys = vec![(9, 9); 2]; // stale contents must vanish
        symbol_rank_keys_into(&ctx, &t, &mut keys);
        assert_eq!(keys.len(), 6);
        assert_eq!(keys[0], (2, 0)); // symbol 1 + 1, position 0
                                     // Dense level-0 ranks of "banana": a=0, b=1, n=2.
        let r0: Vec<u32> = vec![1, 0, 2, 0, 2, 0];
        let mut pairs = Vec::new();
        rank_pair_keys_into(&ctx, &r0, 1, &mut pairs);
        // Suffix 5 ("a") has no right half: low part 0 sorts it before
        // suffix 1/3 ("an…"), the shorter-suffix-first convention.
        let k5 = pairs[5].0;
        let k3 = pairs[3].0;
        assert_eq!(k5 >> 32, k3 >> 32, "same left rank (both start 'a')");
        assert!(k5 < k3, "shorter suffix sorts first");
        // Equal blocks get equal keys: suffixes 2 and 4 both start "na".
        assert_eq!(pairs[2].0, pairs[4].0);
        assert_eq!((pairs[2].1, pairs[4].1), (2, 4));
    }

    #[test]
    fn into_buffers_are_cleared_and_reused() {
        let (sym, pair) = setup(1);
        let _ = aligned_block_names(&[1, 2], 1, &sym, &pair);
        let tp = NamePool::text_local();
        let ov_sym = Overlay::new(&sym, 64, tp.clone());
        let mut buf = vec![99; 32]; // stale contents must vanish
        text_symbol_names_into(&[1, 2, 1, 2], &ov_sym, &mut buf);
        assert_eq!(buf.len(), 4);
        assert_eq!(buf, text_symbol_names(&[1, 2, 1, 2], &ov_sym));
        let ov1 = Overlay::new(&pair[0], 64, tp);
        let mut dbl = vec![7; 8];
        text_double_step_into(&buf, 1, &ov1, &mut dbl);
        assert_eq!(dbl, text_double_step(&buf, 1, &ov1));
        // Too-short input clears the buffer rather than leaving stale data.
        text_double_step_into(&buf[..1], 1, &ov1, &mut dbl);
        assert!(dbl.is_empty());
    }
}
