//! Prefix-naming (paper §3.3, Fact 2).
//!
//! Assigns every prefix `s[0..ℓ]` a name `pref(ℓ)` such that equal prefixes
//! (of any strings in the dictionary) receive equal names. The paper runs a
//! prefix-sum with namestamping in place of addition; the subtlety is that
//! namestamping is injective but **not associative**, so the combine *shape*
//! must be a fixed function of `ℓ`. We use the dyadic left-fold:
//!
//! ```text
//! pref(ℓ) = fold(pref(ℓ − 2^z), block_z(ℓ − 2^z))      z = trailing zeros of ℓ
//! pref(2^k · odd-part-1-bits…) bottoms out at pref(2^k) = block name itself
//! ```
//!
//! i.e. `pref(ℓ)` folds the dyadic decomposition of `[0, ℓ)` left to right.
//! Each position costs one combine (`O(len)` work per string); dependencies
//! run along decreasing popcount, giving `⌈log₂ m⌉` parallel rounds —
//! exactly Fact 2's `O(log m)` time / `O(M)` work.

use crate::arena::{NameTable, IDENTITY};
use pdm_pram::Ctx;
use std::sync::atomic::{AtomicU32, Ordering};

/// Prefix names of one string, sequential (`O(len)` combines).
///
/// `blocks` are the aligned block names from
/// [`crate::kmr::aligned_block_names`]; `blocks[k]` must cover at least
/// `floor(len / 2^k)` entries. Returns `pref` with `pref[ℓ-1]` naming
/// `s[0..ℓ]`, for `ℓ = 1..=len`.
pub fn prefix_names(blocks: &[Vec<u32>], len: usize, fold: &NameTable) -> Vec<u32> {
    let mut pref = vec![IDENTITY; len];
    for l in 1..=len {
        pref[l - 1] = combine_one(blocks, l, fold, |hi| pref[hi - 1]);
    }
    pref
}

/// Parallel prefix names: rounds ordered by popcount of `ℓ` (the dependency
/// depth), `⌈log₂ len⌉ + 1` rounds, `O(len)` work. Same output as
/// [`prefix_names`].
pub fn prefix_names_par(ctx: &Ctx, blocks: &[Vec<u32>], len: usize, fold: &NameTable) -> Vec<u32> {
    let pref: Vec<AtomicU32> = (0..len).map(|_| AtomicU32::new(IDENTITY)).collect();
    // Group lengths by popcount; round r resolves all ℓ with popcount r+1.
    let mut by_pop: Vec<Vec<u32>> = vec![Vec::new(); (usize::BITS - len.leading_zeros()) as usize];
    for l in 1..=len {
        by_pop[l.count_ones() as usize - 1].push(l as u32);
    }
    for group in by_pop.iter().filter(|g| !g.is_empty()) {
        ctx.for_each(group.len(), |gi| {
            let l = group[gi] as usize;
            let v = combine_one(blocks, l, fold, |hi| pref[hi - 1].load(Ordering::Relaxed));
            pref[l - 1].store(v, Ordering::Relaxed);
        });
    }
    pref.into_iter().map(|a| a.into_inner()).collect()
}

/// One step of the dyadic left-fold: the name of `s[0..l]` from the name of
/// `s[0..l − 2^z]` (via `get_pref`, `z` = trailing zeros of `l`) and the
/// aligned block covering the gap. Exposed so callers that orchestrate their
/// own round structure (e.g. the global popcount-grouped rounds of the
/// static matcher build) produce names identical to [`prefix_names`].
#[inline]
pub fn combine_one(
    blocks: &[Vec<u32>],
    l: usize,
    fold: &NameTable,
    get_pref: impl Fn(usize) -> u32,
) -> u32 {
    let low = l & l.wrapping_neg();
    let k = low.trailing_zeros() as usize;
    let hi = l - low;
    let block = blocks[k][hi / low];
    if hi == 0 {
        block
    } else {
        fold.name(get_pref(hi), block)
    }
}

/// Incremental prefix-namer for the dynamic path (§6): consumes one symbol's
/// level-0 name at a time, maintaining the binary-counter stack of dyadic
/// block names, `O(1)` amortized combines per symbol. Produces the *same*
/// names as [`prefix_names`] when backed by the same tables.
pub struct IncrementalPrefixNamer<'a> {
    pair: &'a [NameTable],
    fold: &'a NameTable,
    /// `stack[k]` = name of the pending aligned block of size `2^k`, if any.
    stack: Vec<Option<u32>>,
    len: usize,
}

impl<'a> IncrementalPrefixNamer<'a> {
    pub fn new(pair: &'a [NameTable], fold: &'a NameTable) -> Self {
        Self {
            pair,
            fold,
            stack: vec![None; pair.len() + 1],
            len: 0,
        }
    }

    /// Push the level-0 name of the next symbol; returns `pref(len+1)`.
    pub fn push(&mut self, name0: u32) -> u32 {
        // Merge like a binary counter: two full 2^k blocks form one 2^(k+1).
        let mut carry = name0;
        let mut k = 0usize;
        while let Some(left) = self.stack[k].take() {
            carry = self.pair[k].name(left, carry);
            k += 1;
        }
        self.stack[k] = Some(carry);
        self.len += 1;
        // pref = left-fold of the stack top-down (largest block first).
        let mut acc = IDENTITY;
        for b in self.stack.iter().rev().flatten() {
            acc = if acc == IDENTITY {
                *b
            } else {
                self.fold.name(acc, *b)
            };
        }
        acc
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::NamePool;
    use crate::kmr::aligned_block_names;

    fn setup(levels: usize) -> (NameTable, Vec<NameTable>, NameTable) {
        let pool = NamePool::dictionary();
        let sym = NameTable::with_capacity(1 << 12, pool.clone());
        let pair = (0..levels)
            .map(|_| NameTable::with_capacity(1 << 14, pool.clone()))
            .collect();
        let fold = NameTable::with_capacity(1 << 14, pool.clone());
        (sym, pair, fold)
    }

    fn prefs_of(
        s: &[u32],
        levels: usize,
        sym: &NameTable,
        pair: &[NameTable],
        fold: &NameTable,
    ) -> Vec<u32> {
        let blocks = aligned_block_names(s, levels, sym, pair);
        prefix_names(&blocks, s.len(), fold)
    }

    #[test]
    fn equal_prefixes_equal_names_across_strings() {
        let (sym, pair, fold) = setup(4);
        let a: Vec<u32> = vec![1, 2, 3, 4, 5, 6, 7];
        let b: Vec<u32> = vec![1, 2, 3, 4, 9, 9];
        let pa = prefs_of(&a, 4, &sym, &pair, &fold);
        let pb = prefs_of(&b, 4, &sym, &pair, &fold);
        for l in 1..=4 {
            assert_eq!(pa[l - 1], pb[l - 1], "shared prefix of length {l}");
        }
        assert_ne!(pa[4], pb[4]);
    }

    #[test]
    fn distinct_prefixes_distinct_names() {
        let (sym, pair, fold) = setup(4);
        // All prefixes of all strings must be pairwise distinct unless equal.
        let strings: Vec<Vec<u32>> = vec![
            vec![1, 1, 1, 1, 1],
            vec![1, 1, 1, 1, 2],
            vec![2, 1, 1, 1, 1],
            vec![1, 2, 1, 2, 1, 2],
        ];
        let mut seen: std::collections::HashMap<u32, Vec<u32>> = Default::default();
        for s in &strings {
            let p = prefs_of(s, 4, &sym, &pair, &fold);
            for l in 1..=s.len() {
                let e = seen.entry(p[l - 1]).or_insert_with(|| s[..l].to_vec());
                assert_eq!(*e, &s[..l], "name collision for different content");
            }
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let (sym, pair, fold) = setup(6);
        let s: Vec<u32> = (0..57).map(|i| (i * 7) % 5).collect();
        let blocks = aligned_block_names(&s, 6, &sym, &pair);
        let seq = prefix_names(&blocks, s.len(), &fold);
        for ctx in [Ctx::seq(), Ctx::par()] {
            let par = prefix_names_par(&ctx, &blocks, s.len(), &fold);
            assert_eq!(par, seq);
        }
    }

    #[test]
    fn parallel_round_count_is_logarithmic() {
        let (sym, pair, fold) = setup(10);
        let s: Vec<u32> = (0..1000).map(|i| i % 3).collect();
        let blocks = aligned_block_names(&s, 10, &sym, &pair);
        let ctx = Ctx::seq();
        let before = ctx.cost.snapshot();
        let _ = prefix_names_par(&ctx, &blocks, s.len(), &fold);
        let d = ctx.cost.snapshot().since(before);
        // popcount classes present in 1..=1000: at most 10 (Fact 2: O(log m)).
        assert!(d.rounds <= 10, "rounds = {}", d.rounds);
        assert!(d.work <= 1001, "work = {}", d.work);
    }

    #[test]
    fn incremental_matches_batch() {
        let (sym, pair, fold) = setup(5);
        let s: Vec<u32> = (0..23).map(|i| (i * 13) % 4).collect();
        let batch = prefs_of(&s, 5, &sym, &pair, &fold);
        let mut inc = IncrementalPrefixNamer::new(&pair, &fold);
        let mut got = Vec::new();
        for &c in &s {
            let n0 = sym.name(c, 0);
            got.push(inc.push(n0));
        }
        assert_eq!(got, batch);
        assert_eq!(inc.len(), s.len());
    }

    #[test]
    fn single_symbol_prefix() {
        let (sym, pair, fold) = setup(2);
        let p = prefs_of(&[42], 2, &sym, &pair, &fold);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0], sym.name(42, 0));
    }
}
