//! # pdm-naming — Karp–Miller–Rosenberg naming machinery
//!
//! Section 3 of the SPAA'93 paper builds everything on three primitives:
//!
//! * **Naming** — assign each length-`l` string in a set a short name such
//!   that names are equal iff the strings are equal;
//! * **Namestamping** (Fact 1) — constant-time table lookup that propagates
//!   stamps from a stamped set to a query set;
//! * **Prefix-naming** (Fact 2) — a name for *every prefix* of every string,
//!   computed as "a standard prefix-sum computation using the namestamping
//!   operation in place of arithmetic addition" in `O(log m)` time and
//!   `O(M)` work.
//!
//! This crate implements them:
//!
//! * [`arena`] — name pools (dictionary-side and text-local name spaces) and
//!   [`arena::NameTable`], the namestamping table (a thin policy layer over
//!   `pdm_primitives::ConcPairTable`); [`arena::Overlay`] gives text
//!   processing a read-through view of the dictionary tables with a local
//!   layer for substrings the dictionary never saw (the paper's "special
//!   symbols distinct from the set used to name the substrings in `V`");
//! * [`kmr`] — names of power-of-two blocks, by doubling:
//!   `name_k(i) = δ(name_{k−1}(i), name_{k−1}(i+2^{k−1}))`. Block-aligned
//!   positions only for dictionary strings (that *is* the shrink of
//!   shrink-and-spawn), every position for texts (that *is* the spawn);
//! * [`prefix`] — prefix-naming with a **fixed dyadic left-fold shape** per
//!   length, so equal prefixes of different patterns receive equal names
//!   even though the naming operator is not associative;
//! * [`dynamic`] — the §6 variants: partly-dynamic namestamping (insert
//!   only), dynamic stamp-counting (reference counts) and dynamic
//!   stamp-listing (per-stamp lists), driving insert/delete in the dynamic
//!   dictionary.
//!
//! Names are `u32`s drawn from a shared [`arena::NamePool`], so a name value
//! is globally unique across all tables of a matcher: a name alone
//! identifies string content (and therefore length). `0` is reserved as the
//! name of the empty string and `u32::MAX` as invalid.

pub mod arena;
pub mod dynamic;
pub mod kmr;
pub mod prefix;

pub use arena::{
    FrozenNameTable, NamePool, NameTable, Overlay, IDENTITY, TEXT_MISS, TEXT_NAME_BASE,
};
