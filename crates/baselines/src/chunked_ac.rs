//! Chunked-parallel Aho–Corasick: the *practical* parallel baseline.
//!
//! Split the text into chunks, extend each chunk by `m − 1` overlap symbols,
//! scan chunks independently on a thread pool, and keep occurrences whose
//! start lies in the chunk proper. This is what a practitioner deploys
//! today; the wall-clock experiments (E3) report it as the bar the
//! shrink-and-spawn matcher has to be judged against, honestly.
//!
//! Note what this baseline *cannot* do, which the PRAM algorithms can: its
//! critical path is `Θ(n / p + m)` with a sequential automaton per chunk —
//! the `O(log m)`-time guarantee of the paper has no analogue here.

use crate::aho_corasick::AhoCorasick;
use crate::Occurrence;
use rayon::prelude::*;

/// All `(start, pattern)` occurrences, computed in parallel chunks.
/// `max_pattern_len` must be ≥ the longest pattern in the automaton.
pub fn find_all_chunked(
    ac: &AhoCorasick,
    text: &[u32],
    max_pattern_len: usize,
    chunk_size: usize,
) -> Vec<Occurrence> {
    assert!(chunk_size > 0);
    let n = text.len();
    if n == 0 {
        return Vec::new();
    }
    let overlap = max_pattern_len.saturating_sub(1);
    let nchunks = n.div_ceil(chunk_size);
    let mut per_chunk: Vec<Vec<Occurrence>> = (0..nchunks)
        .into_par_iter()
        .map(|ci| {
            let lo = ci * chunk_size;
            let hi = (lo + chunk_size + overlap).min(n);
            let end_proper = (lo + chunk_size).min(n);
            ac.find_all(&text[lo..hi])
                .into_iter()
                .filter(|o| lo + o.start < end_proper)
                .map(|o| Occurrence {
                    start: lo + o.start,
                    pat: o.pat,
                })
                .collect()
        })
        .collect();
    let mut out = Vec::with_capacity(per_chunk.iter().map(Vec::len).sum());
    for v in per_chunk.iter_mut() {
        out.append(v);
    }
    out
}

/// Longest pattern per start position, computed in parallel chunks.
pub fn longest_match_per_position_chunked(
    ac: &AhoCorasick,
    text: &[u32],
    max_pattern_len: usize,
    chunk_size: usize,
) -> Vec<Option<usize>> {
    let mut out = vec![None; text.len()];
    let mut lens = vec![0u32; text.len()];
    for occ in find_all_chunked(ac, text, max_pattern_len, chunk_size) {
        let l = ac.pattern_len(occ.pat) as u32;
        if l > lens[occ.start] {
            lens[occ.start] = l;
            out[occ.start] = Some(occ.pat);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    fn sym(s: &str) -> Vec<u32> {
        s.bytes().map(u32::from).collect()
    }

    #[test]
    fn agrees_with_sequential_ac_across_chunk_boundaries() {
        let pats = vec![sym("abcab"), sym("cab"), sym("b")];
        let ac = AhoCorasick::new(&pats);
        let text: Vec<u32> = sym(&"abcab".repeat(50));
        let want = {
            let mut v = ac.find_all(&text);
            v.sort();
            v
        };
        for chunk in [1, 3, 7, 64, 1000] {
            let mut got = find_all_chunked(&ac, &text, 5, chunk);
            got.sort();
            assert_eq!(got, want, "chunk={chunk}");
        }
    }

    #[test]
    fn longest_match_agrees_with_naive() {
        let pats = vec![sym("aa"), sym("aaa"), sym("ab")];
        let ac = AhoCorasick::new(&pats);
        let text = sym("aaabaaab");
        let got = longest_match_per_position_chunked(&ac, &text, 3, 3);
        let want = naive::longest_pattern_per_position(&pats, &text);
        assert_eq!(got, want);
    }

    #[test]
    fn empty_text() {
        let ac = AhoCorasick::new(&[sym("x")]);
        assert!(find_all_chunked(&ac, &[], 1, 16).is_empty());
    }

    #[test]
    fn occurrence_straddling_boundary_counted_once() {
        let pats = vec![sym("abcd")];
        let ac = AhoCorasick::new(&pats);
        let text = sym("xxabcdxx");
        // chunk=4 puts the occurrence start (2) in chunk 0 with overlap 3.
        let got = find_all_chunked(&ac, &text, 4, 4);
        assert_eq!(got, vec![Occurrence { start: 2, pat: 0 }]);
    }
}
