//! # pdm-baselines — from-scratch comparators and test oracles
//!
//! The paper's reference points, implemented from scratch so every
//! experiment and differential test in the workspace is self-contained:
//!
//! * [`aho_corasick`] — the Aho–Corasick automaton \[AC75\], the classical
//!   `O(n + M + occ)` sequential dictionary matcher the paper measures its
//!   work bounds against;
//! * [`kmp`] — Knuth–Morris–Pratt \[KMP77\] single-pattern matching (the
//!   failure-function ancestor of AC, used by Baker–Bird);
//! * [`naive`] — brute-force 1-D and 2-D matchers: slow, obviously correct
//!   oracles for differential tests;
//! * [`baker_bird`] — the Baker–Bird 2-D matching algorithm (AC over rows,
//!   then column matching over row names), the sequential baseline for the
//!   2-D experiments;
//! * [`chunked_ac`] — the practical parallel baseline: AC over overlapping
//!   text chunks on a thread pool. This is what an engineer would deploy
//!   today, so wall-clock experiments report it as the bar to clear.
//!
//! All matchers operate on `&[u32]` symbols to match the paper's
//! "alphabet polynomial in `n` and `M`".

pub mod aho_corasick;
pub mod baker_bird;
pub mod chunked_ac;
pub mod kmp;
pub mod naive;

pub use aho_corasick::AhoCorasick;
pub use kmp::Kmp;

/// Occurrence of pattern `pat` starting at text position `start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Occurrence {
    pub start: usize,
    pub pat: usize,
}
