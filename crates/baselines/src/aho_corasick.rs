//! The Aho–Corasick automaton \[AC75\], built from scratch.
//!
//! This is the sequential algorithm the paper's work bounds are compared
//! against (`O(n + M)` for an alphabet polynomial in `n` and `M`, plus
//! output size). The paper notes the approach "seems inherently sequential":
//! the failure-function scan carries a state through the whole text —
//! exactly what shrink-and-spawn avoids.
//!
//! Representation: trie with per-node sorted child arrays (binary search on
//! `u32` symbols — the alphabet is too large for dense rows), failure links,
//! and pattern-suffix links (`dict_link`) for output enumeration.

use crate::Occurrence;

#[derive(Debug, Clone)]
struct Node {
    /// Sorted `(symbol, child)` pairs.
    children: Vec<(u32, u32)>,
    fail: u32,
    /// Pattern ending exactly at this node, if any.
    pattern: Option<u32>,
    /// Nearest ancestor-via-fail that is a pattern end (output link).
    dict_link: u32,
    depth: u32,
}

const NIL: u32 = u32::MAX;

/// An Aho–Corasick dictionary automaton over `u32` symbols.
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    nodes: Vec<Node>,
    pattern_lens: Vec<u32>,
}

impl AhoCorasick {
    /// Build the automaton. Duplicate patterns keep the first index.
    pub fn new(patterns: &[Vec<u32>]) -> Self {
        let mut nodes = vec![Node {
            children: Vec::new(),
            fail: 0,
            pattern: None,
            dict_link: NIL,
            depth: 0,
        }];
        let mut pattern_lens = Vec::with_capacity(patterns.len());

        // Phase 1: trie (the paper's "goto function").
        for (pid, p) in patterns.iter().enumerate() {
            pattern_lens.push(p.len() as u32);
            let mut v = 0u32;
            for &c in p {
                v = match Self::child_of(&nodes, v, c) {
                    Some(u) => u,
                    None => {
                        let u = nodes.len() as u32;
                        let depth = nodes[v as usize].depth + 1;
                        nodes.push(Node {
                            children: Vec::new(),
                            fail: 0,
                            pattern: None,
                            dict_link: NIL,
                            depth,
                        });
                        let pos = nodes[v as usize]
                            .children
                            .binary_search_by_key(&c, |e| e.0)
                            .unwrap_err();
                        nodes[v as usize].children.insert(pos, (c, u));
                        u
                    }
                };
            }
            if nodes[v as usize].pattern.is_none() {
                nodes[v as usize].pattern = Some(pid as u32);
            }
        }

        // Phase 2: failure links by BFS (the paper's "failure function").
        let mut queue = std::collections::VecDeque::new();
        for &(_, u) in &nodes[0].children {
            queue.push_back(u);
        }
        while let Some(v) = queue.pop_front() {
            let vfail = nodes[v as usize].fail;
            let vpat = nodes[v as usize].pattern;
            nodes[v as usize].dict_link = if nodes[vfail as usize].pattern.is_some() {
                vfail
            } else {
                nodes[vfail as usize].dict_link
            };
            // Borrow juggling: clone the child list (small) to iterate.
            let children = nodes[v as usize].children.clone();
            for (c, u) in children {
                // fail(u) = deepest proper suffix of path(u) in the trie.
                let mut f = vfail;
                let fu = loop {
                    if let Some(w) = Self::child_of(&nodes, f, c) {
                        break w;
                    }
                    if f == 0 {
                        break 0;
                    }
                    f = nodes[f as usize].fail;
                };
                nodes[u as usize].fail = fu;
                queue.push_back(u);
            }
            let _ = vpat;
        }
        Self {
            nodes,
            pattern_lens,
        }
    }

    #[inline]
    fn child_of(nodes: &[Node], v: u32, c: u32) -> Option<u32> {
        let ch = &nodes[v as usize].children;
        ch.binary_search_by_key(&c, |e| e.0).ok().map(|i| ch[i].1)
    }

    #[inline]
    fn step(&self, mut state: u32, c: u32) -> u32 {
        loop {
            if let Some(u) = Self::child_of(&self.nodes, state, c) {
                return u;
            }
            if state == 0 {
                return 0;
            }
            state = self.nodes[state as usize].fail;
        }
    }

    /// Number of automaton states (diagnostics).
    pub fn states(&self) -> usize {
        self.nodes.len()
    }

    /// All occurrences `(start, pattern)`, in scan order.
    pub fn find_all(&self, text: &[u32]) -> Vec<Occurrence> {
        let mut out = Vec::new();
        let mut state = 0u32;
        for (i, &c) in text.iter().enumerate() {
            state = self.step(state, c);
            let mut v = if self.nodes[state as usize].pattern.is_some() {
                state
            } else {
                self.nodes[state as usize].dict_link
            };
            while v != NIL {
                let node = &self.nodes[v as usize];
                let pid = node.pattern.expect("dict chain hits pattern nodes") as usize;
                out.push(Occurrence {
                    start: i + 1 - node.depth as usize,
                    pat: pid,
                });
                v = node.dict_link;
            }
        }
        out
    }

    /// For each text position, the index of the longest pattern that matches
    /// starting there (`None` if no pattern matches). This is the paper's
    /// output format for dictionary matching.
    pub fn longest_match_per_position(&self, text: &[u32]) -> Vec<Option<usize>> {
        let mut best_len = vec![0u32; text.len()];
        let mut best_pat = vec![None; text.len()];
        let mut state = 0u32;
        for (i, &c) in text.iter().enumerate() {
            state = self.step(state, c);
            let mut v = if self.nodes[state as usize].pattern.is_some() {
                state
            } else {
                self.nodes[state as usize].dict_link
            };
            while v != NIL {
                let node = &self.nodes[v as usize];
                let len = node.depth;
                let start = i + 1 - len as usize;
                if len > best_len[start] {
                    best_len[start] = len;
                    best_pat[start] = node.pattern.map(|p| p as usize);
                }
                v = node.dict_link;
            }
        }
        best_pat
    }

    /// For each text position, the length of the longest *dictionary prefix*
    /// (prefix of any pattern) matching there. The test oracle for the
    /// paper's prefix-matching problem (§4, Phase 1). `O(n · m)` — oracle
    /// use only.
    pub fn longest_prefix_per_position(&self, text: &[u32]) -> Vec<usize> {
        (0..text.len())
            .map(|i| {
                let mut v = 0u32;
                let mut depth = 0usize;
                for &c in &text[i..] {
                    match Self::child_of(&self.nodes, v, c) {
                        Some(u) => {
                            v = u;
                            depth += 1;
                        }
                        None => break,
                    }
                }
                depth
            })
            .collect()
    }

    /// Length of pattern `pid`.
    pub fn pattern_len(&self, pid: usize) -> usize {
        self.pattern_lens[pid] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pats(ps: &[&str]) -> Vec<Vec<u32>> {
        ps.iter()
            .map(|s| s.bytes().map(u32::from).collect())
            .collect()
    }

    fn text(s: &str) -> Vec<u32> {
        s.bytes().map(u32::from).collect()
    }

    #[test]
    fn classic_ushers() {
        let ac = AhoCorasick::new(&pats(&["he", "she", "his", "hers"]));
        let mut occ = ac.find_all(&text("ushers"));
        occ.sort();
        assert_eq!(
            occ,
            vec![
                Occurrence { start: 1, pat: 1 }, // she
                Occurrence { start: 2, pat: 0 }, // he
                Occurrence { start: 2, pat: 3 }, // hers
            ]
        );
    }

    #[test]
    fn longest_match_per_position() {
        let ac = AhoCorasick::new(&pats(&["he", "she", "his", "hers"]));
        let got = ac.longest_match_per_position(&text("ushers"));
        assert_eq!(got, vec![None, Some(1), Some(3), None, None, None]);
    }

    #[test]
    fn longest_prefix_oracle() {
        let ac = AhoCorasick::new(&pats(&["abc", "abd", "b"]));
        let got = ac.longest_prefix_per_position(&text("abdxb"));
        // pos0: "abd" len 3; pos1: "b" len 1; pos2: no (d not a start)... d
        // is not a prefix of any pattern → 0; pos3: x → 0; pos4: "b" → 1.
        assert_eq!(got, vec![3, 1, 0, 0, 1]);
    }

    #[test]
    fn overlapping_and_nested_patterns() {
        let ac = AhoCorasick::new(&pats(&["a", "aa", "aaa"]));
        let mut occ = ac.find_all(&text("aaaa"));
        occ.sort();
        assert_eq!(occ.len(), 4 + 3 + 2);
        let lm = ac.longest_match_per_position(&text("aaaa"));
        assert_eq!(lm, vec![Some(2), Some(2), Some(1), Some(0)]);
    }

    #[test]
    fn empty_text_and_no_match() {
        let ac = AhoCorasick::new(&pats(&["xyz"]));
        assert!(ac.find_all(&[]).is_empty());
        assert!(ac.find_all(&text("abcabc")).is_empty());
    }

    #[test]
    fn single_symbol_patterns() {
        let ac = AhoCorasick::new(&pats(&["a", "b"]));
        let occ = ac.find_all(&text("ab"));
        assert_eq!(occ.len(), 2);
    }

    #[test]
    fn duplicate_pattern_reports_first_index() {
        let ac = AhoCorasick::new(&pats(&["ab", "ab"]));
        let occ = ac.find_all(&text("ab"));
        assert_eq!(occ, vec![Occurrence { start: 0, pat: 0 }]);
    }

    #[test]
    fn wide_alphabet_symbols() {
        let p: Vec<Vec<u32>> = vec![vec![1_000_000, 2_000_000]];
        let ac = AhoCorasick::new(&p);
        let t: Vec<u32> = vec![5, 1_000_000, 2_000_000, 1_000_000];
        assert_eq!(ac.find_all(&t), vec![Occurrence { start: 1, pat: 0 }]);
    }

    #[test]
    fn fail_links_cross_patterns() {
        // "abab": after reading "aba" + "b", fail chain must find "bab"? No:
        // patterns "abab" and "bab" overlap; check both are reported.
        let ac = AhoCorasick::new(&pats(&["abab", "bab"]));
        let mut occ = ac.find_all(&text("ababab"));
        occ.sort();
        assert_eq!(
            occ,
            vec![
                Occurrence { start: 0, pat: 0 },
                Occurrence { start: 1, pat: 1 },
                Occurrence { start: 2, pat: 0 },
                Occurrence { start: 3, pat: 1 },
            ]
        );
    }
}
