//! Baker–Bird 2-D matching: the classical sequential baseline for the
//! paper's §5 experiments.
//!
//! For one `m×m` pattern: run Aho–Corasick over the pattern's rows along
//! every text row, producing for each cell the id of the pattern row that
//! *ends* there; then run KMP down each column of row-ids against the
//! pattern's row-id column. `O(n + m²)` per pattern.
//!
//! For a multi-size dictionary of square patterns the construction is run
//! per size group (this is exactly why the paper's single-pass 2-D
//! dictionary matcher is interesting — the baseline pays per distinct size).

use crate::aho_corasick::AhoCorasick;
use crate::kmp::Kmp;
use crate::naive::Grid;

/// Start cells `(r, c)` of all occurrences of square `pat` in `text`.
pub fn find_pattern_2d(text: &Grid, pat: &Grid) -> Vec<(usize, usize)> {
    assert_eq!(pat.rows, pat.cols, "square patterns only");
    let m = pat.rows;
    if m == 0 || m > text.rows || m > text.cols {
        return Vec::new();
    }
    // Deduplicate pattern rows; row id = index of first equal row.
    let rows: Vec<Vec<u32>> = (0..m)
        .map(|r| (0..m).map(|c| pat.at(r, c)).collect())
        .collect();
    let mut uniq: Vec<Vec<u32>> = Vec::new();
    let mut row_id = Vec::with_capacity(m);
    for r in &rows {
        match uniq.iter().position(|u| u == r) {
            Some(i) => row_id.push(i as u32),
            None => {
                uniq.push(r.clone());
                row_id.push((uniq.len() - 1) as u32);
            }
        }
    }
    let ac = AhoCorasick::new(&uniq);

    // ids[r][c] = id of the unique pattern row matching text row r starting
    // at column c (pattern rows have equal length, so at most one matches).
    const NONE: u32 = u32::MAX;
    let mut ids = vec![NONE; text.rows * text.cols];
    for r in 0..text.rows {
        let row: Vec<u32> = (0..text.cols).map(|c| text.at(r, c)).collect();
        for occ in ac.find_all(&row) {
            ids[r * text.cols + occ.start] = occ.pat as u32;
        }
    }

    // Column pass: match the pattern's row-id sequence down each column.
    let kmp = Kmp::new(&row_id);
    let mut out = Vec::new();
    for c in 0..=text.cols.saturating_sub(m) {
        let col: Vec<u32> = (0..text.rows).map(|r| ids[r * text.cols + c]).collect();
        // NONE cells can never equal a row id (< m), so they break matches.
        for r in kmp.find_all(&col) {
            out.push((r, c));
        }
    }
    out.sort_unstable();
    out
}

/// For each text cell, the index of the largest square pattern whose
/// top-left corner matches there. Runs Baker–Bird once per pattern.
pub fn largest_square_pattern_per_cell(patterns: &[Grid], text: &Grid) -> Vec<Option<usize>> {
    let mut best_side = vec![0usize; text.rows * text.cols];
    let mut best_pat: Vec<Option<usize>> = vec![None; text.rows * text.cols];
    for (pid, p) in patterns.iter().enumerate() {
        for (r, c) in find_pattern_2d(text, p) {
            let k = r * text.cols + c;
            if p.rows > best_side[k] {
                best_side[k] = p.rows;
                best_pat[k] = Some(pid);
            }
        }
    }
    best_pat
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    #[test]
    fn finds_planted_occurrence() {
        let mut data = vec![0u32; 25];
        // Plant a 2x2 block of ones at (1,2).
        for (r, c) in [(1, 2), (1, 3), (2, 2), (2, 3)] {
            data[r * 5 + c] = 1;
        }
        let t = Grid::new(5, 5, data);
        let p = Grid::new(2, 2, vec![1, 1, 1, 1]);
        assert_eq!(find_pattern_2d(&t, &p), vec![(1, 2)]);
    }

    #[test]
    fn overlapping_occurrences() {
        let t = Grid::from_fn(4, 4, |_, _| 7);
        let p = Grid::from_fn(2, 2, |_, _| 7);
        let occ = find_pattern_2d(&t, &p);
        assert_eq!(occ.len(), 9);
    }

    #[test]
    fn repeated_rows_in_pattern() {
        // Pattern with duplicate rows exercises row deduplication.
        let p = Grid::new(3, 3, vec![1, 2, 3, 1, 2, 3, 9, 9, 9]);
        let mut data = vec![0u32; 36];
        for i in 0..3 {
            for j in 0..3 {
                data[(2 + i) * 6 + (1 + j)] = p.at(i, j);
            }
        }
        let t = Grid::new(6, 6, data);
        assert_eq!(find_pattern_2d(&t, &p), vec![(2, 1)]);
    }

    #[test]
    fn pattern_larger_than_text() {
        let t = Grid::from_fn(2, 2, |_, _| 1);
        let p = Grid::from_fn(3, 3, |_, _| 1);
        assert!(find_pattern_2d(&t, &p).is_empty());
    }

    #[test]
    fn multi_pattern_agrees_with_naive() {
        let t = Grid::from_fn(8, 8, |r, c| ((r * 31 + c * 17) % 3) as u32);
        let pats: Vec<Grid> = vec![
            Grid::from_fn(1, 1, |_, _| 0),
            Grid::from_fn(2, 2, |r, c| t.at(3 + r, 4 + c)),
            Grid::from_fn(3, 3, |r, c| t.at(2 + r, 2 + c)),
        ];
        let got = largest_square_pattern_per_cell(&pats, &t);
        let want = naive::largest_square_pattern_per_cell(&pats, &t);
        assert_eq!(got, want);
    }
}
