//! Brute-force matchers: slow, obviously correct test oracles.
//!
//! Differential tests across the workspace compare every real matcher
//! against these on small inputs. Nothing here is optimized on purpose —
//! their value is that their correctness is checkable by eye.

/// For each text position, the index of the longest pattern matching there
/// (ties impossible: distinct patterns of equal length cannot both match at
/// one position).
pub fn longest_pattern_per_position(patterns: &[Vec<u32>], text: &[u32]) -> Vec<Option<usize>> {
    (0..text.len())
        .map(|i| {
            let mut best: Option<(usize, usize)> = None; // (len, pat)
            for (pid, p) in patterns.iter().enumerate() {
                if !p.is_empty()
                    && i + p.len() <= text.len()
                    && &text[i..i + p.len()] == p.as_slice()
                {
                    let cand = (p.len(), pid);
                    if best.is_none_or(|b| cand.0 > b.0) {
                        best = Some(cand);
                    }
                }
            }
            best.map(|(_, pid)| pid)
        })
        .collect()
}

/// For each text position, the length of the longest prefix of any pattern
/// matching there (the §4 prefix-matching problem).
pub fn longest_prefix_per_position(patterns: &[Vec<u32>], text: &[u32]) -> Vec<usize> {
    (0..text.len())
        .map(|i| {
            patterns
                .iter()
                .map(|p| {
                    let mut l = 0;
                    while l < p.len() && i + l < text.len() && text[i + l] == p[l] {
                        l += 1;
                    }
                    l
                })
                .max()
                .unwrap_or(0)
        })
        .collect()
}

/// All `(start, pattern)` occurrences, sorted.
pub fn find_all(patterns: &[Vec<u32>], text: &[u32]) -> Vec<crate::Occurrence> {
    let mut out = Vec::new();
    for (pid, p) in patterns.iter().enumerate() {
        if p.is_empty() {
            continue;
        }
        for i in 0..text.len().saturating_sub(p.len() - 1) {
            if &text[i..i + p.len()] == p.as_slice() {
                out.push(crate::Occurrence { start: i, pat: pid });
            }
        }
    }
    out.sort();
    out
}

/// A 2-D array stored row-major.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grid {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<u32>,
}

impl Grid {
    pub fn new(rows: usize, cols: usize, data: Vec<u32>) -> Self {
        assert_eq!(rows * cols, data.len());
        Self { rows, cols, data }
    }

    pub fn from_fn(rows: usize, cols: usize, f: impl Fn(usize, usize) -> u32) -> Self {
        let data = (0..rows * cols).map(|k| f(k / cols, k % cols)).collect();
        Self { rows, cols, data }
    }

    #[inline]
    pub fn at(&self, r: usize, c: usize) -> u32 {
        self.data[r * self.cols + c]
    }

    /// Does `pat` (treated as a subarray) occur with its top-left corner at
    /// `(r, c)`?
    pub fn matches_at(&self, pat: &Grid, r: usize, c: usize) -> bool {
        if r + pat.rows > self.rows || c + pat.cols > self.cols {
            return false;
        }
        for i in 0..pat.rows {
            for j in 0..pat.cols {
                if self.at(r + i, c + j) != pat.at(i, j) {
                    return false;
                }
            }
        }
        true
    }
}

/// For each text cell, the index of the pattern with the largest side
/// matching with its top-left corner there (square patterns).
pub fn largest_square_pattern_per_cell(patterns: &[Grid], text: &Grid) -> Vec<Option<usize>> {
    let mut out = vec![None; text.rows * text.cols];
    for r in 0..text.rows {
        for c in 0..text.cols {
            let mut best: Option<(usize, usize)> = None;
            for (pid, p) in patterns.iter().enumerate() {
                debug_assert_eq!(p.rows, p.cols, "square patterns only");
                if text.matches_at(p, r, c) {
                    let cand = (p.rows, pid);
                    if best.is_none_or(|b| cand.0 > b.0) {
                        best = Some(cand);
                    }
                }
            }
            out[r * text.cols + c] = best.map(|(_, pid)| pid);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Vec<u32> {
        s.bytes().map(u32::from).collect()
    }

    #[test]
    fn longest_pattern_basic() {
        let pats = vec![sym("he"), sym("she"), sym("hers")];
        let got = longest_pattern_per_position(&pats, &sym("ushers"));
        assert_eq!(got, vec![None, Some(1), Some(2), None, None, None]);
    }

    #[test]
    fn longest_prefix_basic() {
        let pats = vec![sym("abc"), sym("b")];
        assert_eq!(
            longest_prefix_per_position(&pats, &sym("abx")),
            vec![2, 1, 0]
        );
    }

    #[test]
    fn find_all_sorted() {
        let pats = vec![sym("a"), sym("aa")];
        let occ = find_all(&pats, &sym("aaa"));
        assert_eq!(occ.len(), 3 + 2);
        assert!(occ.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn grid_match() {
        let t = Grid::from_fn(4, 4, |r, c| ((r + c) % 2) as u32);
        let p = Grid::from_fn(2, 2, |r, c| ((r + c) % 2) as u32);
        assert!(t.matches_at(&p, 0, 0));
        assert!(!t.matches_at(&p, 0, 1)); // checkerboard inverted
        assert!(t.matches_at(&p, 1, 1));
        assert!(!t.matches_at(&p, 3, 3)); // out of range
    }

    #[test]
    fn largest_square_per_cell() {
        let t = Grid::new(3, 3, vec![1, 1, 0, 1, 1, 0, 0, 0, 0]);
        let p1 = Grid::new(1, 1, vec![1]);
        let p2 = Grid::new(2, 2, vec![1, 1, 1, 1]);
        let got = largest_square_pattern_per_cell(&[p1, p2], &t);
        assert_eq!(got[0], Some(1)); // 2x2 of ones at (0,0)
        assert_eq!(got[1], Some(0)); // only 1x1 at (0,1)
        assert_eq!(got[2], None);
        assert_eq!(got[4], Some(0)); // (1,1): 1x1 only (2x2 would need ones)
    }
}
