//! Knuth–Morris–Pratt single-pattern matching \[KMP77\].
//!
//! The single-pattern ancestor of Aho–Corasick; used standalone and as the
//! column-matching stage of Baker–Bird.

/// A preprocessed KMP pattern over `u32` symbols.
#[derive(Debug, Clone)]
pub struct Kmp {
    pattern: Vec<u32>,
    /// `fail[i]` = length of the longest proper border of `pattern[..=i]`.
    fail: Vec<u32>,
}

impl Kmp {
    pub fn new(pattern: &[u32]) -> Self {
        assert!(!pattern.is_empty(), "KMP needs a non-empty pattern");
        let mut fail = vec![0u32; pattern.len()];
        let mut k = 0usize;
        for i in 1..pattern.len() {
            while k > 0 && pattern[k] != pattern[i] {
                k = fail[k - 1] as usize;
            }
            if pattern[k] == pattern[i] {
                k += 1;
            }
            fail[i] = k as u32;
        }
        Self {
            pattern: pattern.to_vec(),
            fail,
        }
    }

    pub fn pattern(&self) -> &[u32] {
        &self.pattern
    }

    /// Start positions of all (possibly overlapping) occurrences.
    pub fn find_all(&self, text: &[u32]) -> Vec<usize> {
        let mut out = Vec::new();
        let mut k = 0usize;
        for (i, &c) in text.iter().enumerate() {
            while k > 0 && self.pattern[k] != c {
                k = self.fail[k - 1] as usize;
            }
            if self.pattern[k] == c {
                k += 1;
            }
            if k == self.pattern.len() {
                out.push(i + 1 - k);
                k = self.fail[k - 1] as usize;
            }
        }
        out
    }

    /// Occurrence bitmap: `out[i]` iff the pattern matches starting at `i`.
    pub fn match_positions(&self, text: &[u32]) -> Vec<bool> {
        let mut out = vec![false; text.len()];
        for s in self.find_all(text) {
            out[s] = true;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Vec<u32> {
        s.bytes().map(u32::from).collect()
    }

    #[test]
    fn finds_overlapping_occurrences() {
        let k = Kmp::new(&sym("aba"));
        assert_eq!(k.find_all(&sym("ababababa")), vec![0, 2, 4, 6]);
    }

    #[test]
    fn failure_function_of_periodic_pattern() {
        let k = Kmp::new(&sym("aabaab"));
        assert_eq!(k.fail, vec![0, 1, 0, 1, 2, 3]);
    }

    #[test]
    fn no_occurrences() {
        let k = Kmp::new(&sym("xyz"));
        assert!(k.find_all(&sym("aaaa")).is_empty());
        assert!(k.find_all(&[]).is_empty());
    }

    #[test]
    fn pattern_equals_text() {
        let k = Kmp::new(&sym("hello"));
        assert_eq!(k.find_all(&sym("hello")), vec![0]);
    }

    #[test]
    fn pattern_longer_than_text() {
        let k = Kmp::new(&sym("abcdef"));
        assert!(k.find_all(&sym("abc")).is_empty());
    }

    #[test]
    fn match_positions_bitmap() {
        let k = Kmp::new(&sym("aa"));
        assert_eq!(k.match_positions(&sym("aaa")), vec![true, true, false]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_pattern_panics() {
        Kmp::new(&[]);
    }
}
