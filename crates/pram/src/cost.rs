//! Explicit PRAM cost model: rounds (time) and operations (work).
//!
//! The SPAA'93 paper states every bound as `O(T)` parallel time and `O(W)`
//! work on an arbitrary-CRCW PRAM. Wall clock on a multicore tells you about
//! constant factors and memory systems, not about those exponents, so the
//! experiment harness validates the bounds against these counters instead:
//! an algorithm calls [`CostModel::round`] once per synchronous parallel
//! step, passing the number of operations the step performs across all
//! (virtual) processors.
//!
//! Counters are atomics so instrumented code can charge costs from inside
//! parallel loops without synchronization beyond the increments themselves.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Accumulates PRAM rounds and work, with an optional per-phase breakdown.
#[derive(Debug, Default)]
pub struct CostModel {
    rounds: AtomicU64,
    work: AtomicU64,
    phases: Mutex<Vec<PhaseStats>>,
}

/// Rounds/work attributed to one named phase of an algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStats {
    pub name: &'static str,
    pub rounds: u64,
    pub work: u64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostSnapshot {
    pub rounds: u64,
    pub work: u64,
}

impl CostSnapshot {
    /// Counter deltas since an earlier snapshot.
    pub fn since(self, earlier: CostSnapshot) -> CostSnapshot {
        CostSnapshot {
            rounds: self.rounds - earlier.rounds,
            work: self.work - earlier.work,
        }
    }
}

impl CostModel {
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge one synchronous parallel round performing `ops` operations.
    #[inline]
    pub fn round(&self, ops: u64) {
        self.rounds.fetch_add(1, Ordering::Relaxed);
        self.work.fetch_add(ops, Ordering::Relaxed);
    }

    /// Charge `k` rounds performing `ops` operations in total.
    ///
    /// Used for primitives whose round count is known analytically (e.g. a
    /// scan of length `n` runs `2⌈log₂ n⌉` rounds and `O(n)` work) but whose
    /// host-side implementation doesn't literally execute round by round.
    #[inline]
    pub fn rounds(&self, k: u64, ops: u64) {
        self.rounds.fetch_add(k, Ordering::Relaxed);
        self.work.fetch_add(ops, Ordering::Relaxed);
    }

    /// Charge extra work to the current round (no time).
    ///
    /// For per-element costs discovered inside a round that was already
    /// charged, e.g. probe chains whose total length is part of the work
    /// bound.
    #[inline]
    pub fn work(&self, ops: u64) {
        self.work.fetch_add(ops, Ordering::Relaxed);
    }

    /// Read the counters.
    pub fn snapshot(&self) -> CostSnapshot {
        CostSnapshot {
            rounds: self.rounds.load(Ordering::Relaxed),
            work: self.work.load(Ordering::Relaxed),
        }
    }

    /// Run `f`, attributing the rounds/work it charges to phase `name`.
    pub fn phase<R>(&self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let before = self.snapshot();
        let r = f();
        let delta = self.snapshot().since(before);
        self.phases.lock().push(PhaseStats {
            name,
            rounds: delta.rounds,
            work: delta.work,
        });
        r
    }

    /// All recorded phases, in execution order. Repeated phase names are
    /// merged (summed), preserving first-occurrence order.
    pub fn phases(&self) -> Vec<PhaseStats> {
        let raw = self.phases.lock();
        let mut merged: Vec<PhaseStats> = Vec::new();
        for p in raw.iter() {
            if let Some(m) = merged.iter_mut().find(|m| m.name == p.name) {
                m.rounds += p.rounds;
                m.work += p.work;
            } else {
                merged.push(p.clone());
            }
        }
        merged
    }

    /// Reset all counters and phases.
    pub fn reset(&self) {
        self.rounds.store(0, Ordering::Relaxed);
        self.work.store(0, Ordering::Relaxed);
        self.phases.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let c = CostModel::new();
        c.round(10);
        c.round(20);
        c.rounds(3, 5);
        c.work(7);
        let s = c.snapshot();
        assert_eq!(s.rounds, 5);
        assert_eq!(s.work, 42);
    }

    #[test]
    fn snapshot_since() {
        let c = CostModel::new();
        c.round(10);
        let a = c.snapshot();
        c.round(5);
        c.round(5);
        let d = c.snapshot().since(a);
        assert_eq!(d.rounds, 2);
        assert_eq!(d.work, 10);
    }

    #[test]
    fn phases_merge_by_name() {
        let c = CostModel::new();
        c.phase("naming", || c.round(4));
        c.phase("extend", || c.round(2));
        c.phase("naming", || c.round(6));
        let ps = c.phases();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].name, "naming");
        assert_eq!(ps[0].rounds, 2);
        assert_eq!(ps[0].work, 10);
        assert_eq!(ps[1].name, "extend");
        assert_eq!(ps[1].work, 2);
    }

    #[test]
    fn reset_clears_everything() {
        let c = CostModel::new();
        c.phase("p", || c.round(1));
        c.reset();
        assert_eq!(c.snapshot(), CostSnapshot::default());
        assert!(c.phases().is_empty());
    }

    #[test]
    fn concurrent_charging_is_consistent() {
        let c = CostModel::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.round(3);
                    }
                });
            }
        });
        let snap = c.snapshot();
        assert_eq!(snap.rounds, 8000);
        assert_eq!(snap.work, 24000);
    }
}
