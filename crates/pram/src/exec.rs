//! Execution policy and data-parallel helpers.
//!
//! Every parallel loop in the workspace is expressed through [`Ctx`] so that
//! (a) the same algorithm code runs sequentially or on any number of threads,
//! and (b) each loop charges the PRAM cost model exactly once per round.
//!
//! The helpers intentionally mirror what an arbitrary-CRCW PRAM step is: a
//! synchronous `for i in 0..n` with independent iterations. Anything fancier
//! (scans, sorts) lives in `pdm-primitives` and is built from these.

use crate::cost::CostModel;
use std::sync::Arc;

/// How to run parallel rounds.
#[derive(Clone)]
pub enum ExecPolicy {
    /// Plain sequential loops. Deterministic; useful for tests and as the
    /// 1-processor reference point in speedup experiments.
    Seq,
    /// The global persistent worker pool (width from `PDM_THREADS`, then
    /// `RAYON_NUM_THREADS`, then the hardware parallelism).
    Par,
    /// A dedicated persistent pool, for thread-count sweeps. Workers spawn
    /// lazily on the first round and park between rounds (DESIGN.md §8).
    Pool(Arc<rayon::ThreadPool>),
}

impl std::fmt::Debug for ExecPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecPolicy::Seq => write!(f, "Seq"),
            ExecPolicy::Par => write!(f, "Par(global)"),
            ExecPolicy::Pool(p) => write!(f, "Pool({} threads)", p.current_num_threads()),
        }
    }
}

impl ExecPolicy {
    /// A dedicated pool with `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        if threads <= 1 {
            return ExecPolicy::Seq;
        }
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("failed to build rayon pool");
        ExecPolicy::Pool(Arc::new(pool))
    }

    /// Number of worker threads this policy will use.
    pub fn threads(&self) -> usize {
        match self {
            ExecPolicy::Seq => 1,
            ExecPolicy::Par => rayon::current_num_threads(),
            ExecPolicy::Pool(p) => p.current_num_threads(),
        }
    }

    #[inline]
    fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        match self {
            ExecPolicy::Seq => f(),
            ExecPolicy::Par => f(),
            ExecPolicy::Pool(p) => p.install(f),
        }
    }
}

/// Execution context threaded through every algorithm: policy + cost model.
#[derive(Clone)]
pub struct Ctx {
    pub exec: ExecPolicy,
    pub cost: Arc<CostModel>,
}

impl Default for Ctx {
    fn default() -> Self {
        Self::seq()
    }
}

/// Minimum items per pool chunk; rounds at or below this run inline on the
/// caller (the pool's adaptive sequential cutoff), and larger rounds are
/// dealt in chunks of at least this many items.
const MIN_CHUNK: usize = 1024;

/// Per-round item-count threshold at or below which parallel policies run
/// the round inline on the caller instead of dispatching to the pool.
///
/// Even a parked persistent pool costs a wake/park handshake per round;
/// for small rounds that overhead exceeds the loop body (BENCH_pool.json:
/// equal_len at width 1 ran *slower* through the pool than sequentially).
/// Overridable with `PDM_PAR_THRESHOLD` (0 disables the fallback).
pub fn par_threshold() -> usize {
    static T: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *T.get_or_init(|| {
        std::env::var("PDM_PAR_THRESHOLD")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(MIN_CHUNK)
    })
}

impl Ctx {
    /// Sequential context with a fresh cost model.
    pub fn seq() -> Self {
        Ctx {
            exec: ExecPolicy::Seq,
            cost: Arc::new(CostModel::new()),
        }
    }

    /// Parallel context (global rayon pool) with a fresh cost model.
    pub fn par() -> Self {
        Ctx {
            exec: ExecPolicy::Par,
            cost: Arc::new(CostModel::new()),
        }
    }

    /// Context with a dedicated `threads`-worker pool.
    pub fn with_threads(threads: usize) -> Self {
        Ctx {
            exec: ExecPolicy::with_threads(threads),
            cost: Arc::new(CostModel::new()),
        }
    }

    /// One PRAM round: `f(i)` for every `i in 0..n`, independent iterations.
    /// Charges 1 round / `n` work.
    pub fn for_each<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync + Send,
    {
        self.cost.round(n as u64);
        if !self.dispatch(n) {
            for i in 0..n {
                f(i);
            }
        } else {
            self.exec.install(|| {
                use rayon::prelude::*;
                (0..n).into_par_iter().with_min_len(MIN_CHUNK).for_each(f);
            })
        }
    }

    /// One PRAM round over `n` host-side items that performs `ops` PRAM
    /// operations in total (used when one host iteration covers several
    /// virtual processors, e.g. a per-pattern loop touching all its blocks).
    /// Charges 1 round / `ops` work. The small-round fallback keys on `ops`
    /// (the real work), not the host-side item count.
    pub fn for_each_ops<F>(&self, n: usize, ops: u64, f: F)
    where
        F: Fn(usize) + Sync + Send,
    {
        self.cost.round(ops);
        if !self.dispatch(usize::try_from(ops).unwrap_or(usize::MAX)) {
            for i in 0..n {
                f(i);
            }
        } else {
            self.exec.install(|| {
                use rayon::prelude::*;
                (0..n).into_par_iter().for_each(f);
            })
        }
    }

    /// One PRAM round over a handful of coarse jobs that together perform
    /// `ops` PRAM operations: `f(i, &mut jobs[i])`. The `&mut` counterpart
    /// of [`Self::for_each_ops`] — the dispatch decision keys on `ops` (the
    /// real work), not the host-side job count, so a round of 2–8 chunk
    /// jobs each covering megabytes still reaches the pool. Charges 1 round
    /// / `ops` work.
    pub fn for_each_mut_ops<T, F>(&self, jobs: &mut [T], ops: u64, f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync + Send,
    {
        self.cost.round(ops);
        if !self.dispatch(usize::try_from(ops).unwrap_or(usize::MAX)) {
            for (i, v) in jobs.iter_mut().enumerate() {
                f(i, v);
            }
        } else {
            self.exec.install(|| {
                use rayon::prelude::*;
                jobs.par_iter_mut().enumerate().for_each(|(i, v)| f(i, v));
            })
        }
    }

    /// One PRAM round producing a vector: `out[i] = f(i)`.
    /// Charges 1 round / `n` work.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync + Send,
    {
        self.cost.round(n as u64);
        if !self.dispatch(n) {
            (0..n).map(f).collect()
        } else {
            self.exec.install(|| {
                use rayon::prelude::*;
                (0..n)
                    .into_par_iter()
                    .with_min_len(MIN_CHUNK)
                    .map(f)
                    .collect()
            })
        }
    }

    /// One PRAM round updating a slice in place: `out[i] = f(i, out[i])`-style
    /// via `&mut` access. Charges 1 round / `len` work.
    pub fn for_each_mut<T, F>(&self, out: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync + Send,
    {
        self.cost.round(out.len() as u64);
        if !self.dispatch(out.len()) {
            for (i, v) in out.iter_mut().enumerate() {
                f(i, v);
            }
        } else {
            self.exec.install(|| {
                use rayon::prelude::*;
                out.par_iter_mut()
                    .with_min_len(MIN_CHUNK)
                    .enumerate()
                    .for_each(|(i, v)| f(i, v));
            })
        }
    }

    /// Parallel reduction in `O(log n)` PRAM rounds / `O(n)` work.
    pub fn reduce<T, F, G>(&self, n: usize, identity: T, eval: F, combine: G) -> T
    where
        T: Send + Sync + Clone,
        F: Fn(usize) -> T + Sync + Send,
        G: Fn(T, T) -> T + Sync + Send,
    {
        self.cost
            .rounds(crate::ceil_log2(n.max(1)) as u64 + 1, n as u64);
        if !self.dispatch(n) {
            (0..n).map(eval).fold(identity, combine)
        } else {
            self.exec.install(|| {
                use rayon::prelude::*;
                (0..n)
                    .into_par_iter()
                    .with_min_len(MIN_CHUNK)
                    .map(eval)
                    .reduce(|| identity.clone(), combine)
            })
        }
    }

    /// Run `f` inside this context's thread pool (for callers that need raw
    /// rayon iterators). Charges nothing; callers charge the model themselves.
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        self.exec.install(f)
    }

    /// Whether rounds actually execute in parallel.
    pub fn is_parallel(&self) -> bool {
        !matches!(self.exec, ExecPolicy::Seq)
    }

    /// Whether a round of `n` items should be handed to the pool at all:
    /// false for sequential policies and for rounds at or below
    /// [`par_threshold`] (the small-round inline fallback).
    #[inline]
    fn dispatch(&self, n: usize) -> bool {
        self.is_parallel() && n > par_threshold()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn ctxs() -> Vec<Ctx> {
        vec![Ctx::seq(), Ctx::par(), Ctx::with_threads(3)]
    }

    #[test]
    fn for_each_touches_every_index() {
        for ctx in ctxs() {
            let hits: Vec<AtomicU64> = (0..5000).map(|_| AtomicU64::new(0)).collect();
            ctx.for_each(5000, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn map_matches_sequential() {
        for ctx in ctxs() {
            let v = ctx.map(4000, |i| i * i);
            assert_eq!(v.len(), 4000);
            assert!(v.iter().enumerate().all(|(i, &x)| x == i * i));
        }
    }

    #[test]
    fn for_each_mut_updates_in_place() {
        for ctx in ctxs() {
            let mut v = vec![0usize; 3000];
            ctx.for_each_mut(&mut v, |i, x| *x = i + 1);
            assert!(v.iter().enumerate().all(|(i, &x)| x == i + 1));
        }
    }

    #[test]
    fn reduce_sums() {
        for ctx in ctxs() {
            let s = ctx.reduce(10_000, 0u64, |i| i as u64, |a, b| a + b);
            assert_eq!(s, 10_000 * 9_999 / 2);
        }
    }

    #[test]
    fn costs_charged_per_round() {
        let ctx = Ctx::seq();
        ctx.for_each(100, |_| {});
        ctx.map(50, |i| i);
        let s = ctx.cost.snapshot();
        assert_eq!(s.rounds, 2);
        assert_eq!(s.work, 150);
    }

    #[test]
    fn with_threads_one_is_seq() {
        assert!(matches!(ExecPolicy::with_threads(1), ExecPolicy::Seq));
        assert_eq!(ExecPolicy::with_threads(4).threads(), 4);
    }

    #[test]
    fn for_each_ops_charges_op_count() {
        let ctx = Ctx::seq();
        ctx.for_each_ops(4, 1000, |_| {});
        let s = ctx.cost.snapshot();
        assert_eq!(s.rounds, 1);
        assert_eq!(s.work, 1000);
    }

    #[test]
    fn for_each_ops_runs_every_item_in_parallel() {
        for ctx in ctxs() {
            let hits: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
            ctx.for_each_ops(100, 5000, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn for_each_mut_ops_updates_every_job() {
        for ctx in ctxs() {
            let mut jobs = vec![0u64; 4];
            ctx.for_each_mut_ops(&mut jobs, 5000, |i, v| *v = i as u64 + 1);
            assert_eq!(jobs, vec![1, 2, 3, 4]);
        }
        let ctx = Ctx::seq();
        let before = ctx.cost.snapshot();
        ctx.for_each_mut_ops(&mut [0u8; 2], 999, |_, _| {});
        let s = ctx.cost.snapshot().since(before);
        assert_eq!(s.rounds, 1);
        assert_eq!(s.work, 999);
    }

    #[test]
    fn pool_policy_reports_thread_count() {
        let ctx = Ctx::with_threads(3);
        assert_eq!(ctx.exec.threads(), 3);
        assert!(ctx.is_parallel());
        assert!(!Ctx::seq().is_parallel());
        // Debug formatting names the variant.
        assert!(format!("{:?}", ctx.exec).contains("3"));
        assert_eq!(format!("{:?}", ExecPolicy::Seq), "Seq");
    }

    #[test]
    fn small_rounds_run_inline_on_caller() {
        if par_threshold() < 8 {
            return; // PDM_PAR_THRESHOLD override disabled the fallback
        }
        let ctx = Ctx::with_threads(2);
        let caller = std::thread::current().id();
        let mut tids = vec![None; 8];
        ctx.for_each_mut(&mut tids, |_, t| *t = Some(std::thread::current().id()));
        assert!(
            tids.iter().all(|t| *t == Some(caller)),
            "sub-threshold round must not dispatch to the pool"
        );
    }

    #[test]
    fn install_runs_inside_pool() {
        let ctx = Ctx::with_threads(2);
        let n = ctx.install(rayon::current_num_threads);
        assert_eq!(n, 2);
    }

    #[test]
    fn empty_rounds_are_fine() {
        for ctx in ctxs() {
            ctx.for_each(0, |_| panic!("must not run"));
            let v: Vec<u8> = ctx.map(0, |_| panic!("must not run"));
            assert!(v.is_empty());
        }
    }
}
