//! # pdm-pram — an arbitrary-CRCW PRAM execution substrate
//!
//! The algorithms in this workspace reproduce *Highly Efficient Dictionary
//! Matching in Parallel* (Muthukrishnan & Palem, SPAA 1993), whose bounds are
//! stated in the arbitrary-CRCW PRAM work–time framework: an algorithm runs in
//! `T` *rounds* (synchronous parallel steps) performing `W` total *operations*.
//!
//! A multicore CPU is not a PRAM, so this crate provides two things:
//!
//! 1. **Execution** ([`exec`]): data-parallel loops (`for_each`, `map`,
//!    `fill`) that run either sequentially or on a rayon thread pool,
//!    selected by [`exec::ExecPolicy`]. Every parallel construct in the
//!    workspace goes through these helpers so experiments can sweep thread
//!    counts and compare against a sequential run of the *same* code.
//! 2. **Cost accounting** ([`cost`]): an explicit model that charges
//!    `time += 1` per round and `work += #operations`, independent of wall
//!    clock. The paper's claims (`O(log m)` time, `O(M + n log m)` work, …)
//!    are validated against these counters, while wall-clock speedups are
//!    reported separately by the benchmark harness.
//!
//! [`crcw`] adds the concurrent-write combinators the model permits
//! (arbitrary winner, priority/min-max winner, common-value claim) on top of
//! atomics, mirroring how the paper resolves concurrent writes.

pub mod cost;
pub mod crcw;
pub mod exec;

pub use cost::{CostModel, CostSnapshot, PhaseStats};
pub use exec::{par_threshold, Ctx, ExecPolicy};

/// `⌈log₂ x⌉` for `x ≥ 1`; `0` for `x ≤ 1`.
///
/// This is the recursion depth of shrink-and-spawn for a longest pattern of
/// length `x`, so it shows up in nearly every bound we validate.
#[inline]
pub fn ceil_log2(x: usize) -> u32 {
    if x <= 1 {
        0
    } else {
        usize::BITS - (x - 1).leading_zeros()
    }
}

/// `⌊log₂ x⌋` for `x ≥ 1`; panics on `0`.
#[inline]
pub fn floor_log2(x: usize) -> u32 {
    assert!(x > 0, "floor_log2(0) is undefined");
    usize::BITS - 1 - x.leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_small_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn floor_log2_small_values() {
        assert_eq!(floor_log2(1), 0);
        assert_eq!(floor_log2(2), 1);
        assert_eq!(floor_log2(3), 1);
        assert_eq!(floor_log2(4), 2);
        assert_eq!(floor_log2(1023), 9);
        assert_eq!(floor_log2(1024), 10);
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn floor_log2_zero_panics() {
        floor_log2(0);
    }

    #[test]
    fn ceil_floor_relation() {
        for x in 1..2000usize {
            let c = ceil_log2(x);
            let f = floor_log2(x);
            assert!(c == f || c == f + 1, "x={x} c={c} f={f}");
            assert!(1usize << f <= x);
            assert!((1usize.checked_shl(c).unwrap_or(usize::MAX)) >= x);
        }
    }
}
