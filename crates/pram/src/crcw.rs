//! Concurrent-write combinators for the arbitrary-CRCW model.
//!
//! The paper's algorithms resolve write conflicts three ways, all of which
//! the arbitrary-CRCW PRAM permits:
//!
//! * **arbitrary** — any single writer wins (used by namestamping: "the
//!   namestamp is the stamp of *one of* the tuples");
//! * **priority / min / max** — the extremal value wins (used when a unique
//!   representative is wanted deterministically);
//! * **claim** — exactly one writer succeeds and learns it did (used to
//!   allocate a fresh name for a key).
//!
//! On hardware these map to relaxed stores, `fetch_min`/`fetch_max`, and
//! compare-and-swap respectively. All operations use relaxed ordering: the
//! algorithms synchronize at round boundaries (the fork/join of each
//! [`crate::exec::Ctx`] round), never through these cells.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Sentinel for an empty `u64` CRCW cell.
pub const EMPTY64: u64 = u64::MAX;
/// Sentinel for an empty `u32` CRCW cell.
pub const EMPTY32: u32 = u32::MAX;

/// Arbitrary-winner write: any one of the concurrent values survives.
#[inline]
pub fn write_arbitrary_u64(cell: &AtomicU64, v: u64) {
    cell.store(v, Ordering::Relaxed);
}

/// Arbitrary-winner write (u32).
#[inline]
pub fn write_arbitrary_u32(cell: &AtomicU32, v: u32) {
    cell.store(v, Ordering::Relaxed);
}

/// Min-priority write: the smallest concurrently written value wins.
#[inline]
pub fn write_min_u64(cell: &AtomicU64, v: u64) {
    cell.fetch_min(v, Ordering::Relaxed);
}

/// Max-priority write: the largest concurrently written value wins.
#[inline]
pub fn write_max_u64(cell: &AtomicU64, v: u64) {
    cell.fetch_max(v, Ordering::Relaxed);
}

/// Min-priority write (u32).
#[inline]
pub fn write_min_u32(cell: &AtomicU32, v: u32) {
    cell.fetch_min(v, Ordering::Relaxed);
}

/// Max-priority write (u32).
#[inline]
pub fn write_max_u32(cell: &AtomicU32, v: u32) {
    cell.fetch_max(v, Ordering::Relaxed);
}

/// First-writer claim on an empty (`EMPTY64`) cell.
///
/// Returns `Ok(())` if this call installed `v`, `Err(current)` with the
/// already-installed value otherwise. Exactly one concurrent claimer of the
/// same cell succeeds.
#[inline]
pub fn claim_u64(cell: &AtomicU64, v: u64) -> Result<(), u64> {
    debug_assert_ne!(v, EMPTY64, "EMPTY64 is reserved");
    match cell.compare_exchange(EMPTY64, v, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => Ok(()),
        Err(cur) => Err(cur),
    }
}

/// First-writer claim (u32); see [`claim_u64`].
#[inline]
pub fn claim_u32(cell: &AtomicU32, v: u32) -> Result<(), u32> {
    debug_assert_ne!(v, EMPTY32, "EMPTY32 is reserved");
    match cell.compare_exchange(EMPTY32, v, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => Ok(()),
        Err(cur) => Err(cur),
    }
}

/// A fixed-size array of CRCW `u32` cells, initialised to `EMPTY32`.
///
/// This is the "auxiliary array `A` of size `M`" pattern from the paper's
/// §4.2: many processors mark cells in one round, a later round reads them.
#[derive(Debug)]
pub struct CrcwArray32 {
    cells: Box<[AtomicU32]>,
}

impl CrcwArray32 {
    pub fn new(n: usize) -> Self {
        let cells = (0..n).map(|_| AtomicU32::new(EMPTY32)).collect();
        Self { cells }
    }

    pub fn len(&self) -> usize {
        self.cells.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    #[inline]
    pub fn get(&self, i: usize) -> Option<u32> {
        let v = self.cells[i].load(Ordering::Relaxed);
        (v != EMPTY32).then_some(v)
    }

    #[inline]
    pub fn write_arbitrary(&self, i: usize, v: u32) {
        write_arbitrary_u32(&self.cells[i], v);
    }

    #[inline]
    pub fn write_min(&self, i: usize, v: u32) {
        // EMPTY32 == u32::MAX, so min-writes into an empty cell behave as
        // plain writes.
        write_min_u32(&self.cells[i], v);
    }

    #[inline]
    pub fn claim(&self, i: usize, v: u32) -> Result<(), u32> {
        claim_u32(&self.cells[i], v)
    }

    /// Extract the contents as `Option<u32>` per cell.
    pub fn to_vec(&self) -> Vec<Option<u32>> {
        self.cells
            .iter()
            .map(|c| {
                let v = c.load(Ordering::Relaxed);
                (v != EMPTY32).then_some(v)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn claim_exactly_one_winner() {
        let cell = AtomicU64::new(EMPTY64);
        let wins = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..16u64 {
                let cell = &cell;
                let wins = &wins;
                s.spawn(move || {
                    if claim_u64(cell, t + 1).is_ok() {
                        wins.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), 1);
        let v = cell.load(Ordering::Relaxed);
        assert!((1..=16).contains(&v));
    }

    #[test]
    fn min_write_keeps_minimum() {
        let cell = AtomicU64::new(EMPTY64);
        std::thread::scope(|s| {
            for t in 0..32u64 {
                let cell = &cell;
                s.spawn(move || write_min_u64(cell, 100 - t));
            }
        });
        assert_eq!(cell.load(Ordering::Relaxed), 69);
    }

    #[test]
    fn max_write_keeps_maximum() {
        let cell = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..32u64 {
                let cell = &cell;
                s.spawn(move || write_max_u64(cell, t));
            }
        });
        assert_eq!(cell.load(Ordering::Relaxed), 31);
    }

    #[test]
    fn crcw_array_marking() {
        let a = CrcwArray32::new(10);
        assert_eq!(a.len(), 10);
        assert!(a.get(3).is_none());
        a.write_arbitrary(3, 7);
        assert_eq!(a.get(3), Some(7));
        a.write_min(3, 5);
        assert_eq!(a.get(3), Some(5));
        a.write_min(3, 9);
        assert_eq!(a.get(3), Some(5));
        assert!(a.claim(4, 1).is_ok());
        assert_eq!(a.claim(4, 2), Err(1));
        let v = a.to_vec();
        assert_eq!(v[3], Some(5));
        assert_eq!(v[4], Some(1));
        assert_eq!(v[0], None);
    }

    #[test]
    fn arbitrary_write_is_one_of_written() {
        let cell = AtomicU32::new(EMPTY32);
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let cell = &cell;
                s.spawn(move || write_arbitrary_u32(cell, t));
            }
        });
        assert!(cell.load(Ordering::Relaxed) < 8);
    }
}
