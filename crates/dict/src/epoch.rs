//! Epoch publication: one swappable `Arc<Snapshot>` slot.
//!
//! Readers pin an epoch by cloning the `Arc` out of the slot — typically
//! once per chunk — and keep matching against that snapshot even if a new
//! epoch is published mid-chunk. Publication is a pointer swap under a
//! short write lock; no reader ever blocks on a rebuild (rebuilds happen
//! in the store *before* `publish`).

use crate::snapshot::Snapshot;
use std::sync::{Arc, RwLock};

/// Shared handle to the current dictionary epoch.
#[derive(Debug)]
pub struct EpochHandle {
    cur: RwLock<Arc<Snapshot>>,
}

impl EpochHandle {
    /// A handle starting at `snapshot`.
    pub fn new(snapshot: Arc<Snapshot>) -> Arc<Self> {
        Arc::new(EpochHandle {
            cur: RwLock::new(snapshot),
        })
    }

    /// Pin the current epoch (cheap: one `Arc` clone under a read lock).
    pub fn load(&self) -> Arc<Snapshot> {
        self.cur.read().expect("epoch lock poisoned").clone()
    }

    /// Current epoch number without pinning.
    pub fn epoch(&self) -> u64 {
        self.load().epoch()
    }

    /// Swap in a new snapshot. In-flight readers keep their pinned `Arc`s;
    /// the next `load` observes the new epoch.
    pub fn publish(&self, snapshot: Arc<Snapshot>) {
        *self.cur.write().expect("epoch lock poisoned") = snapshot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_epoch_survives_publish() {
        let h = EpochHandle::new(Arc::new(Snapshot::build_empty(0)));
        let pinned = h.load();
        h.publish(Arc::new(Snapshot::build_empty(1)));
        assert_eq!(pinned.epoch(), 0, "in-flight reader keeps its epoch");
        assert_eq!(h.load().epoch(), 1, "next load sees the swap");
        assert_eq!(h.epoch(), 1);
    }

    #[test]
    fn concurrent_load_and_publish() {
        let h = EpochHandle::new(Arc::new(Snapshot::build_empty(0)));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let h = h.clone();
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    for _ in 0..1000 {
                        let e = h.load().epoch();
                        assert!(e >= last, "epochs only move forward");
                        last = e;
                    }
                })
            })
            .collect();
        for e in 1..=100 {
            h.publish(Arc::new(Snapshot::build_empty(e)));
        }
        for r in readers {
            r.join().unwrap();
        }
    }
}
