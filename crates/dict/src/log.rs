//! Append-only pattern log: the durable half of the dictionary store.
//!
//! The log is a header followed by CRC-checked records. Add/remove records
//! are appended as updates are *staged*; a commit record seals everything
//! before it into the named epoch. Replaying a log therefore recovers both
//! the committed dictionary (ops up to the last commit record) and the
//! staged-but-uncommitted tail, which is exactly the state a server killed
//! mid-stage would want back.
//!
//! Torn tails are expected (a crash mid-append): replay stops at the first
//! record that is truncated or fails its CRC, and reopening for append
//! truncates the file back to the last good byte. Corruption is never
//! silently skipped — everything after the first bad record is dropped,
//! and the drop is reported to the caller.

use pdm_core::Sym;
use pdm_primitives::codec::{self, CodecError, RecordRead};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// File magic for the pattern log.
pub const LOG_MAGIC: [u8; 4] = *b"PDML";
/// Current log format version.
pub const LOG_VERSION: u32 = 1;

const KIND_ADD: u8 = 1;
const KIND_REMOVE: u8 = 2;
const KIND_COMMIT: u8 = 3;

/// Largest accepted record payload (a pattern of 16M symbols); anything
/// bigger is treated as corruption rather than an allocation request.
const MAX_PAYLOAD: u32 = 64 << 20;

/// One replayed log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    Add(Vec<Sym>),
    Remove(Vec<Sym>),
    /// Seals all preceding records into this epoch.
    Commit(u64),
}

/// Errors opening or replaying a log file: an I/O failure or a framing
/// failure from the shared sidecar codec (bad magic, unknown version).
/// Torn or corrupt *records* are not errors — replay truncates them away
/// and reports the drop (module docs).
#[derive(Debug)]
pub enum LogError {
    Io(io::Error),
    /// Not a readable pattern log: header framing rejected by the codec.
    Corrupt(CodecError),
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogError::Io(e) => write!(f, "log I/O: {e}"),
            LogError::Corrupt(e) => write!(f, "log {e}"),
        }
    }
}

impl std::error::Error for LogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LogError::Io(e) => Some(e),
            LogError::Corrupt(e) => Some(e),
        }
    }
}

impl From<io::Error> for LogError {
    fn from(e: io::Error) -> Self {
        LogError::Io(e)
    }
}

impl From<CodecError> for LogError {
    fn from(e: CodecError) -> Self {
        LogError::Corrupt(e)
    }
}

/// CRC-32 (IEEE 802.3, reflected) — the workspace-shared implementation,
/// re-exported here because the record format documents it.
pub use pdm_primitives::crc32;

fn pattern_payload(pattern: &[Sym]) -> Vec<u8> {
    let mut v = Vec::with_capacity(pattern.len() * 4);
    for &s in pattern {
        v.extend_from_slice(&s.to_le_bytes());
    }
    v
}

fn payload_pattern(payload: &[u8]) -> Option<Vec<Sym>> {
    if !payload.len().is_multiple_of(4) {
        return None;
    }
    Some(
        payload
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect(),
    )
}

/// Encode one record through the shared codec framing:
/// `[kind u8][len u32][crc u32][payload]`, CRC over the kind byte and the
/// payload — byte-identical to the pre-codec writer.
pub fn encode_record(rec: &Record) -> Vec<u8> {
    let (kind, payload) = match rec {
        Record::Add(p) => (KIND_ADD, pattern_payload(p)),
        Record::Remove(p) => (KIND_REMOVE, pattern_payload(p)),
        Record::Commit(e) => (KIND_COMMIT, e.to_le_bytes().to_vec()),
    };
    let mut out = Vec::with_capacity(codec::RECORD_HEADER_LEN + payload.len());
    codec::write_record(&mut out, kind, &payload);
    out
}

/// Outcome of replaying a log file.
#[derive(Debug)]
pub struct Replay {
    pub records: Vec<Record>,
    /// Byte offset of the end of the last good record (append position).
    pub good_len: u64,
    /// Bytes discarded past `good_len` (torn or corrupt tail), 0 if clean.
    pub truncated: u64,
}

/// Replay every good record from `bytes` (header included). Header and
/// record framing both go through the shared codec; a torn or CRC-bad
/// record stops replay and everything after it is reported as truncated.
pub fn replay_bytes(bytes: &[u8]) -> Result<Replay, LogError> {
    let version = codec::read_header(bytes, LOG_MAGIC)?;
    codec::require_version(version, LOG_VERSION)?;
    let mut records = Vec::new();
    let mut at = codec::HEADER_LEN;
    // Torn tail (crash mid-append) or bit rot: either way, stop at the
    // first bad record and drop the rest — never skip past it.
    while let RecordRead::Ok(framed) = codec::read_record(&bytes[at..], MAX_PAYLOAD as usize) {
        let payload = framed.payload;
        let rec = match framed.kind {
            KIND_ADD => payload_pattern(payload).map(Record::Add),
            KIND_REMOVE => payload_pattern(payload).map(Record::Remove),
            KIND_COMMIT if payload.len() == 8 => {
                let mut e = [0u8; 8];
                e.copy_from_slice(payload);
                Some(Record::Commit(u64::from_le_bytes(e)))
            }
            _ => None,
        };
        match rec {
            Some(r) => records.push(r),
            None => break, // unknown kind / malformed payload
        }
        at += framed.consumed;
    }
    Ok(Replay {
        records,
        good_len: at as u64,
        truncated: (bytes.len() - at) as u64,
    })
}

/// An open log file positioned for appending.
#[derive(Debug)]
pub struct LogFile {
    file: File,
}

impl LogFile {
    /// Create a fresh log (truncating any existing file) with just a header.
    pub fn create(path: &Path) -> Result<Self, LogError> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .read(true)
            .open(path)?;
        let mut header = Vec::with_capacity(codec::HEADER_LEN);
        codec::write_header(&mut header, LOG_MAGIC, LOG_VERSION);
        file.write_all(&header)?;
        file.sync_data()?;
        Ok(LogFile { file })
    }

    /// Open an existing log (or create an empty one), replaying its records.
    /// A torn or corrupt tail is truncated away before appending resumes.
    pub fn open(path: &Path) -> Result<(Self, Replay), LogError> {
        if !path.exists() {
            let log = Self::create(path)?;
            return Ok((
                log,
                Replay {
                    records: Vec::new(),
                    good_len: 8,
                    truncated: 0,
                },
            ));
        }
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let replay = replay_bytes(&bytes)?;
        if replay.truncated > 0 {
            file.set_len(replay.good_len)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(replay.good_len))?;
        Ok((LogFile { file }, replay))
    }

    /// Append one record (no fsync; call [`LogFile::sync`] to make durable).
    pub fn append(&mut self, rec: &Record) -> Result<(), LogError> {
        self.file.write_all(&encode_record(rec))?;
        Ok(())
    }

    /// Flush appended records to stable storage.
    pub fn sync(&mut self) -> Result<(), LogError> {
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(records: &[Record]) -> Replay {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&LOG_MAGIC);
        bytes.extend_from_slice(&LOG_VERSION.to_le_bytes());
        for r in records {
            bytes.extend_from_slice(&encode_record(r));
        }
        replay_bytes(&bytes).unwrap()
    }

    #[test]
    fn records_roundtrip() {
        let recs = vec![
            Record::Add(vec![1, 2, 3]),
            Record::Remove(vec![1, 2, 3]),
            Record::Commit(7),
        ];
        let replay = roundtrip(&recs);
        assert_eq!(replay.records, recs);
        assert_eq!(replay.truncated, 0);
    }

    #[test]
    fn torn_tail_is_dropped() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&LOG_MAGIC);
        bytes.extend_from_slice(&LOG_VERSION.to_le_bytes());
        bytes.extend_from_slice(&encode_record(&Record::Add(vec![9, 9])));
        let good = bytes.len() as u64;
        let torn = encode_record(&Record::Commit(1));
        bytes.extend_from_slice(&torn[..torn.len() - 3]);
        let replay = replay_bytes(&bytes).unwrap();
        assert_eq!(replay.records, vec![Record::Add(vec![9, 9])]);
        assert_eq!(replay.good_len, good);
        assert!(replay.truncated > 0);
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&LOG_MAGIC);
        bytes.extend_from_slice(&LOG_VERSION.to_le_bytes());
        bytes.extend_from_slice(&encode_record(&Record::Add(vec![1])));
        let mut bad = encode_record(&Record::Add(vec![2]));
        let n = bad.len();
        bad[n - 1] ^= 0xFF; // flip a payload bit
        bytes.extend_from_slice(&bad);
        bytes.extend_from_slice(&encode_record(&Record::Commit(1)));
        let replay = replay_bytes(&bytes).unwrap();
        assert_eq!(replay.records, vec![Record::Add(vec![1])]);
        assert!(replay.truncated > 0, "corrupt record and everything after");
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(
            replay_bytes(b"NOPE\x01\x00\x00\x00"),
            Err(LogError::Corrupt(CodecError::BadMagic { .. }))
        ));
        let mut v9 = Vec::new();
        codec::write_header(&mut v9, LOG_MAGIC, 9);
        assert!(matches!(
            replay_bytes(&v9),
            Err(LogError::Corrupt(CodecError::VersionMismatch { .. }))
        ));
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
