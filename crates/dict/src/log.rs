//! Append-only pattern log: the durable half of the dictionary store.
//!
//! The log is a header followed by CRC-checked records. Add/remove records
//! are appended as updates are *staged*; a commit record seals everything
//! before it into the named epoch. Replaying a log therefore recovers both
//! the committed dictionary (ops up to the last commit record) and the
//! staged-but-uncommitted tail, which is exactly the state a server killed
//! mid-stage would want back.
//!
//! Torn tails are expected (a crash mid-append): replay stops at the first
//! record that is truncated or fails its CRC, and reopening for append
//! truncates the file back to the last good byte. Corruption is never
//! silently skipped — everything after the first bad record is dropped,
//! and the drop is reported to the caller.

use pdm_core::Sym;
use pdm_primitives::codec::{self, CodecError, RecordRead};
use pdm_primitives::vfs::{self, VfsFile};
use std::io::{self, SeekFrom};
use std::path::Path;

/// File magic for the pattern log.
pub const LOG_MAGIC: [u8; 4] = *b"PDML";
/// Current log format version.
pub const LOG_VERSION: u32 = 1;

const KIND_ADD: u8 = 1;
const KIND_REMOVE: u8 = 2;
const KIND_COMMIT: u8 = 3;

/// Largest accepted record payload (a pattern of 16M symbols); anything
/// bigger is treated as corruption rather than an allocation request.
const MAX_PAYLOAD: u32 = 64 << 20;

/// One replayed log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    Add(Vec<Sym>),
    Remove(Vec<Sym>),
    /// Seals all preceding records into this epoch.
    Commit(u64),
}

/// Errors opening or replaying a log file: an I/O failure or a framing
/// failure from the shared sidecar codec (bad magic, unknown version).
/// Torn or corrupt *records* are not errors — replay truncates them away
/// and reports the drop (module docs).
#[derive(Debug)]
pub enum LogError {
    Io(io::Error),
    /// Not a readable pattern log: header framing rejected by the codec.
    Corrupt(CodecError),
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogError::Io(e) => write!(f, "log I/O: {e}"),
            LogError::Corrupt(e) => write!(f, "log {e}"),
        }
    }
}

impl std::error::Error for LogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LogError::Io(e) => Some(e),
            LogError::Corrupt(e) => Some(e),
        }
    }
}

impl From<io::Error> for LogError {
    fn from(e: io::Error) -> Self {
        LogError::Io(e)
    }
}

impl From<CodecError> for LogError {
    fn from(e: CodecError) -> Self {
        LogError::Corrupt(e)
    }
}

/// CRC-32 (IEEE 802.3, reflected) — the workspace-shared implementation,
/// re-exported here because the record format documents it.
pub use pdm_primitives::crc32;

fn pattern_payload(pattern: &[Sym]) -> Vec<u8> {
    let mut v = Vec::with_capacity(pattern.len() * 4);
    for &s in pattern {
        v.extend_from_slice(&s.to_le_bytes());
    }
    v
}

fn payload_pattern(payload: &[u8]) -> Option<Vec<Sym>> {
    if !payload.len().is_multiple_of(4) {
        return None;
    }
    Some(
        payload
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect(),
    )
}

/// Encode one record through the shared codec framing:
/// `[kind u8][len u32][crc u32][payload]`, CRC over the kind byte and the
/// payload — byte-identical to the pre-codec writer.
pub fn encode_record(rec: &Record) -> Vec<u8> {
    let (kind, payload) = match rec {
        Record::Add(p) => (KIND_ADD, pattern_payload(p)),
        Record::Remove(p) => (KIND_REMOVE, pattern_payload(p)),
        Record::Commit(e) => (KIND_COMMIT, e.to_le_bytes().to_vec()),
    };
    let mut out = Vec::with_capacity(codec::RECORD_HEADER_LEN + payload.len());
    codec::write_record(&mut out, kind, &payload);
    out
}

/// Why a replay stopped before the end of the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailFault {
    /// The file ends mid-record: the classic crash-during-append shape.
    Torn,
    /// A complete record failed its CRC (or framing) — bit rot, or a
    /// torn write that happened to span record boundaries.
    Corrupt(CodecError),
    /// The file is shorter than the 8-byte header: a crash tore the
    /// initial header write of a brand-new log (no records can exist
    /// before the header, so nothing is lost by rewriting it).
    TornHeader,
}

impl std::fmt::Display for TailFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Torn => write!(f, "torn tail (incomplete final record)"),
            Self::Corrupt(e) => write!(f, "corrupt record ({e})"),
            Self::TornHeader => write!(f, "torn header (crash creating the log)"),
        }
    }
}

/// The typed recovery report surfaced when replay had to drop a tail:
/// what was kept, what was dropped, and why. "Recovered" is literal —
/// the log is usable after truncating to `good_len`; nothing before it
/// was lost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredTornTail {
    /// Bytes dropped past the last good record.
    pub dropped_bytes: u64,
    /// Records that survived (everything before the fault).
    pub kept_records: usize,
    /// What the tail looked like.
    pub fault: TailFault,
}

impl std::fmt::Display for RecoveredTornTail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: dropped {} bytes, kept {} records",
            self.fault, self.dropped_bytes, self.kept_records
        )
    }
}

/// Outcome of replaying a log file.
#[derive(Debug)]
pub struct Replay {
    pub records: Vec<Record>,
    /// Byte offset of the end of the last good record (append position).
    pub good_len: u64,
    /// Bytes discarded past `good_len` (torn or corrupt tail), 0 if clean.
    pub truncated: u64,
    /// Typed report when `truncated > 0`: why the tail was dropped.
    pub recovery: Option<RecoveredTornTail>,
}

/// Replay every good record from `bytes` (header included). Header and
/// record framing both go through the shared codec; a torn or CRC-bad
/// record stops replay and everything after it is reported as truncated.
pub fn replay_bytes(bytes: &[u8]) -> Result<Replay, LogError> {
    let version = codec::read_header(bytes, LOG_MAGIC)?;
    codec::require_version(version, LOG_VERSION)?;
    let mut records = Vec::new();
    let mut at = codec::HEADER_LEN;
    // Torn tail (crash mid-append) or bit rot: either way, stop at the
    // first bad record and drop the rest — never skip past it.
    let mut fault = None;
    while at < bytes.len() {
        match codec::read_record(&bytes[at..], MAX_PAYLOAD as usize) {
            RecordRead::Ok(framed) => {
                let payload = framed.payload;
                let rec = match framed.kind {
                    KIND_ADD => payload_pattern(payload).map(Record::Add),
                    KIND_REMOVE => payload_pattern(payload).map(Record::Remove),
                    KIND_COMMIT if payload.len() == 8 => {
                        let mut e = [0u8; 8];
                        e.copy_from_slice(payload);
                        Some(Record::Commit(u64::from_le_bytes(e)))
                    }
                    _ => None,
                };
                match rec {
                    Some(r) => records.push(r),
                    None => {
                        // CRC-valid framing around an unreadable record:
                        // not a torn write, so report it as corruption.
                        fault = Some(TailFault::Corrupt(CodecError::Corrupt(format!(
                            "unreadable record kind {} at offset {at}",
                            framed.kind
                        ))));
                        break;
                    }
                }
                at += framed.consumed;
            }
            RecordRead::Torn => {
                fault = Some(TailFault::Torn);
                break;
            }
            RecordRead::Bad(e) => {
                fault = Some(TailFault::Corrupt(e));
                break;
            }
        }
    }
    let truncated = (bytes.len() - at) as u64;
    Ok(Replay {
        good_len: at as u64,
        truncated,
        recovery: fault.map(|fault| RecoveredTornTail {
            dropped_bytes: truncated,
            kept_records: records.len(),
            fault,
        }),
        records,
    })
}

/// An open log file positioned for appending. All I/O goes through the
/// [`pdm_primitives::vfs`] plane, so the crash-chaos suite can fail or
/// tear any individual operation.
#[derive(Debug)]
pub struct LogFile {
    file: VfsFile,
}

impl LogFile {
    /// Create a fresh log (truncating any existing file) with just a
    /// header, durably: the header is fsynced and so is the parent
    /// directory (a crash right after `create` must not lose the file).
    pub fn create(path: &Path) -> Result<Self, LogError> {
        let mut file = VfsFile::create(path)?;
        let mut header = Vec::with_capacity(codec::HEADER_LEN);
        codec::write_header(&mut header, LOG_MAGIC, LOG_VERSION);
        file.write_all(&header)?;
        file.sync_data()?;
        vfs::sync_parent_dir(path)?;
        Ok(LogFile { file })
    }

    /// Open an existing log (or create an empty one), replaying its records.
    /// A torn or corrupt tail is truncated away before appending resumes,
    /// and the drop is reported as a typed [`RecoveredTornTail`]. A file
    /// shorter than the header (a crash tore the initial create) is
    /// rewritten as an empty log rather than rejected — nothing could
    /// have been appended before the header was durable.
    pub fn open(path: &Path) -> Result<(Self, Replay), LogError> {
        if !path.exists() {
            let log = Self::create(path)?;
            return Ok((
                log,
                Replay {
                    records: Vec::new(),
                    good_len: 8,
                    truncated: 0,
                    recovery: None,
                },
            ));
        }
        let bytes = vfs::read(path)?;
        if bytes.len() < codec::HEADER_LEN {
            let dropped = bytes.len() as u64;
            let log = Self::create(path)?;
            return Ok((
                log,
                Replay {
                    records: Vec::new(),
                    good_len: 8,
                    truncated: dropped,
                    recovery: Some(RecoveredTornTail {
                        dropped_bytes: dropped,
                        kept_records: 0,
                        fault: TailFault::TornHeader,
                    }),
                },
            ));
        }
        let replay = replay_bytes(&bytes)?;
        let mut file = VfsFile::open_rw(path)?;
        if replay.truncated > 0 {
            file.set_len(replay.good_len)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(replay.good_len))?;
        Ok((LogFile { file }, replay))
    }

    /// Append one record (no fsync; call [`LogFile::sync`] to make durable).
    pub fn append(&mut self, rec: &Record) -> Result<(), LogError> {
        self.file.write_all(&encode_record(rec))?;
        Ok(())
    }

    /// Flush appended records to stable storage.
    pub fn sync(&mut self) -> Result<(), LogError> {
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(records: &[Record]) -> Replay {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&LOG_MAGIC);
        bytes.extend_from_slice(&LOG_VERSION.to_le_bytes());
        for r in records {
            bytes.extend_from_slice(&encode_record(r));
        }
        replay_bytes(&bytes).unwrap()
    }

    #[test]
    fn records_roundtrip() {
        let recs = vec![
            Record::Add(vec![1, 2, 3]),
            Record::Remove(vec![1, 2, 3]),
            Record::Commit(7),
        ];
        let replay = roundtrip(&recs);
        assert_eq!(replay.records, recs);
        assert_eq!(replay.truncated, 0);
    }

    #[test]
    fn torn_tail_is_dropped() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&LOG_MAGIC);
        bytes.extend_from_slice(&LOG_VERSION.to_le_bytes());
        bytes.extend_from_slice(&encode_record(&Record::Add(vec![9, 9])));
        let good = bytes.len() as u64;
        let torn = encode_record(&Record::Commit(1));
        bytes.extend_from_slice(&torn[..torn.len() - 3]);
        let replay = replay_bytes(&bytes).unwrap();
        assert_eq!(replay.records, vec![Record::Add(vec![9, 9])]);
        assert_eq!(replay.good_len, good);
        assert!(replay.truncated > 0);
        let rec = replay.recovery.expect("typed recovery report");
        assert_eq!(rec.fault, TailFault::Torn);
        assert_eq!(rec.kept_records, 1);
        assert_eq!(rec.dropped_bytes, replay.truncated);
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&LOG_MAGIC);
        bytes.extend_from_slice(&LOG_VERSION.to_le_bytes());
        bytes.extend_from_slice(&encode_record(&Record::Add(vec![1])));
        let mut bad = encode_record(&Record::Add(vec![2]));
        let n = bad.len();
        bad[n - 1] ^= 0xFF; // flip a payload bit
        bytes.extend_from_slice(&bad);
        bytes.extend_from_slice(&encode_record(&Record::Commit(1)));
        let replay = replay_bytes(&bytes).unwrap();
        assert_eq!(replay.records, vec![Record::Add(vec![1])]);
        assert!(replay.truncated > 0, "corrupt record and everything after");
        let rec = replay.recovery.expect("typed recovery report");
        assert!(matches!(rec.fault, TailFault::Corrupt(_)), "{rec}");
    }

    #[test]
    fn clean_replay_reports_no_recovery() {
        let replay = roundtrip(&[Record::Add(vec![5]), Record::Commit(1)]);
        assert!(replay.recovery.is_none());
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(
            replay_bytes(b"NOPE\x01\x00\x00\x00"),
            Err(LogError::Corrupt(CodecError::BadMagic { .. }))
        ));
        let mut v9 = Vec::new();
        codec::write_header(&mut v9, LOG_MAGIC, 9);
        assert!(matches!(
            replay_bytes(&v9),
            Err(LogError::Corrupt(CodecError::VersionMismatch { .. }))
        ));
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
