//! `pdm-dict`: the versioned dictionary store behind live updates.
//!
//! The paper's §6 (Theorems 7–10) makes the *matcher* dynamic; this crate
//! makes the *service* dynamic. It layers three pieces between the core
//! matchers and the streaming server:
//!
//! * [`log`] / [`DictStore`] — an append-only, CRC-checked pattern log
//!   with staged adds/removes, epoch-sealing commits, torn-tail recovery
//!   and compaction (which also emits a loadable snapshot file);
//! * [`Snapshot`] — one immutable epoch: canonical pattern ids, a matcher,
//!   and all-matches expansion chains, identical bytes and identical match
//!   output whichever rebuild path produced it;
//! * [`EpochHandle`] — the `Arc`-swap slot readers pin per chunk, so
//!   in-flight work finishes against its starting epoch while new work
//!   observes the published one.
//!
//! The rebuild policy lives in [`DictStore::commit`]: small batches go
//! through the core `DynamicMatcher` (the §6 incremental path), large
//! batches trigger a full parallel `StaticMatcher` rebuild on the pool.
//!
//! ```
//! use pdm_dict::{DictStore, EpochHandle};
//! use pdm_core::dict::to_symbols;
//! use pdm_pram::Ctx;
//!
//! let ctx = Ctx::seq();
//! let mut store = DictStore::in_memory();
//! store.stage_add(&to_symbols("he")).unwrap();
//! store.stage_add(&to_symbols("she")).unwrap();
//! let first = store.commit(&ctx).unwrap();
//! let handle = EpochHandle::new(first.snapshot);
//!
//! let pinned = handle.load(); // a chunk pins its epoch…
//! store.stage_add(&to_symbols("hers")).unwrap();
//! handle.publish(store.commit(&ctx).unwrap().snapshot); // …while we swap
//! assert_eq!(pinned.epoch(), 1);
//! assert_eq!(handle.load().epoch(), 2);
//! assert_eq!(handle.load().pattern_count(), 3);
//! ```

pub mod epoch;
pub mod fsck;
pub mod log;
pub mod snapshot;
pub mod store;

pub use epoch::EpochHandle;
pub use fsck::{fsck_store, Finding, FsckReport, Severity};
pub use log::{RecoveredTornTail, TailFault};
pub use snapshot::{inspect, SnapError, SnapInfo, Snapshot, SnapshotPath};
pub use store::{
    BootFallback, BootOutcome, CommitOutcome, CompactReport, DictStore, StoreError,
    DEFAULT_REBUILD_THRESHOLD,
};
