//! Immutable matcher snapshots with a canonical identity.
//!
//! A [`Snapshot`] is one epoch of the dictionary, frozen: a canonical
//! pattern list (ids are positions in that list), a matcher over it, and
//! the longest-proper-prefix chains needed to expand longest-match output
//! into *all* matches per position. Snapshots are what the serving layer
//! pins per chunk — they never change after construction, so a session can
//! finish a chunk against the epoch it started with while the store
//! publishes a successor.
//!
//! The same committed pattern set always yields the same canonical bytes
//! ([`Snapshot::to_bytes`]) no matter which rebuild path produced the
//! snapshot: the serialization covers `(epoch, patterns-in-canonical-order)`
//! and nothing matcher-internal, which is what makes the
//! incremental-vs-full differential test meaningful (`store.rs`).

use pdm_core::dynamic::DynamicMatcher;
use pdm_core::{BuildError, Matcher, PatId, StaticMatcher, Sym, TextScratch};
use pdm_pram::Ctx;
use pdm_primitives::FxHashMap;
use std::sync::Arc;

/// File magic for serialized snapshots.
pub const SNAP_MAGIC: [u8; 4] = *b"PDMS";
/// Current snapshot format version.
pub const SNAP_VERSION: u32 = 1;

/// Which rebuild path produced a snapshot (diagnostics; both paths are
/// behaviorally identical).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotPath {
    /// Batch applied through the §6 `DynamicMatcher` (Theorems 7–10).
    Incremental,
    /// Full parallel `StaticMatcher` rebuild on the pool (Theorem 3).
    FullRebuild,
}

enum SnapInner {
    /// Canonical ids equal the build-order ids of the static matcher.
    Static(Arc<StaticMatcher>),
    /// A frozen clone of the store's dynamic matcher; `remap` translates
    /// its native slot ids into canonical ids.
    Dynamic {
        m: Box<DynamicMatcher>,
        remap: FxHashMap<PatId, u32>,
    },
}

impl std::fmt::Debug for SnapInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapInner::Static(_) => write!(f, "Static"),
            SnapInner::Dynamic { .. } => write!(f, "Dynamic"),
        }
    }
}

/// One immutable epoch of the dictionary.
#[derive(Debug)]
pub struct Snapshot {
    epoch: u64,
    /// Canonical id → pattern length.
    lens: Vec<u32>,
    /// Canonical pattern list; `None` when wrapped around a bare index
    /// (pattern texts unknown — the snapshot still matches, but cannot be
    /// re-serialized).
    patterns: Option<Vec<Vec<Sym>>>,
    /// Canonical id → longest pattern that is a proper prefix of it.
    chains: Vec<Option<u32>>,
    max_len: usize,
    inner: SnapInner,
    path: SnapshotPath,
}

/// Longest-proper-prefix chains over a canonical pattern list, computed
/// from the texts (matcher-agnostic, unlike `pdm_core::allmatches` which
/// reads the static tables).
fn chains_of(patterns: &[Vec<Sym>]) -> Vec<Option<u32>> {
    let mut idx: FxHashMap<&[Sym], u32> = FxHashMap::default();
    for (i, p) in patterns.iter().enumerate() {
        idx.insert(p.as_slice(), i as u32);
    }
    patterns
        .iter()
        .map(|p| (1..p.len()).rev().find_map(|l| idx.get(&p[..l]).copied()))
        .collect()
}

impl Snapshot {
    /// Build the static-path snapshot (full parallel rebuild). Empty
    /// dictionaries fall back to an empty dynamic matcher — the §4 build
    /// rejects zero patterns, an empty epoch is still a valid epoch.
    pub fn build_static(
        ctx: &Ctx,
        epoch: u64,
        patterns: Vec<Vec<Sym>>,
    ) -> Result<Self, BuildError> {
        if patterns.is_empty() {
            let mut s = Self::build_empty(epoch);
            s.path = SnapshotPath::FullRebuild;
            return Ok(s);
        }
        let m = StaticMatcher::build(ctx, &patterns)?;
        Ok(Snapshot {
            epoch,
            lens: patterns.iter().map(|p| p.len() as u32).collect(),
            chains: chains_of(&patterns),
            max_len: patterns.iter().map(Vec::len).max().unwrap_or(0),
            patterns: Some(patterns),
            inner: SnapInner::Static(Arc::new(m)),
            path: SnapshotPath::FullRebuild,
        })
    }

    /// Freeze a clone of the store's dynamic matcher as the incremental-path
    /// snapshot. `native` gives the dynamic matcher's slot id for each
    /// canonical position.
    pub fn from_dynamic(
        epoch: u64,
        m: DynamicMatcher,
        patterns: Vec<Vec<Sym>>,
        native: &[PatId],
    ) -> Self {
        debug_assert_eq!(patterns.len(), native.len());
        let remap: FxHashMap<PatId, u32> = native
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i as u32))
            .collect();
        Snapshot {
            epoch,
            lens: patterns.iter().map(|p| p.len() as u32).collect(),
            chains: chains_of(&patterns),
            max_len: patterns.iter().map(Vec::len).max().unwrap_or(0),
            patterns: Some(patterns),
            inner: SnapInner::Dynamic {
                m: Box::new(m),
                remap,
            },
            path: SnapshotPath::Incremental,
        }
    }

    /// An empty epoch (no patterns; matches nothing).
    pub fn build_empty(epoch: u64) -> Self {
        Snapshot {
            epoch,
            lens: Vec::new(),
            patterns: Some(Vec::new()),
            chains: Vec::new(),
            max_len: 0,
            inner: SnapInner::Dynamic {
                m: Box::new(DynamicMatcher::new()),
                remap: FxHashMap::default(),
            },
            path: SnapshotPath::Incremental,
        }
    }

    /// Wrap a prebuilt static matcher (e.g. a loaded `PDM1` index) as
    /// epoch `epoch`. Pattern texts are unknown, so the snapshot cannot be
    /// serialized, but matching and all-matches expansion work — the
    /// chains come from the static tables.
    pub fn from_static(epoch: u64, m: Arc<StaticMatcher>) -> Self {
        let chains = pdm_core::allmatches::pattern_chains(&m).chain;
        let k = m.pattern_count();
        Snapshot {
            epoch,
            lens: (0..k as PatId).map(|p| m.pattern_len(p)).collect(),
            patterns: None,
            chains,
            max_len: m.max_pattern_len(),
            inner: SnapInner::Static(m),
            path: SnapshotPath::FullRebuild,
        }
    }

    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Which rebuild path produced this snapshot.
    pub fn path(&self) -> SnapshotPath {
        self.path
    }

    pub fn pattern_count(&self) -> usize {
        self.lens.len()
    }

    pub fn max_pattern_len(&self) -> usize {
        self.max_len
    }

    /// Length of canonical pattern `p`.
    pub fn pattern_len(&self, p: PatId) -> u32 {
        self.lens[p as usize]
    }

    /// Canonical pattern list, if known.
    pub fn patterns(&self) -> Option<&[Vec<Sym>]> {
        self.patterns.as_deref()
    }

    /// The matcher backing this epoch.
    pub fn matcher(&self) -> &dyn Matcher {
        match &self.inner {
            SnapInner::Static(m) => m.as_ref(),
            SnapInner::Dynamic { m, .. } => m.as_ref(),
        }
    }

    #[inline]
    fn to_canon(&self, native: PatId) -> PatId {
        match &self.inner {
            SnapInner::Static(_) => native,
            SnapInner::Dynamic { remap, .. } => remap[&native],
        }
    }

    /// Every `(position, canonical pattern)` occurrence in `text`, sorted
    /// by position then pattern id — the same contract as
    /// [`StaticMatcher::find_all`], but canonical ids, so results are
    /// identical whichever rebuild path produced the snapshot.
    pub fn find_all(&self, ctx: &Ctx, text: &[Sym]) -> Vec<(usize, PatId)> {
        let mut scratch = TextScratch::new();
        let mut v = Vec::new();
        self.find_all_into(ctx, text, &mut scratch, &mut v);
        v
    }

    /// [`Self::find_all`] into caller-owned buffers. On the static path the
    /// whole match reuses `scratch` (zero steady-state allocation per
    /// chunk); the dynamic path matches through its concurrent tables as
    /// before (its dictionary mutates, so its tables cannot be frozen).
    pub fn find_all_into(
        &self,
        ctx: &Ctx,
        text: &[Sym],
        scratch: &mut TextScratch,
        out: &mut Vec<(usize, PatId)>,
    ) {
        out.clear();
        if self.lens.is_empty() {
            return;
        }
        let mut mo = scratch.take_match_out();
        match &self.inner {
            SnapInner::Static(m) => m.match_into(ctx, text, scratch, &mut mo),
            SnapInner::Dynamic { m, .. } => mo = m.match_text(ctx, text),
        }
        for (i, hit) in mo.longest_pattern.iter().enumerate() {
            let Some(native) = *hit else { continue };
            let here = scratch.pats_here_mut();
            here.clear();
            let mut cur = Some(self.to_canon(native));
            while let Some(p) = cur {
                here.push(p);
                cur = self.chains[p as usize];
            }
            here.sort_unstable();
            out.extend(here.iter().map(|&p| (i, p)));
        }
        scratch.put_match_out(mo);
    }

    /// Canonical bytes: `(epoch, patterns in canonical order)` and nothing
    /// matcher-internal. `None` if the pattern texts are unknown
    /// ([`Snapshot::from_static`]).
    pub fn to_bytes(&self) -> Option<Vec<u8>> {
        Some(encode_snapshot(self.epoch, self.patterns.as_ref()?))
    }

    /// Load a serialized snapshot, rebuilding its matcher on `ctx`.
    pub fn from_bytes(ctx: &Ctx, bytes: &[u8]) -> Result<Self, String> {
        let mut at = 0usize;
        let mut take = |n: usize| -> Result<&[u8], String> {
            let s = bytes
                .get(at..at + n)
                .ok_or_else(|| "snapshot truncated".to_string())?;
            at += n;
            Ok(s)
        };
        if take(4)? != SNAP_MAGIC {
            return Err("not a snapshot file (bad magic)".into());
        }
        let version = u32::from_le_bytes(take(4)?.try_into().unwrap());
        if version != SNAP_VERSION {
            return Err(format!("unknown snapshot version {version}"));
        }
        let epoch = u64::from_le_bytes(take(8)?.try_into().unwrap());
        let count = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
        let mut patterns = Vec::with_capacity(count);
        for _ in 0..count {
            let len = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
            let raw = take(len * 4)?;
            patterns.push(
                raw.chunks_exact(4)
                    .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                    .collect::<Vec<Sym>>(),
            );
        }
        if at != bytes.len() {
            return Err("trailing bytes after snapshot".into());
        }
        Self::build_static(ctx, epoch, patterns).map_err(|e| format!("rebuild: {e}"))
    }
}

/// Serialize `(epoch, patterns)` in the canonical snapshot format.
pub fn encode_snapshot(epoch: u64, patterns: &[Vec<Sym>]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&SNAP_MAGIC);
    out.extend_from_slice(&SNAP_VERSION.to_le_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&(patterns.len() as u32).to_le_bytes());
    for p in patterns {
        out.extend_from_slice(&(p.len() as u32).to_le_bytes());
        for &s in p {
            out.extend_from_slice(&s.to_le_bytes());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_core::dict::{symbolize, to_symbols};

    fn pats() -> Vec<Vec<Sym>> {
        symbolize(&["he", "she", "his", "hers"])
    }

    #[test]
    fn static_and_dynamic_paths_agree() {
        let ctx = Ctx::seq();
        let patterns = pats();
        let s = Snapshot::build_static(&ctx, 1, patterns.clone()).unwrap();
        let mut d = DynamicMatcher::new();
        let native: Vec<PatId> = patterns
            .iter()
            .map(|p| d.insert(&ctx, p).unwrap())
            .collect();
        let dsnap = Snapshot::from_dynamic(1, d, patterns, &native);
        let text = to_symbols("ushershishe");
        assert_eq!(s.find_all(&ctx, &text), dsnap.find_all(&ctx, &text));
        assert_eq!(s.to_bytes().unwrap(), dsnap.to_bytes().unwrap());
    }

    #[test]
    fn find_all_matches_static_matcher() {
        let ctx = Ctx::seq();
        let patterns = pats();
        let m = StaticMatcher::build(&ctx, &patterns).unwrap();
        let snap = Snapshot::build_static(&ctx, 0, patterns).unwrap();
        let text = to_symbols("ushers she his");
        assert_eq!(snap.find_all(&ctx, &text), m.find_all(&ctx, &text));
    }

    #[test]
    fn wrapped_index_matches_without_texts() {
        let ctx = Ctx::seq();
        let patterns = pats();
        let m = Arc::new(StaticMatcher::build(&ctx, &patterns).unwrap());
        let snap = Snapshot::from_static(0, m.clone());
        let text = to_symbols("usherss");
        assert_eq!(snap.find_all(&ctx, &text), m.find_all(&ctx, &text));
        assert!(snap.to_bytes().is_none(), "texts unknown");
        assert_eq!(snap.max_pattern_len(), 4);
    }

    #[test]
    fn bytes_roundtrip() {
        let ctx = Ctx::seq();
        let snap = Snapshot::build_static(&ctx, 42, pats()).unwrap();
        let bytes = snap.to_bytes().unwrap();
        let back = Snapshot::from_bytes(&ctx, &bytes).unwrap();
        assert_eq!(back.epoch(), 42);
        assert_eq!(back.to_bytes().unwrap(), bytes);
        let text = to_symbols("ushers");
        assert_eq!(back.find_all(&ctx, &text), snap.find_all(&ctx, &text));
    }

    #[test]
    fn empty_epoch_matches_nothing() {
        let ctx = Ctx::seq();
        let snap = Snapshot::build_empty(3);
        assert_eq!(snap.find_all(&ctx, &to_symbols("anything")), vec![]);
        assert_eq!(snap.max_pattern_len(), 0);
        let bytes = snap.to_bytes().unwrap();
        let back = Snapshot::from_bytes(&ctx, &bytes).unwrap();
        assert_eq!(back.epoch(), 3);
        assert_eq!(back.pattern_count(), 0);
    }

    #[test]
    fn corrupt_snapshot_rejected() {
        let ctx = Ctx::seq();
        assert!(Snapshot::from_bytes(&ctx, b"PDMX").is_err());
        let mut bytes = Snapshot::build_empty(0).to_bytes().unwrap();
        bytes.push(0);
        assert!(Snapshot::from_bytes(&ctx, &bytes).is_err());
    }
}
