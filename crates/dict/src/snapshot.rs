//! Immutable matcher snapshots: canonical identity bytes and the v2
//! cold-start sidecar.
//!
//! A [`Snapshot`] is one epoch of the dictionary, frozen: a canonical
//! pattern list (ids are positions in that list), a matcher over it, and
//! the longest-proper-prefix chains needed to expand longest-match output
//! into *all* matches per position. Snapshots are what the serving layer
//! pins per chunk — they never change after construction, so a session can
//! finish a chunk against the epoch it started with while the store
//! publishes a successor.
//!
//! Two distinct serializations share the `PDMS` magic:
//!
//! * **Identity bytes** ([`Snapshot::identity_bytes`], version 1): exactly
//!   `(epoch, patterns-in-canonical-order)` and nothing matcher-internal.
//!   The same committed pattern set always yields the same identity bytes
//!   no matter which rebuild path produced the snapshot — this is what the
//!   incremental-vs-full differential test in `store.rs` compares, and
//!   what pre-v2 `.snap` sidecars contain. Loading identity bytes
//!   rebuilds the matcher from the pattern list.
//! * **Sidecar bytes** ([`Snapshot::to_sidecar_bytes`], version 2): a
//!   sectioned, CRC-trailed container (shared [`pdm_primitives::codec`]
//!   framing) holding the *built* static matcher — frozen name tables,
//!   per-level metadata, prefix chains, and the canonical pattern list.
//!   Loading it ([`SnapshotPath::ColdLoaded`]) reconstructs a servable
//!   snapshot in O(file size) with **zero naming rounds**: the frozen
//!   tables' probe order depends only on key bits and slot counts, so the
//!   raw slot arrays deserialize without rehashing.

use pdm_core::allmatches::{pattern_chains, PatternChains};
use pdm_core::dynamic::DynamicMatcher;
use pdm_core::static1d::serial::LoadError;
use pdm_core::{BuildError, Matcher, PatId, Prefilter, StaticMatcher, Sym, TextScratch};
use pdm_pram::Ctx;
use pdm_primitives::codec::{self, CodecError, SectionReader, SectionWriter};
use pdm_primitives::FxHashMap;
use std::sync::Arc;

/// File magic for serialized snapshots.
pub const SNAP_MAGIC: [u8; 4] = *b"PDMS";
/// Current sidecar format: sectioned container with the built matcher.
pub const SNAP_VERSION: u32 = 2;
/// Legacy sidecar format: identity bytes only; loading rebuilds.
pub const SNAP_VERSION_IDENTITY: u32 = 1;

/// v2 section ids.
pub const SEC_META: u32 = 1;
pub const SEC_PATTERNS: u32 = 2;
pub const SEC_TABLES: u32 = 3;
pub const SEC_CHAINS: u32 = 4;
/// SWAR prefilter tables (strategy + anchors + exact screen). Optional on
/// load — sidecars written before this section existed re-analyze from
/// `SEC_PATTERNS` instead — but always written, so a loaded sidecar
/// re-serializes byte-identically.
pub const SEC_PREFILTER: u32 = 5;

/// Everything that can go wrong loading a snapshot.
#[derive(Debug)]
pub enum SnapError {
    /// Framing, checksum, or structural failure (shared codec shape).
    Corrupt(CodecError),
    /// The frozen matcher tables inside a v2 sidecar failed to decode.
    Tables(LoadError),
    /// Rebuilding the matcher from identity bytes failed.
    Build(BuildError),
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Corrupt(e) => write!(f, "snapshot {e}"),
            Self::Tables(e) => write!(f, "snapshot tables: {e}"),
            Self::Build(e) => write!(f, "snapshot rebuild: {e}"),
        }
    }
}

impl std::error::Error for SnapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Corrupt(e) => Some(e),
            Self::Tables(e) => Some(e),
            Self::Build(e) => Some(e),
        }
    }
}

impl From<CodecError> for SnapError {
    fn from(e: CodecError) -> Self {
        Self::Corrupt(e)
    }
}

impl From<BuildError> for SnapError {
    fn from(e: BuildError) -> Self {
        Self::Build(e)
    }
}

fn corrupt(why: impl Into<String>) -> SnapError {
    SnapError::Corrupt(CodecError::Corrupt(why.into()))
}

/// Which path produced a snapshot (diagnostics; all paths are behaviorally
/// identical).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotPath {
    /// Batch applied through the §6 `DynamicMatcher` (Theorems 7–10).
    Incremental,
    /// Full parallel `StaticMatcher` rebuild on the pool (Theorem 3).
    FullRebuild,
    /// Deserialized from a v2 sidecar — no naming rounds ran at all.
    ColdLoaded,
}

enum SnapInner {
    /// Canonical ids equal the build-order ids of the static matcher.
    Static(Arc<StaticMatcher>),
    /// A frozen clone of the store's dynamic matcher; `remap` translates
    /// its native slot ids into canonical ids.
    Dynamic {
        m: Box<DynamicMatcher>,
        remap: FxHashMap<PatId, u32>,
    },
}

impl std::fmt::Debug for SnapInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapInner::Static(_) => write!(f, "Static"),
            SnapInner::Dynamic { .. } => write!(f, "Dynamic"),
        }
    }
}

/// One immutable epoch of the dictionary.
#[derive(Debug)]
pub struct Snapshot {
    epoch: u64,
    /// Canonical id → pattern length.
    lens: Vec<u32>,
    /// Canonical pattern list; `None` when wrapped around a bare index
    /// (pattern texts unknown — the snapshot still matches, but cannot be
    /// re-serialized).
    patterns: Option<Vec<Vec<Sym>>>,
    /// Canonical id → longest pattern that is a proper prefix of it.
    chains: Vec<Option<u32>>,
    max_len: usize,
    inner: SnapInner,
    path: SnapshotPath,
}

/// Longest-proper-prefix chains over a canonical pattern list, computed
/// from the texts (matcher-agnostic, unlike `pdm_core::allmatches` which
/// reads the static tables).
fn chains_of(patterns: &[Vec<Sym>]) -> Vec<Option<u32>> {
    let mut idx: FxHashMap<&[Sym], u32> = FxHashMap::default();
    for (i, p) in patterns.iter().enumerate() {
        idx.insert(p.as_slice(), i as u32);
    }
    patterns
        .iter()
        .map(|p| (1..p.len()).rev().find_map(|l| idx.get(&p[..l]).copied()))
        .collect()
}

impl Snapshot {
    /// Build the static-path snapshot (full parallel rebuild). Empty
    /// dictionaries fall back to an empty dynamic matcher — the §4 build
    /// rejects zero patterns, an empty epoch is still a valid epoch.
    pub fn build_static(
        ctx: &Ctx,
        epoch: u64,
        patterns: Vec<Vec<Sym>>,
    ) -> Result<Self, BuildError> {
        if patterns.is_empty() {
            let mut s = Self::build_empty(epoch);
            s.path = SnapshotPath::FullRebuild;
            return Ok(s);
        }
        let m = StaticMatcher::build(ctx, &patterns)?;
        Ok(Snapshot {
            epoch,
            lens: patterns.iter().map(|p| p.len() as u32).collect(),
            chains: chains_of(&patterns),
            max_len: patterns.iter().map(Vec::len).max().unwrap_or(0),
            patterns: Some(patterns),
            inner: SnapInner::Static(Arc::new(m)),
            path: SnapshotPath::FullRebuild,
        })
    }

    /// Freeze a clone of the store's dynamic matcher as the incremental-path
    /// snapshot. `native` gives the dynamic matcher's slot id for each
    /// canonical position.
    pub fn from_dynamic(
        epoch: u64,
        m: DynamicMatcher,
        patterns: Vec<Vec<Sym>>,
        native: &[PatId],
    ) -> Self {
        debug_assert_eq!(patterns.len(), native.len());
        let remap: FxHashMap<PatId, u32> = native
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i as u32))
            .collect();
        Snapshot {
            epoch,
            lens: patterns.iter().map(|p| p.len() as u32).collect(),
            chains: chains_of(&patterns),
            max_len: patterns.iter().map(Vec::len).max().unwrap_or(0),
            patterns: Some(patterns),
            inner: SnapInner::Dynamic {
                m: Box::new(m),
                remap,
            },
            path: SnapshotPath::Incremental,
        }
    }

    /// An empty epoch (no patterns; matches nothing).
    pub fn build_empty(epoch: u64) -> Self {
        Snapshot {
            epoch,
            lens: Vec::new(),
            patterns: Some(Vec::new()),
            chains: Vec::new(),
            max_len: 0,
            inner: SnapInner::Dynamic {
                m: Box::new(DynamicMatcher::new()),
                remap: FxHashMap::default(),
            },
            path: SnapshotPath::Incremental,
        }
    }

    /// Wrap a prebuilt static matcher (e.g. a loaded `PDM1` index) as
    /// epoch `epoch`. Pattern texts are unknown, so the snapshot has no
    /// identity bytes, but matching and all-matches expansion work — the
    /// chains come from the static tables.
    pub fn from_static(epoch: u64, m: Arc<StaticMatcher>) -> Self {
        let chains = pattern_chains(&m).chain;
        let k = m.pattern_count();
        Snapshot {
            epoch,
            lens: (0..k as PatId).map(|p| m.pattern_len(p)).collect(),
            patterns: None,
            chains,
            max_len: m.max_pattern_len(),
            inner: SnapInner::Static(m),
            path: SnapshotPath::FullRebuild,
        }
    }

    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Which path produced this snapshot.
    pub fn path(&self) -> SnapshotPath {
        self.path
    }

    pub fn pattern_count(&self) -> usize {
        self.lens.len()
    }

    pub fn max_pattern_len(&self) -> usize {
        self.max_len
    }

    /// Length of canonical pattern `p`.
    pub fn pattern_len(&self, p: PatId) -> u32 {
        self.lens[p as usize]
    }

    /// Canonical pattern list, if known.
    pub fn patterns(&self) -> Option<&[Vec<Sym>]> {
        self.patterns.as_deref()
    }

    /// The matcher backing this epoch.
    pub fn matcher(&self) -> &dyn Matcher {
        match &self.inner {
            SnapInner::Static(m) => m.as_ref(),
            SnapInner::Dynamic { m, .. } => m.as_ref(),
        }
    }

    #[inline]
    fn to_canon(&self, native: PatId) -> PatId {
        match &self.inner {
            SnapInner::Static(_) => native,
            SnapInner::Dynamic { remap, .. } => remap[&native],
        }
    }

    /// Every `(position, canonical pattern)` occurrence in `text`, sorted
    /// by position then pattern id — the same contract as
    /// [`StaticMatcher::find_all`], but canonical ids, so results are
    /// identical whichever rebuild path produced the snapshot.
    pub fn find_all(&self, ctx: &Ctx, text: &[Sym]) -> Vec<(usize, PatId)> {
        let mut scratch = TextScratch::new();
        let mut v = Vec::new();
        self.find_all_into(ctx, text, &mut scratch, &mut v);
        v
    }

    /// [`Self::find_all`] into caller-owned buffers. On the static path the
    /// whole match reuses `scratch` (zero steady-state allocation per
    /// chunk); the dynamic path matches through its concurrent tables as
    /// before (its dictionary mutates, so its tables cannot be frozen).
    pub fn find_all_into(
        &self,
        ctx: &Ctx,
        text: &[Sym],
        scratch: &mut TextScratch,
        out: &mut Vec<(usize, PatId)>,
    ) {
        out.clear();
        if self.lens.is_empty() {
            return;
        }
        let mut mo = scratch.take_match_out();
        match &self.inner {
            SnapInner::Static(m) => {
                // Canonical ids equal native ids and the canonical chains
                // equal the matcher's own, so the static path delegates —
                // which routes serving through the SWAR candidate
                // prefilter when one is attached (DESIGN.md §16).
                scratch.put_match_out(mo);
                m.find_all_into(ctx, text, scratch, out);
                return;
            }
            SnapInner::Dynamic { m, .. } => mo = m.match_text(ctx, text),
        }
        for (i, hit) in mo.longest_pattern.iter().enumerate() {
            let Some(native) = *hit else { continue };
            let here = scratch.pats_here_mut();
            here.clear();
            let mut cur = Some(self.to_canon(native));
            while let Some(p) = cur {
                here.push(p);
                cur = self.chains[p as usize];
            }
            here.sort_unstable();
            out.extend(here.iter().map(|&p| (i, p)));
        }
        scratch.put_match_out(mo);
    }

    /// Canonical **identity** bytes: `(epoch, patterns in canonical order)`
    /// and nothing matcher-internal — the version-1 `PDMS` layout. Equal
    /// identity bytes ⇔ same epoch and same committed pattern set, which is
    /// what the incremental-vs-full differential test compares. `None` if
    /// the pattern texts are unknown ([`Snapshot::from_static`]).
    pub fn identity_bytes(&self) -> Option<Vec<u8>> {
        Some(encode_identity(self.epoch, self.patterns.as_ref()?))
    }

    /// Serialize the **built** matcher into the v2 sidecar layout:
    /// sectioned, CRC-trailed, loadable in O(file size) with zero naming
    /// rounds. `None` when this snapshot has no frozen form — pattern
    /// texts unknown, or the epoch is backed by the dynamic matcher (its
    /// tables mutate and cannot be frozen); callers fall back to
    /// [`Snapshot::identity_bytes`].
    pub fn to_sidecar_bytes(&self) -> Option<Vec<u8>> {
        let patterns = self.patterns.as_ref()?;
        let SnapInner::Static(m) = &self.inner else {
            return None;
        };
        let chains = pattern_chains(m);
        let mut w = SectionWriter::new();
        w.section(SEC_META, self.epoch.to_le_bytes().to_vec());
        w.section(SEC_PATTERNS, encode_patterns(patterns));
        w.section(SEC_TABLES, m.to_frozen_bytes());
        w.section(SEC_CHAINS, encode_chains(&chains));
        let pf_bytes = match m.prefilter() {
            Some(pf) => pf.to_bytes(),
            None => Prefilter::analyze(patterns).to_bytes(),
        };
        w.section(SEC_PREFILTER, pf_bytes);
        Some(w.finish(SNAP_MAGIC, SNAP_VERSION))
    }

    /// Format version of a `.snap` buffer without loading it — boot logic
    /// routes legacy versions straight to the rebuild fallback.
    pub fn peek_version(bytes: &[u8]) -> Result<u32, CodecError> {
        codec::read_header(bytes, SNAP_MAGIC)
    }

    /// Load a serialized snapshot. Version 2 cold-loads the built matcher
    /// (no naming rounds, `ctx` untouched); version 1 rebuilds it on `ctx`.
    pub fn from_bytes(ctx: &Ctx, bytes: &[u8]) -> Result<Self, SnapError> {
        match codec::read_header(bytes, SNAP_MAGIC)? {
            SNAP_VERSION_IDENTITY => Self::from_identity_bytes(ctx, bytes),
            SNAP_VERSION => Self::from_sidecar_v2(bytes),
            v => Err(CodecError::VersionMismatch {
                found: v,
                supported: SNAP_VERSION,
            }
            .into()),
        }
    }

    /// Legacy path: parse identity bytes and rebuild the matcher.
    fn from_identity_bytes(ctx: &Ctx, bytes: &[u8]) -> Result<Self, SnapError> {
        let (epoch, patterns) = decode_identity(bytes)?;
        Ok(Self::build_static(ctx, epoch, patterns)?)
    }

    /// Cold path: reconstruct the servable snapshot from the v2 sections.
    fn from_sidecar_v2(bytes: &[u8]) -> Result<Self, SnapError> {
        let r = SectionReader::open(bytes, SNAP_MAGIC)?;
        let meta = r.section(SEC_META).ok_or_else(|| corrupt("missing META"))?;
        if meta.len() < 8 {
            return Err(corrupt(format!(
                "META section too short ({} bytes)",
                meta.len()
            )));
        }
        let epoch = u64::from_le_bytes(meta[..8].try_into().expect("bounds checked"));
        let patterns = decode_patterns(
            r.section(SEC_PATTERNS)
                .ok_or_else(|| corrupt("missing PATTERNS"))?,
        )?;
        let tables = r
            .section(SEC_TABLES)
            .ok_or_else(|| corrupt("missing TABLES"))?;
        let mut m = StaticMatcher::from_frozen_bytes(tables).map_err(SnapError::Tables)?;
        if m.pattern_count() != patterns.len() {
            return Err(corrupt(format!(
                "TABLES holds {} patterns, PATTERNS lists {}",
                m.pattern_count(),
                patterns.len()
            )));
        }
        for (p, pat) in patterns.iter().enumerate() {
            if m.pattern_len(p as PatId) as usize != pat.len() {
                return Err(corrupt(format!("pattern {p} length disagrees with tables")));
            }
        }
        let chains = decode_chains(
            r.section(SEC_CHAINS)
                .ok_or_else(|| corrupt("missing CHAINS"))?,
            patterns.len(),
        )?;
        let chain = chains.chain.clone();
        m.prime_chains(chains);
        // Attach the stored prefilter tables; sidecars written before the
        // section existed re-analyze from the pattern texts (same result,
        // O(M) work — still zero naming rounds).
        let pf = match r.section(SEC_PREFILTER) {
            Some(sec) => Prefilter::from_bytes(sec)
                .map_err(|e| corrupt(format!("PREFILTER section: {e}")))?,
            None => Prefilter::analyze(&patterns),
        };
        m.set_prefilter(Some(pf));
        Ok(Snapshot {
            epoch,
            lens: patterns.iter().map(|p| p.len() as u32).collect(),
            max_len: patterns.iter().map(Vec::len).max().unwrap_or(0),
            patterns: Some(patterns),
            chains: chain,
            inner: SnapInner::Static(Arc::new(m)),
            path: SnapshotPath::ColdLoaded,
        })
    }
}

/// Serialize `(epoch, patterns)` in the canonical identity format
/// (version-1 `PDMS` bytes; also the legacy loadable sidecar layout).
pub fn encode_identity(epoch: u64, patterns: &[Vec<Sym>]) -> Vec<u8> {
    let mut out = Vec::new();
    codec::write_header(&mut out, SNAP_MAGIC, SNAP_VERSION_IDENTITY);
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&(patterns.len() as u32).to_le_bytes());
    for p in patterns {
        out.extend_from_slice(&(p.len() as u32).to_le_bytes());
        for &s in p {
            out.extend_from_slice(&s.to_le_bytes());
        }
    }
    out
}

/// Parse identity bytes back into `(epoch, patterns)`. Also used by
/// `snap inspect` on legacy sidecars, so it must not build anything.
pub fn decode_identity(bytes: &[u8]) -> Result<(u64, Vec<Vec<Sym>>), SnapError> {
    codec::require_version(
        codec::read_header(bytes, SNAP_MAGIC)?,
        SNAP_VERSION_IDENTITY,
    )?;
    let mut at = codec::HEADER_LEN;
    let mut take = |n: usize| -> Result<&[u8], SnapError> {
        let s = bytes.get(at..at + n).ok_or(CodecError::Truncated {
            expected: at + n,
            actual: bytes.len(),
        })?;
        at += n;
        Ok(s)
    };
    let epoch = u64::from_le_bytes(take(8)?.try_into().expect("sized"));
    let count = u32::from_le_bytes(take(4)?.try_into().expect("sized")) as usize;
    let mut patterns = Vec::with_capacity(count.min(bytes.len() / 4));
    for _ in 0..count {
        let len = u32::from_le_bytes(take(4)?.try_into().expect("sized")) as usize;
        let raw = take(len * 4)?;
        patterns.push(
            raw.chunks_exact(4)
                .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect::<Vec<Sym>>(),
        );
    }
    if at != bytes.len() {
        return Err(corrupt("trailing bytes after snapshot"));
    }
    Ok((epoch, patterns))
}

/// `count u32 | count × (len u32, len × sym u32)` — the identity body.
fn encode_patterns(patterns: &[Vec<Sym>]) -> Vec<u8> {
    let total: usize = patterns.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(4 + patterns.len() * 4 + total * 4);
    out.extend_from_slice(&(patterns.len() as u32).to_le_bytes());
    for p in patterns {
        out.extend_from_slice(&(p.len() as u32).to_le_bytes());
        for &s in p {
            out.extend_from_slice(&s.to_le_bytes());
        }
    }
    out
}

fn decode_patterns(sec: &[u8]) -> Result<Vec<Vec<Sym>>, SnapError> {
    let mut at = 0usize;
    let mut take = |n: usize| -> Result<&[u8], SnapError> {
        let s = sec
            .get(at..at + n)
            .ok_or_else(|| corrupt("PATTERNS section truncated"))?;
        at += n;
        Ok(s)
    };
    let count = u32::from_le_bytes(take(4)?.try_into().expect("sized")) as usize;
    let mut patterns = Vec::with_capacity(count.min(sec.len() / 4));
    for _ in 0..count {
        let len = u32::from_le_bytes(take(4)?.try_into().expect("sized")) as usize;
        let raw = take(len * 4)?;
        patterns.push(
            raw.chunks_exact(4)
                .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect::<Vec<Sym>>(),
        );
    }
    if at != sec.len() {
        return Err(corrupt("trailing bytes in PATTERNS section"));
    }
    Ok(patterns)
}

/// `count u32 | count × chain u32 (MAX = none) | count × depth u32`.
fn encode_chains(chains: &PatternChains) -> Vec<u8> {
    let k = chains.chain.len();
    let mut out = Vec::with_capacity(4 + 8 * k);
    out.extend_from_slice(&(k as u32).to_le_bytes());
    for c in &chains.chain {
        out.extend_from_slice(&c.unwrap_or(u32::MAX).to_le_bytes());
    }
    for &d in &chains.depth {
        out.extend_from_slice(&d.to_le_bytes());
    }
    out
}

fn decode_chains(sec: &[u8], expect: usize) -> Result<PatternChains, SnapError> {
    if sec.len() < 4 {
        return Err(corrupt("CHAINS section truncated"));
    }
    let k = u32::from_le_bytes(sec[..4].try_into().expect("sized")) as usize;
    if k != expect {
        return Err(corrupt(format!(
            "CHAINS lists {k} patterns, expected {expect}"
        )));
    }
    if sec.len() != 4 + 8 * k {
        return Err(corrupt("CHAINS section size disagrees with its count"));
    }
    let word = |i: usize| -> u32 {
        u32::from_le_bytes(sec[4 + 4 * i..8 + 4 * i].try_into().expect("sized"))
    };
    let mut chain = Vec::with_capacity(k);
    for i in 0..k {
        let c = word(i);
        if c != u32::MAX && c as usize >= k {
            return Err(corrupt(format!(
                "chain entry {i} points past pattern count"
            )));
        }
        chain.push((c != u32::MAX).then_some(c));
    }
    let depth: Vec<u32> = (0..k).map(|i| word(k + i)).collect();
    Ok(PatternChains { chain, depth })
}

/// What `pdm snap inspect` reports for a `PDMS` sidecar — parsed without
/// building or loading any matcher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapInfo {
    pub version: u32,
    pub epoch: u64,
    pub patterns: usize,
    /// `(section id, byte length)` in file order; empty for version 1.
    pub sections: Vec<(u32, usize)>,
}

/// Inspect a `.snap` buffer: version, epoch, pattern count, and (for v2)
/// section sizes. Validation depth matches the load path — v2 checks the
/// whole-file CRC, v1 has none to check.
pub fn inspect(bytes: &[u8]) -> Result<SnapInfo, SnapError> {
    match codec::read_header(bytes, SNAP_MAGIC)? {
        SNAP_VERSION_IDENTITY => {
            let (epoch, patterns) = decode_identity(bytes)?;
            Ok(SnapInfo {
                version: SNAP_VERSION_IDENTITY,
                epoch,
                patterns: patterns.len(),
                sections: Vec::new(),
            })
        }
        SNAP_VERSION => {
            let r = SectionReader::open(bytes, SNAP_MAGIC)?;
            let meta = r.section(SEC_META).ok_or_else(|| corrupt("missing META"))?;
            if meta.len() < 8 {
                return Err(corrupt("META section too short"));
            }
            let epoch = u64::from_le_bytes(meta[..8].try_into().expect("bounds checked"));
            let patterns = decode_patterns(
                r.section(SEC_PATTERNS)
                    .ok_or_else(|| corrupt("missing PATTERNS"))?,
            )?
            .len();
            Ok(SnapInfo {
                version: SNAP_VERSION,
                epoch,
                patterns,
                sections: r.sections().collect(),
            })
        }
        v => Err(CodecError::VersionMismatch {
            found: v,
            supported: SNAP_VERSION,
        }
        .into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_core::dict::{symbolize, to_symbols};

    fn pats() -> Vec<Vec<Sym>> {
        symbolize(&["he", "she", "his", "hers"])
    }

    #[test]
    fn static_and_dynamic_paths_agree() {
        let ctx = Ctx::seq();
        let patterns = pats();
        let s = Snapshot::build_static(&ctx, 1, patterns.clone()).unwrap();
        let mut d = DynamicMatcher::new();
        let native: Vec<PatId> = patterns
            .iter()
            .map(|p| d.insert(&ctx, p).unwrap())
            .collect();
        let dsnap = Snapshot::from_dynamic(1, d, patterns, &native);
        let text = to_symbols("ushershishe");
        assert_eq!(s.find_all(&ctx, &text), dsnap.find_all(&ctx, &text));
        assert_eq!(s.identity_bytes().unwrap(), dsnap.identity_bytes().unwrap());
    }

    #[test]
    fn find_all_matches_static_matcher() {
        let ctx = Ctx::seq();
        let patterns = pats();
        let m = StaticMatcher::build(&ctx, &patterns).unwrap();
        let snap = Snapshot::build_static(&ctx, 0, patterns).unwrap();
        let text = to_symbols("ushers she his");
        assert_eq!(snap.find_all(&ctx, &text), m.find_all(&ctx, &text));
    }

    #[test]
    fn wrapped_index_matches_without_texts() {
        let ctx = Ctx::seq();
        let patterns = pats();
        let m = Arc::new(StaticMatcher::build(&ctx, &patterns).unwrap());
        let snap = Snapshot::from_static(0, m.clone());
        let text = to_symbols("usherss");
        assert_eq!(snap.find_all(&ctx, &text), m.find_all(&ctx, &text));
        assert!(snap.identity_bytes().is_none(), "texts unknown");
        assert_eq!(snap.max_pattern_len(), 4);
    }

    #[test]
    fn identity_bytes_roundtrip() {
        let ctx = Ctx::seq();
        let snap = Snapshot::build_static(&ctx, 42, pats()).unwrap();
        let bytes = snap.identity_bytes().unwrap();
        assert_eq!(Snapshot::peek_version(&bytes), Ok(SNAP_VERSION_IDENTITY));
        let back = Snapshot::from_bytes(&ctx, &bytes).unwrap();
        assert_eq!(back.epoch(), 42);
        assert_eq!(back.path(), SnapshotPath::FullRebuild, "v1 rebuilds");
        assert_eq!(back.identity_bytes().unwrap(), bytes);
        let text = to_symbols("ushers");
        assert_eq!(back.find_all(&ctx, &text), snap.find_all(&ctx, &text));
    }

    #[test]
    fn sidecar_v2_cold_load_is_equivalent_and_skips_naming() {
        let ctx = Ctx::seq();
        let snap = Snapshot::build_static(&ctx, 7, pats()).unwrap();
        let bytes = snap.to_sidecar_bytes().unwrap();
        assert_eq!(Snapshot::peek_version(&bytes), Ok(SNAP_VERSION));
        let back = Snapshot::from_bytes(&ctx, &bytes).unwrap();
        assert_eq!(back.epoch(), 7);
        assert_eq!(back.path(), SnapshotPath::ColdLoaded);
        assert!(back.matcher().stats().cold_loaded, "no naming rounds ran");
        assert_eq!(back.patterns(), snap.patterns());
        // Same identity: the cold-loaded snapshot serializes identically.
        assert_eq!(back.identity_bytes(), snap.identity_bytes());
        for text in ["ushershishe", "hers his she he", ""] {
            let t = to_symbols(text);
            assert_eq!(back.find_all(&ctx, &t), snap.find_all(&ctx, &t), "{text:?}");
        }
    }

    #[test]
    fn cold_loaded_snapshot_reserializes_to_same_sidecar() {
        let ctx = Ctx::seq();
        let snap = Snapshot::build_static(&ctx, 3, pats()).unwrap();
        let bytes = snap.to_sidecar_bytes().unwrap();
        let back = Snapshot::from_bytes(&ctx, &bytes).unwrap();
        assert_eq!(
            back.to_sidecar_bytes().unwrap(),
            bytes,
            "v2 sidecar is a serialization fixed point"
        );
    }

    #[test]
    fn wrapped_static_matcher_still_freezes() {
        // `from_static` has no pattern texts, so no sidecar — but a static
        // snapshot built from texts always has one.
        let ctx = Ctx::seq();
        let m = Arc::new(StaticMatcher::build(&ctx, &pats()).unwrap());
        assert!(Snapshot::from_static(0, m).to_sidecar_bytes().is_none());
        let s = Snapshot::build_static(&ctx, 0, pats()).unwrap();
        assert!(s.to_sidecar_bytes().is_some());
    }

    #[test]
    fn empty_epoch_matches_nothing() {
        let ctx = Ctx::seq();
        let snap = Snapshot::build_empty(3);
        assert_eq!(snap.find_all(&ctx, &to_symbols("anything")), vec![]);
        assert_eq!(snap.max_pattern_len(), 0);
        assert!(
            snap.to_sidecar_bytes().is_none(),
            "dynamic inner has no frozen form"
        );
        let bytes = snap.identity_bytes().unwrap();
        let back = Snapshot::from_bytes(&ctx, &bytes).unwrap();
        assert_eq!(back.epoch(), 3);
        assert_eq!(back.pattern_count(), 0);
    }

    #[test]
    fn corrupt_snapshot_rejected() {
        let ctx = Ctx::seq();
        assert!(matches!(
            Snapshot::from_bytes(&ctx, b"PDMX\x01\x00\x00\x00"),
            Err(SnapError::Corrupt(CodecError::BadMagic { .. }))
        ));
        let mut bytes = Snapshot::build_empty(0).identity_bytes().unwrap();
        bytes.push(0);
        assert!(Snapshot::from_bytes(&ctx, &bytes).is_err(), "trailing byte");
        let mut v9 = Snapshot::build_empty(0).identity_bytes().unwrap();
        v9[4..8].copy_from_slice(&9u32.to_le_bytes());
        assert!(matches!(
            Snapshot::from_bytes(&ctx, &v9),
            Err(SnapError::Corrupt(CodecError::VersionMismatch {
                found: 9,
                ..
            }))
        ));
    }

    #[test]
    fn corrupt_sidecar_v2_rejected_everywhere() {
        let ctx = Ctx::seq();
        let bytes = Snapshot::build_static(&ctx, 1, pats())
            .unwrap()
            .to_sidecar_bytes()
            .unwrap();
        // Any bit flip breaks the whole-file CRC (or the magic/framing).
        let step = (bytes.len() / 37).max(1);
        for at in (0..bytes.len()).step_by(step) {
            let mut bad = bytes.clone();
            bad[at] ^= 0x08;
            assert!(Snapshot::from_bytes(&ctx, &bad).is_err(), "flip at {at}");
        }
        // Truncation at any point is rejected too.
        for cut in [0, 4, 11, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                Snapshot::from_bytes(&ctx, &bytes[..cut]).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn inspect_reports_both_versions() {
        let ctx = Ctx::seq();
        let snap = Snapshot::build_static(&ctx, 5, pats()).unwrap();
        let v1 = inspect(&snap.identity_bytes().unwrap()).unwrap();
        assert_eq!((v1.version, v1.epoch, v1.patterns), (1, 5, 4));
        assert!(v1.sections.is_empty());
        let v2 = inspect(&snap.to_sidecar_bytes().unwrap()).unwrap();
        assert_eq!((v2.version, v2.epoch, v2.patterns), (2, 5, 4));
        let ids: Vec<u32> = v2.sections.iter().map(|&(id, _)| id).collect();
        assert_eq!(
            ids,
            [
                SEC_META,
                SEC_PATTERNS,
                SEC_TABLES,
                SEC_CHAINS,
                SEC_PREFILTER
            ]
        );
    }
}
