//! `pdm fsck` — deep validation and repair for the store's on-disk state.
//!
//! Validation goes strictly deeper than the boot path: the log header and
//! every record CRC are checked, the record stream is *simulated* through
//! the same structural-replay rules [`crate::DictStore::open`] applies
//! (so "valid CRCs, inconsistent ops" is caught here, not at boot), the
//! `.snap` sidecar is loaded and compared against the simulated state, and
//! stray temp files from interrupted atomic writes are flagged.
//!
//! Repair (`--repair`) is deliberately conservative — it only performs
//! actions the boot path itself would perform or that cannot lose
//! committed data:
//!
//! * truncate a torn/corrupt log tail back to the last good record;
//! * rewrite the header of a log torn during creation (< 8 bytes);
//! * quarantine a corrupt or unloadable sidecar (rename to `*.corrupt`)
//!   so boot falls back to a rebuild instead of re-reading bad bytes;
//! * sweep `*.tmp` leftovers from interrupted atomic replacements.
//!
//! A log that replays to *inconsistent* operations (CRC-valid records
//! whose adds/removes contradict each other) is reported as unbootable
//! and left untouched: that is tampering or a writer bug, and truncation
//! could silently discard committed patterns.

use crate::log::{self, replay_bytes, Record, TailFault};
use crate::snapshot::Snapshot;
use crate::store::snap_path;
use pdm_core::Sym;
use pdm_pram::Ctx;
use pdm_primitives::{vfs, FxHashMap};
use std::path::{Path, PathBuf};

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Expected operational state worth reporting (e.g. a stale sidecar
    /// that boot will fall back past). Never fails an fsck.
    Info,
    /// Damage with a safe, standard repair (torn tail, stray temp file).
    Warn,
    /// Data at risk: corrupt sidecar, unbootable log.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warn => write!(f, "warn"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One observation about the on-disk state.
#[derive(Debug, Clone)]
pub struct Finding {
    pub severity: Severity,
    /// Which file the finding concerns.
    pub file: PathBuf,
    /// What was found.
    pub detail: String,
    /// The applicable repair, if one exists.
    pub repair: Option<String>,
    /// Did this run execute that repair (`repair: true` mode only)?
    pub repaired: bool,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {}: {}",
            self.severity,
            self.file.display(),
            self.detail
        )?;
        match (&self.repair, self.repaired) {
            (Some(r), true) => write!(f, " [repaired: {r}]"),
            (Some(r), false) => write!(f, " [repairable: {r}]"),
            (None, _) => Ok(()),
        }
    }
}

/// The outcome of checking one store (or index sidecar).
#[derive(Debug, Clone)]
pub struct FsckReport {
    /// Everything observed, in check order.
    pub findings: Vec<Finding>,
    /// Would [`crate::DictStore::open`] succeed right now (i.e. after any
    /// repairs this run performed)?
    pub bootable: bool,
    /// Which first-snapshot path `boot_snapshot` would take — cold-load,
    /// or a rebuild and why.
    pub boot_path: String,
}

impl FsckReport {
    /// No findings at all: the store is pristine.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings at `Warn` or above that were not repaired — what a
    /// non-zero fsck exit reports.
    pub fn unrepaired(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity >= Severity::Warn && !f.repaired)
            .count()
    }
}

fn finding(severity: Severity, file: &Path, detail: impl Into<String>) -> Finding {
    Finding {
        severity,
        file: file.to_path_buf(),
        detail: detail.into(),
        repair: None,
        repaired: false,
    }
}

/// Structural-replay simulation: the state `DictStore::open` would build,
/// computed without matchers. Mirrors `store.rs` exactly — committed ops
/// before the last commit record, staged ops validated against the
/// post-commit view.
struct Sim {
    /// Live committed patterns in canonical (first-commit) order.
    live: Vec<Vec<Sym>>,
    epoch: u64,
    staged: usize,
}

fn simulate(records: &[Record]) -> Result<Sim, String> {
    let last_commit = records.iter().rposition(|r| matches!(r, Record::Commit(_)));
    let mut slots: Vec<Option<Vec<Sym>>> = Vec::new();
    let mut index: FxHashMap<Vec<Sym>, usize> = FxHashMap::default();
    let mut staged_view: FxHashMap<Vec<Sym>, bool> = FxHashMap::default();
    let mut epoch = 0u64;
    let mut staged = 0usize;
    let would_be_live =
        |index: &FxHashMap<Vec<Sym>, usize>, staged_view: &FxHashMap<Vec<Sym>, bool>, p: &[Sym]| {
            staged_view
                .get(p)
                .copied()
                .unwrap_or_else(|| index.contains_key(p))
        };
    for (i, rec) in records.iter().enumerate() {
        let committed = last_commit.is_some_and(|c| i <= c);
        match rec {
            Record::Commit(e) => epoch = *e,
            Record::Add(p) if committed => {
                if p.is_empty() {
                    return Err(format!("record {i}: committed add of empty pattern"));
                }
                if index.contains_key(p) {
                    return Err(format!("record {i}: committed add of already-live pattern"));
                }
                index.insert(p.clone(), slots.len());
                slots.push(Some(p.clone()));
            }
            Record::Remove(p) if committed => {
                let Some(slot) = index.remove(p) else {
                    return Err(format!("record {i}: committed remove of absent pattern"));
                };
                slots[slot] = None;
            }
            Record::Add(p) => {
                if would_be_live(&index, &staged_view, p) {
                    return Err(format!("record {i}: staged add of already-live pattern"));
                }
                staged_view.insert(p.clone(), true);
                staged += 1;
            }
            Record::Remove(p) => {
                if !would_be_live(&index, &staged_view, p) {
                    return Err(format!("record {i}: staged remove of absent pattern"));
                }
                staged_view.insert(p.clone(), false);
                staged += 1;
            }
        }
    }
    Ok(Sim {
        live: slots.into_iter().flatten().collect(),
        epoch,
        staged,
    })
}

/// Truncate `path` back to `good_len` bytes, durably.
fn truncate_log(path: &Path, good_len: u64) -> std::io::Result<()> {
    let mut f = vfs::VfsFile::open_rw(path)?;
    f.set_len(good_len)?;
    f.sync_data()
}

/// Quarantine a damaged sidecar: rename it to `<file>.corrupt` so boot
/// stops re-reading bad bytes (and an operator can inspect it later).
fn quarantine(path: &Path) -> std::io::Result<PathBuf> {
    let mut os = path.as_os_str().to_owned();
    os.push(".corrupt");
    let dest = PathBuf::from(os);
    vfs::rename(path, &dest)?;
    vfs::sync_parent_dir(path)?;
    Ok(dest)
}

/// Temp-file leftovers an interrupted atomic replacement can strand next
/// to the log: the vfs `.tmp` siblings of the log and sidecar, plus the
/// compaction scratch log.
fn stray_tmp_candidates(log_path: &Path) -> Vec<PathBuf> {
    vec![
        vfs::tmp_path(log_path),
        vfs::tmp_path(&snap_path(log_path)),
        log_path.with_extension("log.tmp"),
    ]
}

/// Deep-check (and optionally repair) the dictionary store rooted at the
/// log file `path`. See the module docs for exactly what is validated
/// and which repairs are performed.
pub fn fsck_store(path: &Path, repair: bool) -> std::io::Result<FsckReport> {
    let mut findings = Vec::new();
    let mut bootable = true;
    let mut sim: Option<Sim> = None;

    // ---- the log itself ---------------------------------------------------
    if !path.exists() {
        findings.push(finding(
            Severity::Info,
            path,
            "log does not exist; open would create a fresh empty store",
        ));
        sim = Some(Sim {
            live: Vec::new(),
            epoch: 0,
            staged: 0,
        });
    } else {
        let bytes = vfs::read(path)?;
        if bytes.len() < 8 {
            let mut f = finding(
                Severity::Warn,
                path,
                format!(
                    "log is {} bytes — shorter than the 8-byte header (crash tore the \
                     initial create; no records can be lost)",
                    bytes.len()
                ),
            );
            f.repair = Some("rewrite the empty-log header".into());
            if repair {
                log::LogFile::create(path).map_err(std::io::Error::other)?;
                f.repaired = true;
            }
            findings.push(f);
            sim = Some(Sim {
                live: Vec::new(),
                epoch: 0,
                staged: 0,
            });
        } else {
            match replay_bytes(&bytes) {
                Err(e) => {
                    findings.push(finding(
                        Severity::Error,
                        path,
                        format!(
                            "log header rejected ({e}); not repairable without operator review"
                        ),
                    ));
                    bootable = false;
                }
                Ok(replay) => {
                    if let Some(rec) = &replay.recovery {
                        let sev = match rec.fault {
                            TailFault::Torn | TailFault::TornHeader => Severity::Warn,
                            // CRC-valid framing is over; this is bit rot,
                            // but truncation is still the boot behavior.
                            TailFault::Corrupt(_) => Severity::Error,
                        };
                        let mut f = finding(sev, path, format!("{rec}"));
                        f.repair = Some(format!(
                            "truncate log to last good byte ({})",
                            replay.good_len
                        ));
                        if repair {
                            truncate_log(path, replay.good_len)?;
                            f.repaired = true;
                        }
                        findings.push(f);
                    }
                    match simulate(&replay.records) {
                        Ok(s) => sim = Some(s),
                        Err(why) => {
                            findings.push(finding(
                                Severity::Error,
                                path,
                                format!(
                                    "log replays to inconsistent state ({why}); store will not \
                                     boot — not repairable without operator review"
                                ),
                            ));
                            bootable = false;
                        }
                    }
                }
            }
        }
    }

    // ---- the .snap sidecar ------------------------------------------------
    let snap = snap_path(path);
    let mut boot_path = String::from("unbootable");
    if let Some(sim) = &sim {
        boot_path = check_sidecar(&snap, sim, repair, &mut findings)?;
        if sim.staged > 0 {
            findings.push(finding(
                Severity::Info,
                path,
                format!(
                    "{} staged (uncommitted) ops will be re-staged at boot",
                    sim.staged
                ),
            ));
        }
    }

    // ---- stray temp files -------------------------------------------------
    for tmp in stray_tmp_candidates(path) {
        if tmp.exists() {
            let mut f = finding(
                Severity::Warn,
                &tmp,
                "stray temp file from an interrupted atomic write",
            );
            f.repair = Some("remove".into());
            if repair {
                vfs::remove_file(&tmp)?;
                f.repaired = true;
            }
            findings.push(f);
        }
    }

    Ok(FsckReport {
        findings,
        bootable,
        boot_path,
    })
}

/// Validate the sidecar against the simulated store state. Returns the
/// boot-path description (`boot_snapshot`'s choice, in words).
fn check_sidecar(
    snap: &Path,
    sim: &Sim,
    repair: bool,
    findings: &mut Vec<Finding>,
) -> std::io::Result<String> {
    if !snap.exists() {
        findings.push(finding(
            Severity::Info,
            snap,
            "no snapshot sidecar; boot rebuilds from the log",
        ));
        return Ok("rebuild (no sidecar)".into());
    }
    let bytes = vfs::read(snap)?;
    // Load exactly as boot would (sequentially — fsck does no pool work).
    match Snapshot::from_bytes(&Ctx::seq(), &bytes) {
        Err(e) => {
            let mut f = finding(
                Severity::Error,
                snap,
                format!("sidecar unreadable ({e}); boot falls back to rebuild"),
            );
            f.repair = Some("quarantine to *.corrupt".into());
            if repair {
                let dest = quarantine(snap)?;
                f.detail
                    .push_str(&format!("; quarantined to {}", dest.display()));
                f.repaired = true;
            }
            findings.push(f);
            Ok("rebuild (sidecar quarantined or unreadable)".into())
        }
        Ok(loaded) => {
            if loaded.epoch() != sim.epoch {
                findings.push(finding(
                    Severity::Info,
                    snap,
                    format!(
                        "sidecar epoch {} != log epoch {}; boot rebuilds (stale sidecar — \
                         compact to refresh)",
                        loaded.epoch(),
                        sim.epoch
                    ),
                ));
                return Ok("rebuild (stale sidecar epoch)".into());
            }
            if loaded.patterns() != Some(&sim.live[..]) {
                findings.push(finding(
                    Severity::Warn,
                    snap,
                    "sidecar seals the log's epoch but lists different patterns; boot rebuilds",
                ));
                return Ok("rebuild (sidecar patterns disagree)".into());
            }
            Ok("cold-load from sidecar".into())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{encode_record, LogFile};
    use crate::store::DictStore;
    use pdm_core::dict::to_symbols;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pdm-fsck-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn seeded(dir: &Path) -> PathBuf {
        let path = dir.join("dict.log");
        let ctx = Ctx::seq();
        let mut store = DictStore::open(&path).unwrap();
        store.stage_add(&to_symbols("he")).unwrap();
        store.stage_add(&to_symbols("she")).unwrap();
        store.commit(&ctx).unwrap();
        store.compact(&ctx).unwrap();
        path
    }

    #[test]
    fn clean_store_is_clean_and_cold_loads() {
        let dir = tmp_dir("clean");
        let path = seeded(&dir);
        let report = fsck_store(&path, false).unwrap();
        assert!(report.clean(), "{:?}", report.findings);
        assert!(report.bootable);
        assert_eq!(report.boot_path, "cold-load from sidecar");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_detected_and_repaired() {
        let dir = tmp_dir("torn");
        let path = seeded(&dir);
        // Tear the log: append half a record.
        let rec = encode_record(&Record::Add(to_symbols("xyz")));
        let mut bytes = std::fs::read(&path).unwrap();
        let good = bytes.len() as u64;
        bytes.extend_from_slice(&rec[..rec.len() / 2]);
        std::fs::write(&path, &bytes).unwrap();

        let report = fsck_store(&path, false).unwrap();
        assert_eq!(report.unrepaired(), 1);
        assert!(report.bootable, "torn tail never blocks boot");

        let report = fsck_store(&path, true).unwrap();
        assert_eq!(report.unrepaired(), 0);
        assert!(report.findings.iter().any(|f| f.repaired));
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good);
        // Clean after repair.
        assert!(fsck_store(&path, false).unwrap().clean());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_sidecar_quarantined() {
        let dir = tmp_dir("snapbad");
        let path = seeded(&dir);
        let snap = snap_path(&path);
        let mut bytes = std::fs::read(&snap).unwrap();
        let n = bytes.len();
        bytes[n / 2] ^= 0xFF;
        std::fs::write(&snap, &bytes).unwrap();

        let report = fsck_store(&path, false).unwrap();
        assert_eq!(report.unrepaired(), 1);
        assert!(report.bootable, "bad sidecar only forces a rebuild");

        let report = fsck_store(&path, true).unwrap();
        assert_eq!(report.unrepaired(), 0);
        assert!(!snap.exists(), "sidecar quarantined");
        assert!(snap_quarantine_exists(&snap));
        assert!(fsck_store(&path, false).unwrap().bootable);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn snap_quarantine_exists(snap: &Path) -> bool {
        let mut os = snap.as_os_str().to_owned();
        os.push(".corrupt");
        PathBuf::from(os).exists()
    }

    #[test]
    fn inconsistent_log_is_unbootable_and_untouched() {
        let dir = tmp_dir("inconsistent");
        let path = dir.join("dict.log");
        {
            let mut log = LogFile::create(&path).unwrap();
            log.append(&Record::Add(to_symbols("ab"))).unwrap();
            log.append(&Record::Add(to_symbols("ab"))).unwrap(); // duplicate
            log.append(&Record::Commit(1)).unwrap();
            log.sync().unwrap();
        }
        let before = std::fs::read(&path).unwrap();
        let report = fsck_store(&path, true).unwrap();
        assert!(!report.bootable);
        assert_eq!(report.boot_path, "unbootable");
        assert!(report.unrepaired() > 0);
        assert_eq!(std::fs::read(&path).unwrap(), before, "left untouched");
        assert!(DictStore::open(&path).is_err(), "fsck verdict matches open");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_sidecar_is_informational() {
        let dir = tmp_dir("stale");
        let path = seeded(&dir);
        // Advance the log one epoch past the sidecar.
        let ctx = Ctx::seq();
        let mut store = DictStore::open(&path).unwrap();
        store.stage_add(&to_symbols("hers")).unwrap();
        store.commit(&ctx).unwrap();
        drop(store);
        let report = fsck_store(&path, false).unwrap();
        assert_eq!(report.unrepaired(), 0, "stale sidecar is not a failure");
        assert!(report.bootable);
        assert!(report.boot_path.contains("stale"), "{}", report.boot_path);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stray_tmp_swept() {
        let dir = tmp_dir("stray");
        let path = seeded(&dir);
        let tmp = vfs::tmp_path(&snap_path(&path));
        std::fs::write(&tmp, b"half-written").unwrap();
        let report = fsck_store(&path, false).unwrap();
        assert_eq!(report.unrepaired(), 1);
        fsck_store(&path, true).unwrap();
        assert!(!tmp.exists());
        assert!(fsck_store(&path, false).unwrap().clean());
        std::fs::remove_dir_all(&dir).ok();
    }
}
