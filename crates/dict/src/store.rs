//! The versioned dictionary store: staged updates, committed epochs, and
//! the incremental-vs-full rebuild policy.
//!
//! A [`DictStore`] owns three things:
//!
//! 1. the **log** (`log.rs`) — every staged add/remove is appended before
//!    it is acknowledged, every commit seals an epoch, so a killed server
//!    replays back to exactly its committed dictionary plus the staged
//!    tail;
//! 2. the **canonical state** — live patterns in first-commit order (the
//!    canonical id space every [`Snapshot`] shares), plus a master
//!    [`DynamicMatcher`] mirroring the committed set through the paper's
//!    §6 insert/delete path;
//! 3. the **rebuild policy** — a commit whose pending-update ratio stays
//!    under the threshold publishes a frozen clone of the dynamic matcher
//!    (Theorems 7–10: `O(λ)` table work per pattern); past the threshold
//!    it rebuilds a `StaticMatcher` on the pool instead (Theorem 3),
//!    which is cheaper than many incremental steps once the batch is a
//!    sizable fraction of the dictionary. Both paths produce snapshots
//!    with identical canonical bytes and identical match output.
//!
//! **Cold start.** [`DictStore::open`] replays the log *structurally* —
//! canonical slots, liveness, staged tail — without feeding the master
//! dynamic matcher (that naming work is deferred to the first commit via
//! lazy hydration). [`DictStore::boot_snapshot`] then serves the first
//! epoch from the `<log>.snap` sidecar when it is a valid, current v2
//! snapshot ([`SnapshotPath::ColdLoaded`], zero naming rounds), and falls
//! back to a rebuild otherwise, reporting why ([`BootFallback`]).
//! [`DictStore::compact`] emits that v2 sidecar.

use crate::log::{LogError, LogFile, Record, RecoveredTornTail};
use crate::snapshot::{Snapshot, SnapshotPath, SNAP_VERSION};
use pdm_core::dynamic::{DynError, DynamicMatcher};
use pdm_core::{BuildError, PatId, Sym};
use pdm_pram::Ctx;
use pdm_primitives::{vfs, FxHashMap};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Default pending-update ratio above which a commit takes the full-rebuild
/// path (staged symbols / committed symbols).
pub const DEFAULT_REBUILD_THRESHOLD: f64 = 0.25;

/// Errors from store operations.
#[derive(Debug)]
pub enum StoreError {
    /// Empty patterns are not admissible.
    EmptyPattern,
    /// Staged add of a pattern already live (committed or staged).
    AlreadyPresent,
    /// Staged remove of a pattern not live (committed or staged).
    NotFound,
    /// Commit with nothing staged.
    NothingStaged,
    /// The log replayed to an inconsistent state (valid CRCs, bad ops).
    Replay(String),
    Log(LogError),
    Build(BuildError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::EmptyPattern => write!(f, "empty pattern"),
            StoreError::AlreadyPresent => write!(f, "pattern already present"),
            StoreError::NotFound => write!(f, "pattern not found"),
            StoreError::NothingStaged => write!(f, "nothing staged to commit"),
            StoreError::Replay(m) => write!(f, "log replay: {m}"),
            StoreError::Log(e) => write!(f, "{e}"),
            StoreError::Build(e) => write!(f, "rebuild: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<LogError> for StoreError {
    fn from(e: LogError) -> Self {
        StoreError::Log(e)
    }
}

impl From<BuildError> for StoreError {
    fn from(e: BuildError) -> Self {
        StoreError::Build(e)
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Op {
    Add(Vec<Sym>),
    Remove(Vec<Sym>),
}

impl Op {
    fn syms(&self) -> usize {
        match self {
            Op::Add(p) | Op::Remove(p) => p.len(),
        }
    }
}

/// What a commit did.
#[derive(Debug, Clone)]
pub struct CommitOutcome {
    /// The newly published epoch.
    pub epoch: u64,
    /// Snapshot for that epoch (hand to [`crate::EpochHandle::publish`]).
    pub snapshot: Arc<Snapshot>,
    /// Which rebuild path ran.
    pub path: SnapshotPath,
    /// Number of staged ops applied.
    pub applied: usize,
}

/// What a compaction did.
#[derive(Debug, Clone)]
pub struct CompactReport {
    /// Live patterns written to the rewritten log.
    pub live: usize,
    /// Staged ops preserved at the tail of the rewritten log.
    pub staged: usize,
    /// Snapshot file emitted next to the log (`<log>.snap`).
    pub snapshot_file: Option<PathBuf>,
}

/// Why [`DictStore::boot_snapshot`] rebuilt instead of cold-loading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BootFallback {
    /// No `.snap` sidecar next to the log (or an in-memory store).
    NoSidecar,
    /// The sidecar is a pre-v2 format — loadable only by rebuilding.
    LegacyVersion(u32),
    /// The sidecar failed to read or validate (message has the detail).
    Unreadable(String),
    /// The sidecar seals a different epoch than the replayed log.
    StaleEpoch { sidecar: u64, store: u64 },
    /// Same epoch but a different canonical pattern list.
    StalePatterns,
}

impl std::fmt::Display for BootFallback {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoSidecar => write!(f, "no snapshot sidecar"),
            Self::LegacyVersion(v) => write!(f, "snapshot is legacy format v{v}"),
            Self::Unreadable(m) => write!(f, "{m}"),
            Self::StaleEpoch { sidecar, store } => {
                write!(f, "snapshot epoch {sidecar} behind log epoch {store}")
            }
            Self::StalePatterns => write!(f, "snapshot patterns disagree with log"),
        }
    }
}

/// The first served snapshot plus how it was obtained.
#[derive(Debug, Clone)]
pub struct BootOutcome {
    pub snapshot: Arc<Snapshot>,
    /// `None` = cold-loaded from the v2 sidecar (no naming rounds);
    /// `Some(reason)` = rebuilt, and why the sidecar was not used.
    pub fallback: Option<BootFallback>,
}

impl BootOutcome {
    /// Did boot skip the rebuild entirely?
    pub fn cold_loaded(&self) -> bool {
        self.fallback.is_none()
    }
}

/// Versioned dictionary store (see module docs).
pub struct DictStore {
    log: Option<LogFile>,
    path: Option<PathBuf>,
    /// Canonical slots in first-commit order; `None` = removed.
    slots: Vec<Option<Vec<Sym>>>,
    /// Dynamic-matcher slot id per canonical slot (parallel to `slots`).
    native: Vec<Option<PatId>>,
    /// Live pattern → canonical slot.
    index: FxHashMap<Vec<Sym>, usize>,
    staged: Vec<Op>,
    /// Liveness overrides from staged ops (pattern → live-after-commit).
    staged_view: FxHashMap<Vec<Sym>, bool>,
    /// Master dynamic matcher mirroring the committed set — only once
    /// hydrated; a freshly opened store defers this naming work.
    dynm: DynamicMatcher,
    /// Has `dynm` been fed the committed patterns? `open` replays the log
    /// structurally and leaves this false; the first commit hydrates.
    hydrated: bool,
    /// Total committed symbols (maintained structurally, so it is correct
    /// whether or not `dynm` is hydrated).
    committed_syms: usize,
    epoch: u64,
    threshold: f64,
    /// Sequential context for the per-op §6 updates (each is `O(λ)`).
    seq: Ctx,
    /// Bytes dropped from a torn/corrupt log tail at open.
    recovered_truncated: u64,
    /// Typed report of that drop (what was kept, what was torn, why).
    recovery: Option<RecoveredTornTail>,
}

impl DictStore {
    /// An in-memory store (no durability; tests and benches).
    pub fn in_memory() -> Self {
        DictStore {
            log: None,
            path: None,
            slots: Vec::new(),
            native: Vec::new(),
            index: FxHashMap::default(),
            staged: Vec::new(),
            staged_view: FxHashMap::default(),
            dynm: DynamicMatcher::new(),
            hydrated: true,
            committed_syms: 0,
            epoch: 0,
            threshold: DEFAULT_REBUILD_THRESHOLD,
            seq: Ctx::seq(),
            recovered_truncated: 0,
            recovery: None,
        }
    }

    /// Open (or create) a store backed by the log at `path`, replaying the
    /// committed dictionary and re-staging the uncommitted tail.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let (log, replay) = LogFile::open(path)?;
        let mut store = Self::in_memory();
        store.log = Some(log);
        store.path = Some(path.to_path_buf());
        store.recovered_truncated = replay.truncated;
        store.recovery = replay.recovery;
        // Structural replay: rebuild slots/liveness without paying the §6
        // naming work per pattern. The master dynamic matcher is hydrated
        // lazily — on the first commit — so a boot that cold-loads its
        // snapshot from the sidecar does zero naming rounds.
        store.hydrated = false;
        // Split at the last commit: before = committed, after = staged.
        let last_commit = replay
            .records
            .iter()
            .rposition(|r| matches!(r, Record::Commit(_)));
        for (i, rec) in replay.records.into_iter().enumerate() {
            let committed = last_commit.is_some_and(|c| i <= c);
            match rec {
                Record::Commit(e) => store.epoch = e,
                Record::Add(p) if committed => store
                    .apply_add(p)
                    .map_err(|e| StoreError::Replay(format!("record {i}: {e}")))?,
                Record::Remove(p) if committed => {
                    store
                        .apply_remove(&p)
                        .map_err(|e| StoreError::Replay(format!("record {i}: {e}")))?;
                }
                Record::Add(p) => store
                    .restage(Op::Add(p))
                    .map_err(|e| StoreError::Replay(format!("record {i}: {e}")))?,
                Record::Remove(p) => store
                    .restage(Op::Remove(p))
                    .map_err(|e| StoreError::Replay(format!("record {i}: {e}")))?,
            }
        }
        Ok(store)
    }

    /// Ratio of staged symbols to committed symbols above which a commit
    /// runs a full rebuild instead of the incremental path.
    pub fn set_rebuild_threshold(&mut self, threshold: f64) {
        self.threshold = threshold.max(0.0);
    }

    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Live committed patterns.
    pub fn pattern_count(&self) -> usize {
        self.index.len()
    }

    /// Total committed symbols.
    pub fn symbol_count(&self) -> usize {
        self.committed_syms
    }

    /// Staged (uncommitted) ops.
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// Bytes dropped from a torn or corrupt log tail when this store was
    /// opened (0 = the log was clean).
    pub fn recovered_truncated(&self) -> u64 {
        self.recovered_truncated
    }

    /// Typed recovery report when open had to drop a torn or corrupt log
    /// tail (`None` = the log replayed cleanly).
    pub fn recovery(&self) -> Option<&RecoveredTornTail> {
        self.recovery.as_ref()
    }

    /// Committed patterns in canonical order.
    pub fn live_patterns(&self) -> Vec<Vec<Sym>> {
        self.slots.iter().flatten().cloned().collect()
    }

    /// Is `pattern` live after every staged op commits?
    pub fn would_be_live(&self, pattern: &[Sym]) -> bool {
        match self.staged_view.get(pattern) {
            Some(&live) => live,
            None => self.index.contains_key(pattern),
        }
    }

    /// Stage an add: validated against the post-commit view, appended to
    /// the log, applied at the next [`DictStore::commit`].
    pub fn stage_add(&mut self, pattern: &[Sym]) -> Result<(), StoreError> {
        if pattern.is_empty() {
            return Err(StoreError::EmptyPattern);
        }
        if self.would_be_live(pattern) {
            return Err(StoreError::AlreadyPresent);
        }
        if let Some(log) = &mut self.log {
            log.append(&Record::Add(pattern.to_vec()))?;
            log.sync()?;
        }
        self.restage(Op::Add(pattern.to_vec()))
            .expect("validated above");
        Ok(())
    }

    /// Stage a remove (same contract as [`DictStore::stage_add`]).
    pub fn stage_remove(&mut self, pattern: &[Sym]) -> Result<(), StoreError> {
        if pattern.is_empty() {
            return Err(StoreError::EmptyPattern);
        }
        if !self.would_be_live(pattern) {
            return Err(StoreError::NotFound);
        }
        if let Some(log) = &mut self.log {
            log.append(&Record::Remove(pattern.to_vec()))?;
            log.sync()?;
        }
        self.restage(Op::Remove(pattern.to_vec()))
            .expect("validated above");
        Ok(())
    }

    /// Commit every staged op as a new epoch; the rebuild path is chosen
    /// by the pending-update ratio (see module docs).
    pub fn commit(&mut self, ctx: &Ctx) -> Result<CommitOutcome, StoreError> {
        self.commit_with(ctx, None)
    }

    /// Commit with the rebuild path forced — the differential test uses
    /// this to prove both paths publish identical snapshots.
    pub fn commit_with(
        &mut self,
        ctx: &Ctx,
        force: Option<SnapshotPath>,
    ) -> Result<CommitOutcome, StoreError> {
        if self.staged.is_empty() {
            return Err(StoreError::NothingStaged);
        }
        // Commits mutate the master dynamic matcher, so a structurally
        // replayed store pays its deferred naming work now (once).
        self.ensure_hydrated()?;
        let staged_syms: usize = self.staged.iter().map(Op::syms).sum();
        let ratio = staged_syms as f64 / self.symbol_count().max(1) as f64;
        let path = force.unwrap_or(if ratio > self.threshold {
            SnapshotPath::FullRebuild
        } else {
            SnapshotPath::Incremental
        });
        let ops = std::mem::take(&mut self.staged);
        self.staged_view.clear();
        let applied = ops.len();
        for op in ops {
            // Staging validated against the post-commit view, so ops can
            // only fail here if the log was tampered with between runs.
            match op {
                Op::Add(p) => self
                    .apply_add(p)
                    .map_err(|e| StoreError::Replay(format!("staged add: {e}")))?,
                Op::Remove(p) => {
                    self.apply_remove(&p)
                        .map_err(|e| StoreError::Replay(format!("staged remove: {e}")))?;
                }
            }
        }
        self.epoch += 1;
        if let Some(log) = &mut self.log {
            log.append(&Record::Commit(self.epoch))?;
            log.sync()?;
        }
        let snapshot = Arc::new(self.build_snapshot(ctx, path)?);
        Ok(CommitOutcome {
            epoch: self.epoch,
            snapshot,
            path,
            applied,
        })
    }

    /// Snapshot of the current committed dictionary (for the initial
    /// publish at serve start). A hydrated store freezes the live dynamic
    /// matcher (incremental path); a structurally replayed one rebuilds a
    /// static matcher instead — cheaper than hydrating just to clone.
    pub fn snapshot(&mut self, ctx: &Ctx) -> Result<Arc<Snapshot>, StoreError> {
        let path = if self.hydrated {
            SnapshotPath::Incremental
        } else {
            SnapshotPath::FullRebuild
        };
        Ok(Arc::new(self.build_snapshot(ctx, path)?))
    }

    /// First snapshot at serve start, preferring the `<log>.snap` sidecar:
    /// a valid, current v2 sidecar is loaded in `O(file size)` with zero
    /// naming rounds ([`SnapshotPath::ColdLoaded`]); anything else —
    /// missing, legacy v1, corrupt, stale — falls back to
    /// [`DictStore::snapshot`] and reports why in
    /// [`BootOutcome::fallback`].
    pub fn boot_snapshot(&mut self, ctx: &Ctx) -> Result<BootOutcome, StoreError> {
        match self.try_cold_boot(ctx) {
            Ok(snapshot) => Ok(BootOutcome {
                snapshot,
                fallback: None,
            }),
            Err(reason) => Ok(BootOutcome {
                snapshot: self.snapshot(ctx)?,
                fallback: Some(reason),
            }),
        }
    }

    fn try_cold_boot(&self, ctx: &Ctx) -> Result<Arc<Snapshot>, BootFallback> {
        let Some(path) = &self.path else {
            return Err(BootFallback::NoSidecar);
        };
        let file = snap_path(path);
        let bytes = match vfs::read(&file) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(BootFallback::NoSidecar);
            }
            Err(e) => return Err(BootFallback::Unreadable(e.to_string())),
        };
        match Snapshot::peek_version(&bytes) {
            Ok(SNAP_VERSION) => {}
            Ok(v) => return Err(BootFallback::LegacyVersion(v)),
            Err(e) => return Err(BootFallback::Unreadable(e.to_string())),
        }
        let snap = Snapshot::from_bytes(ctx, &bytes)
            .map_err(|e| BootFallback::Unreadable(e.to_string()))?;
        if snap.epoch() != self.epoch {
            return Err(BootFallback::StaleEpoch {
                sidecar: snap.epoch(),
                store: self.epoch,
            });
        }
        let live = self.live_patterns();
        if snap.patterns() != Some(&live[..]) {
            return Err(BootFallback::StalePatterns);
        }
        Ok(Arc::new(snap))
    }

    /// Rewrite the log to its minimal form — one add per live pattern in
    /// canonical order, one commit, then the staged tail — and emit a
    /// loadable v2 snapshot file next to it (`<log>.snap`): the *built*
    /// matcher, serialized, so the next [`DictStore::boot_snapshot`] skips
    /// the rebuild entirely. Canonical slots are densified so the
    /// rewritten log replays to this exact state.
    pub fn compact(&mut self, ctx: &Ctx) -> Result<CompactReport, StoreError> {
        // Densify tombstoned slots; canonical order (live order) unchanged.
        let mut slots = Vec::with_capacity(self.index.len());
        let mut native = Vec::with_capacity(self.index.len());
        for (s, n) in self.slots.iter().zip(&self.native) {
            if let Some(p) = s {
                self.index.insert(p.clone(), slots.len());
                slots.push(Some(p.clone()));
                native.push(*n);
            }
        }
        self.slots = slots;
        self.native = native;

        let report = CompactReport {
            live: self.index.len(),
            staged: self.staged.len(),
            snapshot_file: self.path.as_ref().map(|p| snap_path(p)),
        };
        let Some(path) = self.path.clone() else {
            return Ok(report); // in-memory: densify only
        };
        // Rewrite into a temp file, fsync, rename over the live log.
        let tmp = path.with_extension("log.tmp");
        {
            let mut log = LogFile::create(&tmp)?;
            for p in self.slots.iter().flatten() {
                log.append(&Record::Add(p.clone()))?;
            }
            log.append(&Record::Commit(self.epoch))?;
            for op in &self.staged {
                let rec = match op {
                    Op::Add(p) => Record::Add(p.clone()),
                    Op::Remove(p) => Record::Remove(p.clone()),
                };
                log.append(&rec)?;
            }
            log.sync()?;
        }
        self.log = None; // close before replacing (Windows-friendly habit)
        vfs::rename(&tmp, &path).map_err(LogError::Io)?;
        // The rename is only durable once the parent directory's entry is
        // on disk too — without this fsync a crash can resurrect the old
        // (pre-compaction) log or, worse, lose the name entirely.
        vfs::sync_parent_dir(&path).map_err(LogError::Io)?;
        let (log, _) = LogFile::open(&path)?;
        self.log = Some(log);
        // Emit the loadable snapshot beside the log: v2 (serialized built
        // matcher) when the dictionary is non-empty, identity bytes (v1)
        // for an empty one — a dynamic inner has no frozen form. Written
        // atomically so a crash mid-write leaves the previous good sidecar
        // (or none) rather than a torn one.
        let snap = Snapshot::build_static(ctx, self.epoch, self.live_patterns())?;
        let bytes = snap
            .to_sidecar_bytes()
            .unwrap_or_else(|| crate::snapshot::encode_identity(self.epoch, &self.live_patterns()));
        vfs::atomic_write(&snap_path(&path), &bytes).map_err(LogError::Io)?;
        Ok(report)
    }

    // ---- internals ---------------------------------------------------------

    fn restage(&mut self, op: Op) -> Result<(), StoreError> {
        let (pattern, live) = match &op {
            Op::Add(p) => (p, true),
            Op::Remove(p) => (p, false),
        };
        // Replayed staged tails re-validate; direct staging pre-validated.
        if live && self.would_be_live(pattern) {
            return Err(StoreError::AlreadyPresent);
        }
        if !live && !self.would_be_live(pattern) {
            return Err(StoreError::NotFound);
        }
        self.staged_view.insert(pattern.clone(), live);
        self.staged.push(op);
        Ok(())
    }

    fn apply_add(&mut self, pattern: Vec<Sym>) -> Result<(), StoreError> {
        if self.index.contains_key(&pattern) {
            return Err(StoreError::AlreadyPresent);
        }
        if pattern.is_empty() {
            return Err(StoreError::EmptyPattern);
        }
        let nat = if self.hydrated {
            Some(self.dynm.insert(&self.seq, &pattern).map_err(dyn_err)?)
        } else {
            None
        };
        self.committed_syms += pattern.len();
        self.index.insert(pattern.clone(), self.slots.len());
        self.slots.push(Some(pattern));
        self.native.push(nat);
        Ok(())
    }

    fn apply_remove(&mut self, pattern: &[Sym]) -> Result<(), StoreError> {
        let slot = self.index.remove(pattern).ok_or(StoreError::NotFound)?;
        if self.hydrated {
            self.dynm.delete(&self.seq, pattern).map_err(dyn_err)?;
        }
        self.committed_syms -= pattern.len();
        self.slots[slot] = None;
        self.native[slot] = None;
        Ok(())
    }

    /// Feed the committed patterns into the master dynamic matcher if the
    /// store was opened with a structural replay. Idempotent; `O(Σλ)` the
    /// first time after `open`, free afterwards.
    fn ensure_hydrated(&mut self) -> Result<(), StoreError> {
        if self.hydrated {
            return Ok(());
        }
        for slot in 0..self.slots.len() {
            let Some(p) = self.slots[slot].clone() else {
                continue;
            };
            let nat = self.dynm.insert(&self.seq, &p).map_err(dyn_err)?;
            self.native[slot] = Some(nat);
        }
        self.hydrated = true;
        Ok(())
    }

    fn build_snapshot(&self, ctx: &Ctx, path: SnapshotPath) -> Result<Snapshot, StoreError> {
        let patterns = self.live_patterns();
        Ok(match path {
            SnapshotPath::FullRebuild | SnapshotPath::ColdLoaded => {
                Snapshot::build_static(ctx, self.epoch, patterns)?
            }
            SnapshotPath::Incremental => {
                debug_assert!(self.hydrated, "incremental snapshot of unhydrated store");
                let native: Vec<PatId> = self
                    .slots
                    .iter()
                    .zip(&self.native)
                    .filter(|(s, _)| s.is_some())
                    .map(|(_, n)| n.expect("hydrated live slot has a native id"))
                    .collect();
                Snapshot::from_dynamic(self.epoch, self.dynm.clone(), patterns, &native)
            }
        })
    }
}

fn dyn_err(e: DynError) -> StoreError {
    match e {
        DynError::EmptyPattern => StoreError::EmptyPattern,
        DynError::AlreadyPresent(_) => StoreError::AlreadyPresent,
        DynError::NotFound => StoreError::NotFound,
    }
}

/// The snapshot file emitted by compaction, next to the log.
pub fn snap_path(log: &Path) -> PathBuf {
    let mut os = log.as_os_str().to_owned();
    os.push(".snap");
    PathBuf::from(os)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_core::dict::{symbolize, to_symbols};

    fn add_all(store: &mut DictStore, pats: &[&str]) {
        for p in symbolize(pats) {
            store.stage_add(&p).unwrap();
        }
    }

    #[test]
    fn stage_validation() {
        let mut s = DictStore::in_memory();
        assert!(matches!(s.stage_add(&[]), Err(StoreError::EmptyPattern)));
        s.stage_add(&to_symbols("ab")).unwrap();
        assert!(matches!(
            s.stage_add(&to_symbols("ab")),
            Err(StoreError::AlreadyPresent)
        ));
        assert!(matches!(
            s.stage_remove(&to_symbols("cd")),
            Err(StoreError::NotFound)
        ));
        // Staged remove of a staged add is fine; then the add is free again.
        s.stage_remove(&to_symbols("ab")).unwrap();
        s.stage_add(&to_symbols("ab")).unwrap();
        assert_eq!(s.staged_len(), 3);
    }

    #[test]
    fn commit_publishes_epochs() {
        let ctx = Ctx::seq();
        let mut s = DictStore::in_memory();
        assert!(matches!(s.commit(&ctx), Err(StoreError::NothingStaged)));
        add_all(&mut s, &["he", "she"]);
        let out = s.commit(&ctx).unwrap();
        assert_eq!(out.epoch, 1);
        assert_eq!(out.applied, 2);
        assert_eq!(out.snapshot.pattern_count(), 2);
        s.stage_remove(&to_symbols("he")).unwrap();
        let out = s.commit(&ctx).unwrap();
        assert_eq!(out.epoch, 2);
        assert_eq!(out.snapshot.pattern_count(), 1);
        assert_eq!(s.pattern_count(), 1);
    }

    #[test]
    fn rebuild_policy_crosses_threshold() {
        let ctx = Ctx::seq();
        let mut s = DictStore::in_memory();
        add_all(&mut s, &["aaaa", "bbbb", "cccc", "dddd"]);
        // Bootstrap commit: ratio is huge (empty dictionary) → full.
        assert_eq!(s.commit(&ctx).unwrap().path, SnapshotPath::FullRebuild);
        // One small add against 16 symbols: ratio 0.25 is not > 0.25.
        s.stage_add(&to_symbols("efgh")).unwrap();
        assert_eq!(s.commit(&ctx).unwrap().path, SnapshotPath::Incremental);
        // A batch bigger than a quarter of the dictionary → full rebuild.
        add_all(&mut s, &["iiii", "jjjj"]);
        assert_eq!(s.commit(&ctx).unwrap().path, SnapshotPath::FullRebuild);
    }

    #[test]
    fn incremental_and_full_snapshots_identical() {
        let ctx = Ctx::seq();
        let mut a = DictStore::in_memory();
        let mut b = DictStore::in_memory();
        for s in [&mut a, &mut b] {
            add_all(s, &["he", "she", "his", "hers"]);
            s.commit(&ctx).unwrap();
            s.stage_remove(&to_symbols("his")).unwrap();
            s.stage_add(&to_symbols("her")).unwrap();
        }
        let inc = a
            .commit_with(&ctx, Some(SnapshotPath::Incremental))
            .unwrap();
        let full = b
            .commit_with(&ctx, Some(SnapshotPath::FullRebuild))
            .unwrap();
        assert_eq!(inc.path, SnapshotPath::Incremental);
        assert_eq!(full.path, SnapshotPath::FullRebuild);
        assert_eq!(
            inc.snapshot.identity_bytes().unwrap(),
            full.snapshot.identity_bytes().unwrap(),
            "canonical bytes must not depend on the rebuild path"
        );
        let text = to_symbols("usherssheher");
        assert_eq!(
            inc.snapshot.find_all(&ctx, &text),
            full.snapshot.find_all(&ctx, &text),
            "match output must not depend on the rebuild path"
        );
    }

    #[test]
    fn canonical_order_is_first_commit_order() {
        let ctx = Ctx::seq();
        let mut s = DictStore::in_memory();
        add_all(&mut s, &["bb", "aa", "cc"]);
        s.commit(&ctx).unwrap();
        s.stage_remove(&to_symbols("aa")).unwrap();
        s.stage_add(&to_symbols("dd")).unwrap();
        let out = s.commit(&ctx).unwrap();
        // "aa" tombstoned, "dd" appended: canonical = [bb, cc, dd].
        assert_eq!(
            out.snapshot.patterns().unwrap(),
            &symbolize(&["bb", "cc", "dd"])[..]
        );
    }
}
