//! Property tests for the two rebuild paths.
//!
//! 1. `DynamicMatcher` after a *random interleaving* of inserts and
//!    deletes is equivalent to a `StaticMatcher` built from scratch on the
//!    surviving pattern set (the §6 claim the incremental commit path
//!    leans on).
//! 2. A `DictStore` driven by the same interleaving — staged in batches
//!    and committed (exercising both the incremental batch-apply and the
//!    threshold-triggered full rebuild) — reports exactly the matches of a
//!    from-scratch `StaticMatcher` on every committed epoch.

use std::collections::HashMap;

use pdm_core::dict::{PatId, Sym};
use pdm_core::dynamic::{DynError, DynamicMatcher};
use pdm_core::static1d::StaticMatcher;
use pdm_dict::DictStore;
use pdm_pram::Ctx;
use proptest::prelude::*;

/// A scripted dictionary edit: insert (roll < 7, i.e. 70%) or delete a
/// pattern over the alphabet {0,1,2}.
fn ops_strategy() -> impl Strategy<Value = Vec<(u32, Vec<Sym>)>> {
    proptest::collection::vec((0u32..10, proptest::collection::vec(0u32..3, 1..10)), 1..40)
}

/// Longest match per position, id-agnostic: the pattern *text* at each
/// position (unique — two distinct equal-length patterns cannot match at
/// the same spot).
fn longest_by_content(
    longest: &[Option<PatId>],
    pattern_of: &dyn Fn(PatId) -> Vec<Sym>,
) -> Vec<Option<Vec<Sym>>> {
    longest.iter().map(|o| o.map(|id| pattern_of(id))).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dynamic_equals_static_after_interleaving(
        ops in ops_strategy(),
        text in proptest::collection::vec(0u32..3, 0..200),
    ) {
        let ctx = Ctx::seq();
        let mut d = DynamicMatcher::new();
        // Model of the live set: dynamic id -> pattern, plus build order.
        let mut by_id: HashMap<PatId, Vec<Sym>> = HashMap::new();
        let mut live: Vec<Vec<Sym>> = Vec::new();
        for (roll, p) in &ops {
            if *roll < 7 {
                match d.insert(&ctx, p) {
                    Ok(id) => {
                        by_id.insert(id, p.clone());
                        live.push(p.clone());
                    }
                    Err(DynError::AlreadyPresent(_)) => {}
                    Err(e) => panic!("insert: {e}"),
                }
            } else {
                match d.delete(&ctx, p) {
                    Ok(id) => {
                        by_id.remove(&id);
                        live.retain(|q| q != p);
                    }
                    Err(DynError::NotFound) => {}
                    Err(e) => panic!("delete: {e}"),
                }
            }
        }
        prop_assert_eq!(d.pattern_count(), live.len());

        let got = longest_by_content(
            &d.match_text(&ctx, &text).longest_pattern,
            &|id| by_id[&id].clone(),
        );
        if live.is_empty() {
            prop_assert!(got.iter().all(Option::is_none));
            return Ok(());
        }
        let s = StaticMatcher::build(&ctx, &live).unwrap();
        let want = longest_by_content(
            &s.match_text(&ctx, &text).longest_pattern,
            &|id| live[id as usize].clone(),
        );
        prop_assert_eq!(got, want);
    }

    #[test]
    fn store_commits_equal_static_rebuilds(
        ops in ops_strategy(),
        text in proptest::collection::vec(0u32..3, 0..160),
        batch in 1usize..6,
    ) {
        let ctx = Ctx::seq();
        let mut store = DictStore::in_memory();
        // Tiny threshold pushes some commits onto the full-rebuild path
        // while small batches still go incremental.
        store.set_rebuild_threshold(0.4);
        let mut live: Vec<Vec<Sym>> = Vec::new();
        let mut staged = 0usize;
        for (roll, p) in &ops {
            let ok = if *roll < 7 {
                let ok = store.stage_add(p).is_ok();
                if ok {
                    live.push(p.clone());
                }
                ok
            } else {
                let ok = store.stage_remove(p).is_ok();
                if ok {
                    live.retain(|q| q != p);
                }
                ok
            };
            if ok {
                staged += 1;
            }
            if staged >= batch {
                staged = 0;
                let out = store.commit(&ctx).unwrap();
                let snap = out.snapshot;
                // Compare id-agnostically as (position, pattern length):
                // unique per occurrence, since distinct equal-length
                // patterns cannot match at the same position.
                let mut got: Vec<(usize, u32)> = snap
                    .find_all(&ctx, &text)
                    .into_iter()
                    .map(|(i, p)| (i, snap.pattern_len(p)))
                    .collect();
                got.sort_unstable();
                let mut want: Vec<(usize, u32)> = if live.is_empty() {
                    Vec::new()
                } else {
                    StaticMatcher::build(&ctx, &live)
                        .unwrap()
                        .find_all(&ctx, &text)
                        .into_iter()
                        .map(|(i, p)| (i, live[p as usize].len() as u32))
                        .collect()
                };
                want.sort_unstable();
                prop_assert_eq!(got, want, "epoch {}", out.epoch);
            }
        }
    }
}
