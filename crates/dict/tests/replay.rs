//! Kill−restart durability: a store reopened on its log recovers the exact
//! committed dictionary (and the staged tail), through torn tails and
//! through compaction.

use pdm_core::dict::{symbolize, to_symbols};
use pdm_dict::{DictStore, Snapshot};
use pdm_pram::Ctx;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

fn temp_log(name: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "pdm-dict-{}-{}-{}",
        name,
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("dict.log")
}

#[test]
fn restart_recovers_committed_dictionary() {
    let ctx = Ctx::seq();
    let path = temp_log("restart");
    {
        let mut store = DictStore::open(&path).unwrap();
        for p in symbolize(&["he", "she", "his", "hers"]) {
            store.stage_add(&p).unwrap();
        }
        store.commit(&ctx).unwrap();
        store.stage_remove(&to_symbols("his")).unwrap();
        store.commit(&ctx).unwrap();
        // Staged but never committed: must come back staged, not live.
        store.stage_add(&to_symbols("uncommitted")).unwrap();
        // "Kill": drop without any graceful close.
    }
    let store = DictStore::open(&path).unwrap();
    assert_eq!(store.epoch(), 2);
    assert_eq!(store.live_patterns(), symbolize(&["he", "she", "hers"]));
    assert_eq!(store.staged_len(), 1, "staged tail survives restart");
    assert_eq!(store.recovered_truncated(), 0);
}

#[test]
fn torn_tail_is_truncated_on_reopen() {
    let ctx = Ctx::seq();
    let path = temp_log("torn");
    {
        let mut store = DictStore::open(&path).unwrap();
        store.stage_add(&to_symbols("keep")).unwrap();
        store.commit(&ctx).unwrap();
        store.stage_add(&to_symbols("torn")).unwrap();
    }
    // Simulate a crash mid-append: chop bytes off the last record.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
    let store = DictStore::open(&path).unwrap();
    assert_eq!(store.live_patterns(), symbolize(&["keep"]));
    assert_eq!(store.staged_len(), 0, "torn staged record dropped");
    assert!(store.recovered_truncated() > 0);
    // The truncation must leave an appendable log.
    let mut store = store;
    store.stage_add(&to_symbols("after")).unwrap();
    store.commit(&ctx).unwrap();
    let store = DictStore::open(&path).unwrap();
    assert_eq!(store.live_patterns(), symbolize(&["keep", "after"]));
}

#[test]
fn compaction_roundtrip_preserves_state_and_emits_snapshot() {
    let ctx = Ctx::seq();
    let path = temp_log("compact");
    let (before_live, before_epoch, before_bytes) = {
        let mut store = DictStore::open(&path).unwrap();
        for p in symbolize(&["alpha", "beta", "gamma", "delta"]) {
            store.stage_add(&p).unwrap();
        }
        store.commit(&ctx).unwrap();
        store.stage_remove(&to_symbols("beta")).unwrap();
        store.stage_remove(&to_symbols("delta")).unwrap();
        let out = store.commit(&ctx).unwrap();
        store.stage_add(&to_symbols("staged-tail")).unwrap();
        let report = store.compact().unwrap();
        assert_eq!(report.live, 2);
        assert_eq!(report.staged, 1);
        (
            store.live_patterns(),
            store.epoch(),
            out.snapshot.to_bytes().unwrap(),
        )
    };
    // Replay of the compacted log reproduces the exact state.
    let store = DictStore::open(&path).unwrap();
    assert_eq!(store.live_patterns(), before_live);
    assert_eq!(store.epoch(), before_epoch);
    assert_eq!(store.staged_len(), 1);
    // And the compacted log is smaller than the op history it replaced.
    let snap_file = pdm_dict::store::snap_path(&path);
    let snap_bytes = std::fs::read(&snap_file).unwrap();
    let snap = Snapshot::from_bytes(&ctx, &snap_bytes).unwrap();
    assert_eq!(snap.epoch(), before_epoch);
    assert_eq!(
        snap.to_bytes().unwrap(),
        before_bytes,
        "snapshot file is canonical for the committed set"
    );
    // The loadable snapshot actually matches.
    let hits = snap.find_all(&ctx, &to_symbols("xxalphagamma"));
    assert_eq!(hits.len(), 2);
}

#[test]
fn compaction_then_further_commits_replay() {
    let ctx = Ctx::seq();
    let path = temp_log("compact-then-append");
    {
        let mut store = DictStore::open(&path).unwrap();
        for i in 0..20u32 {
            store.stage_add(&[100 + i, 200 + i, 300 + i]).unwrap();
        }
        store.commit(&ctx).unwrap();
        for i in 0..15u32 {
            store.stage_remove(&[100 + i, 200 + i, 300 + i]).unwrap();
        }
        store.commit(&ctx).unwrap();
        store.compact().unwrap();
        // Appending after compaction must replay cleanly too.
        store.stage_add(&to_symbols("post-compact")).unwrap();
        store.commit(&ctx).unwrap();
    }
    let store = DictStore::open(&path).unwrap();
    assert_eq!(store.epoch(), 3);
    assert_eq!(store.pattern_count(), 6);
    assert!(store.live_patterns().contains(&to_symbols("post-compact")));
}
