//! Kill−restart durability: a store reopened on its log recovers the exact
//! committed dictionary (and the staged tail), through torn tails and
//! through compaction.

use pdm_core::dict::{symbolize, to_symbols};
use pdm_dict::{DictStore, Snapshot};
use pdm_pram::Ctx;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

fn temp_log(name: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "pdm-dict-{}-{}-{}",
        name,
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("dict.log")
}

#[test]
fn restart_recovers_committed_dictionary() {
    let ctx = Ctx::seq();
    let path = temp_log("restart");
    {
        let mut store = DictStore::open(&path).unwrap();
        for p in symbolize(&["he", "she", "his", "hers"]) {
            store.stage_add(&p).unwrap();
        }
        store.commit(&ctx).unwrap();
        store.stage_remove(&to_symbols("his")).unwrap();
        store.commit(&ctx).unwrap();
        // Staged but never committed: must come back staged, not live.
        store.stage_add(&to_symbols("uncommitted")).unwrap();
        // "Kill": drop without any graceful close.
    }
    let store = DictStore::open(&path).unwrap();
    assert_eq!(store.epoch(), 2);
    assert_eq!(store.live_patterns(), symbolize(&["he", "she", "hers"]));
    assert_eq!(store.staged_len(), 1, "staged tail survives restart");
    assert_eq!(store.recovered_truncated(), 0);
}

#[test]
fn torn_tail_is_truncated_on_reopen() {
    let ctx = Ctx::seq();
    let path = temp_log("torn");
    {
        let mut store = DictStore::open(&path).unwrap();
        store.stage_add(&to_symbols("keep")).unwrap();
        store.commit(&ctx).unwrap();
        store.stage_add(&to_symbols("torn")).unwrap();
    }
    // Simulate a crash mid-append: chop bytes off the last record.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
    let store = DictStore::open(&path).unwrap();
    assert_eq!(store.live_patterns(), symbolize(&["keep"]));
    assert_eq!(store.staged_len(), 0, "torn staged record dropped");
    assert!(store.recovered_truncated() > 0);
    // The truncation must leave an appendable log.
    let mut store = store;
    store.stage_add(&to_symbols("after")).unwrap();
    store.commit(&ctx).unwrap();
    let store = DictStore::open(&path).unwrap();
    assert_eq!(store.live_patterns(), symbolize(&["keep", "after"]));
}

#[test]
fn compaction_roundtrip_preserves_state_and_emits_snapshot() {
    let ctx = Ctx::seq();
    let path = temp_log("compact");
    let (before_live, before_epoch, before_bytes) = {
        let mut store = DictStore::open(&path).unwrap();
        for p in symbolize(&["alpha", "beta", "gamma", "delta"]) {
            store.stage_add(&p).unwrap();
        }
        store.commit(&ctx).unwrap();
        store.stage_remove(&to_symbols("beta")).unwrap();
        store.stage_remove(&to_symbols("delta")).unwrap();
        let out = store.commit(&ctx).unwrap();
        store.stage_add(&to_symbols("staged-tail")).unwrap();
        let report = store.compact(&ctx).unwrap();
        assert_eq!(report.live, 2);
        assert_eq!(report.staged, 1);
        (
            store.live_patterns(),
            store.epoch(),
            out.snapshot.identity_bytes().unwrap(),
        )
    };
    // Replay of the compacted log reproduces the exact state.
    let store = DictStore::open(&path).unwrap();
    assert_eq!(store.live_patterns(), before_live);
    assert_eq!(store.epoch(), before_epoch);
    assert_eq!(store.staged_len(), 1);
    // And the compacted log is smaller than the op history it replaced.
    let snap_file = pdm_dict::store::snap_path(&path);
    let snap_bytes = std::fs::read(&snap_file).unwrap();
    let snap = Snapshot::from_bytes(&ctx, &snap_bytes).unwrap();
    assert_eq!(snap.epoch(), before_epoch);
    assert_eq!(
        snap.identity_bytes().unwrap(),
        before_bytes,
        "snapshot file is canonical for the committed set"
    );
    // The loadable snapshot actually matches.
    let hits = snap.find_all(&ctx, &to_symbols("xxalphagamma"));
    assert_eq!(hits.len(), 2);
}

#[test]
fn compaction_then_further_commits_replay() {
    let ctx = Ctx::seq();
    let path = temp_log("compact-then-append");
    {
        let mut store = DictStore::open(&path).unwrap();
        for i in 0..20u32 {
            store.stage_add(&[100 + i, 200 + i, 300 + i]).unwrap();
        }
        store.commit(&ctx).unwrap();
        for i in 0..15u32 {
            store.stage_remove(&[100 + i, 200 + i, 300 + i]).unwrap();
        }
        store.commit(&ctx).unwrap();
        store.compact(&ctx).unwrap();
        // Appending after compaction must replay cleanly too.
        store.stage_add(&to_symbols("post-compact")).unwrap();
        store.commit(&ctx).unwrap();
    }
    let store = DictStore::open(&path).unwrap();
    assert_eq!(store.epoch(), 3);
    assert_eq!(store.pattern_count(), 6);
    assert!(store.live_patterns().contains(&to_symbols("post-compact")));
}

#[test]
fn boot_cold_loads_fresh_sidecar() {
    let ctx = Ctx::seq();
    let path = temp_log("boot-cold");
    {
        let mut store = DictStore::open(&path).unwrap();
        for p in symbolize(&["he", "she", "his", "hers"]) {
            store.stage_add(&p).unwrap();
        }
        store.commit(&ctx).unwrap();
        store.compact(&ctx).unwrap();
    }
    let mut store = DictStore::open(&path).unwrap();
    let boot = store.boot_snapshot(&ctx).unwrap();
    assert!(boot.cold_loaded(), "fallback: {:?}", boot.fallback);
    assert_eq!(boot.snapshot.path(), pdm_dict::SnapshotPath::ColdLoaded);
    assert!(
        boot.snapshot.matcher().stats().cold_loaded,
        "no naming rounds may run on a cold boot"
    );
    assert_eq!(boot.snapshot.epoch(), 1);
    // The cold-loaded epoch matches exactly what a rebuild would serve.
    let rebuilt = Snapshot::build_static(&ctx, 1, store.live_patterns()).unwrap();
    let text = to_symbols("ushershishe");
    assert_eq!(
        boot.snapshot.find_all(&ctx, &text),
        rebuilt.find_all(&ctx, &text)
    );
}

#[test]
fn boot_falls_back_with_reasons() {
    use pdm_dict::BootFallback;
    let ctx = Ctx::seq();

    // No sidecar at all (never compacted).
    let path = temp_log("boot-nosnap");
    {
        let mut store = DictStore::open(&path).unwrap();
        store.stage_add(&to_symbols("solo")).unwrap();
        store.commit(&ctx).unwrap();
    }
    let mut store = DictStore::open(&path).unwrap();
    let boot = store.boot_snapshot(&ctx).unwrap();
    assert_eq!(boot.fallback, Some(BootFallback::NoSidecar));
    assert_eq!(boot.snapshot.pattern_count(), 1);

    // Legacy v1 sidecar: loadable, but only by rebuilding — boot reports it.
    let snap_file = pdm_dict::store::snap_path(&path);
    let v1 = pdm_dict::snapshot::encode_identity(1, &store.live_patterns());
    std::fs::write(&snap_file, v1).unwrap();
    let boot = store.boot_snapshot(&ctx).unwrap();
    assert_eq!(boot.fallback, Some(BootFallback::LegacyVersion(1)));
    assert_eq!(boot.snapshot.pattern_count(), 1);

    // Corrupt sidecar: flip a byte in a fresh v2 file.
    let good = Snapshot::build_static(&ctx, 1, store.live_patterns())
        .unwrap()
        .to_sidecar_bytes()
        .unwrap();
    let mut bad = good.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x10;
    std::fs::write(&snap_file, &bad).unwrap();
    let boot = store.boot_snapshot(&ctx).unwrap();
    assert!(
        matches!(boot.fallback, Some(BootFallback::Unreadable(_))),
        "{:?}",
        boot.fallback
    );

    // Stale epoch: sidecar seals epoch 1, store commits past it.
    std::fs::write(&snap_file, &good).unwrap();
    store.stage_add(&to_symbols("newer")).unwrap();
    store.commit(&ctx).unwrap();
    let boot = store.boot_snapshot(&ctx).unwrap();
    assert_eq!(
        boot.fallback,
        Some(BootFallback::StaleEpoch {
            sidecar: 1,
            store: 2
        })
    );

    // Stale patterns: same epoch, different canonical list.
    let wrong = Snapshot::build_static(&ctx, 2, symbolize(&["imposter"]))
        .unwrap()
        .to_sidecar_bytes()
        .unwrap();
    std::fs::write(&snap_file, wrong).unwrap();
    let boot = store.boot_snapshot(&ctx).unwrap();
    assert_eq!(boot.fallback, Some(BootFallback::StalePatterns));

    // Every fallback still served a correct snapshot.
    assert_eq!(boot.snapshot.pattern_count(), 2);
    assert_eq!(boot.snapshot.epoch(), 2);
}

#[test]
fn lazy_hydration_defers_naming_until_first_commit() {
    let ctx = Ctx::seq();
    let path = temp_log("hydrate");
    {
        let mut store = DictStore::open(&path).unwrap();
        for p in symbolize(&["aa", "bb", "cc"]) {
            store.stage_add(&p).unwrap();
        }
        store.commit(&ctx).unwrap();
        store.compact(&ctx).unwrap();
    }
    let mut store = DictStore::open(&path).unwrap();
    // Structural replay still exposes correct counts.
    assert_eq!(store.pattern_count(), 3);
    assert_eq!(store.symbol_count(), 6);
    // First commit after a cold open hydrates, then the incremental path
    // and the rebuild path still agree end to end.
    store.stage_add(&to_symbols("dd")).unwrap();
    let out = store.commit(&ctx).unwrap();
    assert_eq!(out.epoch, 2);
    assert_eq!(out.snapshot.pattern_count(), 4);
    let text = to_symbols("aabbccdd");
    let rebuilt = Snapshot::build_static(&ctx, 2, store.live_patterns()).unwrap();
    assert_eq!(
        out.snapshot.find_all(&ctx, &text),
        rebuilt.find_all(&ctx, &text)
    );
}
