//! Property: truncating a `PDML` log at *every* byte offset of its final
//! record either replays cleanly (the cut landed on a record boundary)
//! or recovers by torn-tail truncation — never a panic, never a silently
//! dropped earlier record, never a phantom record conjured from the torn
//! bytes.

use pdm_dict::log::{
    encode_record, replay_bytes, LogFile, Record, TailFault, LOG_MAGIC, LOG_VERSION,
};
use pdm_dict::RecoveredTornTail;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

fn temp_log(name: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "pdm-torn-{}-{}-{}",
        name,
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("dict.pdml")
}

/// Decode one scripted record from a `(roll, pattern, epoch)` tuple.
fn to_record(roll: u32, pat: &[u32], epoch: u64) -> Record {
    match roll {
        0 => Record::Add(pat.to_vec()),
        1 => Record::Remove(pat.to_vec()),
        _ => Record::Commit(epoch),
    }
}

fn header() -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&LOG_MAGIC);
    bytes.extend_from_slice(&LOG_VERSION.to_le_bytes());
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn truncation_at_every_byte_of_the_final_record_recovers(
        prefix in proptest::collection::vec(
            (0u32..3, proptest::collection::vec(0u32..4, 1..8), 0u64..100), 0..6),
        last in (0u32..3, proptest::collection::vec(0u32..4, 1..8), 0u64..100),
    ) {
        let kept: Vec<Record> = prefix
            .iter()
            .map(|(r, p, e)| to_record(*r, p, *e))
            .collect();
        let final_rec = to_record(last.0, &last.1, last.2);

        let mut bytes = header();
        for r in &kept {
            bytes.extend_from_slice(&encode_record(r));
        }
        let prefix_len = bytes.len();
        bytes.extend_from_slice(&encode_record(&final_rec));
        let full_len = bytes.len();

        for cut in prefix_len..=full_len {
            let replay = replay_bytes(&bytes[..cut])
                .unwrap_or_else(|e| panic!("replay failed at cut {cut}: {e}"));
            if cut == full_len {
                // Cut on the record boundary: fully clean.
                prop_assert_eq!(replay.records.len(), kept.len() + 1);
                prop_assert_eq!(&replay.records[kept.len()], &final_rec);
                prop_assert_eq!(replay.truncated, 0);
                prop_assert!(replay.recovery.is_none());
            } else {
                // Mid-record: every earlier record survives intact, the
                // torn bytes are dropped, and the report is typed Torn.
                prop_assert_eq!(&replay.records, &kept,
                    "cut {} dropped or invented records", cut);
                prop_assert_eq!(replay.good_len, prefix_len as u64);
                prop_assert_eq!(replay.truncated, (cut - prefix_len) as u64);
                match &replay.recovery {
                    Some(RecoveredTornTail { fault: TailFault::Torn, dropped_bytes, kept_records })
                        if cut > prefix_len =>
                    {
                        prop_assert_eq!(*dropped_bytes, (cut - prefix_len) as u64);
                        prop_assert_eq!(*kept_records, kept.len());
                    }
                    None if cut == prefix_len => {} // zero-byte tail: clean
                    other => prop_assert!(false, "cut {} misclassified: {:?}", cut, other),
                }
            }
        }
    }

    #[test]
    fn reopening_a_truncated_file_resumes_appends(
        prefix in proptest::collection::vec(
            (0u32..3, proptest::collection::vec(0u32..4, 1..8), 0u64..100), 1..4),
        last in (0u32..3, proptest::collection::vec(0u32..4, 1..8), 0u64..100),
        chop in 1usize..8,
    ) {
        let kept: Vec<Record> = prefix
            .iter()
            .map(|(r, p, e)| to_record(*r, p, *e))
            .collect();
        let final_rec = to_record(last.0, &last.1, last.2);
        let mut bytes = header();
        for r in &kept {
            bytes.extend_from_slice(&encode_record(r));
        }
        let prefix_len = bytes.len();
        bytes.extend_from_slice(&encode_record(&final_rec));
        let chop = chop.min(bytes.len() - prefix_len);
        bytes.truncate(bytes.len() - chop);

        let path = temp_log("resume");
        std::fs::write(&path, &bytes).unwrap();
        // Open truncates the torn tail and positions for append…
        let (mut log, replay) = LogFile::open(&path).unwrap();
        prop_assert_eq!(&replay.records, &kept);
        prop_assert!(replay.truncated > 0);
        log.append(&Record::Commit(999)).unwrap();
        log.sync().unwrap();
        drop(log);
        // …and the resumed log replays to kept + the new record.
        let (_, resumed) = LogFile::open(&path).unwrap();
        prop_assert_eq!(resumed.truncated, 0);
        prop_assert_eq!(resumed.records.len(), kept.len() + 1);
        prop_assert_eq!(&resumed.records[kept.len()], &Record::Commit(999));
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }
}
