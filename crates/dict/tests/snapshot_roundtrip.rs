//! Property tests for snapshot serialization: a cold-loaded v2 sidecar is
//! observationally identical to a fresh build at every pool width, the v2
//! bytes are a serialization fixed point, and corrupt or truncated files
//! are rejected (PDMS) or safely truncated away (PDML) by the shared
//! codec — never mis-parsed.

use pdm_dict::log::{encode_record, replay_bytes, Record, LOG_MAGIC, LOG_VERSION};
use pdm_dict::snapshot::{decode_identity, encode_identity};
use pdm_dict::Snapshot;
use pdm_pram::Ctx;
use pdm_primitives::codec;
use proptest::prelude::*;

/// Random deduped pattern sets over a tiny alphabet — small alphabets
/// maximize overlap, prefix chains, and hash-table collisions, which is
/// exactly what serialization has to preserve.
fn dedup(mut raw: Vec<Vec<u32>>) -> Vec<Vec<u32>> {
    raw.sort();
    raw.dedup();
    raw
}

fn raw_patterns(
) -> proptest::collection::VecStrategy<proptest::collection::VecStrategy<std::ops::Range<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0u32..4, 1..8), 1..16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// v2 sidecar: serialize → load → identical matches at widths 1/2/4,
    /// identical identity bytes, and re-serialization is byte-identical.
    #[test]
    fn sidecar_cold_load_equals_fresh_build_at_all_widths(
        raw in raw_patterns(),
        text in proptest::collection::vec(0u32..4, 0..120),
    ) {
        let pats = dedup(raw);
        let seq = Ctx::seq();
        let built = Snapshot::build_static(&seq, 7, pats.clone()).unwrap();
        let bytes = built.to_sidecar_bytes().expect("static snapshot serializes");
        for width in [1usize, 2, 4] {
            let ctx = Ctx::with_threads(width);
            let loaded = Snapshot::from_bytes(&ctx, &bytes).unwrap();
            prop_assert!(
                loaded.matcher().stats().cold_loaded,
                "width {}: load must not run naming rounds", width
            );
            prop_assert_eq!(loaded.epoch(), 7);
            prop_assert_eq!(loaded.patterns(), Some(&pats[..]));
            let fresh = Snapshot::build_static(&ctx, 7, pats.clone()).unwrap();
            prop_assert_eq!(
                loaded.find_all(&ctx, &text),
                fresh.find_all(&ctx, &text),
                "width {}", width
            );
            prop_assert_eq!(loaded.identity_bytes(), fresh.identity_bytes());
            // Fixed point: re-serializing the loaded snapshot reproduces
            // the file byte for byte.
            let reser = loaded.to_sidecar_bytes();
            prop_assert_eq!(reser.as_deref(), Some(&bytes[..]));
        }
    }

    /// v1 identity sidecar: decode recovers (epoch, patterns) exactly and
    /// the rebuilt snapshot matches a direct build.
    #[test]
    fn identity_roundtrip_rebuilds_equivalently(
        raw in raw_patterns(),
        text in proptest::collection::vec(0u32..4, 0..120),
    ) {
        let pats = dedup(raw);
        let ctx = Ctx::seq();
        let bytes = encode_identity(3, &pats);
        prop_assert_eq!(Snapshot::peek_version(&bytes).unwrap(), 1);
        let (epoch, decoded) = decode_identity(&bytes).unwrap();
        prop_assert_eq!(epoch, 3);
        prop_assert_eq!(&decoded, &pats);
        let loaded = Snapshot::from_bytes(&ctx, &bytes).unwrap();
        let fresh = Snapshot::build_static(&ctx, 3, pats).unwrap();
        prop_assert_eq!(loaded.find_all(&ctx, &text), fresh.find_all(&ctx, &text));
    }

    /// Any single-bit flip anywhere in a v2 sidecar is rejected (the
    /// whole-file CRC plus header framing leave no unchecked byte), and
    /// any strict prefix is rejected as truncated.
    #[test]
    fn corrupt_or_truncated_sidecar_is_rejected(
        raw in raw_patterns(),
        at_seed in 0usize..1_000_000,
        bit in 0u32..8,
    ) {
        let pats = dedup(raw);
        let ctx = Ctx::seq();
        let bytes = Snapshot::build_static(&ctx, 1, pats)
            .unwrap()
            .to_sidecar_bytes()
            .unwrap();
        let at = at_seed % bytes.len();
        let mut flipped = bytes.clone();
        flipped[at] ^= 1 << bit;
        prop_assert!(
            Snapshot::from_bytes(&ctx, &flipped).is_err(),
            "bit {} at byte {}/{} must not load", bit, at, bytes.len()
        );
        prop_assert!(
            Snapshot::from_bytes(&ctx, &bytes[..at]).is_err(),
            "prefix of {} bytes must not load", at
        );
    }

    /// PDML log: a bit flip in the record region stops replay at a strict
    /// prefix of the good records (never skips past or mis-parses); a flip
    /// in the file header rejects the whole log.
    #[test]
    fn corrupt_log_replays_a_strict_prefix(
        raw in proptest::collection::vec(proptest::collection::vec(0u32..4, 1..6), 2..10),
        at_seed in 0usize..1_000_000,
        bit in 0u32..8,
    ) {
        let mut bytes = Vec::new();
        codec::write_header(&mut bytes, LOG_MAGIC, LOG_VERSION);
        let mut records = Vec::new();
        for (i, p) in raw.iter().enumerate() {
            let rec = Record::Add(p.clone());
            bytes.extend_from_slice(&encode_record(&rec));
            records.push(rec);
            if i % 3 == 2 {
                let rec = Record::Commit((i / 3 + 1) as u64);
                bytes.extend_from_slice(&encode_record(&rec));
                records.push(rec);
            }
        }
        // Clean bytes replay every record.
        let clean = replay_bytes(&bytes).unwrap();
        prop_assert_eq!(&clean.records, &records);
        prop_assert_eq!(clean.truncated, 0);

        let at = at_seed % bytes.len();
        let mut flipped = bytes.clone();
        flipped[at] ^= 1 << bit;
        if at < codec::HEADER_LEN {
            prop_assert!(
                replay_bytes(&flipped).is_err(),
                "header flip at {} must reject the log", at
            );
        } else {
            let replay = replay_bytes(&flipped).unwrap();
            prop_assert!(
                replay.records.len() < records.len(),
                "flip at {} must drop at least the damaged record", at
            );
            prop_assert_eq!(
                &replay.records[..],
                &records[..replay.records.len()],
                "replay must be a strict prefix, never a resync past damage"
            );
            prop_assert!(replay.truncated > 0);
            prop_assert_eq!(replay.good_len + replay.truncated, flipped.len() as u64);
        }

        // Truncation mid-record: replay stops at the last whole record.
        let cut = codec::HEADER_LEN.max(at);
        let replay = replay_bytes(&bytes[..cut]).unwrap();
        prop_assert_eq!(&replay.records[..], &records[..replay.records.len()]);
        prop_assert_eq!(replay.good_len + replay.truncated, cut as u64);
    }
}
