//! Batch query execution: per-pattern binary search, fanned out over the
//! pool, with interval merging for patterns that share prefixes.
//!
//! A single pattern `p` resolves to the suffix-array interval `[lo, hi)` of
//! suffixes having `p` as a prefix: two `partition_point` searches of
//! `O(|p| log n)` symbol comparisons. For a *batch*, the interval-merging
//! observation (Flick & Aluru's line of work, see PAPERS.md) applies: sort
//! the batch, and consecutive patterns share prefixes; the interval of a
//! shared prefix contains the intervals of every pattern extending it, so
//! later searches can start from the recorded interval of the deepest
//! shared prefix instead of `[0, n)`. The stack discipline below records
//! exactly the prefix intervals that the *next* pattern will reuse (its LCP
//! with the current one is known ahead of time because the batch is
//! sorted), so on template-heavy batches — log queries, genome k-mer sets —
//! most searches run over intervals that are already tiny.
//!
//! Parallelism: the sorted batch is cut into contiguous groups, one pool
//! task each; merging applies within a group, and groups are independent.

use pdm_pram::Ctx;
use rayon::prelude::*;
use std::cmp::Ordering;

/// What a batch query returns per pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryMode {
    /// Occurrence counts only.
    Count,
    /// Counts plus the sorted start positions of every occurrence.
    Locate,
}

/// Batch execution options.
#[derive(Debug, Clone, Copy)]
pub struct BatchOptions {
    /// Reuse shared-prefix intervals across the sorted batch (on by
    /// default; turning it off is for measurement, not production).
    pub merge: bool,
    pub mode: QueryMode,
}

impl Default for BatchOptions {
    fn default() -> Self {
        Self {
            merge: true,
            mode: QueryMode::Count,
        }
    }
}

/// Result for one pattern of a batch, in the batch's original order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PatternHits {
    /// Number of occurrences in the corpus.
    pub count: usize,
    /// Sorted occurrence start positions ([`QueryMode::Locate`] only).
    pub positions: Vec<u32>,
}

/// Compare the suffix starting at `s` against `pat` *as a prefix query*:
/// `Equal` means the suffix starts with `pat`.
#[inline]
fn cmp_suffix(text: &[u32], s: usize, pat: &[u32]) -> Ordering {
    let suffix = &text[s..];
    let m = pat.len().min(suffix.len());
    match suffix[..m].cmp(&pat[..m]) {
        Ordering::Equal if suffix.len() >= pat.len() => Ordering::Equal,
        Ordering::Equal => Ordering::Less, // proper prefix: shorter sorts first
        other => other,
    }
}

/// SA interval of suffixes starting with `pat`, searched within `[lo, hi)`
/// (callers guarantee the answer lies inside). Two binary searches,
/// `O(|pat| · log (hi − lo))` symbol comparisons.
pub(crate) fn interval_within(
    text: &[u32],
    sa: &[u32],
    lo: usize,
    hi: usize,
    pat: &[u32],
) -> (usize, usize) {
    let range = &sa[lo..hi];
    let first =
        lo + range.partition_point(|&s| cmp_suffix(text, s as usize, pat) == Ordering::Less);
    let last =
        lo + range.partition_point(|&s| cmp_suffix(text, s as usize, pat) != Ordering::Greater);
    (first, last)
}

/// Length of the longest common prefix of two patterns.
#[inline]
fn lcp_pats(a: &[u32], b: &[u32]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

/// Resolve one contiguous group of the sorted batch to intervals.
///
/// `ids` indexes into `pats` in lexicographic order. The stack holds
/// `(depth, lo, hi)` entries — the SA interval of the current pattern's
/// prefix of length `depth`, strictly increasing in depth — and is the
/// whole interval-merge mechanism: before searching pattern `i`, pop to the
/// LCP with pattern `i−1` and start from the surviving top; after
/// computing the LCP with pattern `i+1`, bound that shared prefix once and
/// push it for `i+1` to start from.
fn resolve_group(
    text: &[u32],
    sa: &[u32],
    pats: &[Vec<u32>],
    ids: &[usize],
    merge: bool,
    out: &mut Vec<(usize, usize, usize)>,
) {
    let n = sa.len();
    let mut stack: Vec<(usize, usize, usize)> = Vec::new();
    for (g, &id) in ids.iter().enumerate() {
        let p = pats[id].as_slice();
        if !merge {
            let (flo, fhi) = interval_within(text, sa, 0, n, p);
            out.push((id, flo, fhi));
            continue;
        }
        let l_prev = if g == 0 {
            0
        } else {
            lcp_pats(pats[ids[g - 1]].as_slice(), p)
        };
        while stack.last().is_some_and(|&(d, _, _)| d > l_prev) {
            stack.pop();
        }
        let (mut lo, mut hi) = stack.last().map_or((0, n), |&(_, lo, hi)| (lo, hi));
        let top_depth = stack.last().map_or(0, |&(d, _, _)| d);
        let l_next = if g + 1 < ids.len() {
            lcp_pats(p, pats[ids[g + 1]].as_slice())
        } else {
            0
        };
        // Bound the prefix shared with the next pattern first, so its
        // interval is on the stack when that pattern runs.
        if l_next > top_depth && l_next < p.len() {
            let (plo, phi) = interval_within(text, sa, lo, hi, &p[..l_next]);
            stack.push((l_next, plo, phi));
            (lo, hi) = (plo, phi);
        }
        let (flo, fhi) = interval_within(text, sa, lo, hi, p);
        if l_next == p.len() && l_next > top_depth {
            // The whole pattern is the shared prefix (it's a prefix of the
            // next pattern, or a duplicate).
            stack.push((p.len(), flo, fhi));
        }
        out.push((id, flo, fhi));
    }
}

/// Execute a pattern batch against `(text, sa)` at the width of `ctx`.
/// Results are in the batch's original order.
pub fn query_batch(
    ctx: &Ctx,
    text: &[u32],
    sa: &[u32],
    pats: &[Vec<u32>],
    opts: &BatchOptions,
) -> Vec<PatternHits> {
    let k = pats.len();
    if k == 0 {
        return Vec::new();
    }
    // Sort the batch lexicographically (indices only); adjacent patterns
    // then share maximal prefixes, which is what merging feeds on.
    let mut ids: Vec<usize> = (0..k).collect();
    ids.sort_unstable_by(|&a, &b| pats[a].cmp(&pats[b]));

    // Cut into contiguous groups, one pool task each. More groups than
    // threads evens out skew; sequential contexts get one group (and with
    // it maximal merging).
    let threads = if ctx.is_parallel() {
        ctx.exec.threads().max(1)
    } else {
        1
    };
    let ngroups = (threads * 4).min(k).max(1);
    let group = k.div_ceil(ngroups);
    let total_syms: u64 = pats.iter().map(|p| p.len() as u64).sum();
    ctx.cost
        .rounds(pdm_pram::ceil_log2(sa.len().max(2)) as u64, total_syms);
    let resolved: Vec<Vec<(usize, usize, usize)>> = ctx.install(|| {
        ids.par_chunks(group)
            .map(|chunk| {
                let mut out = Vec::with_capacity(chunk.len());
                resolve_group(text, sa, pats, chunk, opts.merge, &mut out);
                out
            })
            .collect()
    });

    let mut hits = vec![PatternHits::default(); k];
    for (id, lo, hi) in resolved.into_iter().flatten() {
        hits[id].count = hi - lo;
        // Stash the interval for the locate pass below.
        if opts.mode == QueryMode::Locate && hi > lo {
            hits[id].positions = vec![lo as u32, hi as u32];
        }
    }
    if opts.mode == QueryMode::Locate {
        ctx.for_each_mut(&mut hits, |_, h| {
            if h.positions.is_empty() {
                return;
            }
            let (lo, hi) = (h.positions[0] as usize, h.positions[1] as usize);
            h.positions = sa[lo..hi].to_vec();
            h.positions.sort_unstable();
        });
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sa::build_suffix_array;

    fn naive_starts(text: &[u32], pat: &[u32]) -> Vec<u32> {
        if pat.is_empty() {
            return (0..text.len() as u32).collect();
        }
        if pat.len() > text.len() {
            return Vec::new();
        }
        (0..=text.len() - pat.len())
            .filter(|&i| &text[i..i + pat.len()] == pat)
            .map(|i| i as u32)
            .collect()
    }

    fn check_batch(text: &[u32], pats: &[Vec<u32>]) {
        let sa = build_suffix_array(&Ctx::seq(), text);
        for ctx in [Ctx::seq(), Ctx::with_threads(2), Ctx::with_threads(4)] {
            for merge in [false, true] {
                let opts = BatchOptions {
                    merge,
                    mode: QueryMode::Locate,
                };
                let hits = query_batch(&ctx, text, &sa, pats, &opts);
                assert_eq!(hits.len(), pats.len());
                for (i, h) in hits.iter().enumerate() {
                    let want = naive_starts(text, &pats[i]);
                    assert_eq!(h.positions, want, "pattern {i} {:?} merge={merge}", pats[i]);
                    assert_eq!(h.count, want.len());
                }
            }
        }
    }

    #[test]
    fn shared_prefix_batches_match_naive() {
        // banana-family: heavy prefix sharing including duplicates and
        // whole-pattern prefixes of other patterns.
        let text: Vec<u32> = vec![1, 0, 2, 0, 2, 0]; // "banana"
        let pats: Vec<Vec<u32>> = vec![
            vec![0],                   // "a"
            vec![0, 2],                // "an"
            vec![0, 2, 0],             // "ana"
            vec![0, 2, 0, 2, 0],       // "anana"
            vec![0, 2, 0, 2, 0],       // duplicate
            vec![2, 0],                // "na"
            vec![1],                   // "b"
            vec![3],                   // absent symbol
            vec![0, 2, 0, 2, 0, 2],    // longer than any occurrence
            vec![1, 0, 2, 0, 2, 0, 0], // longer than the corpus
        ];
        check_batch(&text, &pats);
    }

    #[test]
    fn empty_batch_and_empty_pattern() {
        let text: Vec<u32> = vec![0, 1, 0];
        let sa = build_suffix_array(&Ctx::seq(), &text);
        let ctx = Ctx::seq();
        assert!(query_batch(&ctx, &text, &sa, &[], &BatchOptions::default()).is_empty());
        // Empty pattern: prefix of every suffix.
        let hits = query_batch(
            &ctx,
            &text,
            &sa,
            &[vec![]],
            &BatchOptions {
                merge: true,
                mode: QueryMode::Locate,
            },
        );
        assert_eq!(hits[0].count, 3);
        assert_eq!(hits[0].positions, vec![0, 1, 2]);
    }

    #[test]
    fn pseudorandom_batches_match_naive() {
        let mut x = 7u64;
        let mut next = |m: u64| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % m) as usize
        };
        let text: Vec<u32> = (0..800).map(|_| next(3) as u32).collect();
        let mut pats: Vec<Vec<u32>> = Vec::new();
        for _ in 0..60 {
            let start = next(780);
            let len = 1 + next(12);
            pats.push(text[start..start + len].to_vec());
        }
        for _ in 0..20 {
            let len = 1 + next(6);
            pats.push((0..len).map(|_| next(4) as u32).collect());
        }
        check_batch(&text, &pats);
    }

    #[test]
    fn empty_corpus() {
        let text: Vec<u32> = Vec::new();
        let sa = build_suffix_array(&Ctx::seq(), &text);
        let hits = query_batch(
            &Ctx::seq(),
            &text,
            &sa,
            &[vec![1, 2], vec![]],
            &BatchOptions {
                merge: true,
                mode: QueryMode::Locate,
            },
        );
        assert_eq!(hits[0].count, 0);
        assert_eq!(hits[1].count, 0);
    }
}
