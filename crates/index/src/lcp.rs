//! LCP array construction: blocked-parallel Kasai.
//!
//! `lcp[r]` is the length of the longest common prefix of the suffixes at
//! `sa[r-1]` and `sa[r]` (`lcp[0] = 0`). Kasai's algorithm walks text
//! positions in order, maintaining the invariant `plcp[i] ≥ plcp[i-1] − 1`
//! so the per-position extension loop amortizes to `O(n)` — but that
//! running `h` makes it sequential. The parallel variant here splits the
//! position range into per-task blocks: each block restarts `h` at 0 (a
//! valid, merely weaker, lower bound — correctness is untouched) and runs
//! Kasai within the block. Worst-case work grows by one full comparison per
//! block; with blocks of `n / p` positions that is `O(n + p · maxlcp)` —
//! indistinguishable from `O(n)` at realistic widths.

use crate::sa::SendPtr;
use pdm_pram::Ctx;
use rayon::prelude::*;

/// Build the LCP array for `text` and its suffix array `sa`.
pub fn build_lcp(ctx: &Ctx, text: &[u32], sa: &[u32]) -> Vec<u32> {
    let n = sa.len();
    debug_assert_eq!(text.len(), n);
    if n == 0 {
        return Vec::new();
    }
    // Inverse permutation: rank[i] = r with sa[r] = i.
    let mut rank = vec![0u32; n];
    {
        let rank_ptr = SendPtr(rank.as_mut_ptr());
        ctx.for_each(n, |r| {
            #[allow(clippy::redundant_locals)]
            let rank_ptr = rank_ptr;
            // SAFETY: `sa` is a permutation, so writes are disjoint.
            unsafe { *rank_ptr.0.add(sa[r] as usize) = r as u32 };
        });
    }

    let threads = if ctx.is_parallel() {
        ctx.exec.threads().max(1)
    } else {
        1
    };
    let block = n.div_ceil(threads).max(4096);
    let nblocks = n.div_ceil(block);
    let mut lcp = vec![0u32; n];
    ctx.cost.round(n as u64);
    {
        let lcp_ptr = SendPtr(lcp.as_mut_ptr());
        ctx.install(|| {
            (0..nblocks).into_par_iter().for_each(|b| {
                #[allow(clippy::redundant_locals)]
                let lcp_ptr = lcp_ptr;
                let lo = b * block;
                let hi = (lo + block).min(n);
                let mut h = 0usize;
                for i in lo..hi {
                    let r = rank[i] as usize;
                    if r == 0 {
                        h = 0;
                        continue;
                    }
                    let j = sa[r - 1] as usize;
                    while i + h < n && j + h < n && text[i + h] == text[j + h] {
                        h += 1;
                    }
                    // SAFETY: each text position i owns exactly one output
                    // slot (rank is a permutation), so writes are disjoint.
                    unsafe { *lcp_ptr.0.add(r) = h as u32 };
                    h = h.saturating_sub(1);
                }
            });
        });
    }
    lcp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sa::build_suffix_array;

    fn naive_lcp(a: &[u32], b: &[u32]) -> u32 {
        a.iter().zip(b).take_while(|(x, y)| x == y).count() as u32
    }

    #[test]
    fn matches_naive_adjacent_lcp() {
        let mut x = 99u64;
        for ctx in [Ctx::seq(), Ctx::with_threads(2), Ctx::with_threads(4)] {
            for (n, sigma) in [(0usize, 2u64), (1, 2), (500, 2), (1200, 26)] {
                let t: Vec<u32> = (0..n)
                    .map(|_| {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        (x % sigma) as u32
                    })
                    .collect();
                let sa = build_suffix_array(&ctx, &t);
                let lcp = build_lcp(&ctx, &t, &sa);
                assert_eq!(lcp.len(), n);
                for r in 1..n {
                    assert_eq!(
                        lcp[r],
                        naive_lcp(&t[sa[r - 1] as usize..], &t[sa[r] as usize..]),
                        "r={r} n={n} σ={sigma}"
                    );
                }
                if n > 0 {
                    assert_eq!(lcp[0], 0);
                }
            }
        }
    }
}
