//! # pdm-index — offline suffix-array corpus indexing
//!
//! The streaming matchers (`pdm-core`, `pdm-stream`) answer "which
//! dictionary patterns occur in this text" by preprocessing the
//! *dictionary* and scanning the *text*. This crate serves the transposed
//! workload: the corpus is large and fixed, the pattern batches arrive
//! later and change every time. Preprocess the corpus once into a suffix
//! array (+ LCP), then answer each batch with binary searches — no rebuild
//! per batch, `O(|p| log n)` per pattern instead of `O(corpus)` per batch.
//!
//! The construction is deliberately a thin layer over the repo's existing
//! substrate: the prefix-doubling recurrence *is* the KMR naming recurrence
//! from `pdm-naming` with an order-preserving codomain
//! ([`sa`] module docs), sorted with `pdm-primitives::radix` and re-ranked
//! with `pdm-primitives::scan`, all on the same vendored-rayon pool and
//! [`Ctx`] cost model as every matcher.
//!
//! * [`sa`] — parallel suffix-array construction (Manber–Myers doubling);
//! * [`lcp`] — blocked-parallel Kasai LCP;
//! * [`query`] — batch execution with interval merging for prefix-sharing
//!   batches, `count` and `locate` modes;
//! * [`disk`] — the versioned, CRC'd `PDMX` sidecar format.
//!
//! Where the crossover against streaming Aho–Corasick sits is an empirical
//! question — `crates/bench/src/bin/index_throughput.rs` measures it and
//! DESIGN.md §12 records the numbers.

pub mod disk;
pub mod lcp;
pub mod query;
pub mod sa;

pub use disk::DiskError;
pub use query::{BatchOptions, PatternHits, QueryMode};

use pdm_pram::Ctx;
use pdm_primitives::vfs;
use std::path::Path;

/// A corpus with its suffix array and LCP array: everything a batch query
/// needs, and exactly what the `PDMX` sidecar stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusIndex {
    /// The corpus, one `u32` per symbol.
    pub text: Vec<u32>,
    /// `sa[r]` = start position of the `r`-th smallest suffix.
    pub sa: Vec<u32>,
    /// `lcp[r]` = LCP of the suffixes at `sa[r-1]` and `sa[r]`; `lcp[0] = 0`.
    pub lcp: Vec<u32>,
}

impl CorpusIndex {
    /// Index `text` at the width of `ctx`.
    pub fn build(ctx: &Ctx, text: Vec<u32>) -> Self {
        let sa = sa::build_suffix_array(ctx, &text);
        let lcp = lcp::build_lcp(ctx, &text, &sa);
        Self { text, sa, lcp }
    }

    /// Index a byte corpus (symbols are the byte values).
    pub fn build_from_bytes(ctx: &Ctx, corpus: &[u8]) -> Self {
        Self::build(ctx, corpus.iter().map(|&b| u32::from(b)).collect())
    }

    /// Corpus length in symbols.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// The suffix-array interval `[lo, hi)` of suffixes starting with
    /// `pat`; `hi - lo` is the occurrence count.
    pub fn interval(&self, pat: &[u32]) -> (usize, usize) {
        query::interval_within(&self.text, &self.sa, 0, self.sa.len(), pat)
    }

    /// Occurrence count of a single pattern.
    pub fn count(&self, pat: &[u32]) -> usize {
        let (lo, hi) = self.interval(pat);
        hi - lo
    }

    /// Sorted occurrence start positions of a single pattern.
    pub fn locate(&self, pat: &[u32]) -> Vec<u32> {
        let (lo, hi) = self.interval(pat);
        let mut out = self.sa[lo..hi].to_vec();
        out.sort_unstable();
        out
    }

    /// Run a whole pattern batch in parallel; results are in batch order.
    /// See [`query::query_batch`].
    pub fn query_batch(
        &self,
        ctx: &Ctx,
        pats: &[Vec<u32>],
        opts: &BatchOptions,
    ) -> Vec<PatternHits> {
        query::query_batch(ctx, &self.text, &self.sa, pats, opts)
    }

    /// Serialize to the `PDMX` byte layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        disk::encode(self)
    }

    /// Deserialize and CRC-verify a `PDMX` buffer.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DiskError> {
        disk::decode(bytes)
    }

    /// Write the sidecar to `path` atomically (temp file → fsync → rename
    /// → fsync parent dir): a crash mid-write leaves any previous good
    /// sidecar intact instead of a torn, unloadable one.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        vfs::atomic_write(path, &self.to_bytes())
    }

    /// Read and verify a sidecar from `path`.
    pub fn read_from(path: &Path) -> std::io::Result<Self> {
        let bytes = vfs::read(path)?;
        Self::from_bytes(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_pattern_helpers_agree_with_batch() {
        let text: Vec<u32> = b"the quick brown fox jumps over the lazy dog the end"
            .iter()
            .map(|&b| u32::from(b))
            .collect();
        let idx = CorpusIndex::build(&Ctx::par(), text.clone());
        let pat: Vec<u32> = b"the".iter().map(|&b| u32::from(b)).collect();
        assert_eq!(idx.count(&pat), 3);
        assert_eq!(idx.locate(&pat), vec![0, 31, 44]);
        let hits = idx.query_batch(
            &Ctx::par(),
            &[pat.clone()],
            &BatchOptions {
                merge: true,
                mode: QueryMode::Locate,
            },
        );
        assert_eq!(hits[0].positions, idx.locate(&pat));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("pdm-index-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.pdmx");
        let idx = CorpusIndex::build_from_bytes(&Ctx::seq(), b"abracadabra");
        idx.write_to(&path).unwrap();
        let back = CorpusIndex::read_from(&path).unwrap();
        assert_eq!(back, idx);
        std::fs::remove_dir_all(&dir).ok();
    }
}
