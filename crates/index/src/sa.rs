//! Parallel suffix-array construction by prefix doubling.
//!
//! This is the ordered twin of the KMR naming recurrence the matchers are
//! built on: where dictionary naming computes
//! `name_k(i) = δ(name_{k−1}(i), name_{k−1}(i+2^{k−1}))` through a
//! namestamping table (equal iff equal, unordered), suffix ordering runs
//! the *same* doubling with an order-preserving codomain — pack the pair of
//! previous ranks into one `u64` key (`pdm_naming::kmr::rank_pair_keys_into`),
//! sort the keys (`pdm_primitives::radix`), and densely re-rank by scanning
//! the tie flags (`pdm_primitives::scan`). After `⌈log₂ n⌉` levels — or as
//! soon as all ranks are distinct, which for realistic corpora happens much
//! earlier — the sorted payloads *are* the suffix array.
//!
//! Every level is `O(n)` work in `O(1)` sort passes over the pool, so the
//! whole construction is `O(n log n)` work with `O(log n · log σ_k)` PRAM
//! round-depth — the Manber–Myers schedule, not SA-IS's `O(n)`, chosen
//! because it reuses this repo's substrate end to end and parallelizes
//! trivially.

use pdm_naming::kmr;
use pdm_pram::Ctx;
use pdm_primitives::radix::radix_sort_by_key_in_place;
use pdm_primitives::scan::scan_inclusive;

/// Build the suffix array of `text`: `sa[r]` is the start of the `r`-th
/// smallest suffix. Shorter suffixes that are prefixes of longer ones sort
/// first (the `rank 0` padding convention of `rank_pair_keys_into`).
pub fn build_suffix_array(ctx: &Ctx, text: &[u32]) -> Vec<u32> {
    let n = text.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![0];
    }

    let mut keys: Vec<(u64, u32)> = Vec::new();
    let mut scratch: Vec<(u64, u32)> = Vec::new();
    let mut rank: Vec<u32> = vec![0; n];

    // Level 0: order positions by symbol.
    kmr::symbol_rank_keys_into(ctx, text, &mut keys);
    radix_sort_by_key_in_place(ctx, &mut keys, &mut scratch);
    let mut distinct = rerank(ctx, &keys, &mut rank);

    // Level k: order by (rank_{k−1}(i), rank_{k−1}(i + 2^{k−1})).
    let mut half = 1usize;
    while distinct < n && half < n {
        kmr::rank_pair_keys_into(ctx, &rank, half, &mut keys);
        radix_sort_by_key_in_place(ctx, &mut keys, &mut scratch);
        distinct = rerank(ctx, &keys, &mut rank);
        half *= 2;
    }
    debug_assert_eq!(distinct, n, "suffixes of one text are pairwise distinct");

    // The payloads of the final sort are the suffix array.
    keys.into_iter().map(|(_, pos)| pos).collect()
}

/// Densely re-rank sorted `(key, position)` records: positions with equal
/// keys get equal ranks, ranks increase with keys, and the rank values are
/// `0..distinct`. Returns the number of distinct keys. `O(log n)` rounds,
/// `O(n)` work (tie flags, inclusive scan, scatter).
fn rerank(ctx: &Ctx, sorted: &[(u64, u32)], rank: &mut [u32]) -> usize {
    let n = sorted.len();
    // flag[j] = 1 iff record j opens a new rank class.
    let flags: Vec<u64> = ctx.map(n, |j| u64::from(j > 0 && sorted[j].0 != sorted[j - 1].0));
    let dense = scan_inclusive(ctx, &flags, 0u64, |a, b| a + b);
    let distinct = (*dense.last().expect("n >= 1") + 1) as usize;
    {
        let rank_ptr = SendPtr(rank.as_mut_ptr());
        ctx.for_each(n, |j| {
            // Move (not borrow) the Copy wrapper into the task.
            #[allow(clippy::redundant_locals)]
            let rank_ptr = rank_ptr;
            // SAFETY: the payloads of `sorted` are a permutation of 0..n,
            // so each slot of `rank` is written by exactly one iteration.
            unsafe { *rank_ptr.0.add(sorted[j].1 as usize) = dense[j] as u32 };
        });
    }
    distinct
}

#[derive(Clone, Copy)]
pub(crate) struct SendPtr<T>(pub *mut T);
// SAFETY: used only for writes proven disjoint at the write site.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_sa(text: &[u32]) -> Vec<u32> {
        let mut sa: Vec<u32> = (0..text.len() as u32).collect();
        sa.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
        sa
    }

    fn ctxs() -> Vec<Ctx> {
        vec![Ctx::seq(), Ctx::with_threads(2), Ctx::with_threads(4)]
    }

    #[test]
    fn matches_naive_on_classic_strings() {
        let cases: Vec<Vec<u32>> = vec![
            vec![],
            vec![5],
            vec![1, 0, 2, 0, 2, 0],    // banana
            vec![0; 17],               // aaaa…
            vec![0, 1, 0, 1, 0, 1, 0], // abababa
            (0..100).map(|i| i % 3).collect(),
            vec![2, 1, 0],
        ];
        for ctx in ctxs() {
            for t in &cases {
                assert_eq!(build_suffix_array(&ctx, t), naive_sa(t), "text {t:?}");
            }
        }
    }

    #[test]
    fn matches_naive_on_pseudorandom_texts() {
        let mut x = 0x12345u64;
        for ctx in ctxs() {
            for (n, sigma) in [(1000usize, 2u64), (2000, 4), (1500, 256)] {
                let t: Vec<u32> = (0..n)
                    .map(|_| {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        (x % sigma) as u32
                    })
                    .collect();
                assert_eq!(
                    build_suffix_array(&ctx, &t),
                    naive_sa(&t),
                    "n={n} σ={sigma}"
                );
            }
        }
    }

    #[test]
    fn result_is_permutation() {
        let t: Vec<u32> = (0..512).map(|i| (i * 7 % 5) as u32).collect();
        let mut sa = build_suffix_array(&Ctx::par(), &t);
        sa.sort_unstable();
        assert!(sa.iter().enumerate().all(|(i, &s)| s as usize == i));
    }
}
