//! The `PDMX` sidecar format: a versioned, CRC'd serialization of a built
//! [`CorpusIndex`](crate::CorpusIndex) so `pdm index` pays the construction
//! cost once and `pdm query` only ever reads.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size        field
//! 0       4           magic "PDMX"
//! 4       4           format version (currently 1)
//! 8       4           sym_width: bytes per corpus symbol, 1 or 4
//! 12      8           n: corpus length in symbols
//! 20      n·width     corpus symbols
//! …       n·4         suffix array (u32 ranks → positions)
//! …       n·4         LCP array (u32)
//! end−4   4           CRC-32 (IEEE) of everything before it
//! ```
//!
//! `sym_width` is chosen at encode time: 1 when every symbol fits a byte
//! (genomes, log text — the common case, and 4× smaller on disk), 4
//! otherwise. The header and the trailing CRC go through
//! [`pdm_primitives::codec`] — the same framing the dict log and the
//! matcher snapshot use — so truncation, bit rot and partial writes all
//! surface as one [`CodecError`] shape instead of silently wrong match
//! results. The bytes are unchanged from the pre-codec writer: existing
//! sidecars stay readable.

use crate::CorpusIndex;
use pdm_primitives::codec::{self, CodecError};

pub const MAGIC: [u8; 4] = *b"PDMX";
pub const VERSION: u32 = 1;
const HEADER_LEN: usize = 20;

/// Everything that can go wrong reading a sidecar: one format-specific
/// check, plus the shared codec failures (magic, version, truncation, CRC).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskError {
    /// `sym_width` was neither 1 nor 4.
    BadSymWidth(u32),
    /// Framing or checksum failure from the shared sidecar codec.
    Corrupt(CodecError),
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadSymWidth(w) => write!(f, "invalid symbol width {w} (expected 1 or 4)"),
            Self::Corrupt(e) => write!(f, "index {e}"),
        }
    }
}

impl std::error::Error for DiskError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Corrupt(e) => Some(e),
            Self::BadSymWidth(_) => None,
        }
    }
}

impl From<CodecError> for DiskError {
    fn from(e: CodecError) -> Self {
        Self::Corrupt(e)
    }
}

/// Serialize `index` to the `PDMX` byte layout.
pub fn encode(index: &CorpusIndex) -> Vec<u8> {
    let n = index.text.len();
    let width: u32 = if index.text.iter().all(|&s| s < 256) {
        1
    } else {
        4
    };
    let mut out = Vec::with_capacity(HEADER_LEN + n * (width as usize + 8) + 4);
    codec::write_header(&mut out, MAGIC, VERSION);
    out.extend_from_slice(&width.to_le_bytes());
    out.extend_from_slice(&(n as u64).to_le_bytes());
    match width {
        1 => out.extend(index.text.iter().map(|&s| s as u8)),
        _ => {
            for &s in &index.text {
                out.extend_from_slice(&s.to_le_bytes());
            }
        }
    }
    for &r in &index.sa {
        out.extend_from_slice(&r.to_le_bytes());
    }
    for &l in &index.lcp {
        out.extend_from_slice(&l.to_le_bytes());
    }
    codec::append_crc(&mut out);
    out
}

#[inline]
fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("bounds checked"))
}

/// Deserialize and verify a `PDMX` buffer.
pub fn decode(bytes: &[u8]) -> Result<CorpusIndex, DiskError> {
    let version = codec::read_header(bytes, MAGIC)?;
    codec::require_version(version, VERSION)?;
    if bytes.len() < HEADER_LEN + 4 {
        return Err(CodecError::Truncated {
            expected: HEADER_LEN + 4,
            actual: bytes.len(),
        }
        .into());
    }
    let width = read_u32(bytes, 8);
    if width != 1 && width != 4 {
        return Err(DiskError::BadSymWidth(width));
    }
    let n = u64::from_le_bytes(bytes[12..20].try_into().expect("bounds checked")) as usize;
    let expected = HEADER_LEN
        .checked_add(n.saturating_mul(width as usize + 8))
        .and_then(|v| v.checked_add(4))
        .unwrap_or(usize::MAX);
    if bytes.len() != expected {
        return Err(CodecError::Truncated {
            expected,
            actual: bytes.len(),
        }
        .into());
    }
    let payload = codec::verify_crc(bytes)?;

    let mut at = HEADER_LEN;
    let text: Vec<u32> = if width == 1 {
        let t = payload[at..at + n].iter().map(|&b| u32::from(b)).collect();
        at += n;
        t
    } else {
        let t = (0..n).map(|i| read_u32(payload, at + 4 * i)).collect();
        at += 4 * n;
        t
    };
    let sa: Vec<u32> = (0..n).map(|i| read_u32(payload, at + 4 * i)).collect();
    at += 4 * n;
    let lcp: Vec<u32> = (0..n).map(|i| read_u32(payload, at + 4 * i)).collect();
    Ok(CorpusIndex { text, sa, lcp })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_pram::Ctx;

    fn sample(sigma: u32) -> CorpusIndex {
        let text: Vec<u32> = (0..300u32).map(|i| (i * 17 + i / 7) % sigma).collect();
        CorpusIndex::build(&Ctx::seq(), text)
    }

    #[test]
    fn round_trips_both_widths() {
        for sigma in [4, 1000] {
            let idx = sample(sigma);
            let bytes = encode(&idx);
            let back = decode(&bytes).expect("round trip");
            assert_eq!(back.text, idx.text);
            assert_eq!(back.sa, idx.sa);
            assert_eq!(back.lcp, idx.lcp);
            let expect_width = if sigma <= 256 { 1 } else { 4 };
            assert_eq!(read_u32(&bytes, 8), expect_width, "sigma={sigma}");
        }
    }

    #[test]
    fn detects_corruption_anywhere() {
        let bytes = encode(&sample(4));
        for at in [0usize, 5, 9, 14, 25, bytes.len() / 2, bytes.len() - 2] {
            let mut bad = bytes.clone();
            bad[at] ^= 0x40;
            assert!(decode(&bad).is_err(), "flip at {at} went unnoticed");
        }
    }

    #[test]
    fn detects_truncation() {
        let bytes = encode(&sample(4));
        for cut in [0usize, 3, HEADER_LEN, bytes.len() - 1] {
            assert!(matches!(
                decode(&bytes[..cut]),
                Err(DiskError::Corrupt(CodecError::Truncated { .. }))
            ));
        }
    }

    #[test]
    fn codec_error_variants_surface() {
        let bytes = encode(&sample(4));
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(
            decode(&wrong_magic),
            Err(DiskError::Corrupt(CodecError::BadMagic { .. }))
        ));
        let mut wrong_version = bytes.clone();
        wrong_version[4..8].copy_from_slice(&9u32.to_le_bytes());
        assert!(matches!(
            decode(&wrong_version),
            Err(DiskError::Corrupt(CodecError::VersionMismatch {
                found: 9,
                ..
            }))
        ));
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 1;
        assert!(matches!(
            decode(&flipped),
            Err(DiskError::Corrupt(CodecError::CrcMismatch { .. }))
        ));
        // The CLI greps for "checksum" on corrupt sidecars — keep the word
        // in the rendered message.
        let msg = decode(&flipped).unwrap_err().to_string();
        assert!(msg.contains("checksum"), "{msg}");
    }

    #[test]
    fn empty_corpus_round_trips() {
        let idx = CorpusIndex::build(&Ctx::seq(), Vec::new());
        let back = decode(&encode(&idx)).expect("empty round trip");
        assert!(back.text.is_empty() && back.sa.is_empty() && back.lcp.is_empty());
    }

    /// The codec port must not change a single byte of the format:
    /// hand-assemble the pre-codec layout and check equality.
    #[test]
    fn on_disk_bytes_unchanged_by_codec_port() {
        let idx = sample(4);
        let bytes = encode(&idx);
        let mut manual = Vec::new();
        manual.extend_from_slice(&MAGIC);
        manual.extend_from_slice(&VERSION.to_le_bytes());
        manual.extend_from_slice(&1u32.to_le_bytes());
        manual.extend_from_slice(&(idx.text.len() as u64).to_le_bytes());
        manual.extend(idx.text.iter().map(|&s| s as u8));
        for &r in &idx.sa {
            manual.extend_from_slice(&r.to_le_bytes());
        }
        for &l in &idx.lcp {
            manual.extend_from_slice(&l.to_le_bytes());
        }
        manual.extend_from_slice(&pdm_primitives::crc32(&manual).to_le_bytes());
        assert_eq!(bytes, manual);
    }
}
