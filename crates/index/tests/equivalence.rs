//! The index and the matcher must agree: `pdm-index` `locate` over a
//! corpus returns exactly the occurrence set `StaticMatcher::find_all`
//! reports for the same patterns — at pool widths 1, 2 and 4, with
//! interval merging on and off, and across the `PDMX` disk round trip.
//!
//! This is the subsystem's contract in one sentence: the offline index is
//! a *representation change*, never a semantics change.

use pdm_core::static1d::StaticMatcher;
use pdm_index::{BatchOptions, CorpusIndex, QueryMode};
use pdm_pram::Ctx;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Non-empty patterns over the same alphabet as the text, so short ones
/// actually occur. May contain duplicates — [`dedup`] strips them (the
/// matcher requires distinct patterns; the index does not care).
fn patterns_strategy() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0u32..3, 1..9), 1..16)
}

fn dedup(mut pats: Vec<Vec<u32>>) -> Vec<Vec<u32>> {
    pats.sort_unstable();
    pats.dedup();
    pats
}

/// Occurrences of `find_all` grouped per pattern id, positions sorted.
fn matcher_occurrences(ctx: &Ctx, pats: &[Vec<u32>], text: &[u32]) -> BTreeMap<usize, Vec<u32>> {
    let m = StaticMatcher::build(ctx, pats).expect("distinct non-empty patterns");
    let mut by_pat: BTreeMap<usize, Vec<u32>> = BTreeMap::new();
    for (start, pid) in m.find_all(ctx, text) {
        by_pat.entry(pid as usize).or_default().push(start as u32);
    }
    for v in by_pat.values_mut() {
        v.sort_unstable();
    }
    by_pat
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn locate_equals_static_matcher_find_all(
        text in proptest::collection::vec(0u32..3, 0..250),
        raw_pats in patterns_strategy(),
    ) {
        let pats = dedup(raw_pats);
        let want = matcher_occurrences(&Ctx::seq(), &pats, &text);
        for threads in [1usize, 2, 4] {
            let ctx = Ctx::with_threads(threads);
            let idx = CorpusIndex::build(&ctx, text.clone());
            for merge in [true, false] {
                let opts = BatchOptions { merge, mode: QueryMode::Locate };
                let hits = idx.query_batch(&ctx, &pats, &opts);
                prop_assert_eq!(hits.len(), pats.len());
                for (i, h) in hits.iter().enumerate() {
                    let want_i = want.get(&i).cloned().unwrap_or_default();
                    prop_assert_eq!(
                        &h.positions, &want_i,
                        "pattern {} {:?} threads={} merge={}", i, pats[i], threads, merge
                    );
                    prop_assert_eq!(h.count, want_i.len());
                }
            }
        }
    }

    #[test]
    fn disk_round_trip_preserves_answers(
        text in proptest::collection::vec(0u32..4, 1..300),
        raw_pats in patterns_strategy(),
        flip in any::<usize>(),
    ) {
        let pats = dedup(raw_pats);
        let ctx = Ctx::with_threads(2);
        let idx = CorpusIndex::build(&ctx, text);
        let bytes = idx.to_bytes();
        let back = CorpusIndex::from_bytes(&bytes).expect("clean round trip");
        prop_assert_eq!(&back, &idx);
        let opts = BatchOptions { merge: true, mode: QueryMode::Locate };
        prop_assert_eq!(
            back.query_batch(&ctx, &pats, &opts),
            idx.query_batch(&ctx, &pats, &opts)
        );
        // Any single bit flip must be detected, never silently absorbed.
        let mut bad = bytes.clone();
        let at = flip % bad.len();
        bad[at] ^= 0x10;
        prop_assert!(CorpusIndex::from_bytes(&bad).is_err(), "flip at {} accepted", at);
    }
}

#[test]
fn empty_pattern_batch_is_empty_answer() {
    for threads in [1usize, 2, 4] {
        let ctx = Ctx::with_threads(threads);
        let idx = CorpusIndex::build(&ctx, vec![0, 1, 2, 0, 1]);
        let hits = idx.query_batch(&ctx, &[], &BatchOptions::default());
        assert!(hits.is_empty());
    }
}

#[test]
fn pattern_longer_than_corpus_never_matches() {
    for threads in [1usize, 2, 4] {
        let ctx = Ctx::with_threads(threads);
        let text = vec![1u32, 2, 1];
        let idx = CorpusIndex::build(&ctx, text.clone());
        // One pattern that IS the corpus plus a tail, one unrelated long
        // one, one exact-corpus pattern as a control.
        let pats = vec![vec![1u32, 2, 1, 2], vec![0u32; 10], text.clone()];
        for merge in [true, false] {
            let opts = BatchOptions {
                merge,
                mode: QueryMode::Locate,
            };
            let hits = idx.query_batch(&ctx, &pats, &opts);
            assert_eq!(hits[0].count, 0);
            assert!(hits[0].positions.is_empty());
            assert_eq!(hits[1].count, 0);
            assert_eq!(hits[2].positions, vec![0]);
        }
    }
}

#[test]
fn excerpt_batch_on_generated_corpora_matches_matcher() {
    // Deterministic end-to-end over both corpus generators, wider than the
    // proptest alphabet: the realistic shapes the workload targets.
    use pdm_textgen::corpus;
    use pdm_textgen::strings::rng;
    let mut r = rng(17);
    for text in [
        corpus::genome_default(&mut r, 4096),
        corpus::log_lines(&mut r, 4096, 4),
    ] {
        let pats = corpus::distinct_query_patterns(&mut r, &text, 64, 2, 12, 4);
        let want = matcher_occurrences(&Ctx::seq(), &pats, &text);
        for threads in [1usize, 2, 4] {
            let ctx = Ctx::with_threads(threads);
            let idx = CorpusIndex::build(&ctx, text.clone());
            let opts = BatchOptions {
                merge: true,
                mode: QueryMode::Locate,
            };
            let hits = idx.query_batch(&ctx, &pats, &opts);
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(
                    h.positions,
                    want.get(&i).cloned().unwrap_or_default(),
                    "pattern {i} threads={threads}"
                );
            }
        }
    }
}
