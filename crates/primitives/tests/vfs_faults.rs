//! Unit coverage for the disk-fault plane's deterministic scheduling.
//!
//! Lives in its own test binary because fault plans are process-global:
//! here every test serializes on one mutex, and nothing else in the
//! process touches the plane.

#![cfg(feature = "fault-injection")]

use pdm_primitives::vfs::{self, faults};
use std::io::SeekFrom;
use std::path::PathBuf;
use std::sync::Mutex;

static PLANE: Mutex<()> = Mutex::new(());

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("pdm-vfsfault-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn crash_stop_fails_the_nth_and_every_later_op() {
    let _g = PLANE.lock().unwrap();
    let dir = tmp_dir("crash");
    let path = dir.join("f.bin");
    faults::install(faults::DiskFaultPlan {
        crash_at_op: 3,
        ..Default::default()
    });
    // Op 1: create. Op 2: write. Op 3 (sync) crashes, as does all else.
    let mut f = vfs::VfsFile::create(&path).unwrap();
    f.write_all(b"abc").unwrap();
    let err = f.sync_data().unwrap_err();
    assert!(err.to_string().contains("injected disk fault"), "{err}");
    assert!(f.write_all(b"more").is_err(), "crashed plane stays down");
    assert!(vfs::rename(&path, &dir.join("g.bin")).is_err());
    let c = faults::counts();
    assert!(c.crashed);
    assert!(c.ops >= 3);
    faults::clear();
    assert_eq!(faults::counts(), faults::DiskFaultCounts::default());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_write_persists_a_prefix_then_fails() {
    let _g = PLANE.lock().unwrap();
    let dir = tmp_dir("torn");
    let path = dir.join("f.bin");
    faults::install(faults::DiskFaultPlan {
        crash_at_op: 2, // create is op 1; the write is op 2
        crash_torn_bytes: 4,
        ..Default::default()
    });
    let mut f = vfs::VfsFile::create(&path).unwrap();
    assert!(f.write_all(b"abcdefgh").is_err());
    faults::clear();
    drop(f);
    assert_eq!(vfs::read(&path).unwrap(), b"abcd", "torn prefix landed");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn counter_scheduled_write_failures_respect_budget() {
    let _g = PLANE.lock().unwrap();
    let dir = tmp_dir("sched");
    let path = dir.join("f.bin");
    faults::install(faults::DiskFaultPlan {
        fail_write_every: 2,
        fail_write_max: 1,
        ..Default::default()
    });
    let mut f = vfs::VfsFile::create(&path).unwrap();
    assert!(f.write_all(b"1").is_ok(), "write 1 passes");
    assert!(f.write_all(b"2").is_err(), "write 2 fails by schedule");
    assert!(f.write_all(b"3").is_ok());
    assert!(f.write_all(b"4").is_ok(), "budget of 1 already spent");
    assert_eq!(faults::counts().injected, 1);
    faults::clear();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn short_read_truncates_and_atomic_write_survives_crash() {
    let _g = PLANE.lock().unwrap();
    let dir = tmp_dir("short");
    let path = dir.join("a.bin");
    vfs::atomic_write(&path, b"full contents here").unwrap();

    faults::install(faults::DiskFaultPlan {
        short_read_every: 1,
        short_read_bytes: 4,
        ..Default::default()
    });
    assert_eq!(vfs::read(&path).unwrap(), b"full");
    faults::clear();
    assert_eq!(vfs::read(&path).unwrap(), b"full contents here");

    // Crash at every op of an atomic_write: the destination always holds
    // either the old bytes or (only once all four steps ran) the new.
    for at in 1..=6 {
        faults::install(faults::DiskFaultPlan {
            crash_at_op: at,
            crash_torn_bytes: 3,
            ..Default::default()
        });
        let r = vfs::atomic_write(&path, b"REPLACED");
        faults::clear();
        let now = vfs::read(&path).unwrap();
        if r.is_ok() {
            assert_eq!(now, b"REPLACED");
        } else {
            assert!(
                now == b"full contents here" || now == b"REPLACED",
                "torn destination after crash at op {at}: {now:?}"
            );
        }
        vfs::atomic_write(&path, b"full contents here").unwrap();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mutating_ops_are_counted_for_enumeration() {
    let _g = PLANE.lock().unwrap();
    let dir = tmp_dir("count");
    let path = dir.join("c.bin");
    faults::install(faults::DiskFaultPlan::default());
    vfs::atomic_write(&path, b"x").unwrap();
    // create + write + sync + rename + syncdir = 5 mutating ops.
    assert_eq!(faults::counts().ops, 5);
    faults::clear();

    // Sanity for the non-mutating path: seek + read count nothing.
    faults::install(faults::DiskFaultPlan::default());
    let mut f = vfs::VfsFile::open_rw(&path).unwrap();
    f.seek(SeekFrom::Start(0)).unwrap();
    let mut buf = Vec::new();
    f.read_to_end(&mut buf).unwrap();
    assert_eq!(faults::counts().ops, 0);
    faults::clear();
    std::fs::remove_dir_all(&dir).ok();
}
