//! Injectable disk I/O plane: every byte the workspace persists goes
//! through here.
//!
//! The on-disk formats (`PDML` logs, `PDMS`/`PDMX`/`PDM1` sidecars) are
//! only as durable as the syscalls beneath them, and disks fail in ways
//! unit tests never exercise: a write torn mid-buffer by a crash, an
//! fsync that never ran, a rename that completed but whose directory
//! entry was lost, a read cut short. This module routes all of that
//! through one thin abstraction — [`VfsFile`] plus the free functions
//! [`read`], [`rename`], [`sync_parent_dir`], [`remove_file`] and
//! [`atomic_write`] — so a deterministic fault plan can be injected
//! underneath the real storage code.
//!
//! Fault injection mirrors `pdm_stream::faults`: compiled to inline
//! no-op hooks unless the `fault-injection` cargo feature is on, and
//! counter-scheduled when it is ([`faults::DiskFaultPlan`]). The central
//! fault is the **crash-stop**: every *mutating* operation (create,
//! write, sync, set-len, rename, directory sync, remove) is counted
//! globally, and a plan may declare "the process dies at op N" — op N
//! and everything after it fail with an injected error, optionally
//! applying a prefix of the dying write first (a torn write). Replaying
//! a workload once per op index enumerates every crash point a real
//! power cut could hit, which is exactly what `tests/crash_chaos.rs`
//! does.
//!
//! ## The atomic-write protocol
//!
//! [`atomic_write`] is the one way any sidecar is ever (re)written:
//!
//! 1. write the full payload to `<path>.tmp` in the same directory;
//! 2. `fsync` the temp file (contents durable under a scratch name);
//! 3. `rename` it over `path` (atomic replace: readers see the old
//!    bytes or the new bytes, never a mixture);
//! 4. `fsync` the parent directory (the rename itself durable).
//!
//! A crash anywhere in that sequence leaves either the previous file
//! intact or the new file complete — plus, at worst, a stray `.tmp`
//! that `pdm fsck` knows to sweep.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Suffix of the scratch file [`atomic_write`] stages into; crash
/// recovery (`pdm fsck`) treats `*.tmp` siblings as sweepable debris.
pub const TMP_SUFFIX: &str = ".tmp";

/// An open file whose mutating operations are routed through the fault
/// plane. Wraps `std::fs::File`; with `fault-injection` off every method
/// compiles down to the direct syscall.
#[derive(Debug)]
pub struct VfsFile {
    file: File,
}

impl VfsFile {
    /// Create (truncating) a read-write file.
    pub fn create(path: &Path) -> io::Result<Self> {
        faults::hook_mutating(faults::OpKind::Create)?;
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .read(true)
            .open(path)?;
        Ok(VfsFile { file })
    }

    /// Open an existing file read-write (no create, no truncate).
    pub fn open_rw(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        Ok(VfsFile { file })
    }

    /// Write the whole buffer, honoring injected write faults: a torn
    /// write persists a prefix of `buf` and then fails, exactly like a
    /// crash mid-`write(2)`.
    pub fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match faults::hook_write(buf.len()) {
            faults::WriteFault::None => self.file.write_all(buf),
            faults::WriteFault::Torn { keep, error } => {
                self.file.write_all(&buf[..keep])?;
                let _ = self.file.sync_data(); // the torn prefix really lands
                Err(error)
            }
            faults::WriteFault::Fail(e) => Err(e),
        }
    }

    /// Flush file contents to stable storage.
    pub fn sync_data(&mut self) -> io::Result<()> {
        faults::hook_mutating(faults::OpKind::Sync)?;
        self.file.sync_data()
    }

    /// Truncate (or extend) to `len` bytes.
    pub fn set_len(&mut self, len: u64) -> io::Result<()> {
        faults::hook_mutating(faults::OpKind::SetLen)?;
        self.file.set_len(len)
    }

    pub fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        self.file.seek(pos)
    }

    /// Read everything from the current position (not a mutating op; the
    /// short-read fault can cut the result off early).
    pub fn read_to_end(&mut self, out: &mut Vec<u8>) -> io::Result<usize> {
        let n = self.file.read_to_end(out)?;
        if let Some(cap) = faults::hook_read(n) {
            out.truncate(out.len() - (n - cap));
            return Ok(cap);
        }
        Ok(n)
    }
}

/// Read a whole file (the short-read fault can truncate the result —
/// CRC-checked formats must reject it, not serve a prefix).
pub fn read(path: &Path) -> io::Result<Vec<u8>> {
    let bytes = std::fs::read(path)?;
    if let Some(cap) = faults::hook_read(bytes.len()) {
        let mut cut = bytes;
        cut.truncate(cap);
        return Ok(cut);
    }
    Ok(bytes)
}

/// Atomically replace `to` with `from` (POSIX rename semantics). The
/// rename is only durable once the parent directory is synced — call
/// [`sync_parent_dir`] after, or use [`atomic_write`].
pub fn rename(from: &Path, to: &Path) -> io::Result<()> {
    faults::hook_mutating(faults::OpKind::Rename)?;
    std::fs::rename(from, to)
}

/// Remove a file (quarantine sweeps, stray-temp cleanup).
pub fn remove_file(path: &Path) -> io::Result<()> {
    faults::hook_mutating(faults::OpKind::Remove)?;
    std::fs::remove_file(path)
}

/// fsync the directory containing `path`, making a just-completed
/// create/rename/remove of `path` durable. Without this, a crash after
/// rename can resurrect the old directory entry.
pub fn sync_parent_dir(path: &Path) -> io::Result<()> {
    faults::hook_mutating(faults::OpKind::SyncDir)?;
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    // Opening a directory read-only and fsyncing it is the POSIX idiom;
    // on platforms where directories cannot be opened this degrades to a
    // no-op rather than an error (there is nothing portable to do).
    match File::open(parent) {
        Ok(d) => d.sync_all(),
        Err(_) => Ok(()),
    }
}

/// The scratch path [`atomic_write`] stages into for `path`.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(TMP_SUFFIX);
    PathBuf::from(os)
}

/// Durably replace the file at `path` with `bytes` via the atomic-write
/// protocol (module docs): temp file → fsync → rename → fsync parent
/// dir. A crash at any point leaves the previous `path` contents intact
/// (or, for a first write, no file) — never a torn mixture.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    {
        let mut f = VfsFile::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_data()?;
    }
    rename(&tmp, path)?;
    sync_parent_dir(path)
}

/// Deterministic disk-fault plans (see module docs). All hooks are
/// inline no-ops unless the `fault-injection` feature is enabled.
pub mod faults {
    use std::io;

    /// The mutating operations counted by the crash-stop schedule, in
    /// the order the storage code issues them.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum OpKind {
        Create,
        Write,
        Sync,
        SetLen,
        Rename,
        SyncDir,
        Remove,
    }

    /// What an injected plan does to one write.
    #[derive(Debug)]
    pub enum WriteFault {
        /// No fault: perform the write normally.
        None,
        /// Persist only the first `keep` bytes, then fail: a torn write.
        Torn { keep: usize, error: io::Error },
        /// Fail without writing anything.
        Fail(io::Error),
    }

    /// A deterministic disk-fault plan. `0` disables any knob.
    #[derive(Debug, Clone, Default)]
    pub struct DiskFaultPlan {
        /// Crash-stop at the Nth mutating op (1-based): that op and every
        /// later mutating op fail with an injected error, as if the
        /// process died there and the test reopened the remains.
        pub crash_at_op: u64,
        /// If the crashing op is a write, persist this many bytes of it
        /// first (capped to the buffer) — the torn-write shape.
        pub crash_torn_bytes: u64,
        /// Fail (without crashing) every Nth write, at most `_max` times
        /// (`0` = unlimited).
        pub fail_write_every: u64,
        pub fail_write_max: u64,
        /// Fail every Nth fsync (file or directory).
        pub fail_sync_every: u64,
        pub fail_sync_max: u64,
        /// Fail every Nth rename.
        pub fail_rename_every: u64,
        pub fail_rename_max: u64,
        /// Truncate every Nth whole-file read to `short_read_bytes`.
        pub short_read_every: u64,
        pub short_read_bytes: u64,
    }

    /// Observed activity since [`install`] — `ops` is the mutating-op
    /// total a crash-point enumerator sweeps `crash_at_op` over.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct DiskFaultCounts {
        /// Mutating ops counted (including any that were failed).
        pub ops: u64,
        /// Injected failures of any kind that actually fired.
        pub injected: u64,
        /// Did the crash-stop trigger?
        pub crashed: bool,
    }

    #[cfg(feature = "fault-injection")]
    mod imp {
        use super::{DiskFaultCounts, DiskFaultPlan, OpKind, WriteFault};
        use std::io;
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
        use std::sync::{Arc, Mutex};

        struct Inner {
            plan: DiskFaultPlan,
            ops: AtomicU64,
            reads: AtomicU64,
            writes: AtomicU64,
            syncs: AtomicU64,
            renames: AtomicU64,
            injected: AtomicU64,
            crashed: AtomicBool,
        }

        static ENABLED: AtomicBool = AtomicBool::new(false);
        static STATE: Mutex<Option<Arc<Inner>>> = Mutex::new(None);

        fn state() -> Option<Arc<Inner>> {
            if !ENABLED.load(Ordering::Relaxed) {
                return None;
            }
            STATE.lock().unwrap().clone()
        }

        fn injected_err(what: &str) -> io::Error {
            io::Error::other(format!("injected disk fault: {what}"))
        }

        impl Inner {
            /// Count one mutating op; `Err` if the crash-stop covers it.
            /// Returns the op's 1-based index on success.
            fn count_op(&self) -> Result<u64, io::Error> {
                let n = self.ops.fetch_add(1, Ordering::SeqCst) + 1;
                let at = self.plan.crash_at_op;
                if at > 0 && n >= at {
                    self.crashed.store(true, Ordering::SeqCst);
                    self.injected.fetch_add(1, Ordering::SeqCst);
                    return Err(injected_err("crash-stop"));
                }
                Ok(n)
            }

            /// `every/max` schedule on a dedicated counter.
            fn scheduled(&self, counter: &AtomicU64, every: u64, max: u64) -> bool {
                if every == 0 {
                    return false;
                }
                let n = counter.fetch_add(1, Ordering::SeqCst) + 1;
                if !n.is_multiple_of(every) {
                    return false;
                }
                if max > 0 && n / every > max {
                    return false;
                }
                self.injected.fetch_add(1, Ordering::SeqCst);
                true
            }
        }

        /// Install a fault plan (replacing any previous one; counters
        /// reset to zero).
        pub fn install(plan: DiskFaultPlan) {
            let inner = Inner {
                plan,
                ops: AtomicU64::new(0),
                reads: AtomicU64::new(0),
                writes: AtomicU64::new(0),
                syncs: AtomicU64::new(0),
                renames: AtomicU64::new(0),
                injected: AtomicU64::new(0),
                crashed: AtomicBool::new(false),
            };
            *STATE.lock().unwrap() = Some(Arc::new(inner));
            ENABLED.store(true, Ordering::SeqCst);
        }

        /// Remove the active plan; all hooks become no-ops again.
        pub fn clear() {
            ENABLED.store(false, Ordering::SeqCst);
            *STATE.lock().unwrap() = None;
        }

        /// Activity since [`install`] (zeros when no plan is active).
        pub fn counts() -> DiskFaultCounts {
            state().map_or(DiskFaultCounts::default(), |s| DiskFaultCounts {
                ops: s.ops.load(Ordering::SeqCst),
                injected: s.injected.load(Ordering::SeqCst),
                crashed: s.crashed.load(Ordering::SeqCst),
            })
        }

        pub fn hook_mutating(kind: OpKind) -> io::Result<()> {
            let Some(s) = state() else { return Ok(()) };
            s.count_op().map_err(|e| match kind {
                OpKind::Rename => injected_err("crash-stop before rename"),
                _ => e,
            })?;
            match kind {
                OpKind::Sync | OpKind::SyncDir
                    if s.scheduled(&s.syncs, s.plan.fail_sync_every, s.plan.fail_sync_max) =>
                {
                    Err(injected_err("fsync failed"))
                }
                OpKind::Rename
                    if s.scheduled(
                        &s.renames,
                        s.plan.fail_rename_every,
                        s.plan.fail_rename_max,
                    ) =>
                {
                    Err(injected_err("rename failed"))
                }
                _ => Ok(()),
            }
        }

        pub fn hook_write(len: usize) -> WriteFault {
            let Some(s) = state() else {
                return WriteFault::None;
            };
            if let Err(error) = s.count_op() {
                // The dying write may land a prefix first (torn write).
                let keep = (s.plan.crash_torn_bytes as usize).min(len);
                return if keep > 0 {
                    WriteFault::Torn { keep, error }
                } else {
                    WriteFault::Fail(error)
                };
            }
            if s.scheduled(&s.writes, s.plan.fail_write_every, s.plan.fail_write_max) {
                return WriteFault::Fail(injected_err("write failed"));
            }
            WriteFault::None
        }

        /// `Some(cap)` = truncate this read to `cap` bytes.
        pub fn hook_read(len: usize) -> Option<usize> {
            let s = state()?;
            if s.plan.short_read_every == 0 {
                return None;
            }
            let n = s.reads.fetch_add(1, Ordering::SeqCst) + 1;
            if !n.is_multiple_of(s.plan.short_read_every) {
                return None;
            }
            let cap = (s.plan.short_read_bytes as usize).min(len);
            if cap >= len {
                return None;
            }
            s.injected.fetch_add(1, Ordering::SeqCst);
            Some(cap)
        }
    }

    #[cfg(not(feature = "fault-injection"))]
    mod imp {
        use super::{DiskFaultCounts, DiskFaultPlan, OpKind, WriteFault};
        use std::io;

        #[inline(always)]
        pub fn install(_plan: DiskFaultPlan) {}

        #[inline(always)]
        pub fn clear() {}

        #[inline(always)]
        pub fn counts() -> DiskFaultCounts {
            DiskFaultCounts::default()
        }

        #[inline(always)]
        pub fn hook_mutating(_kind: OpKind) -> io::Result<()> {
            Ok(())
        }

        #[inline(always)]
        pub fn hook_write(_len: usize) -> WriteFault {
            WriteFault::None
        }

        #[inline(always)]
        pub fn hook_read(_len: usize) -> Option<usize> {
            None
        }
    }

    pub use imp::*;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pdm-vfs-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn atomic_write_round_trip_and_replace() {
        let dir = tmp_dir("atomic");
        let path = dir.join("a.bin");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(read(&path).unwrap(), b"first");
        atomic_write(&path, b"second contents").unwrap();
        assert_eq!(read(&path).unwrap(), b"second contents");
        assert!(!tmp_path(&path).exists(), "no stray temp after success");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn vfs_file_append_and_truncate() {
        let dir = tmp_dir("file");
        let path = dir.join("f.bin");
        {
            let mut f = VfsFile::create(&path).unwrap();
            f.write_all(b"hello world").unwrap();
            f.sync_data().unwrap();
            f.set_len(5).unwrap();
        }
        assert_eq!(read(&path).unwrap(), b"hello");
        let mut f = VfsFile::open_rw(&path).unwrap();
        let mut buf = Vec::new();
        f.seek(SeekFrom::Start(0)).unwrap();
        assert_eq!(f.read_to_end(&mut buf).unwrap(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    // Fault-plan scheduling is covered by `tests/vfs_faults.rs` (it
    // mutates global state, so it runs in its own test binary).
}
