//! Parallel LSD radix sort for `(u64 key, u32 payload)` records.
//!
//! §6.2.1 of the paper shows dynamic stamp-counting is exactly as hard as
//! integer sorting and uses \[BDHPRS91\]-style integer sort for batched
//! updates. This is the work-efficient stand-in: stable LSD passes over
//! 8-bit digits, each pass a counting sort parallelized over blocks
//! (per-block histograms, scanned globally, then a stable scatter).
//!
//! Only as many passes run as the key width requires (`max_key` bits).

use pdm_pram::Ctx;

const RADIX_BITS: u32 = 8;
const BUCKETS: usize = 1 << RADIX_BITS;

/// Sort records by `key` ascending; stable. Returns the sorted records.
pub fn radix_sort_by_key(ctx: &Ctx, records: &[(u64, u32)]) -> Vec<(u64, u32)> {
    let mut recs = records.to_vec();
    let mut scratch = Vec::new();
    radix_sort_by_key_in_place(ctx, &mut recs, &mut scratch);
    recs
}

/// In-place variant of [`radix_sort_by_key`] for hot loops that sort every
/// iteration (suffix-array doubling): `records` is sorted in place and
/// `scratch` is (re)used as the ping-pong buffer, so steady-state sorting
/// allocates nothing once both vectors have grown to size.
pub fn radix_sort_by_key_in_place(
    ctx: &Ctx,
    records: &mut Vec<(u64, u32)>,
    scratch: &mut Vec<(u64, u32)>,
) {
    let n = records.len();
    if n <= 1 {
        return;
    }
    let max_key = records.iter().map(|r| r.0).max().unwrap_or(0);
    let key_bits = 64 - max_key.leading_zeros();
    let passes = key_bits.div_ceil(RADIX_BITS).max(1);

    scratch.clear();
    scratch.resize(n, (0u64, 0u32));
    let cur = records;
    let next = scratch;

    let threads = if ctx.is_parallel() {
        ctx.exec.threads().max(1)
    } else {
        1
    };
    let block = n.div_ceil(threads).max(4096);
    let nblocks = n.div_ceil(block);

    for pass in 0..passes {
        let shift = pass * RADIX_BITS;
        // Per-block histograms. One PRAM round of O(n) work.
        ctx.cost.round(n as u64);
        let hists: Vec<[u32; BUCKETS]> = ctx.install(|| {
            use rayon::prelude::*;
            cur.par_chunks(block)
                .map(|chunk| {
                    let mut h = [0u32; BUCKETS];
                    for &(k, _) in chunk {
                        h[((k >> shift) as usize) & (BUCKETS - 1)] += 1;
                    }
                    h
                })
                .collect()
        });
        // Global exclusive offsets per (bucket, block): column-major scan.
        // Small (BUCKETS × nblocks), done sequentially; charged log rounds.
        ctx.cost.rounds(
            pdm_pram::ceil_log2(BUCKETS * nblocks) as u64,
            (BUCKETS * nblocks) as u64,
        );
        let mut offsets = vec![[0u32; BUCKETS]; nblocks];
        let mut running = 0u32;
        for b in 0..BUCKETS {
            for blk in 0..nblocks {
                offsets[blk][b] = running;
                running += hists[blk][b];
            }
        }
        // Stable scatter. One PRAM round of O(n) work.
        ctx.cost.round(n as u64);
        {
            let next_ptr = SendPtr(next.as_mut_ptr());
            ctx.install(|| {
                use rayon::prelude::*;
                cur.par_chunks(block)
                    .zip(offsets.into_par_iter())
                    .for_each(|(chunk, mut off)| {
                        // Move (not borrow) the Copy wrapper into the task.
                        #[allow(clippy::redundant_locals)]
                        let next_ptr = next_ptr;
                        for &(k, v) in chunk {
                            let b = ((k >> shift) as usize) & (BUCKETS - 1);
                            let dst = off[b] as usize;
                            off[b] += 1;
                            // SAFETY: offsets partition 0..n disjointly across
                            // (block, bucket) pairs, so each dst is written by
                            // exactly one task.
                            unsafe { *next_ptr.0.add(dst) = (k, v) };
                        }
                    });
            });
        }
        // Swap the vectors themselves (ptr/len/cap), so after every pass the
        // caller's `records` holds the latest sorted data and `scratch` the
        // ping-pong buffer — regardless of pass parity.
        std::mem::swap(cur, next);
    }
    debug_assert!(cur.windows(2).all(|w| w[0].0 <= w[1].0));
}

/// Sort plain `u64` keys ascending.
pub fn radix_sort_u64(ctx: &Ctx, keys: &[u64]) -> Vec<u64> {
    let recs: Vec<(u64, u32)> = keys.iter().map(|&k| (k, 0)).collect();
    radix_sort_by_key(ctx, &recs)
        .into_iter()
        .map(|(k, _)| k)
        .collect()
}

#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
// SAFETY: used only for disjoint writes as argued at the write site.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(n: usize, seed: u64) -> Vec<(u64, u32)> {
        let mut x = seed | 1;
        (0..n)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 1_000_003, i as u32)
            })
            .collect()
    }

    #[test]
    fn sorts_like_std() {
        for ctx in [Ctx::seq(), Ctx::par()] {
            for n in [0usize, 1, 2, 17, 1000, 100_000] {
                let recs = pseudo(n, 42);
                let got = radix_sort_by_key(&ctx, &recs);
                let mut want = recs.clone();
                want.sort_by_key(|r| r.0);
                assert_eq!(
                    got.iter().map(|r| r.0).collect::<Vec<_>>(),
                    want.iter().map(|r| r.0).collect::<Vec<_>>(),
                    "n={n}"
                );
            }
        }
    }

    #[test]
    fn stable_for_equal_keys() {
        let ctx = Ctx::par();
        let recs: Vec<(u64, u32)> = (0..50_000u32).map(|i| ((i % 10) as u64, i)).collect();
        let got = radix_sort_by_key(&ctx, &recs);
        for w in got.windows(2) {
            assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
        }
    }

    #[test]
    fn large_keys_use_more_passes() {
        let ctx = Ctx::seq();
        let recs: Vec<(u64, u32)> = vec![(u64::MAX, 0), (0, 1), (u64::MAX / 2, 2)];
        let got = radix_sort_by_key(&ctx, &recs);
        assert_eq!(got, vec![(0, 1), (u64::MAX / 2, 2), (u64::MAX, 0)]);
    }

    #[test]
    fn plain_u64_sort() {
        let ctx = Ctx::seq();
        assert_eq!(radix_sort_u64(&ctx, &[3, 1, 2]), vec![1, 2, 3]);
        assert_eq!(radix_sort_u64(&ctx, &[]), Vec::<u64>::new());
    }
}
