//! A fast multiply-xor hasher (Fx-style), implemented locally.
//!
//! The namestamping tables key on small integers and integer pairs; SipHash's
//! DoS resistance buys nothing here and costs plenty. This is the standard
//! `hash = (hash.rotate_left(5) ^ word) * K` construction used by rustc,
//! reimplemented so the workspace has no external hashing dependency.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-xor hasher over machine words.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;
/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Finalizing mix for raw `u64` keys used by the open-addressing tables
/// (splitmix64 finalizer; full-avalanche so linear probing stays short).
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&(1u32, 2u32)), hash_of(&(1u32, 2u32)));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&(1u32, 2u32)), hash_of(&(2u32, 1u32)));
    }

    #[test]
    fn bytes_path_matches_padding_semantics() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0]);
        // Both pad to one 8-byte word; this documents (not endorses) the
        // prefix-padding collision — our tables never hash raw byte strings.
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn hashmap_works() {
        let mut m: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i + 1), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(500, 501)), Some(&500));
        assert_eq!(m.get(&(501, 500)), None);
    }

    #[test]
    fn mix64_bijective_on_sample() {
        let mut seen = FxHashSet::default();
        for i in 0..100_000u64 {
            assert!(seen.insert(mix64(i)), "collision at {i}");
        }
    }

    #[test]
    fn mix64_avalanche_smoke() {
        // Flipping one input bit should flip ~half the output bits.
        let a = mix64(0x1234_5678_9abc_def0);
        let b = mix64(0x1234_5678_9abc_def1);
        let diff = (a ^ b).count_ones();
        assert!((16..=48).contains(&diff), "weak avalanche: {diff} bits");
    }
}
