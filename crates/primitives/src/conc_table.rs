//! Concurrent name table: the CRCW "namestamping table" for parallel rounds.
//!
//! The paper's namestamping (§3.2, Fact 1) is a constant-time CRCW procedure:
//! every tuple writes into a table indexed by its element, an arbitrary
//! writer wins, and readers pick up the winner's stamp. We realize it as a
//! fixed-capacity open-addressing table with CAS claims:
//!
//! * a slot's key word is claimed by exactly one winner
//!   ([`pdm_pram::crcw::claim_u64`]);
//! * the winner runs the (caller-supplied) name allocator and publishes the
//!   value; losers spin briefly on the pending value — the paper's "one of
//!   the tuples provides the stamp";
//! * lookups are lock-free loads.
//!
//! Capacity is fixed at construction because every use in the matching
//! algorithms knows its batch size in advance (the paper likewise sizes its
//! tables by the dictionary size, rebuilding when they fill — §6.1.1).

use crate::hash::mix64;
use crate::table::pack;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

const EMPTY_KEY: u64 = u64::MAX;
const PENDING: u32 = u32::MAX;

struct Slot {
    key: AtomicU64,
    val: AtomicU32,
}

/// Fixed-capacity concurrent `(u32, u32) → u32` map.
///
/// Keys must not be `(u32::MAX, u32::MAX)` and values must not be
/// `u32::MAX`; both sentinels are reserved (names and symbols in this
/// workspace never reach them).
pub struct ConcPairTable {
    slots: Box<[Slot]>,
    mask: usize,
    count: AtomicUsize,
    capacity: usize,
}

impl std::fmt::Debug for ConcPairTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcPairTable")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl ConcPairTable {
    /// Table able to hold `n` entries (sized to keep load factor ≤ ~0.5).
    pub fn with_capacity(n: usize) -> Self {
        let slots_len = (n.max(1) * 2).next_power_of_two();
        let slots: Box<[Slot]> = (0..slots_len)
            .map(|_| Slot {
                key: AtomicU64::new(EMPTY_KEY),
                val: AtomicU32::new(PENDING),
            })
            .collect();
        Self {
            slots,
            mask: slots_len - 1,
            count: AtomicUsize::new(0),
            capacity: n.max(1),
        }
    }

    pub fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Declared capacity (entries, not slots).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Physical slot count (a power of two; 2 × declared capacity rounded
    /// up). Freezing reuses it so probe distances survive the snapshot.
    pub fn slots_len(&self) -> usize {
        self.mask + 1
    }

    /// Name of `(a, b)`, allocating via `alloc` if this is the first claim.
    ///
    /// Concurrent callers with the same key all receive the same name and
    /// `alloc` runs exactly once.
    pub fn get_or_insert(&self, a: u32, b: u32, alloc: impl FnOnce() -> u32) -> u32 {
        let key = pack(a, b);
        debug_assert_ne!(key, EMPTY_KEY, "reserved key");
        let mut idx = mix64(key) as usize & self.mask;
        let mut probes = 0usize;
        loop {
            let slot = &self.slots[idx];
            let cur = slot.key.load(Ordering::Acquire);
            if cur == key {
                return self.wait_value(slot);
            }
            if cur == EMPTY_KEY {
                match slot
                    .key
                    .compare_exchange(EMPTY_KEY, key, Ordering::AcqRel, Ordering::Acquire)
                {
                    Ok(_) => {
                        let prev = self.count.fetch_add(1, Ordering::Relaxed);
                        assert!(
                            prev < self.slots.len() - 1,
                            "ConcPairTable overfull: capacity {} exceeded",
                            self.capacity
                        );
                        let v = alloc();
                        debug_assert_ne!(v, PENDING, "reserved value");
                        slot.val.store(v, Ordering::Release);
                        return v;
                    }
                    Err(now) => {
                        if now == key {
                            return self.wait_value(slot);
                        }
                        // Someone else claimed this slot for another key;
                        // fall through to the next probe.
                    }
                }
            }
            idx = (idx + 1) & self.mask;
            probes += 1;
            assert!(
                probes <= self.slots.len(),
                "ConcPairTable probe loop exhausted (capacity {})",
                self.capacity
            );
        }
    }

    /// Lock-free lookup.
    pub fn get(&self, a: u32, b: u32) -> Option<u32> {
        let key = pack(a, b);
        let mut idx = mix64(key) as usize & self.mask;
        let mut probes = 0usize;
        loop {
            let slot = &self.slots[idx];
            let cur = slot.key.load(Ordering::Acquire);
            if cur == key {
                return Some(self.wait_value(slot));
            }
            if cur == EMPTY_KEY {
                return None;
            }
            idx = (idx + 1) & self.mask;
            probes += 1;
            if probes > self.slots.len() {
                return None;
            }
        }
    }

    #[inline]
    fn wait_value(&self, slot: &Slot) -> u32 {
        // The claimer publishes the value immediately after claiming; this
        // spin only covers that tiny window.
        loop {
            let v = slot.val.load(Ordering::Acquire);
            if v != PENDING {
                return v;
            }
            std::hint::spin_loop();
        }
    }

    /// Drain all `(key_a, key_b, value)` entries (for rebuilds/tests).
    pub fn entries(&self) -> Vec<(u32, u32, u32)> {
        self.slots
            .iter()
            .filter_map(|s| {
                let k = s.key.load(Ordering::Acquire);
                (k != EMPTY_KEY).then(|| {
                    let v = self.wait_value(s);
                    let (a, b) = crate::table::unpack(k);
                    (a, b, v)
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32 as Counter;

    #[test]
    fn same_key_same_name() {
        let t = ConcPairTable::with_capacity(16);
        let ctr = Counter::new(0);
        let n1 = t.get_or_insert(1, 2, || ctr.fetch_add(1, Ordering::Relaxed));
        let n2 = t.get_or_insert(1, 2, || ctr.fetch_add(1, Ordering::Relaxed));
        let n3 = t.get_or_insert(2, 1, || ctr.fetch_add(1, Ordering::Relaxed));
        assert_eq!(n1, n2);
        assert_ne!(n1, n3);
        assert_eq!(ctr.load(Ordering::Relaxed), 2);
        assert_eq!(t.get(1, 2), Some(n1));
        assert_eq!(t.get(3, 3), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn concurrent_claims_allocate_once_per_key() {
        let t = ConcPairTable::with_capacity(1024);
        let ctr = Counter::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for i in 0..1024u32 {
                        let key = i % 512;
                        let n =
                            t.get_or_insert(key, key + 1, || ctr.fetch_add(1, Ordering::Relaxed));
                        assert_eq!(t.get(key, key + 1), Some(n));
                    }
                });
            }
        });
        assert_eq!(ctr.load(Ordering::Relaxed), 512);
        assert_eq!(t.len(), 512);
    }

    #[test]
    fn distinct_keys_distinct_names_with_shared_counter() {
        let t = ConcPairTable::with_capacity(10_000);
        let ctr = Counter::new(0);
        std::thread::scope(|s| {
            for th in 0..4u32 {
                let t = &t;
                let ctr = &ctr;
                s.spawn(move || {
                    for i in 0..2500u32 {
                        t.get_or_insert(th, i, || ctr.fetch_add(1, Ordering::Relaxed));
                    }
                });
            }
        });
        let mut names: Vec<u32> = t.entries().iter().map(|e| e.2).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10_000, "names must be distinct per key");
    }

    #[test]
    fn handles_collision_probing() {
        // Tiny table forces probe chains.
        let t = ConcPairTable::with_capacity(4);
        let ctr = Counter::new(0);
        for i in 0..4u32 {
            t.get_or_insert(i, 0, || ctr.fetch_add(1, Ordering::Relaxed));
        }
        for i in 0..4u32 {
            assert!(t.get(i, 0).is_some());
        }
    }

    #[test]
    #[should_panic(expected = "overfull")]
    fn overfull_panics() {
        let t = ConcPairTable::with_capacity(2);
        let ctr = Counter::new(0);
        for i in 0..100u32 {
            t.get_or_insert(i, 7, || ctr.fetch_add(1, Ordering::Relaxed));
        }
    }
}
