//! Nearest-one-to-the-left (paper §4.2, step 2).
//!
//! Given a boolean array `A`, find for each position the nearest set position
//! at or to its left. The paper uses this to turn "which prefixes are full
//! patterns" into "longest pattern that is a prefix of each prefix": mark a
//! position when `P_i(1..j)` is a pattern, then every position `j` looks left
//! for the nearest mark.
//!
//! Implemented as a max-scan of `i·[A[i]]`, so it inherits the scan's
//! `O(log n)` rounds / `O(n)` work.

use crate::scan::scan_inclusive;
use pdm_pram::Ctx;

/// For each `i`, the largest `j ≤ i` with `marked[j]`, or `None`.
pub fn nearest_one_left(ctx: &Ctx, marked: &[bool]) -> Vec<Option<usize>> {
    // Encode position i as i+1 so 0 can be the identity ("no mark yet").
    let enc: Vec<u64> = ctx.map(marked.len(), |i| if marked[i] { i as u64 + 1 } else { 0 });
    let maxed = scan_inclusive(ctx, &enc, 0u64, |a, b| *a.max(b));
    ctx.map(marked.len(), |i| {
        let v = maxed[i];
        (v > 0).then(|| (v - 1) as usize)
    })
}

/// For each `i`, the smallest `j ≥ i` with `marked[j]`, or `None`.
pub fn nearest_one_right(ctx: &Ctx, marked: &[bool]) -> Vec<Option<usize>> {
    let n = marked.len();
    let rev: Vec<bool> = ctx.map(n, |i| marked[n - 1 - i]);
    let left = nearest_one_left(ctx, &rev);
    ctx.map(n, |i| left[n - 1 - i].map(|j| n - 1 - j))
}

/// Per-value variant: for each `i`, the value at the nearest marked position
/// `j ≤ i` (`values[j]` where `marked[j]`), or `None`.
pub fn carry_left<T: Copy + Send + Sync>(
    ctx: &Ctx,
    marked: &[bool],
    values: &[T],
) -> Vec<Option<T>> {
    assert_eq!(marked.len(), values.len());
    let idx = nearest_one_left(ctx, marked);
    ctx.map(marked.len(), |i| idx[i].map(|j| values[j]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_left(marked: &[bool]) -> Vec<Option<usize>> {
        let mut out = Vec::with_capacity(marked.len());
        let mut last = None;
        for (i, &m) in marked.iter().enumerate() {
            if m {
                last = Some(i);
            }
            out.push(last);
        }
        out
    }

    #[test]
    fn matches_naive() {
        for ctx in [Ctx::seq(), Ctx::par()] {
            for n in [0usize, 1, 7, 100, 10_000] {
                let marked: Vec<bool> = (0..n).map(|i| (i * 2654435761) % 7 == 0).collect();
                assert_eq!(nearest_one_left(&ctx, &marked), naive_left(&marked));
            }
        }
    }

    #[test]
    fn right_is_mirror() {
        let ctx = Ctx::seq();
        let marked = vec![false, true, false, false, true, false];
        assert_eq!(
            nearest_one_right(&ctx, &marked),
            vec![Some(1), Some(1), Some(4), Some(4), Some(4), None]
        );
    }

    #[test]
    fn all_unmarked_gives_none() {
        let ctx = Ctx::seq();
        let marked = vec![false; 50];
        assert!(nearest_one_left(&ctx, &marked).iter().all(|x| x.is_none()));
        assert!(nearest_one_right(&ctx, &marked).iter().all(|x| x.is_none()));
    }

    #[test]
    fn carry_left_carries_values() {
        let ctx = Ctx::seq();
        let marked = vec![true, false, true, false, false];
        let values = vec![10u32, 0, 30, 0, 0];
        assert_eq!(
            carry_left(&ctx, &marked, &values),
            vec![Some(10), Some(10), Some(30), Some(30), Some(30)]
        );
    }

    #[test]
    fn position_zero_marked() {
        let ctx = Ctx::seq();
        let marked = vec![true, false];
        assert_eq!(nearest_one_left(&ctx, &marked), vec![Some(0), Some(0)]);
    }
}
