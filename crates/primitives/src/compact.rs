//! Stream compaction: keep the flagged elements, preserving order.
//!
//! This is the "squeeze out the marked patterns using a fast prefix-sum
//! computation" step of the paper's fully-dynamic rebuild (§6.2), and the
//! output-placement step of all-matches enumeration. `O(log n)` rounds,
//! `O(n)` work via [`crate::scan::prefix_sums`].

use crate::scan::prefix_sums;
use pdm_pram::Ctx;

/// Elements of `items` whose flag is set, in order.
pub fn compact<T: Clone + Send + Sync>(ctx: &Ctx, items: &[T], keep: &[bool]) -> Vec<T> {
    assert_eq!(items.len(), keep.len());
    let idx = compact_indices(ctx, keep);
    // Gather round: output slot j reads its unique source index.
    ctx.map(idx.len(), |j| items[idx[j] as usize].clone())
}

/// Indices `i` with `keep[i]`, in order. Avoids cloning payloads.
pub fn compact_indices(ctx: &Ctx, keep: &[bool]) -> Vec<u32> {
    let counts: Vec<u64> = ctx.map(keep.len(), |i| keep[i] as u64);
    let (offsets, total) = prefix_sums(ctx, &counts);
    let out: Vec<std::sync::atomic::AtomicU32> = (0..total as usize)
        .map(|_| std::sync::atomic::AtomicU32::new(0))
        .collect();
    ctx.for_each(keep.len(), |i| {
        if keep[i] {
            out[offsets[i] as usize].store(i as u32, std::sync::atomic::Ordering::Relaxed);
        }
    });
    out.into_iter().map(|a| a.into_inner()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_flagged_in_order() {
        for ctx in [Ctx::seq(), Ctx::par()] {
            let items: Vec<u32> = (0..10_000).collect();
            let keep: Vec<bool> = items.iter().map(|&x| x % 3 == 0).collect();
            let got = compact(&ctx, &items, &keep);
            let want: Vec<u32> = items.iter().copied().filter(|&x| x % 3 == 0).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn indices_variant_agrees() {
        let ctx = Ctx::par();
        let keep: Vec<bool> = (0..5000).map(|i| (i * 31) % 5 == 0).collect();
        let got = compact_indices(&ctx, &keep);
        let want: Vec<u32> = (0..5000u32).filter(|&i| (i * 31) % 5 == 0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_and_none_kept() {
        let ctx = Ctx::seq();
        assert!(compact::<u8>(&ctx, &[], &[]).is_empty());
        assert!(compact(&ctx, &[1, 2, 3], &[false, false, false]).is_empty());
        assert_eq!(
            compact(&ctx, &[1, 2, 3], &[true, true, true]),
            vec![1, 2, 3]
        );
    }
}
