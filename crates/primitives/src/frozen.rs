//! Frozen (read-only) pair table: the text-side fast path.
//!
//! A [`crate::ConcPairTable`] is write-optimized: every probe is an
//! `Acquire` load and every hit spins past a `PENDING` publish window. The
//! text side of matching never writes — after the dictionary build the
//! tables are immutable — so it can pay none of that. `FrozenPairTable` is
//! the same open-addressing layout (same `mix64(pack(a, b)) & mask` home
//! slot, same linear probe order, same `EMPTY` key sentinel) re-materialized
//! into plain arrays: a `u64` key array probed with non-atomic loads and a
//! parallel `u32` value array read exactly once on a hit.
//!
//! Keys and values are split into parallel arrays rather than packed
//! 12-byte slots so the probe loop touches only the key array — 8 bytes per
//! slot, 8 slots per cache line — and the value array is touched once per
//! successful lookup.

use crate::conc_table::ConcPairTable;
use crate::hash::mix64;
use crate::table::pack;

const EMPTY_KEY: u64 = u64::MAX;

/// Immutable open-addressing `(u32, u32) → u32` map built by freezing a
/// [`ConcPairTable`] (or an entry list) after all inserts are done.
///
/// Lookups are branch-light: one hashed home slot, then a linear probe that
/// stops at the first empty slot. No atomics, no pending-value spins.
#[derive(Debug, Clone)]
pub struct FrozenPairTable {
    keys: Box<[u64]>,
    vals: Box<[u32]>,
    mask: usize,
    len: usize,
}

impl FrozenPairTable {
    /// Freeze `entries` (each `(a, b, value)`) into a read-only table.
    /// Slots are sized for load factor ≤ 0.25: the text side mostly probes
    /// *absent* keys (every text-local pair misses), and unsuccessful
    /// linear-probe searches are the ones that degrade with load, so the
    /// frozen table trades 12 bytes/slot for short miss chains.
    pub fn from_entries(entries: &[(u32, u32, u32)]) -> Self {
        Self::with_slots(entries, (entries.len().max(1) * 4).next_power_of_two())
    }

    /// Freeze `entries` into exactly `slots_len` slots (a power of two,
    /// ≥ 2 × entries). Used by [`Self::freeze`] to reproduce the source
    /// table's slot count, so frozen miss chains are never longer than the
    /// live ones they replace.
    pub fn with_slots(entries: &[(u32, u32, u32)], slots_len: usize) -> Self {
        debug_assert!(slots_len.is_power_of_two());
        debug_assert!(slots_len >= (entries.len() * 2).max(1));
        let mask = slots_len - 1;
        let mut keys = vec![EMPTY_KEY; slots_len].into_boxed_slice();
        let mut vals = vec![0u32; slots_len].into_boxed_slice();
        for &(a, b, v) in entries {
            let key = pack(a, b);
            debug_assert_ne!(key, EMPTY_KEY, "reserved key");
            let mut idx = mix64(key) as usize & mask;
            loop {
                if keys[idx] == EMPTY_KEY {
                    keys[idx] = key;
                    vals[idx] = v;
                    break;
                }
                debug_assert_ne!(keys[idx], key, "duplicate key in frozen entries");
                idx = (idx + 1) & mask;
            }
        }
        Self {
            keys,
            vals,
            mask,
            len: entries.len(),
        }
    }

    /// Freeze a live concurrent table. The table must be quiescent (no
    /// concurrent inserts) — which is exactly the post-build state. The
    /// snapshot keeps at least the source's slot count (conc tables are
    /// provisioned well below their own load ceiling), so a frozen probe
    /// never walks a longer miss chain than the live probe it replaces.
    pub fn freeze(table: &ConcPairTable) -> Self {
        let entries = table.entries();
        let min = (entries.len().max(1) * 4).next_power_of_two();
        Self::with_slots(&entries, min.max(table.slots_len()))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Number of slots (a power of two). With [`Self::keys`]/[`Self::vals`]
    /// and [`Self::from_raw_parts`] this makes the table serializable
    /// without rehashing: the slot arrays *are* the table.
    pub fn slots_len(&self) -> usize {
        self.keys.len()
    }

    /// Raw key slots (`u64::MAX` marks empties). Probe order is a pure
    /// function of key and slot count, so dumping these bytes and reloading
    /// them with [`Self::from_raw_parts`] reproduces lookups exactly.
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// Raw value slots, parallel to [`Self::keys`]; slots whose key is
    /// empty hold an arbitrary value (zero as written).
    pub fn vals(&self) -> &[u32] {
        &self.vals
    }

    /// Reassemble a table from serialized slot arrays. Returns `None` when
    /// the arrays cannot be a valid table (mismatched lengths, slot count
    /// not a power of two, or `len` disagreeing with the non-empty slots) —
    /// a loader turns that into its corruption error rather than panicking.
    pub fn from_raw_parts(keys: Box<[u64]>, vals: Box<[u32]>, len: usize) -> Option<Self> {
        if keys.len() != vals.len() || !keys.len().is_power_of_two() {
            return None;
        }
        if keys.iter().filter(|&&k| k != EMPTY_KEY).count() != len {
            return None;
        }
        let mask = keys.len() - 1;
        Some(Self {
            keys,
            vals,
            mask,
            len,
        })
    }

    /// Iterate the stored `(a, b, value)` entries in slot order. Used to
    /// rebuild derived structures (e.g. dense symbol maps) from a
    /// deserialized table.
    pub fn entries(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        self.keys
            .iter()
            .zip(self.vals.iter())
            .filter(|&(&k, _)| k != EMPTY_KEY)
            .map(|(&k, &v)| {
                let (a, b) = crate::table::unpack(k);
                (a, b, v)
            })
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read-only lookup: `Some(value)` iff `(a, b)` was in the frozen set.
    #[inline]
    pub fn get(&self, a: u32, b: u32) -> Option<u32> {
        let key = pack(a, b);
        let mut idx = mix64(key) as usize & self.mask;
        loop {
            // Safety of the plain indexing: idx is masked into range.
            let k = self.keys[idx];
            if k == key {
                return Some(self.vals[idx]);
            }
            if k == EMPTY_KEY {
                return None;
            }
            idx = (idx + 1) & self.mask;
        }
    }
}

impl From<&ConcPairTable> for FrozenPairTable {
    fn from(t: &ConcPairTable) -> Self {
        Self::freeze(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn empty_table_misses_everything() {
        let f = FrozenPairTable::from_entries(&[]);
        assert!(f.is_empty());
        assert_eq!(f.get(0, 0), None);
        assert_eq!(f.get(u32::MAX - 1, 7), None);
    }

    #[test]
    fn freeze_preserves_every_entry() {
        let t = ConcPairTable::with_capacity(100);
        let ctr = AtomicU32::new(0);
        for i in 0..100u32 {
            t.get_or_insert(i, i.wrapping_mul(31), || {
                ctr.fetch_add(1, Ordering::Relaxed)
            });
        }
        let f = FrozenPairTable::freeze(&t);
        assert_eq!(f.len(), 100);
        for i in 0..100u32 {
            assert_eq!(f.get(i, i.wrapping_mul(31)), t.get(i, i.wrapping_mul(31)));
        }
        assert_eq!(f.get(5, 5), t.get(5, 5));
    }

    #[test]
    fn collision_chains_survive_freezing() {
        // Tiny table forces probe chains in both representations.
        let t = ConcPairTable::with_capacity(4);
        let ctr = AtomicU32::new(0);
        for i in 0..4u32 {
            t.get_or_insert(i, 0, || ctr.fetch_add(1, Ordering::Relaxed));
        }
        let f = FrozenPairTable::freeze(&t);
        for i in 0..4u32 {
            assert_eq!(f.get(i, 0), t.get(i, 0));
            assert!(f.get(i, 0).is_some());
        }
        assert_eq!(f.get(9, 9), None);
    }

    #[test]
    fn raw_parts_round_trip() {
        let entries: Vec<(u32, u32, u32)> = (0..57u32)
            .map(|i| (i, i.wrapping_mul(101), i + 7))
            .collect();
        let f = FrozenPairTable::from_entries(&entries);
        let keys = f.keys().to_vec().into_boxed_slice();
        let vals = f.vals().to_vec().into_boxed_slice();
        let back = FrozenPairTable::from_raw_parts(keys, vals, f.len()).expect("valid parts");
        assert_eq!(back.len(), f.len());
        assert_eq!(back.slots_len(), f.slots_len());
        for &(a, b, v) in &entries {
            assert_eq!(back.get(a, b), Some(v));
        }
        assert_eq!(back.get(999, 999), None);
        let mut got: Vec<_> = back.entries().collect();
        got.sort_unstable();
        assert_eq!(got, entries);
    }

    #[test]
    fn raw_parts_reject_inconsistent_input() {
        let f = FrozenPairTable::from_entries(&[(1, 2, 3), (4, 5, 6)]);
        let keys = || f.keys().to_vec().into_boxed_slice();
        let vals = || f.vals().to_vec().into_boxed_slice();
        // len disagreeing with occupied slots.
        assert!(FrozenPairTable::from_raw_parts(keys(), vals(), 1).is_none());
        // Mismatched array lengths.
        let short: Box<[u32]> = f.vals()[..f.slots_len() - 1].to_vec().into_boxed_slice();
        assert!(FrozenPairTable::from_raw_parts(keys(), short, 2).is_none());
        // Non-power-of-two slot count.
        let mut k = f.keys().to_vec();
        let mut v = f.vals().to_vec();
        k.push(EMPTY_KEY);
        v.push(0);
        assert!(FrozenPairTable::from_raw_parts(k.into(), v.into(), 2).is_none());
    }

    proptest! {
        /// FrozenPairTable ≡ ConcPairTable on random insert sets, probed
        /// with both inserted keys (hits) and arbitrary keys (mostly
        /// misses).
        #[test]
        fn frozen_equals_conc(
            inserts in proptest::collection::vec((0u32..5000, 0u32..5000), 0..400),
            probes in proptest::collection::vec((0u32..6000, 0u32..6000), 0..200),
        ) {
            let t = ConcPairTable::with_capacity(inserts.len().max(1));
            let ctr = AtomicU32::new(1);
            for &(a, b) in &inserts {
                t.get_or_insert(a, b, || ctr.fetch_add(1, Ordering::Relaxed));
            }
            let f = FrozenPairTable::freeze(&t);
            prop_assert_eq!(f.len(), t.len());
            for &(a, b) in inserts.iter().chain(probes.iter()) {
                prop_assert_eq!(f.get(a, b), t.get(a, b));
            }
        }
    }
}
