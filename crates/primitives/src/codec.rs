//! Shared sidecar-file framing for every on-disk format in the workspace.
//!
//! Three artifacts live next to user data on disk — the pdm-dict
//! append-only log (`PDML`), the corpus index sidecar (`PDMX`), and the
//! built-matcher snapshot (`PDMS`). They historically each carried their own
//! magic/version/CRC plumbing and their own corruption-error shape; this
//! module is the single implementation all three now share:
//!
//! * an 8-byte header — 4-byte magic + `u32` LE format version — with
//!   read/validate helpers ([`write_header`] / [`read_header`]);
//! * a trailing whole-file CRC-32 ([`append_crc`] / [`verify_crc`]), the
//!   PDMX/PDMS convention for write-once artifacts;
//! * per-record framing `[kind u8][len u32][crc u32][payload]`
//!   ([`write_record`] / [`read_record`]), the PDML convention for
//!   append-only files where the tail may be torn;
//! * a sectioned container ([`SectionWriter`] / [`SectionReader`]) used by
//!   the `.snap` v2 layout: an id → (offset, len) table after the header, so
//!   readers locate any section in O(1) and unknown sections are skippable.
//!
//! All integers are little-endian. Every validation failure is a
//! [`CodecError`], so "what a corrupt sidecar looks like" is one shape
//! across formats.

use crate::crc::{crc32, Crc32};

/// The one way any sidecar reaches disk: durable atomic replacement via
/// the [`crate::vfs`] plane (temp file → fsync → rename → fsync parent
/// dir). Re-exported here because "how a format is framed" and "how its
/// bytes become durable" are the same contract — every `PDM1`, `PDMS`,
/// `PDMX` and rewritten `PDML` write goes through this helper, so a
/// crash at any instant leaves the previous file intact or the new file
/// complete, never a torn mixture.
pub use crate::vfs::atomic_write;

/// Header size shared by all formats: 4-byte magic + `u32` version.
pub const HEADER_LEN: usize = 8;

/// Per-record framing overhead: kind byte + payload length + record CRC.
pub const RECORD_HEADER_LEN: usize = 1 + 4 + 4;

/// Everything that can go wrong validating a sidecar through this codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The file does not start with the expected magic bytes.
    BadMagic { expected: [u8; 4], found: [u8; 4] },
    /// Recognized magic, but a format version this build cannot read.
    VersionMismatch { found: u32, supported: u32 },
    /// The buffer is shorter than its framing claims.
    Truncated { expected: usize, actual: usize },
    /// A stored checksum does not match the bytes it covers.
    CrcMismatch { stored: u32, computed: u32 },
    /// Framing is self-inconsistent (overlapping sections, absurd lengths).
    Corrupt(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadMagic { expected, found } => write!(
                f,
                "bad magic: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found),
            ),
            Self::VersionMismatch { found, supported } => {
                write!(
                    f,
                    "unsupported format version {found} (supported: {supported})"
                )
            }
            Self::Truncated { expected, actual } => {
                write!(f, "truncated file: need {expected} bytes, have {actual}")
            }
            Self::CrcMismatch { stored, computed } => write!(
                f,
                "checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            Self::Corrupt(why) => write!(f, "corrupt file: {why}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append the standard 8-byte header (magic + LE version) to `out`.
pub fn write_header(out: &mut Vec<u8>, magic: [u8; 4], version: u32) {
    out.extend_from_slice(&magic);
    out.extend_from_slice(&version.to_le_bytes());
}

/// Validate the magic and return the stored format version. Callers decide
/// which versions they accept (old formats often stay readable).
pub fn read_header(bytes: &[u8], magic: [u8; 4]) -> Result<u32, CodecError> {
    if bytes.len() < HEADER_LEN {
        return Err(CodecError::Truncated {
            expected: HEADER_LEN,
            actual: bytes.len(),
        });
    }
    if bytes[..4] != magic {
        let mut found = [0u8; 4];
        found.copy_from_slice(&bytes[..4]);
        return Err(CodecError::BadMagic {
            expected: magic,
            found,
        });
    }
    Ok(u32::from_le_bytes(
        bytes[4..8].try_into().expect("bounds checked"),
    ))
}

/// `Ok` iff `found` is exactly the one `supported` version.
pub fn require_version(found: u32, supported: u32) -> Result<(), CodecError> {
    if found == supported {
        Ok(())
    } else {
        Err(CodecError::VersionMismatch { found, supported })
    }
}

/// Append a CRC-32 trailer covering everything currently in `buf`.
pub fn append_crc(buf: &mut Vec<u8>) {
    let crc = crc32(buf);
    buf.extend_from_slice(&crc.to_le_bytes());
}

/// Verify a trailing CRC-32 and return the covered payload (everything
/// before the trailer).
pub fn verify_crc(bytes: &[u8]) -> Result<&[u8], CodecError> {
    if bytes.len() < 4 {
        return Err(CodecError::Truncated {
            expected: 4,
            actual: bytes.len(),
        });
    }
    let payload_end = bytes.len() - 4;
    let stored = u32::from_le_bytes(bytes[payload_end..].try_into().expect("bounds checked"));
    let computed = crc32(&bytes[..payload_end]);
    if stored != computed {
        return Err(CodecError::CrcMismatch { stored, computed });
    }
    Ok(&bytes[..payload_end])
}

/// Append one framed record: `[kind][len][crc][payload]`, CRC over
/// kind + payload so neither can be swapped without detection.
pub fn write_record(out: &mut Vec<u8>, kind: u8, payload: &[u8]) {
    let mut h = Crc32::new();
    h.update(&[kind]);
    h.update(payload);
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&h.finish().to_le_bytes());
    out.extend_from_slice(payload);
}

/// One record cut out of an append-only file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record<'a> {
    pub kind: u8,
    pub payload: &'a [u8],
    /// Total framed size (header + payload) — advance by this to the next
    /// record.
    pub consumed: usize,
}

/// Outcome of [`read_record`] at some offset of an append-only file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordRead<'a> {
    /// A complete, CRC-valid record.
    Ok(Record<'a>),
    /// The buffer ends mid-record: a torn tail from a crashed append.
    /// Append-only readers truncate here and carry on.
    Torn,
    /// A complete record whose CRC (or length bound) is wrong — bit rot,
    /// not a torn write.
    Bad(CodecError),
}

/// Parse the record starting at `bytes[0]`. `max_payload` bounds the
/// declared length so a corrupt length field cannot trigger a huge read.
pub fn read_record(bytes: &[u8], max_payload: usize) -> RecordRead<'_> {
    if bytes.len() < RECORD_HEADER_LEN {
        return RecordRead::Torn;
    }
    let kind = bytes[0];
    let len = u32::from_le_bytes(bytes[1..5].try_into().expect("bounds checked")) as usize;
    if len > max_payload {
        return RecordRead::Bad(CodecError::Corrupt(format!(
            "record payload length {len} exceeds cap {max_payload}"
        )));
    }
    let stored = u32::from_le_bytes(bytes[5..9].try_into().expect("bounds checked"));
    let total = RECORD_HEADER_LEN + len;
    if bytes.len() < total {
        return RecordRead::Torn;
    }
    let payload = &bytes[RECORD_HEADER_LEN..total];
    let mut h = Crc32::new();
    h.update(&[kind]);
    h.update(payload);
    let computed = h.finish();
    if stored != computed {
        return RecordRead::Bad(CodecError::CrcMismatch { stored, computed });
    }
    RecordRead::Ok(Record {
        kind,
        payload,
        consumed: total,
    })
}

/// Builder for a sectioned, CRC-trailed container (the `.snap` v2 layout):
///
/// ```text
/// header (8)  | magic + version
/// count (4)   | number of sections
/// table       | count × (id u32, offset u64, len u64)
/// payloads    | section bytes, each 8-byte aligned (zero padding between)
/// crc (4)     | CRC-32 of everything above
/// ```
///
/// Offsets are absolute from the start of the buffer and 8-byte aligned, so
/// a loader that maps the file can view `u64` arrays in place.
#[derive(Debug, Default)]
pub struct SectionWriter {
    sections: Vec<(u32, Vec<u8>)>,
}

impl SectionWriter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue a section. Ids must be unique; order is preserved.
    pub fn section(&mut self, id: u32, bytes: Vec<u8>) {
        debug_assert!(
            self.sections.iter().all(|&(sid, _)| sid != id),
            "duplicate section id {id}"
        );
        self.sections.push((id, bytes));
    }

    /// Assemble the final buffer: header, section table, aligned payloads,
    /// CRC trailer.
    pub fn finish(self, magic: [u8; 4], version: u32) -> Vec<u8> {
        let table_len = 4 + self.sections.len() * 20;
        let mut at = HEADER_LEN + table_len;
        let mut offsets = Vec::with_capacity(self.sections.len());
        for (_, bytes) in &self.sections {
            at = (at + 7) & !7;
            offsets.push(at as u64);
            at += bytes.len();
        }
        let mut out = Vec::with_capacity(at + 4);
        write_header(&mut out, magic, version);
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (i, (id, bytes)) in self.sections.iter().enumerate() {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&offsets[i].to_le_bytes());
            out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        }
        for (i, (_, bytes)) in self.sections.iter().enumerate() {
            out.resize(offsets[i] as usize, 0);
            out.extend_from_slice(bytes);
        }
        append_crc(&mut out);
        out
    }
}

/// Validated view over a [`SectionWriter`]-produced buffer. Opening checks
/// magic, whole-file CRC, and that every table entry lies inside the
/// payload region; after that, section access is infallible slicing.
#[derive(Debug)]
pub struct SectionReader<'a> {
    version: u32,
    sections: Vec<(u32, &'a [u8])>,
}

impl<'a> SectionReader<'a> {
    /// Validate `bytes` as a sectioned container with the given magic.
    /// Version is surfaced, not checked — callers route old versions to
    /// their legacy readers.
    pub fn open(bytes: &'a [u8], magic: [u8; 4]) -> Result<Self, CodecError> {
        let version = read_header(bytes, magic)?;
        let payload = verify_crc(bytes)?;
        if payload.len() < HEADER_LEN + 4 {
            return Err(CodecError::Truncated {
                expected: HEADER_LEN + 4,
                actual: payload.len(),
            });
        }
        let count = u32::from_le_bytes(payload[8..12].try_into().expect("bounds checked")) as usize;
        let table_end = HEADER_LEN + 4 + count * 20;
        if payload.len() < table_end {
            return Err(CodecError::Truncated {
                expected: table_end,
                actual: payload.len(),
            });
        }
        let mut sections = Vec::with_capacity(count);
        for i in 0..count {
            let at = HEADER_LEN + 4 + i * 20;
            let id = u32::from_le_bytes(payload[at..at + 4].try_into().expect("bounds checked"));
            let off =
                u64::from_le_bytes(payload[at + 4..at + 12].try_into().expect("bounds checked"))
                    as usize;
            let len = u64::from_le_bytes(
                payload[at + 12..at + 20]
                    .try_into()
                    .expect("bounds checked"),
            ) as usize;
            let end = off.saturating_add(len);
            if off < table_end || end > payload.len() {
                return Err(CodecError::Corrupt(format!(
                    "section {id} spans {off}..{end}, outside payload of {} bytes",
                    payload.len()
                )));
            }
            sections.push((id, &payload[off..end]));
        }
        Ok(Self { version, sections })
    }

    pub fn version(&self) -> u32 {
        self.version
    }

    /// Bytes of section `id`, if present.
    pub fn section(&self, id: u32) -> Option<&'a [u8]> {
        self.sections
            .iter()
            .find(|&&(sid, _)| sid == id)
            .map(|&(_, b)| b)
    }

    /// `(id, len)` of every section, in file order — for `snap inspect`.
    pub fn sections(&self) -> impl Iterator<Item = (u32, usize)> + '_ {
        self.sections.iter().map(|&(id, b)| (id, b.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: [u8; 4] = *b"TSTC";

    #[test]
    fn header_round_trip() {
        let mut buf = Vec::new();
        write_header(&mut buf, MAGIC, 7);
        assert_eq!(read_header(&buf, MAGIC), Ok(7));
        assert!(matches!(
            read_header(&buf, *b"XXXX"),
            Err(CodecError::BadMagic { .. })
        ));
        assert!(matches!(
            read_header(&buf[..5], MAGIC),
            Err(CodecError::Truncated { .. })
        ));
        assert_eq!(require_version(7, 7), Ok(()));
        assert!(matches!(
            require_version(8, 7),
            Err(CodecError::VersionMismatch {
                found: 8,
                supported: 7
            })
        ));
    }

    #[test]
    fn crc_trailer_round_trip() {
        let mut buf = b"hello sidecar".to_vec();
        append_crc(&mut buf);
        assert_eq!(verify_crc(&buf), Ok(&b"hello sidecar"[..]));
        let mut bad = buf.clone();
        bad[3] ^= 1;
        assert!(matches!(
            verify_crc(&bad),
            Err(CodecError::CrcMismatch { .. })
        ));
        assert!(matches!(
            verify_crc(&buf[..2]),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn record_round_trip_and_torn_tail() {
        let mut buf = Vec::new();
        write_record(&mut buf, 1, b"abc");
        write_record(&mut buf, 2, b"");
        let r1 = match read_record(&buf, 1024) {
            RecordRead::Ok(r) => r,
            other => panic!("{other:?}"),
        };
        assert_eq!((r1.kind, r1.payload), (1, &b"abc"[..]));
        let r2 = match read_record(&buf[r1.consumed..], 1024) {
            RecordRead::Ok(r) => r,
            other => panic!("{other:?}"),
        };
        assert_eq!((r2.kind, r2.payload), (2, &b""[..]));
        assert_eq!(r1.consumed + r2.consumed, buf.len());

        // Any strict prefix of a record is a torn tail, not corruption.
        for cut in 0..r1.consumed {
            assert_eq!(read_record(&buf[..cut], 1024), RecordRead::Torn);
        }
    }

    #[test]
    fn record_detects_corruption_and_length_bombs() {
        let mut buf = Vec::new();
        write_record(&mut buf, 3, b"payload");
        let mut bad = buf.clone();
        *bad.last_mut().unwrap() ^= 0x10;
        assert!(matches!(
            read_record(&bad, 1024),
            RecordRead::Bad(CodecError::CrcMismatch { .. })
        ));
        let mut bomb = buf.clone();
        bomb[1..5].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_record(&bomb, 1024),
            RecordRead::Bad(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn sections_round_trip_aligned() {
        let mut w = SectionWriter::new();
        w.section(1, b"meta".to_vec());
        w.section(9, vec![0xAB; 17]);
        w.section(2, Vec::new());
        let buf = w.finish(MAGIC, 2);
        let r = SectionReader::open(&buf, MAGIC).expect("open");
        assert_eq!(r.version(), 2);
        assert_eq!(r.section(1), Some(&b"meta"[..]));
        assert_eq!(r.section(9).map(<[u8]>::len), Some(17));
        assert_eq!(r.section(2), Some(&[][..]));
        assert_eq!(r.section(77), None);
        let ids: Vec<u32> = r.sections().map(|(id, _)| id).collect();
        assert_eq!(ids, [1, 9, 2]);
        // Payload offsets are 8-byte aligned within the buffer.
        for (id, _) in r.sections() {
            let sec = r.section(id).unwrap();
            if !sec.is_empty() {
                let off = sec.as_ptr() as usize - buf.as_ptr() as usize;
                assert_eq!(off % 8, 0, "section {id} misaligned");
            }
        }
    }

    #[test]
    fn sections_reject_any_bit_flip() {
        let mut w = SectionWriter::new();
        w.section(1, vec![7u8; 40]);
        let buf = w.finish(MAGIC, 2);
        for at in 0..buf.len() {
            let mut bad = buf.clone();
            bad[at] ^= 0x20;
            assert!(
                SectionReader::open(&bad, MAGIC).is_err(),
                "flip at {at} went unnoticed"
            );
        }
        for cut in [0, 7, 11, buf.len() - 1] {
            assert!(SectionReader::open(&buf[..cut], MAGIC).is_err());
        }
    }
}
