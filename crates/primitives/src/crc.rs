//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//!
//! Shared by every on-disk format in the workspace: the pdm-dict append-only
//! log records and the pdm-index corpus sidecar. Table-driven (one 256-entry
//! table built at compile time) because the index path checksums whole
//! multi-megabyte files, not just admin-sized records.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `data` in one shot.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finish()
}

/// Incremental CRC-32 for writers that stream sections of a file.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    pub fn finish(&self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // The standard check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 7) as u8).collect();
        let mut h = Crc32::new();
        for chunk in data.chunks(37) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), crc32(&data));
    }
}
