//! Prefix scans (parallel prefix computation).
//!
//! The paper's Fact 2 computes prefix-naming "by executing a standard
//! prefix-sum computation using the namestamping operation in place of
//! arithmetic addition". These scans are written over a generic combine
//! operation so `pdm-naming` can plug namestamping in directly.
//!
//! The parallel version is the standard two-pass blocked scan (per-block
//! reduce, scan of block sums, per-block rescan): `O(n)` work and, charged to
//! the PRAM model, `2⌈log₂ n⌉` rounds — the depth of the Ladner–Fischer
//! circuit it simulates.
//!
//! **Caveat for non-associative operators.** Namestamping's combine is only
//! injective, not associative (`δ(δ(a,b),c) ≠ δ(a,δ(b,c))` as integers).
//! Scans over such operators must use a *fixed* combine shape per output
//! index so equal inputs give equal outputs; use [`scan_inclusive_seq`]
//! (left-fold shape) or the dedicated dyadic machinery in
//! `pdm-naming::prefix`, not the blocked parallel scan.

use pdm_pram::{ceil_log2, Ctx};

/// Sequential inclusive scan with a left-fold shape:
/// `out[i] = f(f(...f(init, a[0]), ...), a[i])`.
pub fn scan_inclusive_seq<T: Clone, A>(
    init: T,
    items: &[A],
    mut f: impl FnMut(&T, &A) -> T,
) -> Vec<T> {
    let mut out = Vec::with_capacity(items.len());
    let mut acc = init;
    for a in items {
        acc = f(&acc, a);
        out.push(acc.clone());
    }
    out
}

/// Parallel inclusive scan for an **associative** operation with identity.
///
/// Charges `2⌈log₂ n⌉` rounds and `O(n)` work to the cost model.
pub fn scan_inclusive<T, F>(ctx: &Ctx, items: &[T], identity: T, f: F) -> Vec<T>
where
    T: Clone + Send + Sync,
    F: Fn(&T, &T) -> T + Send + Sync,
{
    let n = items.len();
    ctx.cost
        .rounds(2 * ceil_log2(n.max(1)) as u64, 2 * n as u64);
    if n == 0 {
        return Vec::new();
    }
    if !ctx.is_parallel() || n < 4096 {
        return scan_inclusive_seq(identity, items, |a, b| f(a, b));
    }
    ctx.install(|| {
        use rayon::prelude::*;
        let threads = rayon::current_num_threads().max(1);
        let block = n.div_ceil(threads * 4).max(1024);
        let nblocks = n.div_ceil(block);
        // Pass 1: per-block reductions.
        let sums: Vec<T> = (0..nblocks)
            .into_par_iter()
            .map(|b| {
                let lo = b * block;
                let hi = (lo + block).min(n);
                let mut acc = identity.clone();
                for x in &items[lo..hi] {
                    acc = f(&acc, x);
                }
                acc
            })
            .collect();
        // Pass 2: exclusive scan of block sums (nblocks is small).
        let mut offsets = Vec::with_capacity(nblocks);
        let mut acc = identity.clone();
        for s in &sums {
            offsets.push(acc.clone());
            acc = f(&acc, s);
        }
        // Pass 3: rescan each block seeded with its offset.
        let mut out: Vec<T> = Vec::with_capacity(n);
        #[allow(clippy::uninit_vec)]
        {
            // Filled completely below, block by block.
            out.resize(n, identity.clone());
        }
        out.par_chunks_mut(block)
            .zip(offsets.into_par_iter())
            .enumerate()
            .for_each(|(b, (chunk, seed))| {
                let lo = b * block;
                let mut acc = seed;
                for (i, slot) in chunk.iter_mut().enumerate() {
                    acc = f(&acc, &items[lo + i]);
                    *slot = acc.clone();
                }
            });
        out
    })
}

/// Parallel exclusive scan: `out[i] = fold of items[..i]`, `out[0] = identity`.
pub fn scan_exclusive<T, F>(ctx: &Ctx, items: &[T], identity: T, f: F) -> Vec<T>
where
    T: Clone + Send + Sync,
    F: Fn(&T, &T) -> T + Send + Sync,
{
    let inc = scan_inclusive(ctx, items, identity.clone(), f);
    let mut out = Vec::with_capacity(items.len());
    out.push(identity);
    out.extend_from_slice(&inc[..items.len().saturating_sub(1)]);
    out
}

/// Exclusive prefix sums of `u64` counts, returning `(offsets, total)`.
/// The workhorse of output allocation (all-matches enumeration, compaction).
pub fn prefix_sums(ctx: &Ctx, counts: &[u64]) -> (Vec<u64>, u64) {
    let inc = scan_inclusive(ctx, counts, 0u64, |a, b| a + b);
    let total = inc.last().copied().unwrap_or(0);
    let mut out = Vec::with_capacity(counts.len());
    out.push(0);
    out.extend_from_slice(&inc[..counts.len().saturating_sub(1)]);
    (out, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctxs() -> Vec<Ctx> {
        vec![Ctx::seq(), Ctx::par(), Ctx::with_threads(2)]
    }

    #[test]
    fn inclusive_matches_reference() {
        for ctx in ctxs() {
            for n in [0usize, 1, 2, 100, 5000, 40_000] {
                let v: Vec<u64> = (0..n as u64).map(|i| i % 97).collect();
                let got = scan_inclusive(&ctx, &v, 0, |a, b| a + b);
                let want = scan_inclusive_seq(0, &v, |a, b| a + b);
                assert_eq!(got, want, "n={n}");
            }
        }
    }

    #[test]
    fn exclusive_matches_reference() {
        for ctx in ctxs() {
            let v: Vec<u64> = (0..30_000).map(|i| (i * 7) % 13).collect();
            let got = scan_exclusive(&ctx, &v, 0, |a, b| a + b);
            assert_eq!(got.len(), v.len());
            assert_eq!(got[0], 0);
            let mut acc = 0;
            for i in 0..v.len() {
                assert_eq!(got[i], acc);
                acc += v[i];
            }
        }
    }

    #[test]
    fn scan_with_max_operator() {
        for ctx in ctxs() {
            let v: Vec<u64> = vec![3, 1, 4, 1, 5, 9, 2, 6];
            let got = scan_inclusive(&ctx, &v, 0, |a, b| *a.max(b));
            assert_eq!(got, vec![3, 3, 4, 4, 5, 9, 9, 9]);
        }
    }

    #[test]
    fn prefix_sums_offsets_and_total() {
        for ctx in ctxs() {
            let counts = vec![2u64, 0, 3, 1];
            let (off, total) = prefix_sums(&ctx, &counts);
            assert_eq!(off, vec![0, 2, 2, 5]);
            assert_eq!(total, 6);
            let (off, total) = prefix_sums(&ctx, &[]);
            assert_eq!(off, vec![0]);
            assert_eq!(total, 0);
        }
    }

    #[test]
    fn charges_logarithmic_rounds() {
        let ctx = Ctx::seq();
        let v = vec![1u64; 1 << 14];
        let before = ctx.cost.snapshot();
        let _ = scan_inclusive(&ctx, &v, 0, |a, b| a + b);
        let d = ctx.cost.snapshot().since(before);
        assert_eq!(d.rounds, 28); // 2 * log2(2^14)
        assert!(d.work >= v.len() as u64);
    }

    #[test]
    fn seq_scan_left_fold_shape() {
        // Strings make non-associativity visible: the scan must be a left fold.
        let items = ["a", "b", "c"];
        let got = scan_inclusive_seq(String::new(), &items, |acc, s| format!("({acc}{s})"));
        assert_eq!(got, vec!["(a)", "((a)b)", "(((a)b)c)"]);
    }
}
