//! # pdm-primitives — classic PRAM building blocks
//!
//! The SPAA'93 dictionary-matching algorithms are assembled from a small set
//! of standard PRAM primitives, all implemented here from scratch:
//!
//! * [`scan`] — generic inclusive/exclusive prefix scans (`O(log n)` rounds,
//!   `O(n)` work), the engine behind prefix-naming (paper Fact 2);
//! * [`nearest`] — nearest-one-to-the-left / prefix maxima (paper §4.2
//!   step 2: "for each position in `A`, the nearest 1 to its left");
//! * [`compact`] — stream compaction (squeeze-out during dictionary
//!   rebuilds, §6.2);
//! * [`radix`] — parallel LSD radix sort (the integer-sorting substrate the
//!   paper relates dynamic stamp-counting to, §6.2.1);
//! * [`table`] / [`conc_table`] — the "tables" of the paper's namestamping
//!   operation (§3.2): injective key→name maps. The paper direct-addresses
//!   `M²`-sized tables; we substitute open-addressing hash tables
//!   (sequential and CAS-based concurrent) with identical semantics — see
//!   DESIGN.md §2;
//! * [`hash`] — the multiply-xor hasher used by those tables (our own
//!   implementation, no external hashing crates);
//! * [`crc`] — table-driven CRC-32 shared by the on-disk formats (dict log
//!   records, index sidecars);
//! * [`codec`] — the shared sidecar framing (magic + version headers,
//!   record framing, section tables, CRC trailers) every on-disk format
//!   reads and writes through;
//! * [`vfs`] — the injectable disk I/O plane those formats are written
//!   through: durable atomic file replacement (temp → fsync → rename →
//!   fsync dir) and, behind the `fault-injection` feature, deterministic
//!   counter-scheduled disk faults (crash-stop at the Nth op, torn
//!   writes, failed fsyncs/renames, short reads) for crash-consistency
//!   testing.

pub mod codec;
pub mod compact;
pub mod conc_table;
pub mod crc;
pub mod frozen;
pub mod hash;
pub mod nearest;
pub mod radix;
pub mod scan;
pub mod table;
pub mod vfs;

pub use codec::CodecError;
pub use conc_table::ConcPairTable;
pub use crc::{crc32, Crc32};
pub use frozen::FrozenPairTable;
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use table::PairMap;
