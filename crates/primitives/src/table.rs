//! Sequential name table: injective `(u32, u32) → u32` map.
//!
//! This is the sequential realization of the paper's namestamping table
//! (§3.2): tuples are reduced to pairs (wider tuples chain pairs, see
//! `pdm-naming`), each pair packs into a `u64` key, and the table assigns or
//! returns the key's name. Used by the dynamic-dictionary path (§6), where
//! updates arrive pattern-at-a-time and growth/refcounting matter more than
//! intra-round parallelism.

use crate::hash::FxHashMap;

/// Pack a `(u32, u32)` pair into the `u64` table key.
#[inline]
pub fn pack(a: u32, b: u32) -> u64 {
    ((a as u64) << 32) | b as u64
}

/// Unpack a `u64` table key.
#[inline]
pub fn unpack(k: u64) -> (u32, u32) {
    ((k >> 32) as u32, k as u32)
}

/// Growable sequential pair→name map with per-entry reference counts.
///
/// Reference counts implement the paper's *dynamic stamp-counting* (§6.2.1):
/// deleting a pattern decrements the count of every table entry it
/// contributed; an entry disappears only when its count reaches zero.
#[derive(Debug, Default, Clone)]
pub struct PairMap {
    map: FxHashMap<u64, Entry>,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    name: u32,
    refs: u32,
}

impl PairMap {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(n: usize) -> Self {
        Self {
            map: FxHashMap::with_capacity_and_hasher(n, Default::default()),
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Look up the name of `(a, b)`.
    #[inline]
    pub fn get(&self, a: u32, b: u32) -> Option<u32> {
        self.map.get(&pack(a, b)).map(|e| e.name)
    }

    /// Return the name of `(a, b)`, allocating via `alloc` if absent, and
    /// increment the entry's reference count.
    #[inline]
    pub fn get_or_insert_ref(&mut self, a: u32, b: u32, alloc: impl FnOnce() -> u32) -> u32 {
        let e = self
            .map
            .entry(pack(a, b))
            .and_modify(|e| e.refs += 1)
            .or_insert_with(|| Entry {
                name: alloc(),
                refs: 1,
            });
        e.name
    }

    /// Like [`Self::get_or_insert_ref`] but without touching the refcount
    /// when the entry already exists (for lookups that must not pin entries).
    #[inline]
    pub fn get_or_insert(&mut self, a: u32, b: u32, alloc: impl FnOnce() -> u32) -> u32 {
        self.map
            .entry(pack(a, b))
            .or_insert_with(|| Entry {
                name: alloc(),
                refs: 1,
            })
            .name
    }

    /// Decrement the reference count of `(a, b)`; removes the entry at zero.
    /// Returns `true` if the entry was removed. Panics if absent.
    pub fn release(&mut self, a: u32, b: u32) -> bool {
        let k = pack(a, b);
        let e = self.map.get_mut(&k).expect("release of absent table entry");
        e.refs -= 1;
        if e.refs == 0 {
            self.map.remove(&k);
            true
        } else {
            false
        }
    }

    /// Current reference count (0 if absent).
    pub fn refs(&self, a: u32, b: u32) -> u32 {
        self.map.get(&pack(a, b)).map_or(0, |e| e.refs)
    }

    /// Iterate `(packed key, name)` pairs (migration/serialization support).
    pub fn iter_entries(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.map.iter().map(|(&k, e)| (k, e.name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for (a, b) in [(0, 0), (1, 2), (u32::MAX - 1, 7), (123456, u32::MAX - 1)] {
            assert_eq!(unpack(pack(a, b)), (a, b));
        }
        assert_ne!(pack(1, 2), pack(2, 1));
    }

    #[test]
    fn names_are_stable() {
        let mut t = PairMap::new();
        let mut next = 0u32;
        let mut alloc = || {
            next += 1;
            next - 1
        };
        let n1 = t.get_or_insert(5, 6, &mut alloc);
        let n2 = t.get_or_insert(5, 6, &mut alloc);
        let n3 = t.get_or_insert(6, 5, &mut alloc);
        assert_eq!(n1, n2);
        assert_ne!(n1, n3);
        assert_eq!(t.get(5, 6), Some(n1));
        assert_eq!(t.get(9, 9), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn refcounting_lifecycle() {
        let mut t = PairMap::new();
        let mut next = 0u32;
        t.get_or_insert_ref(1, 1, || {
            next += 1;
            next
        });
        t.get_or_insert_ref(1, 1, || unreachable!());
        assert_eq!(t.refs(1, 1), 2);
        assert!(!t.release(1, 1));
        assert!(t.release(1, 1));
        assert_eq!(t.refs(1, 1), 0);
        assert!(t.get(1, 1).is_none());
    }

    #[test]
    #[should_panic(expected = "absent")]
    fn release_absent_panics() {
        PairMap::new().release(1, 2);
    }
}
