//! 2-D workloads for §5: square texts and square pattern dictionaries.
//!
//! Grids are row-major `Vec<u32>` with explicit dimensions, structurally
//! identical to `pdm_baselines::naive::Grid` (kept dependency-free here;
//! conversion is a one-liner at the call site).

use crate::alphabet::Alphabet;
use rand::rngs::StdRng;
use rand::Rng;

/// Row-major 2-D array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridData {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<u32>,
}

impl GridData {
    pub fn at(&self, r: usize, c: usize) -> u32 {
        self.data[r * self.cols + c]
    }

    pub fn set(&mut self, r: usize, c: usize, v: u32) {
        self.data[r * self.cols + c] = v;
    }
}

/// Uniform random grid.
pub fn random_grid(r: &mut StdRng, alpha: Alphabet, rows: usize, cols: usize) -> GridData {
    GridData {
        rows,
        cols,
        data: (0..rows * cols)
            .map(|_| r.gen_range(0..alpha.size()))
            .collect(),
    }
}

/// `count` distinct square patterns with sides in `min_side ..= max_side`.
pub fn random_square_dictionary(
    r: &mut StdRng,
    alpha: Alphabet,
    count: usize,
    min_side: usize,
    max_side: usize,
) -> Vec<GridData> {
    assert!(min_side >= 1 && min_side <= max_side);
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(count);
    let mut attempts = 0usize;
    while out.len() < count {
        attempts += 1;
        assert!(
            attempts < count * 100 + 1000,
            "cannot draw distinct squares"
        );
        let s = r.gen_range(min_side..=max_side);
        let g = random_grid(r, alpha, s, s);
        if seen.insert(g.data.clone()) {
            out.push(g);
        }
    }
    out
}

/// Square excerpts of `text` (every pattern occurs at least once).
pub fn excerpt_square_dictionary(
    r: &mut StdRng,
    text: &GridData,
    count: usize,
    min_side: usize,
    max_side: usize,
) -> Vec<GridData> {
    assert!(max_side <= text.rows.min(text.cols));
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(count);
    let mut attempts = 0usize;
    while out.len() < count {
        attempts += 1;
        assert!(attempts < count * 200 + 2000, "text too repetitive");
        let s = r.gen_range(min_side..=max_side);
        let r0 = r.gen_range(0..=text.rows - s);
        let c0 = r.gen_range(0..=text.cols - s);
        let mut data = Vec::with_capacity(s * s);
        for i in 0..s {
            for j in 0..s {
                data.push(text.at(r0 + i, c0 + j));
            }
        }
        if seen.insert(data.clone()) {
            out.push(GridData {
                rows: s,
                cols: s,
                data,
            });
        }
    }
    out
}

/// Stamp pattern copies into the text grid; returns plant sites.
pub fn plant_squares(
    r: &mut StdRng,
    text: &mut GridData,
    patterns: &[GridData],
    count: usize,
) -> Vec<(usize, usize, usize)> {
    let mut sites = Vec::new();
    for _ in 0..count {
        let pid = r.gen_range(0..patterns.len());
        let p = &patterns[pid];
        if p.rows > text.rows || p.cols > text.cols {
            continue;
        }
        let r0 = r.gen_range(0..=text.rows - p.rows);
        let c0 = r.gen_range(0..=text.cols - p.cols);
        for i in 0..p.rows {
            for j in 0..p.cols {
                text.set(r0 + i, c0 + j, p.at(i, j));
            }
        }
        sites.push((r0, c0, pid));
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strings::rng;

    #[test]
    fn random_grid_shape() {
        let g = random_grid(&mut rng(1), Alphabet::Dna, 5, 7);
        assert_eq!(g.data.len(), 35);
        assert!(g.data.iter().all(|&c| c < 4));
        assert_eq!(g.at(4, 6), g.data[34]);
    }

    #[test]
    fn square_dictionary_distinct() {
        let d = random_square_dictionary(&mut rng(2), Alphabet::Bytes, 10, 2, 5);
        assert_eq!(d.len(), 10);
        assert!(d
            .iter()
            .all(|g| g.rows == g.cols && (2..=5).contains(&g.rows)));
    }

    #[test]
    fn excerpts_occur() {
        let mut r = rng(3);
        let t = random_grid(&mut r, Alphabet::Bytes, 20, 20);
        let d = excerpt_square_dictionary(&mut r, &t, 5, 2, 4);
        for p in &d {
            let mut found = false;
            'outer: for r0 in 0..=t.rows - p.rows {
                for c0 in 0..=t.cols - p.cols {
                    if (0..p.rows).all(|i| (0..p.cols).all(|j| t.at(r0 + i, c0 + j) == p.at(i, j)))
                    {
                        found = true;
                        break 'outer;
                    }
                }
            }
            assert!(found);
        }
    }

    #[test]
    fn planted_squares_match() {
        let mut r = rng(4);
        let d = random_square_dictionary(&mut r, Alphabet::Bytes, 3, 2, 3);
        let mut t = random_grid(&mut r, Alphabet::Bytes, 16, 16);
        let sites = plant_squares(&mut r, &mut t, &d, 4);
        // The last planted site is guaranteed intact.
        if let Some(&(r0, c0, pid)) = sites.last() {
            let p = &d[pid];
            assert!((0..p.rows).all(|i| (0..p.cols).all(|j| t.at(r0 + i, c0 + j) == p.at(i, j))));
        }
    }
}
