//! Markov-chain text generation: English-like symbol streams.
//!
//! Uniform random text is the *easiest* case for dictionary matching (long
//! prefixes almost never match). Realistic text has skewed symbol
//! frequencies and strong local correlations, producing much deeper prefix
//! matches and denser trie sharing. This module generates order-1 Markov
//! streams with Zipf-like stationary behaviour, so benches and examples can
//! report on workloads shaped like logs, prose or protocol traffic.

use crate::alphabet::Alphabet;
use rand::rngs::StdRng;
use rand::Rng;

/// An order-1 Markov source over `Alphabet` symbols.
#[derive(Debug, Clone)]
pub struct MarkovSource {
    sigma: usize,
    /// Cumulative transition rows: `cum[s][k]` = P(next ≤ k | cur = s).
    cum: Vec<Vec<f64>>,
}

impl MarkovSource {
    /// Build a random but *skewed* chain: each row's probabilities follow a
    /// Zipf-ish profile over a row-specific symbol ordering, giving both
    /// frequency skew and local correlation. `concentration > 0`; larger
    /// values mean more deterministic transitions (deeper repeated
    /// substrings).
    pub fn random(r: &mut StdRng, alpha: Alphabet, concentration: f64) -> Self {
        assert!(concentration > 0.0);
        let sigma = alpha.size() as usize;
        let mut cum = Vec::with_capacity(sigma);
        for _ in 0..sigma {
            // Zipf weights over a random permutation of symbols.
            let mut perm: Vec<usize> = (0..sigma).collect();
            for i in (1..sigma).rev() {
                perm.swap(i, r.gen_range(0..=i));
            }
            let mut w = vec![0.0f64; sigma];
            for (rank, &s) in perm.iter().enumerate() {
                w[s] = 1.0 / ((rank + 1) as f64).powf(concentration);
            }
            let total: f64 = w.iter().sum();
            let mut acc = 0.0;
            let row: Vec<f64> = w
                .iter()
                .map(|x| {
                    acc += x / total;
                    acc
                })
                .collect();
            cum.push(row);
        }
        MarkovSource { sigma, cum }
    }

    /// Generate `n` symbols.
    pub fn generate(&self, r: &mut StdRng, n: usize) -> Vec<u32> {
        let mut out = Vec::with_capacity(n);
        let mut cur = r.gen_range(0..self.sigma);
        for _ in 0..n {
            out.push(cur as u32);
            let u: f64 = r.gen();
            let row = &self.cum[cur];
            cur = row.partition_point(|&c| c < u).min(self.sigma - 1);
        }
        out
    }

    pub fn alphabet_size(&self) -> usize {
        self.sigma
    }
}

/// Convenience: an English-like byte stream (26 letters, concentration 1.2).
pub fn english_like(r: &mut StdRng, n: usize) -> Vec<u32> {
    let src = MarkovSource::random(r, Alphabet::Letters, 1.2);
    src.generate(r, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strings::rng;

    #[test]
    fn deterministic_and_in_range() {
        let mut r1 = rng(5);
        let a = english_like(&mut r1, 500);
        let mut r2 = rng(5);
        let b = english_like(&mut r2, 500);
        assert_eq!(a, b);
        assert!(a.iter().all(|&c| c < 26));
    }

    #[test]
    fn skew_produces_repeated_substrings() {
        // Markov text must repeat short substrings far more than uniform
        // text over the same alphabet.
        let count_repeats = |t: &[u32]| {
            let mut seen = std::collections::HashSet::new();
            let mut repeats = 0;
            for w in t.windows(4) {
                if !seen.insert(w.to_vec()) {
                    repeats += 1;
                }
            }
            repeats
        };
        let mut r = rng(1);
        let src = MarkovSource::random(&mut r, Alphabet::Letters, 2.0);
        let markov = src.generate(&mut r, 4000);
        let uniform = crate::strings::random_text(&mut r, Alphabet::Letters, 4000);
        assert!(
            count_repeats(&markov) > 2 * count_repeats(&uniform),
            "markov {} vs uniform {}",
            count_repeats(&markov),
            count_repeats(&uniform)
        );
    }

    #[test]
    fn transition_rows_are_distributions() {
        let mut r = rng(2);
        let src = MarkovSource::random(&mut r, Alphabet::Dna, 1.0);
        for row in &src.cum {
            assert!((row.last().unwrap() - 1.0).abs() < 1e-9);
            assert!(row.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        }
    }

    #[test]
    #[should_panic]
    fn zero_concentration_rejected() {
        let mut r = rng(3);
        MarkovSource::random(&mut r, Alphabet::Binary, 0.0);
    }
}
