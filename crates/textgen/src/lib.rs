//! # pdm-textgen — workload generation
//!
//! Deterministic (seeded) generators for the texts, dictionaries and grids
//! used by the test suites and the experiment harness:
//!
//! * [`alphabet`] — the alphabets the paper's bounds are parameterized by
//!   (`|Σ|` matters for §4.4);
//! * [`strings`] — random/periodic texts, dictionaries with controlled
//!   shape (equal lengths, shared prefixes, nested patterns), and planted
//!   occurrences so matches actually happen;
//! * [`corpus`] — large *fixed* texts for the offline-indexing workload
//!   (genome-style 4-symbol and log-line corpora) plus query batches with
//!   controlled prefix sharing;
//! * [`grid`] — 2-D texts and square patterns for §5;
//! * [`workload`] — plain-data experiment configurations.

pub mod alphabet;
pub mod corpus;
pub mod grid;
pub mod markov;
pub mod strings;
pub mod workload;

pub use alphabet::Alphabet;
