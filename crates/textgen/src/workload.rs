//! Plain-data experiment configurations, so every number in
//! EXPERIMENTS.md traces back to a reproducible spec.

use crate::alphabet::Alphabet;
use crate::strings;

/// Shape of the generated dictionary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DictShape {
    /// Independent random patterns with lengths in `[min_len, max_len]`.
    Random,
    /// All patterns the same length (`max_len`).
    EqualLen,
    /// Long shared stem + short random tails.
    SharedPrefix,
    /// Patterns sampled from the text (guaranteed occurrences).
    Excerpt,
}

/// A 1-D dictionary-matching workload specification.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    pub seed: u64,
    pub alphabet: Alphabet,
    pub text_len: usize,
    pub n_patterns: usize,
    pub min_len: usize,
    pub max_len: usize,
    pub shape: DictShape,
    /// How many pattern copies to plant into the text.
    pub plants: usize,
}

impl WorkloadSpec {
    /// A sensible default the experiments specialize.
    pub fn new(seed: u64, text_len: usize, n_patterns: usize, max_len: usize) -> Self {
        WorkloadSpec {
            seed,
            alphabet: Alphabet::Bytes,
            text_len,
            n_patterns,
            min_len: (max_len / 2).max(1),
            max_len,
            shape: DictShape::Random,
            plants: n_patterns.min(text_len / max_len.max(1)),
        }
    }

    /// Generate `(text, patterns)`.
    pub fn generate(&self) -> (Vec<u32>, Vec<Vec<u32>>) {
        let mut r = strings::rng(self.seed);
        let mut text = strings::random_text(&mut r, self.alphabet, self.text_len);
        let patterns = match self.shape {
            DictShape::Random => strings::random_dictionary(
                &mut r,
                self.alphabet,
                self.n_patterns,
                self.min_len,
                self.max_len,
            ),
            DictShape::EqualLen => {
                strings::equal_len_dictionary(&mut r, self.alphabet, self.n_patterns, self.max_len)
            }
            DictShape::SharedPrefix => strings::shared_prefix_dictionary(
                &mut r,
                self.alphabet,
                self.n_patterns,
                self.max_len - (self.max_len / 4).max(1),
                (self.max_len / 4).max(1),
            ),
            DictShape::Excerpt => strings::excerpt_dictionary(
                &mut r,
                &text,
                self.n_patterns,
                self.min_len,
                self.max_len,
            ),
        };
        if self.plants > 0 {
            strings::plant_occurrences(&mut r, &mut text, &patterns, self.plants);
        }
        (text, patterns)
    }

    /// Total dictionary size `M` of a generated instance.
    pub fn dictionary_size(patterns: &[Vec<u32>]) -> usize {
        patterns.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_reproducibly() {
        let spec = WorkloadSpec::new(11, 1000, 10, 8);
        let (t1, p1) = spec.generate();
        let (t2, p2) = spec.generate();
        assert_eq!(t1, t2);
        assert_eq!(p1, p2);
        assert_eq!(t1.len(), 1000);
        assert_eq!(p1.len(), 10);
    }

    #[test]
    fn equal_len_shape() {
        let mut spec = WorkloadSpec::new(1, 500, 8, 6);
        spec.shape = DictShape::EqualLen;
        let (_, p) = spec.generate();
        assert!(p.iter().all(|x| x.len() == 6));
    }

    #[test]
    fn excerpt_patterns_occur_when_unplanted() {
        let mut spec = WorkloadSpec::new(2, 400, 6, 5);
        spec.shape = DictShape::Excerpt;
        spec.plants = 0;
        let (t, p) = spec.generate();
        for pat in &p {
            assert!(t.windows(pat.len()).any(|w| w == pat.as_slice()));
        }
    }

    #[test]
    fn shared_prefix_shape_generates() {
        let mut spec = WorkloadSpec::new(4, 300, 5, 8);
        spec.shape = DictShape::SharedPrefix;
        let (_, p) = spec.generate();
        assert_eq!(p.len(), 5);
        let stem = spec.max_len - (spec.max_len / 4).max(1);
        for pat in &p[1..] {
            assert_eq!(&pat[..stem], &p[0][..stem]);
        }
    }
}
