//! Alphabets. The paper's core bounds hold for any alphabet polynomial in
//! `n` and `M`; the §4.4 refinement's work depends on `|Σ|`, so experiments
//! sweep these.

/// Symbol alphabet with `size` distinct symbols `0 .. size`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Alphabet {
    /// `{0, 1}` — the extreme case for §4.4.
    Binary,
    /// `{0..4}` — DNA-like.
    Dna,
    /// `{0..26}` — lowercase-letters-like.
    Letters,
    /// `{0..256}` — byte strings.
    Bytes,
    /// Arbitrary size (the "polynomial alphabet" regime).
    Wide(u32),
}

impl Alphabet {
    pub fn size(&self) -> u32 {
        match self {
            Alphabet::Binary => 2,
            Alphabet::Dna => 4,
            Alphabet::Letters => 26,
            Alphabet::Bytes => 256,
            Alphabet::Wide(s) => *s,
        }
    }
}

impl std::fmt::Display for Alphabet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "|Σ|={}", self.size())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(Alphabet::Binary.size(), 2);
        assert_eq!(Alphabet::Dna.size(), 4);
        assert_eq!(Alphabet::Letters.size(), 26);
        assert_eq!(Alphabet::Bytes.size(), 256);
        assert_eq!(Alphabet::Wide(1000).size(), 1000);
    }

    #[test]
    fn display() {
        assert_eq!(Alphabet::Dna.to_string(), "|Σ|=4");
    }
}
