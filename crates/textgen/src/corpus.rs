//! Large fixed corpora for the offline-indexing workload.
//!
//! `pdm index` inverts the paper's scenario: the *text* is huge and static,
//! the patterns arrive as query batches. These generators produce the two
//! corpus shapes that workload cares about, both seeded and deterministic:
//!
//! * [`genome`] — 4-symbol text with duplicated segments, the shape of
//!   genomic data (deep suffix-array intervals, long repeats, small σ);
//! * [`log_lines`] — newline-separated lines drawn from a small set of
//!   templates with variable fields, the shape of log archives (heavy
//!   prefix sharing between lines, byte alphabet).
//!
//! [`query_patterns`] samples a query batch against either corpus: groups of
//! excerpts sharing a start position (so batch members share prefixes —
//! exactly what interval-merge querying exploits) plus a fraction of random
//! patterns that mostly miss.

use crate::alphabet::Alphabet;
use crate::markov::MarkovSource;
use rand::rngs::StdRng;
use rand::Rng;

/// Genome-style corpus: `n` symbols over `{0,1,2,3}` from a skewed order-1
/// Markov chain, then `dup_count` segment duplications (a random segment of
/// `dup_len` symbols copied to a random other position), mimicking the
/// repeat structure that makes genomic suffix arrays interesting.
pub fn genome(r: &mut StdRng, n: usize, dup_count: usize, dup_len: usize) -> Vec<u32> {
    let src = MarkovSource::random(r, Alphabet::Dna, 1.5);
    let mut t = src.generate(r, n);
    let l = dup_len.min(n / 2).max(1);
    if n >= 2 * l {
        for _ in 0..dup_count {
            let from = r.gen_range(0..=n - l);
            let to = r.gen_range(0..=n - l);
            let seg: Vec<u32> = t[from..from + l].to_vec();
            t[to..to + l].copy_from_slice(&seg);
        }
    }
    t
}

/// Default genome shape: 64 duplications of `n/64`-symbol segments.
pub fn genome_default(r: &mut StdRng, n: usize) -> Vec<u32> {
    genome(r, n, 64, (n / 64).max(16))
}

/// Log-archive corpus: about `n` symbols of newline-separated lines. Each
/// line is one of `templates` fixed stems followed by a variable field
/// (hex-ish id) and a short Markov tail — so lines share long prefixes with
/// every other line of the same template, while the tails keep the corpus
/// from being purely periodic. Symbols are printable ASCII plus `\n` (10).
pub fn log_lines(r: &mut StdRng, n: usize, templates: usize) -> Vec<u32> {
    assert!(templates >= 1);
    let stems: Vec<Vec<u32>> = (0..templates)
        .map(|_| {
            // "svc42 GET /api/xyzw " style stems: lowercase words + digits.
            let words = r.gen_range(2..=4);
            let mut stem = Vec::new();
            for w in 0..words {
                if w > 0 {
                    stem.push(b' ' as u32);
                }
                let len = r.gen_range(3..=8);
                for _ in 0..len {
                    stem.push(b'a' as u32 + r.gen_range(0..26));
                }
            }
            stem.push(b' ' as u32);
            stem
        })
        .collect();
    let tail_src = MarkovSource::random(r, Alphabet::Letters, 1.2);
    let mut out = Vec::with_capacity(n + 64);
    while out.len() < n {
        let stem = &stems[r.gen_range(0..stems.len())];
        out.extend_from_slice(stem);
        // Variable field: 4–8 hex digits.
        for _ in 0..r.gen_range(4..=8) {
            let d = r.gen_range(0..16u32);
            out.push(if d < 10 {
                b'0' as u32 + d
            } else {
                b'a' as u32 + d - 10
            });
        }
        out.push(b' ' as u32);
        let tail_len = r.gen_range(4..=24);
        for c in tail_src.generate(r, tail_len) {
            out.push(b'a' as u32 + c);
        }
        out.push(b'\n' as u32);
    }
    out.truncate(n);
    out
}

/// A query batch against `corpus`: `count` patterns with lengths in
/// `min_len ..= max_len`. Patterns come in groups of up to `group` sharing
/// a start position (hence sharing prefixes — the interval-merge case), and
/// a `miss_permille`‰ fraction is replaced by uniform random patterns that
/// mostly miss. Patterns may repeat across groups; they are *not* deduped —
/// query batches in the wild aren't either.
pub fn query_patterns(
    r: &mut StdRng,
    corpus: &[u32],
    count: usize,
    min_len: usize,
    max_len: usize,
    group: usize,
    miss_permille: usize,
) -> Vec<Vec<u32>> {
    assert!(min_len >= 1 && min_len <= max_len && max_len <= corpus.len());
    assert!(group >= 1);
    let sigma = corpus.iter().copied().max().unwrap_or(0) + 1;
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let start = r.gen_range(0..=corpus.len() - max_len);
        let members = group.min(count - out.len());
        for _ in 0..members {
            let len = r.gen_range(min_len..=max_len);
            if r.gen_range(0..1000) < miss_permille {
                out.push((0..len).map(|_| r.gen_range(0..sigma)).collect());
            } else {
                out.push(corpus[start..start + len].to_vec());
            }
        }
    }
    out
}

/// Distinct excerpt patterns suitable for feeding both the index *and* a
/// `StaticMatcher`/AC dictionary (which reject duplicates): like
/// [`crate::strings::excerpt_dictionary`] but grouped by start position so
/// the batch still exercises interval merging.
pub fn distinct_query_patterns(
    r: &mut StdRng,
    corpus: &[u32],
    count: usize,
    min_len: usize,
    max_len: usize,
    group: usize,
) -> Vec<Vec<u32>> {
    assert!(min_len >= 1 && min_len <= max_len && max_len <= corpus.len());
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(count);
    let mut attempts = 0usize;
    while out.len() < count {
        attempts += 1;
        assert!(
            attempts < count * 200 + 2000,
            "corpus too repetitive for {count} distinct excerpts"
        );
        let start = r.gen_range(0..=corpus.len() - max_len);
        for _ in 0..group.max(1) {
            if out.len() >= count {
                break;
            }
            let len = r.gen_range(min_len..=max_len);
            let p = corpus[start..start + len].to_vec();
            if seen.insert(p.clone()) {
                out.push(p);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strings::rng;

    #[test]
    fn genome_is_deterministic_and_4_symbol() {
        let a = genome_default(&mut rng(7), 10_000);
        let b = genome_default(&mut rng(7), 10_000);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10_000);
        assert!(a.iter().all(|&c| c < 4));
    }

    #[test]
    fn genome_duplications_create_long_repeats() {
        let t = genome(&mut rng(3), 20_000, 32, 512);
        // Some 64-symbol window must appear at least twice.
        let mut seen = std::collections::HashSet::new();
        let repeated = t.windows(64).any(|w| !seen.insert(w.to_vec()));
        assert!(repeated, "expected duplicated segments to repeat windows");
    }

    #[test]
    fn log_lines_shape() {
        let t = log_lines(&mut rng(5), 50_000, 8);
        assert_eq!(t.len(), 50_000);
        let newlines = t.iter().filter(|&&c| c == b'\n' as u32).count();
        assert!(newlines > 500, "expected many lines, got {newlines}");
        assert!(t
            .iter()
            .all(|&c| c == b'\n' as u32 || (0x20..0x7f).contains(&c)));
        assert_eq!(t, log_lines(&mut rng(5), 50_000, 8));
    }

    #[test]
    fn query_patterns_hit_and_miss_mix() {
        let mut r = rng(11);
        let corpus = log_lines(&mut r, 20_000, 4);
        let pats = query_patterns(&mut r, &corpus, 200, 4, 16, 4, 100);
        assert_eq!(pats.len(), 200);
        assert!(pats.iter().all(|p| (4..=16).contains(&p.len())));
        let hits = pats
            .iter()
            .filter(|p| corpus.windows(p.len()).any(|w| w == p.as_slice()))
            .count();
        assert!(hits > 100, "most patterns should occur, got {hits}/200");
    }

    #[test]
    fn distinct_query_patterns_are_distinct_excerpts() {
        let mut r = rng(13);
        let corpus = genome_default(&mut r, 5_000);
        let pats = distinct_query_patterns(&mut r, &corpus, 100, 3, 12, 4);
        assert_eq!(pats.len(), 100);
        let set: std::collections::HashSet<_> = pats.iter().collect();
        assert_eq!(set.len(), 100);
        for p in &pats {
            assert!(corpus.windows(p.len()).any(|w| w == p.as_slice()));
        }
    }
}
