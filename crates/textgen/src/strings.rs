//! Texts and dictionaries with controlled shape.
//!
//! Everything is seeded and deterministic, so experiments and failing tests
//! reproduce exactly.

use crate::alphabet::Alphabet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded RNG used across the workspace.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Uniform random text of length `n`.
pub fn random_text(r: &mut StdRng, alpha: Alphabet, n: usize) -> Vec<u32> {
    (0..n).map(|_| r.gen_range(0..alpha.size())).collect()
}

/// Periodic text: the adversarial case for failure-function matchers.
pub fn periodic_text(r: &mut StdRng, alpha: Alphabet, period: usize, n: usize) -> Vec<u32> {
    assert!(period > 0);
    let cell: Vec<u32> = (0..period).map(|_| r.gen_range(0..alpha.size())).collect();
    (0..n).map(|i| cell[i % period]).collect()
}

/// `count` distinct random patterns with lengths in `min_len ..= max_len`.
pub fn random_dictionary(
    r: &mut StdRng,
    alpha: Alphabet,
    count: usize,
    min_len: usize,
    max_len: usize,
) -> Vec<Vec<u32>> {
    assert!(min_len >= 1 && min_len <= max_len);
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(count);
    let mut attempts = 0usize;
    while out.len() < count {
        attempts += 1;
        assert!(
            attempts < count * 100 + 1000,
            "alphabet too small to draw {count} distinct patterns"
        );
        let len = r.gen_range(min_len..=max_len);
        let p = random_text(r, alpha, len);
        if seen.insert(p.clone()) {
            out.push(p);
        }
    }
    out
}

/// `count` distinct random patterns, all of length `len` (for §7).
pub fn equal_len_dictionary(
    r: &mut StdRng,
    alpha: Alphabet,
    count: usize,
    len: usize,
) -> Vec<Vec<u32>> {
    random_dictionary(r, alpha, count, len, len)
}

/// Dictionary whose patterns share long common prefixes (trie-heavy shape:
/// stresses prefix-naming and the longest-pattern attribution).
pub fn shared_prefix_dictionary(
    r: &mut StdRng,
    alpha: Alphabet,
    count: usize,
    stem_len: usize,
    tail_len: usize,
) -> Vec<Vec<u32>> {
    let stem = random_text(r, alpha, stem_len);
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(count);
    let mut attempts = 0usize;
    while out.len() < count {
        attempts += 1;
        assert!(attempts < count * 100 + 1000, "cannot diversify tails");
        let mut p = stem.clone();
        let tl = r.gen_range(1..=tail_len.max(1));
        p.extend(random_text(r, alpha, tl));
        if seen.insert(p.clone()) {
            out.push(p);
        }
    }
    out
}

/// Nested dictionary: every pattern is a prefix of the next
/// (`p[..1], p[..2], …`) — the worst case for all-matches output size.
pub fn nested_dictionary(r: &mut StdRng, alpha: Alphabet, depth: usize) -> Vec<Vec<u32>> {
    assert!(depth >= 1);
    let full = random_text(r, alpha, depth);
    (1..=depth).map(|l| full[..l].to_vec()).collect()
}

/// Patterns sampled as excerpts of `text` (every pattern occurs at least
/// once). Distinct; panics if the text lacks diversity.
pub fn excerpt_dictionary(
    r: &mut StdRng,
    text: &[u32],
    count: usize,
    min_len: usize,
    max_len: usize,
) -> Vec<Vec<u32>> {
    assert!(min_len >= 1 && min_len <= max_len && max_len <= text.len());
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(count);
    let mut attempts = 0usize;
    while out.len() < count {
        attempts += 1;
        assert!(
            attempts < count * 200 + 2000,
            "text too repetitive for {count} excerpts"
        );
        let len = r.gen_range(min_len..=max_len);
        let start = r.gen_range(0..=text.len() - len);
        let p = text[start..start + len].to_vec();
        if seen.insert(p.clone()) {
            out.push(p);
        }
    }
    out
}

/// Overwrite `count` random positions of `text` with copies of random
/// dictionary patterns, guaranteeing occurrences. Returns the plant sites
/// `(position, pattern)`.
pub fn plant_occurrences(
    r: &mut StdRng,
    text: &mut [u32],
    patterns: &[Vec<u32>],
    count: usize,
) -> Vec<(usize, usize)> {
    let mut sites = Vec::with_capacity(count);
    for _ in 0..count {
        let pid = r.gen_range(0..patterns.len());
        let p = &patterns[pid];
        if p.len() > text.len() {
            continue;
        }
        let pos = r.gen_range(0..=text.len() - p.len());
        text[pos..pos + p.len()].copy_from_slice(p);
        sites.push((pos, pid));
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let a = random_text(&mut rng(7), Alphabet::Bytes, 100);
        let b = random_text(&mut rng(7), Alphabet::Bytes, 100);
        let c = random_text(&mut rng(8), Alphabet::Bytes, 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn symbols_within_alphabet() {
        let t = random_text(&mut rng(1), Alphabet::Dna, 1000);
        assert!(t.iter().all(|&c| c < 4));
    }

    #[test]
    fn periodic_repeats() {
        let t = periodic_text(&mut rng(2), Alphabet::Binary, 3, 10);
        for i in 3..10 {
            assert_eq!(t[i], t[i - 3]);
        }
    }

    #[test]
    fn dictionary_is_distinct_and_sized() {
        let d = random_dictionary(&mut rng(3), Alphabet::Letters, 50, 2, 8);
        assert_eq!(d.len(), 50);
        let set: std::collections::HashSet<_> = d.iter().collect();
        assert_eq!(set.len(), 50);
        assert!(d.iter().all(|p| (2..=8).contains(&p.len())));
    }

    #[test]
    fn equal_len_dictionary_uniform() {
        let d = equal_len_dictionary(&mut rng(4), Alphabet::Bytes, 20, 6);
        assert!(d.iter().all(|p| p.len() == 6));
    }

    #[test]
    fn shared_prefix_shape() {
        let d = shared_prefix_dictionary(&mut rng(5), Alphabet::Bytes, 10, 16, 4);
        for p in &d {
            assert_eq!(&p[..16], &d[0][..16]);
            assert!(p.len() > 16);
        }
    }

    #[test]
    fn nested_shape() {
        let d = nested_dictionary(&mut rng(6), Alphabet::Bytes, 5);
        assert_eq!(d.len(), 5);
        for i in 1..5 {
            assert_eq!(&d[i][..i], d[i - 1].as_slice());
        }
    }

    #[test]
    fn excerpts_occur_in_text() {
        let mut r = rng(9);
        let t = random_text(&mut r, Alphabet::Bytes, 500);
        let d = excerpt_dictionary(&mut r, &t, 20, 3, 10);
        for p in &d {
            assert!(t.windows(p.len()).any(|w| w == p.as_slice()));
        }
    }

    #[test]
    fn planted_occurrences_present() {
        let mut r = rng(10);
        let d = random_dictionary(&mut r, Alphabet::Bytes, 5, 3, 6);
        let mut t = random_text(&mut r, Alphabet::Bytes, 200);
        let sites = plant_occurrences(&mut r, &mut t, &d, 10);
        assert!(!sites.is_empty());
        for (pos, pid) in sites {
            // A later plant may overwrite an earlier one, so only check the
            // last plant of each region strictly; weak check: slice length.
            assert!(pos + d[pid].len() <= t.len());
        }
    }
}
