//! Property: the SWAR prefilter stage is invisible in the match set.
//!
//! For random dictionaries — including the adversarial all-same-byte and
//! dense-alphabet families that push the filter into its bail-out and
//! disabled paths — and random texts, `find_all` with the build-time
//! prefilter attached must equal `find_all` after `set_prefilter(None)`,
//! at execution widths 1, 2 and 4.

use pdm_core::dict::Sym;
use pdm_core::static1d::StaticMatcher;
use pdm_core::PrefilterDecision;
use pdm_pram::Ctx;
use proptest::prelude::*;

fn dedup(pats: Vec<Vec<Sym>>) -> Vec<Vec<Sym>> {
    let mut seen = std::collections::HashSet::new();
    pats.into_iter()
        .filter(|p| !p.is_empty() && seen.insert(p.clone()))
        .collect()
}

/// Match with the auto-selected prefilter, then again with the filter
/// stripped, at widths 1/2/4; all six runs must agree exactly.
fn assert_filter_invisible(
    pats: &[Vec<Sym>],
    text: &[Sym],
) -> Result<(), proptest::test_runner::TestCaseError> {
    let build_ctx = Ctx::seq();
    let mut m = StaticMatcher::build(&build_ctx, pats).unwrap();
    let widths = [Ctx::seq(), Ctx::with_threads(2), Ctx::with_threads(4)];

    let filtered: Vec<Vec<(usize, u32)>> = widths.iter().map(|ctx| m.find_all(ctx, text)).collect();
    m.set_prefilter(None);
    let unfiltered: Vec<Vec<(usize, u32)>> =
        widths.iter().map(|ctx| m.find_all(ctx, text)).collect();

    for (w, (got, want)) in filtered.iter().zip(unfiltered.iter()).enumerate() {
        prop_assert_eq!(got, want, "width index {}", w);
    }
    // All widths of the unfiltered path agree among themselves too.
    prop_assert_eq!(&unfiltered[0], &unfiltered[1]);
    prop_assert_eq!(&unfiltered[0], &unfiltered[2]);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Mid-size alphabet: the analyzer usually picks a live engine, and
    /// texts beyond `PREFILTER_MIN_TEXT` genuinely route through it.
    #[test]
    fn general_dictionaries(
        pats in proptest::collection::vec(
            proptest::collection::vec(0u32..60, 1..10), 1..16),
        text in proptest::collection::vec(0u32..60, 0..400),
    ) {
        let pats = dedup(pats);
        if pats.is_empty() { return Ok(()); }
        assert_filter_invisible(&pats, &text)?;
    }

    /// Adversarial all-same-byte dictionaries over a matching unary text:
    /// every position is a raw candidate, so the runtime density bail-out
    /// must hand the whole text back to the unfiltered path unchanged.
    #[test]
    fn all_same_byte_dictionaries(
        byte in 0u32..8,
        lens in proptest::collection::vec(1usize..9, 1..5),
        text_len in 0usize..300,
    ) {
        let pats = dedup(lens.iter().map(|&l| vec![byte; l]).collect());
        let text = vec![byte; text_len];
        assert_filter_invisible(&pats, &text)?;
    }

    /// Dense small alphabets (DNA-like): the build-time estimator declines
    /// the filter, which must be equivalent to never having one.
    #[test]
    fn dense_alphabet_dictionaries(
        pats in proptest::collection::vec(
            proptest::collection::vec(0u32..4, 1..12), 2..10),
        text in proptest::collection::vec(0u32..4, 0..300),
    ) {
        let pats = dedup(pats);
        if pats.is_empty() { return Ok(()); }
        assert_filter_invisible(&pats, &text)?;
    }

    /// Symbols above 255 alias into the u8 shadow buffer; the exact
    /// two-symbol screen must reject the aliases without losing matches.
    #[test]
    fn high_symbol_aliasing(
        pats in proptest::collection::vec(
            proptest::collection::vec(0u32..800, 1..8), 1..12),
        text in proptest::collection::vec(0u32..800, 0..300),
    ) {
        let pats = dedup(pats);
        if pats.is_empty() { return Ok(()); }
        assert_filter_invisible(&pats, &text)?;
    }
}

/// The general-family property above is only meaningful if sparse English
/// dictionaries actually get a live engine; pin that here.
#[test]
fn sparse_dictionary_engages_prefilter() {
    let ctx = Ctx::seq();
    let pats = pdm_core::dict::symbolize(&["quiz", "jukebox", "zephyr"]);
    let m = StaticMatcher::build(&ctx, &pats).unwrap();
    match m.prefilter_decision() {
        PrefilterDecision::RareByte | PrefilterDecision::PairMask => {}
        d => panic!("expected a live engine for a sparse dictionary, got {d:?}"),
    }

    // And it really runs: a long sparse text must bump the scan counters.
    let mut text: Vec<Sym> = "the slow brown fox sat. "
        .repeat(40)
        .bytes()
        .map(u32::from)
        .collect();
    text.extend("quiz".bytes().map(u32::from));
    let hits = m.find_all(&ctx, &text);
    assert_eq!(hits.len(), 1);
    let c = m.stats().prefilter_counters;
    assert!(c.scans >= 1, "prefilter never scanned: {c:?}");
    assert!(c.windows >= 1, "no window verified: {c:?}");
}
