//! Differential tests for the dynamic dictionary (§6): random traces of
//! insert/delete/match checked against an oracle rebuilt from scratch at
//! every match.

use pdm_core::dict::PatId;
use pdm_core::dynamic::DynamicMatcher;
use pdm_pram::Ctx;
use pdm_textgen::strings;
use pdm_textgen::Alphabet;
use rand::Rng;

/// Oracle: brute-force longest pattern per position over the live set,
/// where ties are impossible (distinct patterns). Returns the *dynamic ids*.
fn oracle(live: &[(PatId, Vec<u32>)], text: &[u32]) -> Vec<Option<PatId>> {
    (0..text.len())
        .map(|i| {
            live.iter()
                .filter(|(_, p)| i + p.len() <= text.len() && text[i..i + p.len()] == p[..])
                .max_by_key(|(_, p)| p.len())
                .map(|(id, _)| *id)
        })
        .collect()
}

fn run_trace(seed: u64, alpha: Alphabet, ops: usize, text_len: usize, max_len: usize) {
    let ctx = Ctx::seq();
    let mut r = strings::rng(seed);
    let mut d = DynamicMatcher::new();
    let mut live: Vec<(PatId, Vec<u32>)> = Vec::new();
    let base_text = strings::random_text(&mut r, alpha, text_len);

    for step in 0..ops {
        match r.gen_range(0..10) {
            // Insert (weighted up so the dictionary grows).
            0..=4 => {
                let len = r.gen_range(1..=max_len);
                let start = r.gen_range(0..=base_text.len() - len);
                let p = base_text[start..start + len].to_vec();
                match d.insert(&ctx, &p) {
                    Ok(id) => live.push((id, p)),
                    Err(pdm_core::dynamic::DynError::AlreadyPresent(id)) => {
                        assert!(
                            live.iter().any(|(l, q)| *l == id && *q == p),
                            "seed {seed} step {step}: AlreadyPresent(id={id}) disagrees"
                        );
                    }
                    Err(e) => panic!("seed {seed} step {step}: {e}"),
                }
            }
            // Delete a random live pattern.
            5..=6 => {
                if live.is_empty() {
                    continue;
                }
                let k = r.gen_range(0..live.len());
                let (id, p) = live.swap_remove(k);
                assert_eq!(d.delete(&ctx, &p), Ok(id), "seed {seed} step {step}");
            }
            // Match.
            _ => {
                let mlen = r.gen_range(1..=text_len.min(120));
                let start = r.gen_range(0..=base_text.len() - mlen);
                let mut t = base_text[start..start + mlen].to_vec();
                // Sometimes plant a live pattern to guarantee hits.
                if !live.is_empty() && r.gen_bool(0.7) {
                    let (_, p) = &live[r.gen_range(0..live.len())];
                    if p.len() <= t.len() {
                        let pos = r.gen_range(0..=t.len() - p.len());
                        t[pos..pos + p.len()].copy_from_slice(p);
                    }
                }
                let got = d.match_text(&ctx, &t);
                let want = oracle(&live, &t);
                assert_eq!(
                    got.longest_pattern,
                    want,
                    "seed {seed} step {step}: match mismatch (live={})",
                    live.len()
                );
            }
        }
    }
    // Drain everything; tables must empty out.
    for (id, p) in std::mem::take(&mut live) {
        assert_eq!(d.delete(&ctx, &p), Ok(id));
    }
    assert_eq!(d.symbol_count(), 0);
    assert_eq!(d.table_entry_count(), 0);
}

#[test]
fn traces_binary_alphabet() {
    for seed in 0..6 {
        run_trace(seed, Alphabet::Binary, 120, 300, 12);
    }
}

#[test]
fn traces_dna_alphabet() {
    for seed in 10..16 {
        run_trace(seed, Alphabet::Dna, 120, 400, 24);
    }
}

#[test]
fn traces_byte_alphabet_long_patterns() {
    for seed in 20..24 {
        run_trace(seed, Alphabet::Bytes, 80, 600, 70);
    }
}

#[test]
fn heavy_delete_churn_triggers_rebuilds() {
    let ctx = Ctx::seq();
    let mut r = strings::rng(99);
    let mut d = DynamicMatcher::new();
    let text = strings::random_text(&mut r, Alphabet::Letters, 2000);
    let pats = strings::excerpt_dictionary(&mut r, &text, 60, 4, 20);
    let mut ids = Vec::new();
    for p in &pats {
        ids.push(d.insert(&ctx, p).unwrap());
    }
    // Delete two thirds; matches must stay correct throughout.
    for (k, p) in pats.iter().enumerate().take(40) {
        d.delete(&ctx, p).unwrap();
        let _ = k;
        let live: Vec<(PatId, Vec<u32>)> = pats
            .iter()
            .enumerate()
            .skip(k + 1)
            .take(60)
            .map(|(i, q)| (ids[i], q.clone()))
            .filter(|(_, q)| pats.iter().take(k + 1).all(|dead| dead != q))
            .collect();
        if k % 10 == 0 {
            let got = d.match_text(&ctx, &text[..400]);
            let want = oracle(&live, &text[..400]);
            assert_eq!(got.longest_pattern, want, "after {} deletes", k + 1);
        }
    }
    assert!(d.rebuilds() >= 1);
}

#[test]
fn partly_dynamic_insert_only_grows_consistently() {
    // The Theorem 7/8 regime: inserts and matches only.
    let ctx = Ctx::seq();
    let mut r = strings::rng(7);
    let text = strings::random_text(&mut r, Alphabet::Dna, 800);
    let pats = strings::excerpt_dictionary(&mut r, &text, 30, 2, 40);
    let mut d = DynamicMatcher::new();
    let mut live = Vec::new();
    for p in &pats {
        let id = d.insert(&ctx, p).unwrap();
        live.push((id, p.clone()));
        let got = d.match_text(&ctx, &text);
        let want = oracle(&live, &text);
        assert_eq!(
            got.longest_pattern,
            want,
            "after inserting {} patterns",
            live.len()
        );
    }
    assert_eq!(d.rebuilds(), 0, "insert-only must never rebuild");
}
