//! Differential tests: the §4 static matcher against the Aho–Corasick and
//! naive oracles, across workload shapes, alphabets and execution policies.

use pdm_baselines::{naive, AhoCorasick};
use pdm_core::dict::symbolize;
use pdm_core::static1d::StaticMatcher;
use pdm_pram::Ctx;
use pdm_textgen::strings;
use pdm_textgen::Alphabet;

fn check_instance(ctx: &Ctx, patterns: &[Vec<u32>], text: &[u32], tag: &str) {
    let matcher = StaticMatcher::build(ctx, patterns).expect("build");
    let out = matcher.match_text(ctx, text);
    assert_eq!(
        out.longest_pattern.len(),
        text.len(),
        "{tag}: output length"
    );

    // Oracle 1: longest prefix per position (phase 1 / Theorem 1).
    let ac = AhoCorasick::new(patterns);
    let want_prefix = ac.longest_prefix_per_position(text);
    let got_prefix: Vec<usize> = out.prefix_len.iter().map(|&l| l as usize).collect();
    assert_eq!(got_prefix, want_prefix, "{tag}: longest prefix lengths");

    // Oracle 2: longest pattern per position (Theorem 3 output).
    let want_pat = naive::longest_pattern_per_position(patterns, text);
    let got_pat: Vec<Option<usize>> = out
        .longest_pattern
        .iter()
        .map(|p| p.map(|x| x as usize))
        .collect();
    assert_eq!(got_pat, want_pat, "{tag}: longest pattern per position");

    // Internal consistency: pattern length matches the dictionary.
    for (i, p) in out.longest_pattern.iter().enumerate() {
        if let Some(pid) = p {
            assert_eq!(
                out.longest_pattern_len[i] as usize,
                patterns[*pid as usize].len(),
                "{tag}: length field"
            );
            // The longest pattern cannot exceed the longest prefix.
            assert!(out.longest_pattern_len[i] <= out.prefix_len[i], "{tag}");
        } else {
            assert_eq!(out.longest_pattern_len[i], 0, "{tag}");
        }
        // Owner must be a pattern having the matched prefix.
        if out.prefix_len[i] > 0 {
            let owner = out.prefix_owner[i].expect("matched prefixes have owners") as usize;
            let plen = out.prefix_len[i] as usize;
            assert!(
                patterns[owner].len() >= plen && patterns[owner][..plen] == text[i..i + plen],
                "{tag}: owner pattern carries the prefix"
            );
        }
    }
}

#[test]
fn handcrafted_classic() {
    let ctx = Ctx::seq();
    let pats = symbolize(&["he", "she", "his", "hers"]);
    let text: Vec<u32> = "ushers and shehis".bytes().map(u32::from).collect();
    check_instance(&ctx, &pats, &text, "classic");
}

#[test]
fn single_pattern_single_char() {
    let ctx = Ctx::seq();
    check_instance(&ctx, &symbolize(&["a"]), &[97, 98, 97], "1x1");
}

#[test]
fn pattern_equals_text() {
    let ctx = Ctx::seq();
    let pats = symbolize(&["abcde"]);
    check_instance(&ctx, &pats, &pdm_core::dict::to_symbols("abcde"), "eq");
}

#[test]
fn text_shorter_than_patterns() {
    let ctx = Ctx::seq();
    let pats = symbolize(&["abcdefgh", "abcd"]);
    check_instance(
        &ctx,
        &pats,
        &pdm_core::dict::to_symbols("abc"),
        "short-text",
    );
}

#[test]
fn nested_patterns() {
    let ctx = Ctx::seq();
    let pats = symbolize(&["a", "ab", "abc", "abcd", "abcde"]);
    let text = pdm_core::dict::to_symbols("abcdeabcxab");
    check_instance(&ctx, &pats, &text, "nested");
}

#[test]
fn periodic_adversarial() {
    let ctx = Ctx::seq();
    let pats = symbolize(&["ababab", "abab", "bab", "aa"]);
    let text = pdm_core::dict::to_symbols(&"ab".repeat(40));
    check_instance(&ctx, &pats, &text, "periodic");
}

#[test]
fn unary_alphabet_extreme() {
    let ctx = Ctx::seq();
    // All-equal symbols: every prefix of every length matches everywhere.
    let pats: Vec<Vec<u32>> = vec![vec![7; 5], vec![7; 9], vec![7; 2]];
    let text = vec![7u32; 30];
    check_instance(&ctx, &pats, &text, "unary");
}

#[test]
fn symbols_absent_from_dictionary() {
    let ctx = Ctx::seq();
    let pats = symbolize(&["xy"]);
    let text: Vec<u32> = vec![1000, 2000, 120, 121, 3000]; // "xy" at 2
    check_instance(&ctx, &pats, &text, "unknown-syms");
}

#[test]
fn randomized_small_alphabet_many_seeds() {
    let ctx = Ctx::seq();
    for seed in 0..30 {
        let mut r = strings::rng(seed);
        let pats = strings::random_dictionary(&mut r, Alphabet::Binary, 8, 1, 10);
        let mut text = strings::random_text(&mut r, Alphabet::Binary, 200);
        strings::plant_occurrences(&mut r, &mut text, &pats, 10);
        check_instance(&ctx, &pats, &text, &format!("bin-{seed}"));
    }
}

#[test]
fn randomized_byte_alphabet_with_excerpts() {
    let ctx = Ctx::seq();
    for seed in 100..115 {
        let mut r = strings::rng(seed);
        let mut text = strings::random_text(&mut r, Alphabet::Letters, 500);
        let pats = strings::excerpt_dictionary(&mut r, &text, 12, 2, 33);
        strings::plant_occurrences(&mut r, &mut text, &pats, 20);
        check_instance(&ctx, &pats, &text, &format!("excerpt-{seed}"));
    }
}

#[test]
fn randomized_shared_prefix_dictionaries() {
    let ctx = Ctx::seq();
    for seed in 200..210 {
        let mut r = strings::rng(seed);
        let pats = strings::shared_prefix_dictionary(&mut r, Alphabet::Dna, 10, 12, 6);
        let mut text = strings::random_text(&mut r, Alphabet::Dna, 400);
        strings::plant_occurrences(&mut r, &mut text, &pats, 15);
        check_instance(&ctx, &pats, &text, &format!("shared-{seed}"));
    }
}

#[test]
fn parallel_execution_agrees() {
    for threads in [0usize, 2, 4] {
        let ctx = if threads == 0 {
            Ctx::par()
        } else {
            Ctx::with_threads(threads)
        };
        let mut r = strings::rng(42);
        let mut text = strings::random_text(&mut r, Alphabet::Letters, 3000);
        let pats = strings::excerpt_dictionary(&mut r, &text, 25, 2, 60);
        strings::plant_occurrences(&mut r, &mut text, &pats, 40);
        check_instance(&ctx, &pats, &text, &format!("par-{threads}"));
    }
}

#[test]
fn non_power_of_two_lengths() {
    let ctx = Ctx::seq();
    // Lengths straddling powers of two stress residue handling.
    let pats = symbolize(&["abc", "abcdefg", "abcdefghijklm", "xyzzy"]);
    let mut text = pdm_core::dict::to_symbols("abcdefghijklmnop");
    text.extend(pdm_core::dict::to_symbols("xyzzyabcdefg"));
    check_instance(&ctx, &pats, &text, "npot");
}

#[test]
fn empty_text() {
    let ctx = Ctx::seq();
    let m = StaticMatcher::build(&ctx, &symbolize(&["ab"])).unwrap();
    let out = m.match_text(&ctx, &[]);
    assert!(out.longest_pattern.is_empty());
    assert!(out.prefix_len.is_empty());
}

#[test]
fn match_is_repeatable_on_same_matcher() {
    // Text-local name allocation must not leak state between match calls.
    let ctx = Ctx::seq();
    let pats = symbolize(&["ab", "ba"]);
    let m = StaticMatcher::build(&ctx, &pats).unwrap();
    let text = pdm_core::dict::to_symbols("abbaabba");
    let a = m.match_text(&ctx, &text);
    let b = m.match_text(&ctx, &text);
    assert_eq!(a, b);
}

#[test]
fn find_all_agrees_with_aho_corasick() {
    let ctx = Ctx::seq();
    for seed in 300..306 {
        let mut r = strings::rng(seed);
        let mut text = strings::random_text(&mut r, Alphabet::Dna, 300);
        let pats = strings::excerpt_dictionary(&mut r, &text, 8, 1, 12);
        strings::plant_occurrences(&mut r, &mut text, &pats, 10);
        let m = StaticMatcher::build(&ctx, &pats).unwrap();
        let got: Vec<(usize, usize)> = m
            .find_all(&ctx, &text)
            .into_iter()
            .map(|(i, p)| (i, p as usize))
            .collect();
        let ac = AhoCorasick::new(&pats);
        let mut want: Vec<(usize, usize)> = ac
            .find_all(&text)
            .into_iter()
            .map(|o| (o.start, o.pat))
            .collect();
        want.sort();
        assert_eq!(got, want, "seed {seed}");
    }
}

#[test]
fn dict_stats_are_linear_in_m() {
    let ctx = Ctx::seq();
    let mut r = strings::rng(1);
    let small = strings::random_dictionary(&mut r, Alphabet::Bytes, 16, 16, 32);
    let big = strings::random_dictionary(&mut r, Alphabet::Bytes, 256, 16, 32);
    let s1 = StaticMatcher::build(&ctx, &small).unwrap().stats();
    let s2 = StaticMatcher::build(&ctx, &big).unwrap().stats();
    // ~3M entries (pairs+fold+ext) plus up to |Σ| symbol entries.
    assert!(s1.table_entry_count() <= 4 * s1.dictionary_size + 512);
    assert!(s2.table_entry_count() <= 4 * s2.dictionary_size + 512);
    // Entries scale ~linearly with M (within 2x of proportional).
    let ratio = s2.table_entry_count() as f64 / s1.table_entry_count() as f64;
    let m_ratio = s2.dictionary_size as f64 / s1.dictionary_size as f64;
    assert!(
        ratio < 2.0 * m_ratio && m_ratio < 2.0 * ratio,
        "entries {ratio} vs M {m_ratio}"
    );
}

#[test]
fn text_work_scales_with_log_m_not_m() {
    // Cost-model sanity (full validation lives in the experiment harness):
    // text work per symbol must track log2(m).
    let mut works = Vec::new();
    for &m in &[16usize, 256] {
        let ctx = Ctx::seq();
        let mut r = strings::rng(7);
        let pats = strings::random_dictionary(&mut r, Alphabet::Bytes, 8, m / 2, m);
        let text = strings::random_text(&mut r, Alphabet::Bytes, 20_000);
        let matcher = StaticMatcher::build(&ctx, &pats).unwrap();
        let before = ctx.cost.snapshot();
        let _ = matcher.match_text(&ctx, &text);
        let d = ctx.cost.snapshot().since(before);
        works.push(d.work as f64 / text.len() as f64);
    }
    let ratio = works[1] / works[0];
    // log2(256)/log2(16) = 2; allow slack for constants.
    assert!(
        (1.3..=3.0).contains(&ratio),
        "work/symbol ratio {ratio} not ~2 (works: {works:?})"
    );
}

#[test]
fn chunked_match_equals_whole_text() {
    let ctx = Ctx::seq();
    for seed in 400..406 {
        let mut r = strings::rng(seed);
        let mut text = strings::random_text(&mut r, Alphabet::Letters, 700);
        let pats = strings::excerpt_dictionary(&mut r, &text, 10, 2, 50);
        strings::plant_occurrences(&mut r, &mut text, &pats, 15);
        let m = StaticMatcher::build(&ctx, &pats).unwrap();
        let whole = m.match_text(&ctx, &text);
        for chunk in [1usize, 7, 64, 699, 700, 10_000] {
            let chunked = m.match_text_chunked(&ctx, &text, chunk);
            assert_eq!(chunked, whole, "seed {seed} chunk {chunk}");
        }
    }
}

#[test]
fn chunked_match_empty_text() {
    let ctx = Ctx::seq();
    let m = StaticMatcher::build(&ctx, &symbolize(&["ab"])).unwrap();
    let out = m.match_text_chunked(&ctx, &[], 16);
    assert!(out.longest_pattern.is_empty());
}
