//! Optimal multi-pattern matching for equal-length patterns (paper §7,
//! Theorem 11): `O(log m)` time and `O(n + M)` work — *optimal speedup*
//! relative to Aho–Corasick.
//!
//! This is the paper's showpiece application of shrink-and-spawn with an
//! asymmetric ratio: each level shrinks the dictionary by **4** but spawns
//! (and keeps) only **2** text copies, so both text and dictionary halve per
//! level and the geometric series gives linear total work.
//!
//! Per level, on patterns of length `m` (all equal, distinct):
//!
//! 1. `𝒫 = {P^s, P^p}` — each pattern contributes its drop-first suffix and
//!    drop-last prefix, all of length `m−1`; shrink by 4 into `q = ⌊(m−1)/4⌋`
//!    block names, residue length `R = (m−1) mod 4`;
//! 2. spawn the four offset copies of each text and **delete alternates**,
//!    keeping offsets 0 and 2 — together they cover the even positions;
//! 3. recurse on the shrunk dictionary and kept copies (which also returns
//!    the *names* of the shrunk strings — the "stronger recursive invariant"
//!    the paper maintains so naming needn't restart per level);
//! 4. **Step 3a**: name each pattern by the tuple
//!    `⟨δ(shrunk P^p), δ′(residue), last symbol⟩`;
//!    **Step 3b**: even positions — the recursion's match at `i` plus
//!    residue + last-symbol lookups complete a full-pattern match;
//!    **Step 3c**: odd positions — extend the even neighbour's match left by
//!    one symbol via `⟨first symbol, δ(shrunk P^s), δ′(residue)⟩` lookups.
//!
//! Equal-length *distinct* patterns mean at most one pattern matches at any
//! position, which is what lets a single name per position carry the whole
//! answer.
//!
//! Text blocks the dictionary never produced are collapsed to a single
//! [`UNKNOWN`] sentinel (the paper's "special symbols"): matching never
//! compares text against text, so distinctness among unknown blocks is
//! irrelevant, and `UNKNOWN` can never equal a dictionary name.
//!
//! ```
//! use pdm_core::equal_len::EqualLenMatcher;
//! use pdm_core::dict::{symbolize, to_symbols};
//! use pdm_pram::Ctx;
//!
//! let ctx = Ctx::seq();
//! let m = EqualLenMatcher::new(&symbolize(&["abc", "bca", "cab"])).unwrap();
//! let hits = m.match_text(&ctx, &to_symbols("abcab"));
//! assert_eq!(hits[0], Some(0)); // "abc"
//! assert_eq!(hits[1], Some(1)); // "bca"
//! assert_eq!(hits[2], Some(2)); // "cab"
//! assert_eq!(hits[3], None);    // "ab" is too short
//! ```

use crate::dict::{validate_dictionary, BuildError, PatId, Sym};
use pdm_naming::{FrozenNameTable, NamePool, NameTable, IDENTITY};
use pdm_pram::Ctx;
use pdm_primitives::FxHashMap;
use std::sync::Arc;

/// Sentinel for text blocks with no dictionary name.
pub const UNKNOWN: u32 = u32::MAX - 1;

/// Equal-length multi-pattern matcher (Theorem 11).
#[derive(Debug)]
pub struct EqualLenMatcher {
    patterns: Vec<Vec<Sym>>,
    m: usize,
}

impl EqualLenMatcher {
    /// All patterns must be distinct, non-empty and of equal length.
    pub fn new(patterns: &[Vec<Sym>]) -> Result<Self, BuildError> {
        let (_, m) = validate_dictionary(patterns)?;
        if patterns.iter().any(|p| p.len() != m) {
            return Err(BuildError::Unsupported(
                "equal-length matcher requires patterns of one length".into(),
            ));
        }
        Ok(Self {
            patterns: patterns.to_vec(),
            m,
        })
    }

    /// Number of patterns (`κ`).
    pub fn pattern_count(&self) -> usize {
        self.patterns.len()
    }

    /// Total dictionary size in symbols (`M = κ·m`).
    pub fn symbol_count(&self) -> usize {
        self.patterns.len() * self.m
    }

    /// The shared pattern length (`m`; every pattern has it).
    pub fn max_pattern_len(&self) -> usize {
        self.m
    }

    /// For each text position, the pattern matching there (at most one).
    ///
    /// One call runs the full recursion: `O(log m)` rounds, `O(n + M)` work
    /// (the paper's Theorem 11 has no preprocess/match split).
    pub fn match_text(&self, ctx: &Ctx, text: &[Sym]) -> Vec<Option<PatId>> {
        self.match_texts(ctx, &[text.to_vec()]).swap_remove(0)
    }

    /// Batch form: match many texts in one recursion, sharing the `O(M)`
    /// dictionary naming across all of them — this is what keeps the
    /// multi-dimensional reduction (§7, `pdm_core::multidim`) at `O(n + M)`
    /// total work when `n` is split over thousands of rows/columns.
    ///
    /// Per level, pattern-side naming fully precedes text-side lookup, so
    /// each level freezes its tables at that boundary and probes the text
    /// through atomics-free [`FrozenNameTable`]s (pattern-sized, so the
    /// freeze cost stays inside the `O(M)` term).
    pub fn match_texts(&self, ctx: &Ctx, texts: &[Vec<Sym>]) -> Vec<Vec<Option<PatId>>> {
        self.match_texts_impl(ctx, texts, true)
    }

    /// Reference leg: identical recursion probing the *concurrent* tables
    /// directly (the pre-freeze behavior). Retained for the equivalence
    /// tests and the `text_throughput` bench's before leg.
    pub fn match_texts_ref(&self, ctx: &Ctx, texts: &[Vec<Sym>]) -> Vec<Vec<Option<PatId>>> {
        self.match_texts_impl(ctx, texts, false)
    }

    fn match_texts_impl(
        &self,
        ctx: &Ctx,
        texts: &[Vec<Sym>],
        fast: bool,
    ) -> Vec<Vec<Option<PatId>>> {
        if texts.iter().all(|t| t.is_empty()) {
            return texts.iter().map(|_| Vec::new()).collect();
        }
        let pool = NamePool::dictionary();
        let (beta, matches) = solve(ctx, texts.to_vec(), self.patterns.clone(), &pool, fast);
        let by_name: FxHashMap<u32, PatId> = beta
            .iter()
            .enumerate()
            .map(|(i, &b)| (b, i as PatId))
            .collect();
        ctx.cost.round(texts.iter().map(|t| t.len() as u64).sum());
        matches
            .into_iter()
            .map(|mt| {
                mt.into_iter()
                    .map(|o| o.and_then(|nm| by_name.get(&nm).copied()))
                    .collect()
            })
            .collect()
    }
}

/// Per-level naming tables. Fresh per recursion level: symbols of different
/// levels live in different value spaces (raw symbols at the top, names
/// below), so tables must not be shared across levels.
struct LevelTables {
    /// Pairs of level symbols → names (length-2 blocks).
    pair1: NameTable,
    /// Pairs of length-2 names → length-4 block names (δ′ of the paper).
    pair2: NameTable,
    /// Residue naming (lengths 1–3, chained).
    res_a: NameTable,
    res_b: NameTable,
    /// Step 3a tuples: the pattern names β.
    t3a: NameTable,
    /// Step 3c key tuples.
    t3c_key: NameTable,
    /// Step 3c key → β.
    t3c_val: NameTable,
}

impl LevelTables {
    fn new(cap: usize, pool: &Arc<NamePool>) -> Self {
        let t = |c: usize| NameTable::with_capacity(c.max(1), pool.clone());
        LevelTables {
            pair1: t(cap),
            pair2: t(cap),
            res_a: t(cap),
            res_b: t(cap),
            t3a: t(cap),
            t3c_key: t(cap),
            t3c_val: t(cap),
        }
    }
}

#[inline]
fn name2(t: &NameTable, a: u32, b: u32) -> u32 {
    debug_assert!(a != UNKNOWN && b != UNKNOWN);
    t.name(a, b)
}

/// Read-only view of a level table for the text side, taken *after* the
/// pattern side finished inserting: either a frozen snapshot (the fast
/// path) or the live concurrent table (the reference leg).
enum Probe<'a> {
    Frozen(FrozenNameTable),
    Live(&'a NameTable),
}

impl Probe<'_> {
    fn of(fast: bool, t: &NameTable) -> Probe<'_> {
        if fast {
            Probe::Frozen(t.freeze())
        } else {
            Probe::Live(t)
        }
    }

    #[inline]
    fn get(&self, a: u32, b: u32) -> Option<u32> {
        match self {
            Probe::Frozen(f) => f.lookup(a, b),
            Probe::Live(t) => t.lookup(a, b),
        }
    }

    #[inline]
    fn get_tuple(&self, ts: &[u32]) -> Option<u32> {
        match self {
            Probe::Frozen(f) => f.lookup_tuple(ts),
            Probe::Live(t) => t.lookup_tuple(ts),
        }
    }
}

#[inline]
fn lookup2(t: &Probe, a: u32, b: u32) -> u32 {
    if a == UNKNOWN || b == UNKNOWN {
        return UNKNOWN;
    }
    t.get(a, b).unwrap_or(UNKNOWN)
}

/// Name the length-`r` run `s[i..i+r]` (pattern side: allocates).
fn name_run(t: &LevelTables, s: &[u32], i: usize, r: usize) -> u32 {
    match r {
        0 => IDENTITY,
        1 => name2(&t.res_a, s[i], IDENTITY),
        2 => name2(&t.res_a, s[i], s[i + 1]),
        3 => name2(&t.res_b, name2(&t.res_a, s[i], s[i + 1]), s[i + 2]),
        _ => unreachable!("residues are < 4"),
    }
}

/// Look up the length-`r` run name (text side: never allocates).
fn lookup_run(res_a: &Probe, res_b: &Probe, s: &[u32], i: usize, r: usize) -> u32 {
    match r {
        0 => IDENTITY,
        1 => lookup2(res_a, s[i], IDENTITY),
        2 => lookup2(res_a, s[i], s[i + 1]),
        3 => lookup2(res_b, lookup2(res_a, s[i], s[i + 1]), s[i + 2]),
        _ => unreachable!("residues are < 4"),
    }
}

/// One recursion level of Theorem 11.
///
/// Inputs: texts (the kept spawned copies of the level above) and patterns
/// (all the same length, duplicates allowed — they are deduplicated here).
/// Returns the name of each input pattern and, per text, per position, the
/// name of the pattern matching there.
fn solve(
    ctx: &Ctx,
    texts: Vec<Vec<u32>>,
    patterns: Vec<Vec<u32>>,
    pool: &Arc<NamePool>,
    fast: bool,
) -> (Vec<u32>, Vec<Vec<Option<u32>>>) {
    let m = patterns[0].len();
    debug_assert!(patterns.iter().all(|p| p.len() == m) && m >= 1);

    // Deduplicate (spawned 𝒫 sets collide; names are content-based anyway).
    let mut uniq: Vec<Vec<u32>> = Vec::with_capacity(patterns.len());
    let mut back: Vec<usize> = Vec::with_capacity(patterns.len());
    {
        let mut seen: FxHashMap<Vec<u32>, usize> = Default::default();
        for p in patterns {
            let next = uniq.len();
            match seen.entry(p) {
                std::collections::hash_map::Entry::Occupied(e) => back.push(*e.get()),
                std::collections::hash_map::Entry::Vacant(e) => {
                    uniq.push(e.key().clone());
                    e.insert(next);
                    back.push(next);
                }
            }
        }
    }

    let text_sz: usize = texts.iter().map(Vec::len).sum();
    let pat_sz: usize = uniq.len() * m;
    // Only the pattern side ever inserts (≤ 2·pat_sz entries per table), so
    // pattern-sized tables keep the per-level freeze inside the O(M) term.
    let tables = LevelTables::new(4 * pat_sz + 64, pool);

    // Base case: name whole patterns directly, scan each window by lookup.
    if m <= 4 {
        let beta_uniq: Vec<u32> = ctx.map(uniq.len(), |u| {
            let p = &uniq[u];
            match m {
                1 => name2(&tables.pair1, p[0], IDENTITY),
                2 => name2(&tables.pair1, p[0], p[1]),
                3 => name2(&tables.pair2, name2(&tables.pair1, p[0], p[1]), p[2]),
                _ => name2(
                    &tables.pair2,
                    name2(&tables.pair1, p[0], p[1]),
                    name2(&tables.pair1, p[2], p[3]),
                ),
            }
        });
        let p1 = Probe::of(fast, &tables.pair1);
        let p2 = Probe::of(fast, &tables.pair2);
        let matches: Vec<Vec<Option<u32>>> = texts
            .iter()
            .map(|t| {
                ctx.map(t.len(), |i| {
                    if i + m > t.len() {
                        return None;
                    }
                    let nm = match m {
                        1 => lookup2(&p1, t[i], IDENTITY),
                        2 => lookup2(&p1, t[i], t[i + 1]),
                        3 => lookup2(&p2, lookup2(&p1, t[i], t[i + 1]), t[i + 2]),
                        _ => lookup2(
                            &p2,
                            lookup2(&p1, t[i], t[i + 1]),
                            lookup2(&p1, t[i + 2], t[i + 3]),
                        ),
                    };
                    // The tuple tables only ever name whole patterns, so a
                    // successful lookup IS a pattern match.
                    (nm != UNKNOWN).then_some(nm)
                })
            })
            .collect();
        let beta = back.iter().map(|&u| beta_uniq[u]).collect();
        return (beta, matches);
    }

    // ---- Step 1: shrink by 4 / spawn 2 -----------------------------------
    let lm1 = m - 1; // |P^s| = |P^p| = m − 1
    let q = lm1 / 4; // shrunk length in blocks
    let r = lm1 % 4; // residue length (equal for every pattern)

    // Pattern-side block names at every position (covers both P^s and P^p
    // alignments); l4[i] names p[i..i+4].
    let pat_l4: Vec<Vec<u32>> = ctx.map(uniq.len(), |u| {
        let p = &uniq[u];
        let l1: Vec<u32> = (0..p.len() - 1)
            .map(|i| name2(&tables.pair1, p[i], p[i + 1]))
            .collect();
        (0..p.len() - 3)
            .map(|i| name2(&tables.pair2, l1[i], l1[i + 2]))
            .collect()
    });
    ctx.cost.work(pat_sz as u64);

    // Text-side block names at every position, lookup-only (the pattern
    // side above was the last writer to pair1/pair2, so freeze here).
    let text_l4: Vec<Vec<u32>> = {
        let p1 = Probe::of(fast, &tables.pair1);
        let p2 = Probe::of(fast, &tables.pair2);
        texts
            .iter()
            .map(|t| {
                if t.len() < 4 {
                    return Vec::new();
                }
                let l1: Vec<u32> = ctx.map(t.len() - 1, |i| lookup2(&p1, t[i], t[i + 1]));
                ctx.map(t.len() - 3, |i| lookup2(&p2, l1[i], l1[i + 2]))
            })
            .collect()
    };

    // Shrunk dictionary 𝒫′: for each unique pattern, shrunk P^p (offset 0)
    // and shrunk P^s (offset 1).
    let mut sub_patterns: Vec<Vec<u32>> = Vec::with_capacity(2 * uniq.len());
    for l4 in &pat_l4 {
        sub_patterns.push((0..q).map(|b| l4[4 * b]).collect()); // shrunk P^p
        sub_patterns.push((0..q).map(|b| l4[1 + 4 * b]).collect()); // shrunk P^s
    }
    ctx.cost.round(pat_sz as u64 / 2);

    // Spawned copies: offsets 0 and 2, stride 4 (alternates deleted).
    let mut sub_texts: Vec<Vec<u32>> = Vec::with_capacity(2 * texts.len());
    for l4 in &text_l4 {
        sub_texts.push(l4.iter().copied().step_by(4).collect()); // offset 0
        sub_texts.push(l4.iter().skip(2).copied().step_by(4).collect()); // offset 2
    }
    ctx.cost.round(text_sz as u64 / 2);

    // ---- Step 2: recurse ---------------------------------------------------
    let (sub_beta, sub_matches) = solve(ctx, sub_texts, sub_patterns, pool, fast);
    let delta_pp = |u: usize| sub_beta[2 * u];
    let delta_sp = |u: usize| sub_beta[2 * u + 1];

    // ---- Step 3a: β names for this level's dictionary ---------------------
    let beta_uniq: Vec<u32> = ctx.map(uniq.len(), |u| {
        let p = &uniq[u];
        let res = name_run(&tables, p, 4 * q, r); // residue of P^p
        tables.t3a.name_tuple(&[delta_pp(u), res, p[m - 1]])
    });

    // Step 3c pattern tuples: ⟨P(1), δ(shrunk P^s), δ′(res(P^s))⟩ → β.
    ctx.for_each(uniq.len(), |u| {
        let p = &uniq[u];
        let res = name_run(&tables, p, 1 + 4 * q, r); // residue of P^s
        let key = tables.t3c_key.name_tuple(&[p[0], delta_sp(u), res]);
        tables.t3c_val.insert_assoc(key, 0, beta_uniq[u]);
    });

    // ---- Steps 3b & 3c: complete matches at every position ----------------
    // Step 3a/3c pattern naming above was the last writer; freeze for the
    // text scans.
    let res_a = Probe::of(fast, &tables.res_a);
    let res_b = Probe::of(fast, &tables.res_b);
    let t3a = Probe::of(fast, &tables.t3a);
    let t3c_key = Probe::of(fast, &tables.t3c_key);
    let t3c_val = Probe::of(fast, &tables.t3c_val);
    let matches: Vec<Vec<Option<u32>>> = texts
        .iter()
        .enumerate()
        .map(|(ti, t)| {
            let even = &sub_matches[2 * ti]; // offset-0 copy
            let odd_src = &sub_matches[2 * ti + 1]; // offset-2 copy
                                                    // α(i) for even i: the recursion's match at text position i.
            let alpha = |i: usize| -> Option<u32> {
                debug_assert!(i.is_multiple_of(2));
                if i.is_multiple_of(4) {
                    even.get(i / 4).copied().flatten()
                } else {
                    odd_src.get((i - 2) / 4).copied().flatten()
                }
            };
            ctx.map(t.len(), |i| {
                if i + m > t.len() {
                    return None;
                }
                if i % 2 == 0 {
                    // Step 3b: α(i) is the shrunk P^p of the candidate.
                    let a = alpha(i)?;
                    let res = lookup_run(&res_a, &res_b, t, i + 4 * q, r);
                    if res == UNKNOWN {
                        return None;
                    }
                    t3a.get_tuple(&[a, res, t[i + m - 1]])
                } else {
                    // Step 3c: extend the right neighbour's shrunk P^s left.
                    let a = alpha(i + 1)?;
                    let res = lookup_run(&res_a, &res_b, t, i + 1 + 4 * q, r);
                    if res == UNKNOWN {
                        return None;
                    }
                    let key = t3c_key.get_tuple(&[t[i], a, res])?;
                    t3c_val.get(key, 0)
                }
            })
        })
        .collect();

    let beta = back.iter().map(|&u| beta_uniq[u]).collect();
    (beta, matches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::{symbolize, to_symbols};
    use pdm_baselines::naive;

    fn check(patterns: &[Vec<u32>], text: &[u32], tag: &str) {
        let ctx = Ctx::seq();
        let m = EqualLenMatcher::new(patterns).expect("build");
        let got: Vec<Option<usize>> = m
            .match_text(&ctx, text)
            .into_iter()
            .map(|o| o.map(|p| p as usize))
            .collect();
        let want = naive::longest_pattern_per_position(patterns, text);
        assert_eq!(got, want, "{tag}");
    }

    #[test]
    fn rejects_unequal_lengths() {
        assert!(EqualLenMatcher::new(&symbolize(&["ab", "abc"])).is_err());
        assert!(EqualLenMatcher::new(&[]).is_err());
    }

    #[test]
    fn base_case_lengths() {
        for len in 1..=4usize {
            let pats: Vec<Vec<u32>> = vec![(0..len as u32).collect(), (1..=len as u32).collect()];
            let text: Vec<u32> = (0..20).map(|i| i % 5).collect();
            check(&pats, &text, &format!("base-{len}"));
        }
    }

    #[test]
    fn length_five_first_recursive_step() {
        let pats = symbolize(&["abcab", "bcabc", "aaaaa"]);
        let text = to_symbols("abcabcabcabaaaaab");
        check(&pats, &text, "m5");
    }

    #[test]
    fn residue_lengths_all_covered() {
        // (m−1) mod 4 = 0,1,2,3 for m = 5,6,7,8.
        for m in 5..=8usize {
            let pats: Vec<Vec<u32>> = (0..3u32)
                .map(|s| (0..m as u32).map(|i| (i * 7 + s) % 3).collect())
                .collect();
            let mut text: Vec<u32> = (0..60).map(|i| (i * 5) % 3).collect();
            for (k, p) in pats.iter().enumerate() {
                let pos = 5 + k * 15;
                text[pos..pos + m].copy_from_slice(p);
            }
            check(&pats, &text, &format!("res-{m}"));
        }
    }

    #[test]
    fn deep_recursion_long_patterns() {
        use pdm_textgen::{strings, Alphabet};
        for &m in &[16usize, 33, 64, 100, 257] {
            let mut r = strings::rng(m as u64);
            let mut text = strings::random_text(&mut r, Alphabet::Dna, 2000);
            let pats = strings::excerpt_dictionary(&mut r, &text, 6, m, m);
            strings::plant_occurrences(&mut r, &mut text, &pats, 12);
            check(&pats, &text, &format!("deep-{m}"));
        }
    }

    #[test]
    fn periodic_text_overlapping_matches() {
        let pats = symbolize(&["ababa", "babab"]);
        let text = to_symbols(&"ab".repeat(30));
        check(&pats, &text, "periodic");
    }

    #[test]
    fn text_shorter_than_patterns() {
        let pats = symbolize(&["abcdefgh"]);
        check(&pats, &to_symbols("abc"), "short");
    }

    #[test]
    fn single_pattern_whole_text() {
        let pats = symbolize(&["hello"]);
        check(&pats, &to_symbols("hello"), "exact");
    }

    #[test]
    fn frozen_fast_path_matches_reference() {
        use pdm_textgen::{strings, Alphabet};
        for &m in &[3usize, 7, 48] {
            let mut r = strings::rng(m as u64 + 100);
            let mut text = strings::random_text(&mut r, Alphabet::Dna, 1500);
            let pats = strings::excerpt_dictionary(&mut r, &text, 5, m, m);
            strings::plant_occurrences(&mut r, &mut text, &pats, 10);
            let matcher = EqualLenMatcher::new(&pats).unwrap();
            let ctx = Ctx::seq();
            let texts = vec![text];
            assert_eq!(
                matcher.match_texts(&ctx, &texts),
                matcher.match_texts_ref(&ctx, &texts),
                "m = {m}"
            );
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        use pdm_textgen::{strings, Alphabet};
        let mut r = strings::rng(9);
        let mut text = strings::random_text(&mut r, Alphabet::Letters, 5000);
        let pats = strings::excerpt_dictionary(&mut r, &text, 10, 48, 48);
        strings::plant_occurrences(&mut r, &mut text, &pats, 25);
        let m = EqualLenMatcher::new(&pats).unwrap();
        let seq = m.match_text(&Ctx::seq(), &text);
        let par = m.match_text(&Ctx::par(), &text);
        assert_eq!(seq, par);
    }

    #[test]
    fn work_is_linear_in_n_plus_m() {
        use pdm_textgen::{strings, Alphabet};
        // Work per (n+M) must not grow with m (Theorem 11's optimality).
        let mut per_unit = Vec::new();
        for &m in &[16usize, 256] {
            let ctx = Ctx::seq();
            let mut r = strings::rng(3);
            let text = strings::random_text(&mut r, Alphabet::Bytes, 40_000);
            let pats = strings::equal_len_dictionary(&mut r, Alphabet::Bytes, 4, m);
            let matcher = EqualLenMatcher::new(&pats).unwrap();
            let before = ctx.cost.snapshot();
            let _ = matcher.match_text(&ctx, &text);
            let d = ctx.cost.snapshot().since(before);
            let units = (text.len() + 4 * m) as f64;
            per_unit.push(d.work as f64 / units);
        }
        let ratio = per_unit[1] / per_unit[0];
        assert!(
            ratio < 1.5,
            "work/(n+M) grew with m: {per_unit:?} (ratio {ratio})"
        );
    }
}
