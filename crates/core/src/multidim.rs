//! Multi-dimensional pattern matching with optimal work (paper §7,
//! closing application; the problem family of \[KLP89\]/\[Rab93\]).
//!
//! A `d`-dimensional pattern is matched by **dimension reduction**: slice
//! pattern and text along the first axis; the (equal-shaped, deduplicated)
//! pattern slices form a `(d−1)`-dimensional dictionary, matched recursively
//! at every text-slice position; each pattern then becomes its 1-D *slice-id
//! signature*, and every "column" of the text (fixed lower-dimensional
//! position, varying first coordinate) becomes a 1-D text over slice ids.
//! The base case — and every signature round — is the Theorem 11
//! equal-length matcher, so each of the `d` rounds costs `O(n + M)` work and
//! `O(log m)` time, preserving optimal speedup for any fixed `d`.
//!
//! (The classical 2-D specialization of this reduction is Baker–Bird with
//! the AC/KMP stages replaced by the parallel Theorem 11 matcher; see
//! `pdm_baselines::baker_bird` for the sequential original.)
//!
//! ```
//! use pdm_core::multidim::{match_tensor, Tensor};
//! use pdm_pram::Ctx;
//!
//! let ctx = Ctx::seq();
//! let text = Tensor::from_fn(vec![4, 4], |c| ((c[0] + c[1]) % 2) as u32);
//! let pat = Tensor::from_fn(vec![2, 2], |c| ((c[0] + c[1]) % 2) as u32);
//! let hits = match_tensor(&ctx, &text, &pat);
//! // The checkerboard 2×2 block recurs at every cell with matching parity.
//! assert!(hits[0]);
//! assert!(!hits[1]);
//! ```

#![allow(clippy::needless_range_loop)] // axis loops index parallel coordinate/stride arrays

use crate::dict::{PatId, Sym};
use crate::equal_len::EqualLenMatcher;
use pdm_pram::Ctx;
use pdm_primitives::FxHashMap;

/// Sentinel symbol for "no slice matches here" in signature texts. Matches
/// the `UNKNOWN` convention of `equal_len` (never equal to anything the
/// dictionary names).
const NO_SLICE: u32 = u32::MAX - 1;

/// A dense row-major tensor (last axis contiguous).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tensor {
    pub dims: Vec<usize>,
    pub data: Vec<Sym>,
}

impl Tensor {
    pub fn new(dims: Vec<usize>, data: Vec<Sym>) -> Self {
        assert_eq!(dims.iter().product::<usize>(), data.len());
        assert!(!dims.is_empty());
        Tensor { dims, data }
    }

    pub fn from_fn(dims: Vec<usize>, mut f: impl FnMut(&[usize]) -> Sym) -> Self {
        let total: usize = dims.iter().product();
        let mut idx = vec![0usize; dims.len()];
        let mut data = Vec::with_capacity(total);
        for _ in 0..total {
            data.push(f(&idx));
            // Odometer increment.
            for ax in (0..dims.len()).rev() {
                idx[ax] += 1;
                if idx[ax] < dims[ax] {
                    break;
                }
                idx[ax] = 0;
            }
        }
        Tensor { dims, data }
    }

    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flattened index of a coordinate.
    pub fn offset(&self, coord: &[usize]) -> usize {
        assert_eq!(coord.len(), self.dims.len());
        let mut off = 0;
        for (ax, &c) in coord.iter().enumerate() {
            debug_assert!(c < self.dims[ax]);
            off = off * self.dims[ax] + c;
        }
        off
    }
}

/// Occurrences of `pattern` in `text`: a flattened boolean per text
/// position, `true` where the whole pattern block matches with its minimal
/// corner there.
pub fn match_tensor(ctx: &Ctx, text: &Tensor, pattern: &Tensor) -> Vec<bool> {
    assert_eq!(
        text.ndim(),
        pattern.ndim(),
        "text and pattern dimensionality must agree"
    );
    assert!(!pattern.is_empty(), "empty pattern");
    let res = multi_match(
        ctx,
        &[(text.data.as_slice(), text.dims.as_slice())],
        &[(pattern.data.as_slice(), pattern.dims.as_slice())],
    );
    res.into_iter()
        .next()
        .unwrap()
        .into_iter()
        .map(|o| o.is_some())
        .collect()
}

/// Multi-pattern form: all patterns share one shape; per text position, the
/// index of the (unique) pattern matching there.
pub fn match_tensor_multi(ctx: &Ctx, text: &Tensor, patterns: &[Tensor]) -> Vec<Option<PatId>> {
    assert!(!patterns.is_empty());
    let dims = &patterns[0].dims;
    assert!(
        patterns.iter().all(|p| &p.dims == dims),
        "patterns must share one shape"
    );
    let pats: Vec<(&[Sym], &[usize])> = patterns
        .iter()
        .map(|p| (p.data.as_slice(), p.dims.as_slice()))
        .collect();
    multi_match(ctx, &[(text.data.as_slice(), text.dims.as_slice())], &pats)
        .into_iter()
        .next()
        .unwrap()
}

/// Recursive multi-text multi-pattern matcher over flattened tensors.
/// `patterns` all share `pdims`; duplicates allowed (deduplicated here).
/// Returns, per text, per flattened position, the matching pattern index.
fn multi_match(
    ctx: &Ctx,
    texts: &[(&[Sym], &[usize])],
    patterns: &[(&[Sym], &[usize])],
) -> Vec<Vec<Option<PatId>>> {
    let pdims = patterns[0].1;
    debug_assert!(patterns.iter().all(|p| p.1 == pdims));

    // Deduplicate patterns by content; recurse on unique ones.
    let mut uniq: Vec<&[Sym]> = Vec::new();
    let mut back: Vec<PatId> = Vec::with_capacity(patterns.len());
    {
        let mut seen: FxHashMap<&[Sym], PatId> = FxHashMap::default();
        for (pd, _) in patterns {
            match seen.get(pd) {
                Some(&u) => back.push(u),
                None => {
                    let u = uniq.len() as PatId;
                    seen.insert(pd, u);
                    uniq.push(pd);
                    back.push(u);
                }
            }
        }
    }
    // Map unique-id results back to the FIRST input index carrying them.
    let mut first_input: Vec<PatId> = vec![PatId::MAX; uniq.len()];
    for (inp, &u) in back.iter().enumerate() {
        if first_input[u as usize] == PatId::MAX {
            first_input[u as usize] = inp as PatId;
        }
    }

    if pdims.len() == 1 {
        // Base: Theorem 11 over all texts at once.
        let pats: Vec<Vec<Sym>> = uniq.iter().map(|p| p.to_vec()).collect();
        let m = EqualLenMatcher::new(&pats).expect("deduped, equal length");
        let tvecs: Vec<Vec<Sym>> = texts.iter().map(|(t, _)| t.to_vec()).collect();
        return m
            .match_texts(ctx, &tvecs)
            .into_iter()
            .map(|v| {
                v.into_iter()
                    .map(|o| o.map(|u| first_input[u as usize]))
                    .collect()
            })
            .collect();
    }

    // Slice along axis 0: pattern slices form a (d−1)-dim dictionary.
    let s0 = pdims[0];
    let srest = &pdims[1..];
    let slice_len: usize = srest.iter().product();
    let mut slice_pats: Vec<(&[Sym], &[usize])> = Vec::with_capacity(uniq.len() * s0);
    for p in &uniq {
        for i in 0..s0 {
            slice_pats.push((&p[i * slice_len..(i + 1) * slice_len], srest));
        }
    }
    // Text slices along axis 0.
    let mut slice_texts: Vec<(&[Sym], &[usize])> = Vec::new();
    let mut text_slice_base: Vec<usize> = Vec::with_capacity(texts.len());
    for (td, tdims) in texts {
        text_slice_base.push(slice_texts.len());
        let t0 = tdims[0];
        let trest = &tdims[1..];
        let tslice: usize = trest.iter().product();
        for i in 0..t0 {
            slice_texts.push((&td[i * tslice..(i + 1) * tslice], trest));
        }
    }

    let slice_res = multi_match(ctx, &slice_texts, &slice_pats);

    // Canonical slice ids: first input index with equal content. The
    // recursion reports matches with exactly this convention (its
    // `first_input` mapping), so pattern signatures and text slice ids live
    // in one symbol space.
    let slice_canon: Vec<u32> = {
        let mut content: FxHashMap<&[Sym], u32> = FxHashMap::default();
        slice_pats
            .iter()
            .enumerate()
            .map(|(i, (pd, _))| *content.entry(pd).or_insert(i as u32))
            .collect()
    };
    let sigs: Vec<Vec<Sym>> = (0..uniq.len())
        .map(|u| (0..s0).map(|i| slice_canon[u * s0 + i]).collect())
        .collect();

    // Columns: for each text, each lower-dim position p, the string over
    // axis-0 of slice-match ids.
    let mut columns: Vec<Vec<Sym>> = Vec::new();
    let mut col_meta: Vec<(usize, usize)> = Vec::new(); // (text index, rest position)
    for (ti, (_, tdims)) in texts.iter().enumerate() {
        let t0 = tdims[0];
        let tslice: usize = tdims[1..].iter().product();
        let base = text_slice_base[ti];
        for p in 0..tslice {
            let col: Vec<Sym> = (0..t0)
                .map(|i| slice_res[base + i][p].unwrap_or(NO_SLICE))
                .collect();
            columns.push(col);
            col_meta.push((ti, p));
        }
    }
    ctx.cost.round(columns.iter().map(|c| c.len() as u64).sum());

    // Dedup signatures and match them down the columns (1-D equal length).
    let sig_dims = [s0];
    let sig_pats: Vec<(&[Sym], &[usize])> =
        sigs.iter().map(|s| (s.as_slice(), &sig_dims[..])).collect();
    let col_dims: Vec<[usize; 1]> = columns.iter().map(|c| [c.len()]).collect();
    let col_texts: Vec<(&[Sym], &[usize])> = columns
        .iter()
        .zip(col_dims.iter())
        .map(|(c, d)| (c.as_slice(), &d[..]))
        .collect();
    // Columns can have differing lengths only if texts differ in dims[0];
    // group by length to satisfy the 1-D matcher (one call per length).
    let mut by_len: FxHashMap<usize, Vec<usize>> = FxHashMap::default();
    for (ci, c) in columns.iter().enumerate() {
        by_len.entry(c.len()).or_default().push(ci);
    }
    let mut col_match: Vec<Vec<Option<PatId>>> = vec![Vec::new(); columns.len()];
    for (_, cols) in by_len {
        let group: Vec<(&[Sym], &[usize])> = cols.iter().map(|&ci| col_texts[ci]).collect();
        let res = multi_match(ctx, &group, &sig_pats);
        for (gi, ci) in cols.into_iter().enumerate() {
            col_match[ci] = res[gi].clone();
        }
    }

    // Assemble: match at column (ti, p) position i ⇒ tensor position
    // i*tslice + p of text ti.
    let mut out: Vec<Vec<Option<PatId>>> =
        texts.iter().map(|(td, _)| vec![None; td.len()]).collect();
    for (ci, (ti, p)) in col_meta.iter().enumerate() {
        let tslice: usize = texts[*ti].1[1..].iter().product();
        for (i, &m) in col_match[ci].iter().enumerate() {
            if let Some(u) = m {
                out[*ti][i * tslice + p] = Some(first_input[u as usize]);
            }
        }
    }
    ctx.cost
        .round(texts.iter().map(|(t, _)| t.len() as u64).sum());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_textgen::{grid, strings, Alphabet};

    /// Naive d-dim oracle.
    fn naive_match(text: &Tensor, pattern: &Tensor) -> Vec<bool> {
        let d = text.ndim();
        let total = text.len();
        let mut out = vec![false; total];
        let mut coord = vec![0usize; d];
        'outer: for idx in 0..total {
            // Decode idx into coord.
            let mut rem = idx;
            for ax in (0..d).rev() {
                coord[ax] = rem % text.dims[ax];
                rem /= text.dims[ax];
            }
            for ax in 0..d {
                if coord[ax] + pattern.dims[ax] > text.dims[ax] {
                    continue 'outer;
                }
            }
            // Compare the block.
            let mut pc = vec![0usize; d];
            let mut ok = true;
            'block: loop {
                let tc: Vec<usize> = (0..d).map(|ax| coord[ax] + pc[ax]).collect();
                if text.data[text.offset(&tc)] != pattern.data[pattern.offset(&pc)] {
                    ok = false;
                    break 'block;
                }
                let mut ax = d;
                loop {
                    if ax == 0 {
                        break 'block;
                    }
                    ax -= 1;
                    pc[ax] += 1;
                    if pc[ax] < pattern.dims[ax] {
                        break;
                    }
                    pc[ax] = 0;
                }
            }
            out[idx] = ok;
        }
        out
    }

    fn check(text: &Tensor, pattern: &Tensor, tag: &str) {
        let ctx = Ctx::seq();
        let got = match_tensor(&ctx, text, pattern);
        let want = naive_match(text, pattern);
        assert_eq!(got, want, "{tag}");
    }

    #[test]
    fn two_d_planted() {
        let mut r = strings::rng(1);
        let mut t = grid::random_grid(&mut r, Alphabet::Dna, 20, 20);
        let pats = grid::excerpt_square_dictionary(&mut r, &t, 1, 5, 5);
        grid::plant_squares(&mut r, &mut t, &pats, 3);
        let text = Tensor::new(vec![20, 20], t.data.clone());
        let pat = Tensor::new(vec![5, 5], pats[0].data.clone());
        check(&text, &pat, "2d-planted");
    }

    #[test]
    fn two_d_uniform_overlapping() {
        let text = Tensor::from_fn(vec![9, 9], |_| 3);
        let pat = Tensor::from_fn(vec![4, 4], |_| 3);
        check(&text, &pat, "2d-uniform");
    }

    #[test]
    fn two_d_no_match() {
        let text = Tensor::from_fn(vec![8, 8], |c| (c[0] + c[1]) as u32 % 2);
        let pat = Tensor::from_fn(vec![3, 3], |_| 7);
        let ctx = Ctx::seq();
        assert!(match_tensor(&ctx, &text, &pat).iter().all(|&b| !b));
    }

    #[test]
    fn two_d_rectangular_pattern() {
        // Non-square patterns are fine: only shapes must agree per axis.
        let text = Tensor::from_fn(vec![10, 6], |c| ((c[0] * 7 + c[1] * 3) % 4) as u32);
        let pat = Tensor::new(
            vec![2, 3],
            (0..6)
                .map(|k| text.data[3 * 6 + 2 + (k / 3) * 6 + (k % 3)])
                .collect(),
        );
        check(&text, &pat, "2d-rect");
    }

    #[test]
    fn three_d_planted() {
        let mut r = strings::rng(7);
        let text = Tensor::from_fn(vec![8, 8, 8], |_| {
            use rand::Rng;
            r.gen_range(0..3u32)
        });
        // Excerpt a 3x3x3 block at (2,3,1).
        let mut pdata = Vec::new();
        for i in 0..3 {
            for j in 0..3 {
                for k in 0..3 {
                    pdata.push(text.data[text.offset(&[2 + i, 3 + j, 1 + k])]);
                }
            }
        }
        let pat = Tensor::new(vec![3, 3, 3], pdata);
        check(&text, &pat, "3d-excerpt");
    }

    #[test]
    fn three_d_uniform() {
        let text = Tensor::from_fn(vec![5, 5, 5], |_| 1);
        let pat = Tensor::from_fn(vec![2, 2, 2], |_| 1);
        check(&text, &pat, "3d-uniform");
    }

    #[test]
    fn four_d_smoke() {
        let text = Tensor::from_fn(vec![4, 4, 4, 4], |c| {
            ((c[0] + c[1] + c[2] + c[3]) % 2) as u32
        });
        let pat = Tensor::from_fn(vec![2, 2, 2, 2], |c| {
            ((c[0] + c[1] + c[2] + c[3]) % 2) as u32
        });
        check(&text, &pat, "4d");
    }

    #[test]
    fn one_d_reduces_to_equal_len() {
        let text = Tensor::new(vec![12], vec![1, 2, 3, 1, 2, 3, 1, 2, 3, 9, 9, 9]);
        let pat = Tensor::new(vec![3], vec![1, 2, 3]);
        check(&text, &pat, "1d");
    }

    #[test]
    fn multi_pattern_two_d() {
        let ctx = Ctx::seq();
        let text = Tensor::from_fn(vec![10, 10], |c| ((c[0] * 3 + c[1]) % 5) as u32);
        // Two distinct 2x2 patterns excerpted from the text.
        let p_at = |r: usize, c: usize| {
            Tensor::new(
                vec![2, 2],
                vec![
                    text.data[text.offset(&[r, c])],
                    text.data[text.offset(&[r, c + 1])],
                    text.data[text.offset(&[r + 1, c])],
                    text.data[text.offset(&[r + 1, c + 1])],
                ],
            )
        };
        let pats = vec![p_at(0, 0), p_at(0, 1)];
        if pats[0] == pats[1] {
            return; // degenerate under this arithmetic text — skip
        }
        let got = match_tensor_multi(&ctx, &text, &pats);
        for (idx, m) in got.iter().enumerate() {
            let (i, j) = (idx / 10, idx % 10);
            let want = (0..2).find(|&pi| {
                i + 2 <= 10
                    && j + 2 <= 10
                    && (0..2).all(|a| {
                        (0..2).all(|b| {
                            text.data[text.offset(&[i + a, j + b])]
                                == pats[pi].data[pats[pi].offset(&[a, b])]
                        })
                    })
            });
            assert_eq!(m.map(|x| x as usize), want, "({i},{j})");
        }
    }

    #[test]
    fn pattern_larger_than_text_axis() {
        let text = Tensor::from_fn(vec![3, 8], |_| 1);
        let pat = Tensor::from_fn(vec![5, 2], |_| 1);
        let ctx = Ctx::seq();
        assert!(match_tensor(&ctx, &text, &pat).iter().all(|&b| !b));
    }

    #[test]
    fn work_linear_in_input_2d() {
        // Work/(n+M) should stay bounded as the pattern grows.
        let mut per_unit = Vec::new();
        for &m in &[8usize, 32] {
            let ctx = Ctx::seq();
            let mut r = strings::rng(4);
            let t = grid::random_grid(&mut r, Alphabet::Dna, 96, 96);
            let text = Tensor::new(vec![96, 96], t.data);
            let pat = Tensor::from_fn(vec![m, m], |c| ((c[0] * 5 + c[1]) % 4) as u32);
            let before = ctx.cost.snapshot();
            let _ = match_tensor(&ctx, &text, &pat);
            let d = ctx.cost.snapshot().since(before);
            per_unit.push(d.work as f64 / (text.len() + pat.len()) as f64);
        }
        assert!(
            per_unit[1] / per_unit[0] < 1.6,
            "2-D work not linear: {per_unit:?}"
        );
    }
}
