//! SWAR byte-level prefilter with candidate-window verification.
//!
//! The KMR text pipeline costs `O(n log m)` work on *every* position, hit
//! or miss. On sparse-hit workloads almost all of that work proves a
//! negative. This stage spends `O(n)` branch-light scanning to locate the
//! few positions that *could* start a match, then lets the existing KMR
//! path verify only those candidate windows — the match set is provably
//! identical (DESIGN.md §16).
//!
//! Two scan engines, chosen at build time by a density estimator:
//!
//! * **Rare-byte** ([`Engine::Rare`]): every pattern nominates the
//!   (background-frequency) rarest byte it contains, at a recorded offset.
//!   If the nominations collapse onto ≤ 3 distinct bytes with a small
//!   offset set, the scan is up to 3 memchr-style SWAR passes
//!   (broadcast / XOR / zero-lane detection over `u64` gulps); each hit
//!   `i` proposes candidate starts `i − off`.
//! * **Pair-mask** ([`Engine::Pair`]): two 256-bit classes over the
//!   first and second pattern bytes; position `i` is a candidate iff
//!   `text[i]` is a first-byte and `text[i+1]` a second-byte.
//!
//! Every proposed start then passes an **exact two-symbol screen** (a hash
//! set of the patterns' first two symbols — full `u32` symbols, so `u8`
//! shadow aliasing is rejected here), which keeps verification work
//! proportional to *plausible* starts rather than raw byte hits.
//!
//! Both engines are *complete*: a pattern occurrence at `t` implies its
//! nominated byte occurs at `t + off` (rare) and its first two symbols
//! occur at `t` (pair/screen), so `t` is always proposed and always
//! survives the screen. The engines may propose extra starts (shadow
//! aliasing, SWAR borrow artifacts); verification removes them. Dense
//! dictionaries are declined at build time with a recorded reason, and a
//! runtime bail-out abandons the scan as soon as screened candidates
//! exceed `scanned /` [`DENSITY_BAILOUT_DIV`] over the prefix scanned so
//! far, so saturated texts degrade to the unfiltered path plus one cheap
//! truncated scan instead of drowning in windows.

mod swar;

use crate::dict::Sym;
use pdm_primitives::FxHashSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// Texts shorter than this skip the prefilter: the scan setup would cost
/// more than the KMR rounds it saves.
pub const PREFILTER_MIN_TEXT: usize = 64;

/// Runtime bail-out: abandon the scan once screened candidates exceed
/// `scanned / DENSITY_BAILOUT_DIV + 64` over the prefix scanned so far
/// (hits arrive in ascending order, so a saturated text is detected and
/// abandoned within its first few hundred positions, not at the end).
pub const DENSITY_BAILOUT_DIV: usize = 8;

/// Rare-byte engine limits: at most this many distinct scan bytes…
const RARE_MAX_BYTES: usize = 3;
/// …and at most this many `(byte, offset)` pairs overall (each hit
/// proposes one start per offset of its byte).
const RARE_MAX_OFFSETS: usize = 8;

/// Build-time density ceilings (estimated candidate fraction of `n`).
const RARE_MAX_EST: f64 = 0.05;
const PAIR_MAX_EST: f64 = 0.20;

/// Why a matcher has no active prefilter — stable strings so stats stay
/// `Copy` and sidecars can code them compactly.
pub const REASON_DENSE: &str = "dense byte classes";
pub const REASON_ENV: &str = "disabled by PDM_PREFILTER";
pub const REASON_NO_PATTERNS: &str = "pattern texts unavailable";

/// Build-time outcome, surfaced through `DictStats` / `pdm stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefilterDecision {
    /// SWAR rare-byte scan is active.
    RareByte,
    /// First-two-byte class masks are active.
    PairMask,
    /// Prefilter declined; the string says why.
    Disabled(&'static str),
}

impl PrefilterDecision {
    /// Human-readable form for CLI output.
    pub fn describe(&self) -> String {
        match self {
            Self::RareByte => "rare-byte SWAR scan".into(),
            Self::PairMask => "first-pair byte masks".into(),
            Self::Disabled(why) => format!("off ({why})"),
        }
    }
}

/// One rare-byte scan target: scan the shadow for `byte`; a hit at `i`
/// proposes candidate starts `i − off` for every recorded offset.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RareAnchor {
    byte: u8,
    offsets: Vec<u32>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Engine {
    Rare(Vec<RareAnchor>),
    Pair { mask1: [u64; 4], mask2: [u64; 4] },
}

/// Cumulative scan counters (`pdm stats`); relaxed atomics, matcher-wide.
#[derive(Debug, Default)]
struct PfMetrics {
    scans: AtomicU64,
    candidates: AtomicU64,
    windows: AtomicU64,
    verified_syms: AtomicU64,
    bailouts: AtomicU64,
}

/// Copy snapshot of the scan counters for stats reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefilterCounters {
    /// `find_all` calls that ran the scan.
    pub scans: u64,
    /// Candidate starts proposed to the exact two-symbol screen.
    pub candidates: u64,
    /// Verification windows emitted.
    pub windows: u64,
    /// Symbols handed to KMR verification (vs. `n` per unfiltered call).
    pub verified_syms: u64,
    /// Scans abandoned by the runtime density bail-out.
    pub bailouts: u64,
}

/// What one scan concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ScanVerdict {
    /// Candidate windows are in the output buffer; verify only those.
    Windows,
    /// Too many candidates — run the unfiltered path.
    TooDense,
    /// Engine disabled at build time.
    Inactive,
}

/// The built prefilter: scan engine + exact screen + counters. Attached to
/// a `StaticMatcher` when pattern texts were available at build (or primed
/// from a snapshot sidecar).
#[derive(Debug)]
pub struct Prefilter {
    decision: PrefilterDecision,
    engine: Option<Engine>,
    /// Longest pattern length `m` (window extension and merge gap).
    max_len: usize,
    /// Exact first-two-symbol keys of every length ≥ 2 pattern.
    screen2: FxHashSet<u64>,
    /// Exact first symbols of every length-1 pattern.
    len1: FxHashSet<Sym>,
    metrics: PfMetrics,
}

#[inline]
fn pack2(a: Sym, b: Sym) -> u64 {
    (u64::from(a) << 32) | u64::from(b)
}

/// Background byte weight: a coarse prior over "typical" text/binary
/// inputs used only to *rank* bytes by rarity and estimate candidate
/// density. Exactness does not matter — correctness never depends on it.
fn bg_weight(b: u8) -> u32 {
    match b {
        b' ' | b'e' | b't' | b'a' | b'o' | b'i' | b'n' => 600,
        b's' | b'r' | b'h' | b'l' | b'd' | b'c' | b'u' => 350,
        b'b'..=b'z' => 200,
        b'A'..=b'Z' | b'0'..=b'9' => 120,
        0 => 150,
        1..=31 | 127 => 40,
        b'.' | b',' | b'-' | b'_' | b'/' | b':' => 90,
        33..=126 => 60,
        _ => 50,
    }
}

impl Prefilter {
    /// Analyze a dictionary and build the scan engine the density
    /// estimator permits (possibly none — the decision records why).
    /// `PDM_PREFILTER=0` (or `off`) force-disables.
    pub fn analyze(patterns: &[Vec<Sym>]) -> Prefilter {
        let force_off = std::env::var("PDM_PREFILTER").is_ok_and(|v| v == "0" || v == "off");
        Self::analyze_opts(patterns, force_off)
    }

    pub(crate) fn analyze_opts(patterns: &[Vec<Sym>], force_off: bool) -> Prefilter {
        let max_len = patterns.iter().map(Vec::len).max().unwrap_or(0);
        let mut screen2 = FxHashSet::default();
        let mut len1 = FxHashSet::default();
        for p in patterns {
            match p.as_slice() {
                [] => {}
                [s] => {
                    len1.insert(*s);
                }
                [a, b, ..] => {
                    screen2.insert(pack2(*a, *b));
                }
            }
        }
        let mut pf = Prefilter {
            decision: PrefilterDecision::Disabled(REASON_DENSE),
            engine: None,
            max_len,
            screen2,
            len1,
            metrics: PfMetrics::default(),
        };
        if force_off {
            pf.decision = PrefilterDecision::Disabled(REASON_ENV);
            return pf;
        }
        if patterns.is_empty() || max_len == 0 {
            pf.decision = PrefilterDecision::Disabled(REASON_NO_PATTERNS);
            return pf;
        }

        // Effective per-byte probability: the background prior, floored by
        // a uniform draw over the dictionary's own byte alphabet when that
        // alphabet is genuinely small *and* well-sampled — a DNA dictionary
        // over {a,c,g,t} is strong evidence the text alphabet is {a,c,g,t}
        // too, where every byte class saturates even though each letter is
        // background-rare. A two-word dictionary also has few distinct
        // bytes, but says nothing about the text, hence the sample-size
        // gate.
        let mut seen = [false; 256];
        let mut total_syms = 0usize;
        for p in patterns {
            total_syms += p.len();
            for &s in p {
                seen[(s as u8) as usize] = true;
            }
        }
        let sigma_d = seen.iter().filter(|&&x| x).count().max(1);
        let small_alpha = sigma_d <= 8 && total_syms >= 4 * sigma_d;
        let total_w: u32 = (0u16..=255).map(|b| bg_weight(b as u8)).sum();
        let p_eff = |b: u8| -> f64 {
            let bg = f64::from(bg_weight(b)) / f64::from(total_w);
            if small_alpha {
                bg.max(1.0 / sigma_d as f64)
            } else {
                bg
            }
        };

        // Rare-byte nomination: each pattern's minimum-weight byte
        // (ties break toward the smallest offset).
        let mut anchors: Vec<RareAnchor> = Vec::new();
        let mut feasible = true;
        for p in patterns {
            let Some((off, &sym)) = p
                .iter()
                .enumerate()
                .min_by_key(|&(i, &s)| (bg_weight(s as u8), i))
            else {
                continue;
            };
            let byte = sym as u8;
            let a = match anchors.iter_mut().find(|a| a.byte == byte) {
                Some(a) => a,
                None => {
                    if anchors.len() == RARE_MAX_BYTES {
                        feasible = false;
                        break;
                    }
                    anchors.push(RareAnchor {
                        byte,
                        offsets: Vec::new(),
                    });
                    anchors.last_mut().expect("just pushed")
                }
            };
            if !a.offsets.contains(&(off as u32)) {
                a.offsets.push(off as u32);
            }
        }
        if feasible {
            let n_offsets: usize = anchors.iter().map(|a| a.offsets.len()).sum();
            let est: f64 = anchors
                .iter()
                .map(|a| p_eff(a.byte) * a.offsets.len() as f64)
                .sum();
            if n_offsets <= RARE_MAX_OFFSETS && est <= RARE_MAX_EST {
                anchors.sort_by_key(|a| a.byte);
                for a in &mut anchors {
                    a.offsets.sort_unstable();
                }
                pf.decision = PrefilterDecision::RareByte;
                pf.engine = Some(Engine::Rare(anchors));
                return pf;
            }
        }

        // Pair-mask fallback over the first two shadow bytes. `mask1`
        // covers *every* pattern's first byte (length-1 ones included), so
        // a position outside `mask1` can start nothing.
        let mut mask1 = [0u64; 4];
        let mut mask2 = [0u64; 4];
        for p in patterns {
            if let Some(&first) = p.first() {
                swar::set_mask(&mut mask1, first as u8);
            }
            if let Some(&second) = p.get(1) {
                swar::set_mask(&mut mask2, second as u8);
            }
        }
        let class_p = |mask: &[u64; 4]| -> f64 {
            (0u16..=255)
                .filter(|&b| swar::in_mask(mask, b as u8))
                .map(|b| p_eff(b as u8))
                .sum()
        };
        let has_len1 = !pf.len1.is_empty();
        let est = class_p(&mask1) * if has_len1 { 1.0 } else { class_p(&mask2) };
        if est <= PAIR_MAX_EST {
            pf.decision = PrefilterDecision::PairMask;
            pf.engine = Some(Engine::Pair { mask1, mask2 });
        }
        pf
    }

    /// Build-time decision (strategy or disable reason).
    pub fn decision(&self) -> PrefilterDecision {
        self.decision
    }

    /// Snapshot of the cumulative scan counters.
    pub fn counters(&self) -> PrefilterCounters {
        PrefilterCounters {
            scans: self.metrics.scans.load(Ordering::Relaxed),
            candidates: self.metrics.candidates.load(Ordering::Relaxed),
            windows: self.metrics.windows.load(Ordering::Relaxed),
            verified_syms: self.metrics.verified_syms.load(Ordering::Relaxed),
            bailouts: self.metrics.bailouts.load(Ordering::Relaxed),
        }
    }

    /// Record KMR verification volume (called by the window driver).
    pub(crate) fn note_verified(&self, syms: u64, windows: u64) {
        self.metrics
            .verified_syms
            .fetch_add(syms, Ordering::Relaxed);
        self.metrics.windows.fetch_add(windows, Ordering::Relaxed);
    }

    /// Longest pattern length the engine was built for.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Exact screen: could *some* pattern start at `text[s]`?
    #[inline]
    fn screen(&self, text: &[Sym], s: usize) -> bool {
        (s + 1 < text.len() && self.screen2.contains(&pack2(text[s], text[s + 1])))
            || (!self.len1.is_empty() && self.len1.contains(&text[s]))
    }

    /// Scan `text`, filling `windows` with disjoint candidate-start
    /// windows `(ws, we)` (starts-space, `we` exclusive), ascending.
    /// `shadow` and `starts` are caller-owned scratch.
    pub(crate) fn scan(
        &self,
        text: &[Sym],
        shadow: &mut Vec<u8>,
        starts: &mut Vec<usize>,
        windows: &mut Vec<(usize, usize)>,
    ) -> ScanVerdict {
        let Some(engine) = &self.engine else {
            return ScanVerdict::Inactive;
        };
        let n = text.len();
        let cap = n / DENSITY_BAILOUT_DIV + 64;
        self.metrics.scans.fetch_add(1, Ordering::Relaxed);
        starts.clear();
        windows.clear();
        swar::pack_shadow(text, shadow);
        let mut proposed = 0u64;
        let mut over = false;
        match engine {
            Engine::Rare(anchors) => {
                for a in anchors {
                    if over {
                        break;
                    }
                    // Prefix-density bail-out: hits arrive in ascending
                    // position order, so once *this anchor's* screened
                    // starts exceed the density cap over the prefix
                    // scanned so far, the text is saturated — stop
                    // immediately instead of scanning to the end.
                    let base = starts.len();
                    swar::for_each_byte_hit(shadow, a.byte, |i| {
                        for &off in &a.offsets {
                            let Some(s) = i.checked_sub(off as usize) else {
                                continue;
                            };
                            proposed += 1;
                            if self.screen(text, s) {
                                starts.push(s);
                            }
                        }
                        if starts.len() - base > i / DENSITY_BAILOUT_DIV + 64 {
                            over = true;
                        }
                        !over
                    });
                }
                if starts.len() > cap {
                    over = true;
                }
                if !over {
                    starts.sort_unstable();
                    starts.dedup();
                }
            }
            Engine::Pair { mask1, mask2 } => {
                let has_len1 = !self.len1.is_empty();
                for i in 0..n {
                    if !swar::in_mask(mask1, shadow[i]) {
                        continue;
                    }
                    proposed += 1;
                    let pair_hit = i + 1 < n
                        && swar::in_mask(mask2, shadow[i + 1])
                        && self.screen2.contains(&pack2(text[i], text[i + 1]));
                    if pair_hit || (has_len1 && self.len1.contains(&text[i])) {
                        starts.push(i);
                        if starts.len() > i / DENSITY_BAILOUT_DIV + 64 {
                            over = true;
                            break;
                        }
                    }
                }
            }
        }
        self.metrics
            .candidates
            .fetch_add(proposed, Ordering::Relaxed);
        if over {
            self.metrics.bailouts.fetch_add(1, Ordering::Relaxed);
            return ScanVerdict::TooDense;
        }
        // Merge nearby starts: one window per cluster, gap = m (the per-
        // window verification tail is m − 1 symbols, so closer clusters
        // are cheaper merged than re-scanned).
        let gap = self.max_len.max(8);
        for &s in starts.iter() {
            match windows.last_mut() {
                Some(last) if s < last.1 + gap => last.1 = s + 1,
                _ => windows.push((s, s + 1)),
            }
        }
        ScanVerdict::Windows
    }

    /// Deterministic sidecar encoding (sorted sets ⇒ load/save is a byte
    /// fixed point).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let (kind, reason) = match (&self.engine, self.decision) {
            (Some(Engine::Rare(_)), _) => (1u8, 0u8),
            (Some(Engine::Pair { .. }), _) => (2, 0),
            (None, PrefilterDecision::Disabled(r)) => (0, reason_code(r)),
            (None, _) => (0, 0),
        };
        out.push(kind);
        out.push(reason);
        out.extend_from_slice(&(self.max_len as u32).to_le_bytes());
        match &self.engine {
            Some(Engine::Rare(anchors)) => {
                out.push(anchors.len() as u8);
                for a in anchors {
                    out.push(a.byte);
                    out.extend_from_slice(&(a.offsets.len() as u32).to_le_bytes());
                    for &o in &a.offsets {
                        out.extend_from_slice(&o.to_le_bytes());
                    }
                }
            }
            Some(Engine::Pair { mask1, mask2 }) => {
                for w in mask1.iter().chain(mask2.iter()) {
                    out.extend_from_slice(&w.to_le_bytes());
                }
            }
            None => {}
        }
        let mut keys: Vec<u64> = self.screen2.iter().copied().collect();
        keys.sort_unstable();
        out.extend_from_slice(&(keys.len() as u32).to_le_bytes());
        for k in keys {
            out.extend_from_slice(&k.to_le_bytes());
        }
        let mut ones: Vec<Sym> = self.len1.iter().copied().collect();
        ones.sort_unstable();
        out.extend_from_slice(&(ones.len() as u32).to_le_bytes());
        for s in ones {
            out.extend_from_slice(&s.to_le_bytes());
        }
        out
    }

    /// Decode a sidecar section written by [`Self::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Prefilter, &'static str> {
        let mut at = 0usize;
        let mut take = |n: usize| -> Result<&[u8], &'static str> {
            let s = bytes.get(at..at + n).ok_or("prefilter section truncated")?;
            at += n;
            Ok(s)
        };
        let kind = take(1)?[0];
        let reason = take(1)?[0];
        let max_len = u32::from_le_bytes(take(4)?.try_into().expect("sized")) as usize;
        let engine = match kind {
            0 => None,
            1 => {
                let n_anchors = take(1)?[0] as usize;
                let mut anchors = Vec::with_capacity(n_anchors);
                for _ in 0..n_anchors {
                    let byte = take(1)?[0];
                    let n_offs = u32::from_le_bytes(take(4)?.try_into().expect("sized")) as usize;
                    let mut offsets = Vec::with_capacity(n_offs.min(1024));
                    for _ in 0..n_offs {
                        offsets.push(u32::from_le_bytes(take(4)?.try_into().expect("sized")));
                    }
                    anchors.push(RareAnchor { byte, offsets });
                }
                Some(Engine::Rare(anchors))
            }
            2 => {
                let mut mask1 = [0u64; 4];
                let mut mask2 = [0u64; 4];
                for w in mask1.iter_mut().chain(mask2.iter_mut()) {
                    *w = u64::from_le_bytes(take(8)?.try_into().expect("sized"));
                }
                Some(Engine::Pair { mask1, mask2 })
            }
            _ => return Err("unknown prefilter engine kind"),
        };
        let n2 = u32::from_le_bytes(take(4)?.try_into().expect("sized")) as usize;
        let mut screen2 = FxHashSet::default();
        for _ in 0..n2 {
            screen2.insert(u64::from_le_bytes(take(8)?.try_into().expect("sized")));
        }
        let n1 = u32::from_le_bytes(take(4)?.try_into().expect("sized")) as usize;
        let mut len1 = FxHashSet::default();
        for _ in 0..n1 {
            len1.insert(u32::from_le_bytes(take(4)?.try_into().expect("sized")));
        }
        if at != bytes.len() {
            return Err("trailing bytes in prefilter section");
        }
        let decision = match &engine {
            Some(Engine::Rare(_)) => PrefilterDecision::RareByte,
            Some(Engine::Pair { .. }) => PrefilterDecision::PairMask,
            None => PrefilterDecision::Disabled(reason_str(reason)),
        };
        Ok(Prefilter {
            decision,
            engine,
            max_len,
            screen2,
            len1,
            metrics: PfMetrics::default(),
        })
    }
}

fn reason_code(r: &'static str) -> u8 {
    match r {
        REASON_DENSE => 1,
        REASON_ENV => 2,
        REASON_NO_PATTERNS => 3,
        _ => 0,
    }
}

fn reason_str(code: u8) -> &'static str {
    match code {
        1 => REASON_DENSE,
        2 => REASON_ENV,
        3 => REASON_NO_PATTERNS,
        _ => "disabled",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::{symbolize, to_symbols};

    fn scan_windows(pf: &Prefilter, text: &[Sym]) -> (ScanVerdict, Vec<(usize, usize)>) {
        let (mut sh, mut st, mut w) = (Vec::new(), Vec::new(), Vec::new());
        let v = pf.scan(text, &mut sh, &mut st, &mut w);
        (v, w)
    }

    #[test]
    fn few_patterns_get_rare_byte_engine() {
        let pf = Prefilter::analyze_opts(&symbolize(&["quiz", "jukebox"]), false);
        assert_eq!(pf.decision(), PrefilterDecision::RareByte);
    }

    #[test]
    fn tiny_sampled_alphabet_is_declined() {
        // DNA-ish: the dictionary alphabet is tiny and well-sampled, so
        // the estimator assumes the text alphabet matches and every byte
        // class saturates.
        let pf =
            Prefilter::analyze_opts(&symbolize(&["acgt", "tgca", "gatt", "acca", "ctag"]), false);
        assert_eq!(pf.decision(), PrefilterDecision::Disabled(REASON_DENSE));
        let (v, _) = scan_windows(&pf, &to_symbols("acgtacgt"));
        assert_eq!(v, ScanVerdict::Inactive);
    }

    #[test]
    fn windows_cover_every_occurrence() {
        let pats = symbolize(&["zebra", "quartz"]);
        let pf = Prefilter::analyze_opts(&pats, false);
        assert_eq!(pf.decision(), PrefilterDecision::RareByte);
        let text = to_symbols("a zebra ate quartz near the zebra pen");
        let (v, windows) = scan_windows(&pf, &text);
        assert_eq!(v, ScanVerdict::Windows);
        for occ in [2usize, 12, 28] {
            assert!(
                windows.iter().any(|&(s, e)| s <= occ && occ < e),
                "occurrence at {occ} not covered by {windows:?}"
            );
        }
    }

    #[test]
    fn windows_are_disjoint_and_ascending() {
        let pats = symbolize(&["zebra", "quartz"]);
        let pf = Prefilter::analyze_opts(&pats, false);
        let text = to_symbols("zebra quartz zebrazebra mm zebra quartzquartz m");
        let (v, windows) = scan_windows(&pf, &text);
        assert_eq!(v, ScanVerdict::Windows);
        assert!(!windows.is_empty());
        for w in windows.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlap: {w:?}");
        }
    }

    #[test]
    fn saturated_text_bails_out() {
        let pats = symbolize(&["ab"]);
        let pf = Prefilter::analyze_opts(&pats, false);
        let text: Vec<Sym> = to_symbols(&"ab".repeat(600));
        let (v, _) = scan_windows(&pf, &text);
        assert_eq!(v, ScanVerdict::TooDense);
        assert_eq!(pf.counters().bailouts, 1);
    }

    #[test]
    fn len1_patterns_screen_on_first_symbol() {
        let pats = vec![vec![u32::from(b'q')], symbolize(&["zap"])[0].clone()];
        let pf = Prefilter::analyze_opts(&pats, false);
        let text = to_symbols("mmmqmmmzapmm");
        let (v, windows) = scan_windows(&pf, &text);
        assert_eq!(v, ScanVerdict::Windows);
        for occ in [3usize, 7] {
            assert!(
                windows.iter().any(|&(s, e)| s <= occ && occ < e),
                "occurrence at {occ} not covered by {windows:?}"
            );
        }
    }

    #[test]
    fn high_symbols_alias_safely() {
        // Symbol 0x100 + 'z' truncates to 'z' in the shadow; the exact
        // screen must reject the alias but keep the true occurrence.
        let zed = u32::from(b'z') + 0x100;
        let pats = vec![vec![zed, zed, u32::from(b'k')]];
        let pf = Prefilter::analyze_opts(&pats, false);
        let mut text: Vec<Sym> = to_symbols("zzkmmmmmmmmm");
        text.extend_from_slice(&[zed, zed, u32::from(b'k')]);
        let (v, windows) = scan_windows(&pf, &text);
        assert_eq!(v, ScanVerdict::Windows);
        let occ = 12usize;
        assert!(
            windows.iter().any(|&(s, e)| s <= occ && occ < e),
            "true high-symbol occurrence not covered: {windows:?}"
        );
        // The alias cluster at 0 must not contain a *kept* match — that is
        // verification's job, but the screen should already reject it.
        assert!(
            !windows.iter().any(|&(s, e)| s <= 0 && 0 < e),
            "aliased start survived the exact screen: {windows:?}"
        );
    }

    #[test]
    fn force_off_records_env_reason() {
        let pf = Prefilter::analyze_opts(&symbolize(&["quiz"]), true);
        assert_eq!(pf.decision(), PrefilterDecision::Disabled(REASON_ENV));
        let (v, _) = scan_windows(&pf, &to_symbols("a quiz"));
        assert_eq!(v, ScanVerdict::Inactive);
    }

    #[test]
    fn serialization_roundtrip_is_fixed_point() {
        for pats in [
            symbolize(&["quiz", "jukebox"]),
            symbolize(&["alpha", "beta", "gamma", "delta"]),
            symbolize(&["acgt", "tgca", "gatt", "acca", "ctag"]),
        ] {
            let pf = Prefilter::analyze_opts(&pats, false);
            let bytes = pf.to_bytes();
            let back = Prefilter::from_bytes(&bytes).unwrap();
            assert_eq!(back.decision(), pf.decision());
            assert_eq!(back.engine, pf.engine);
            assert_eq!(back.max_len(), pf.max_len());
            assert_eq!(back.to_bytes(), bytes, "byte fixed point");
        }
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(Prefilter::from_bytes(&[]).is_err());
        assert!(Prefilter::from_bytes(&[9, 0, 0, 0, 0, 0]).is_err());
        let pf = Prefilter::analyze_opts(&symbolize(&["quiz"]), false);
        let mut bytes = pf.to_bytes();
        bytes.push(0);
        assert!(Prefilter::from_bytes(&bytes).is_err(), "trailing byte");
    }
}
