//! Branch-light `u64`-gulp byte scanning (SWAR: SIMD-within-a-register).
//!
//! The kernels work on a packed `u8` shadow of the `u32` symbol text
//! (`sym as u8`). Truncation is candidate-safe: a pattern occurrence at
//! position `t` has `text[t + off] == sym` exactly, hence
//! `shadow[t + off] == sym as u8` — so scanning the shadow for the
//! truncated byte finds every true occurrence, plus aliases that the exact
//! two-symbol screen rejects afterwards. False *positives* only, never
//! false negatives.

/// 0x80 set in every lane of `x` that is zero — the classic SWAR
/// zero-byte detector. Exact as a *detector*; individual high bits above
/// the lowest true zero can be borrow artifacts, which is fine here
/// because every emitted hit is screened exactly downstream.
#[inline]
fn zero_lanes(x: u64) -> u64 {
    x.wrapping_sub(0x0101_0101_0101_0101) & !x & 0x8080_8080_8080_8080
}

/// Pack the `u32` symbol text into its byte shadow (`sym as u8`).
pub(crate) fn pack_shadow(text: &[u32], out: &mut Vec<u8>) {
    out.clear();
    out.extend(text.iter().map(|&s| s as u8));
}

/// Call `f(i)` for every position `i` where `hay[i]` *may* equal `b`,
/// eight bytes per gulp: broadcast `b`, XOR, detect zero lanes. Emits
/// every true occurrence (completeness); may emit a few extra positions
/// (borrow artifacts), which downstream screening rejects. `f` returns
/// `false` to stop the scan early (density bail-out).
pub(crate) fn for_each_byte_hit(hay: &[u8], b: u8, mut f: impl FnMut(usize) -> bool) {
    let bc = u64::from(b) * 0x0101_0101_0101_0101;
    let mut chunks = hay.chunks_exact(8);
    let mut base = 0usize;
    for chunk in &mut chunks {
        let w = u64::from_le_bytes(chunk.try_into().unwrap());
        let mut z = zero_lanes(w ^ bc);
        while z != 0 {
            let lane = (z.trailing_zeros() >> 3) as usize;
            if !f(base + lane) {
                return;
            }
            z &= z - 1;
        }
        base += 8;
    }
    for (i, &x) in chunks.remainder().iter().enumerate() {
        if x == b && !f(base + i) {
            return;
        }
    }
}

/// 256-bit byte-class membership test.
#[inline]
pub(crate) fn in_mask(mask: &[u64; 4], b: u8) -> bool {
    (mask[(b >> 6) as usize] >> (b & 63)) & 1 != 0
}

/// Set byte `b` in a 256-bit class mask.
#[inline]
pub(crate) fn set_mask(mask: &mut [u64; 4], b: u8) {
    mask[(b >> 6) as usize] |= 1u64 << (b & 63);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_hits_cover_every_true_occurrence() {
        // Adversarial: values adjacent to the target (b−1 triggers the
        // borrow-artifact case), long runs, unaligned tails.
        for b in [0u8, 1, 0x7f, 0x80, 0xfe, 0xff, b'a'] {
            let mut hay = vec![b.wrapping_sub(1); 67];
            for i in [0usize, 7, 8, 9, 31, 32, 63, 64, 66] {
                hay[i] = b;
            }
            let mut got = Vec::new();
            for_each_byte_hit(&hay, b, |i| {
                got.push(i);
                true
            });
            let truth: Vec<usize> = (0..hay.len()).filter(|&i| hay[i] == b).collect();
            for t in &truth {
                assert!(got.contains(t), "missed true hit {t} for byte {b}");
            }
        }
    }

    #[test]
    fn byte_hits_exactness_on_distinct_values() {
        // With no adjacent values in the haystack the detector is exact.
        let hay: Vec<u8> = (0..200u8)
            .map(|i| if i % 7 == 0 { 42 } else { 100 })
            .collect();
        let mut got = Vec::new();
        for_each_byte_hit(&hay, 42, |i| {
            got.push(i);
            true
        });
        let truth: Vec<usize> = (0..hay.len()).filter(|&i| hay[i] == 42).collect();
        assert_eq!(got, truth);
    }

    #[test]
    fn shadow_truncates() {
        let mut out = Vec::new();
        pack_shadow(&[0x41, 0x141, 0xffff_ff00, 7], &mut out);
        assert_eq!(out, vec![0x41, 0x41, 0x00, 7]);
    }

    #[test]
    fn mask_set_and_test() {
        let mut m = [0u64; 4];
        for b in [0u8, 63, 64, 127, 128, 200, 255] {
            assert!(!in_mask(&m, b));
            set_mask(&mut m, b);
            assert!(in_mask(&m, b));
        }
        assert!(!in_mask(&m, 1));
        assert!(!in_mask(&m, 129));
    }
}
