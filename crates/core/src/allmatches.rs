//! All-patterns-per-position output (paper §2 remark).
//!
//! The parallel matchers report the *longest* pattern per position; the
//! sequential tradition reports *all* of them, which is output-bound. The
//! paper notes that given the longest-match output, Hagerup's interval
//! allocation \[H93\] expands it to the full list in `O(log log³ n)` time
//! and linear work. We realize the same plan with the primitives at hand:
//!
//! * every pattern `p` knows the longest pattern that is a *proper* prefix
//!   of it (`chain[p]`, straight from the Theorem 2 tables), so the set of
//!   patterns matching at a position is exactly the chain from the longest
//!   match downward;
//! * chain lengths give per-position output counts; a prefix-sum allocates
//!   the output; a final round fills each position's slice independently.
//!
//! Work is `O(n + output size)`; the prefix-sum contributes the usual
//! `O(log n)` rounds (our stand-in for the interval-allocation step).
//!
//! ```
//! use pdm_core::allmatches::match_all;
//! use pdm_core::static1d::StaticMatcher;
//! use pdm_core::dict::{symbolize, to_symbols};
//! use pdm_pram::Ctx;
//!
//! let ctx = Ctx::seq();
//! let m = StaticMatcher::build(&ctx, &symbolize(&["a", "ab", "abc"])).unwrap();
//! let all = match_all(&ctx, &m, &to_symbols("abx"));
//! // All three nested patterns... "a" and "ab" match at 0, longest first.
//! assert_eq!(all.at(0), &[1, 0]);
//! assert!(all.at(2).is_empty());
//! ```

use crate::dict::{PatId, Sym};
use crate::static1d::namemap::unpack2;
use crate::static1d::{MatchOutput, StaticMatcher};
use pdm_pram::Ctx;
use pdm_primitives::scan::prefix_sums;

/// CSR-style per-position pattern lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllMatches {
    /// `offsets[i]..offsets[i+1]` indexes `entries` for position `i`.
    pub offsets: Vec<u64>,
    /// Pattern ids, longest first within each position.
    pub entries: Vec<PatId>,
}

impl AllMatches {
    /// Patterns matching at position `i`, longest first.
    pub fn at(&self, i: usize) -> &[PatId] {
        &self.entries[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Total number of occurrences.
    pub fn total(&self) -> usize {
        self.entries.len()
    }
}

/// Per-pattern chains: `chain[p]` = longest pattern that is a proper prefix
/// of `p`; `depth[p]` = chain length including `p` itself.
#[derive(Debug, Clone)]
pub struct PatternChains {
    pub chain: Vec<Option<PatId>>,
    pub depth: Vec<u32>,
}

/// Build the chains from the static tables (one Theorem-2 lookup per
/// pattern plus a pointer-jumping-style resolution, `O(κ)` work).
pub fn pattern_chains(matcher: &StaticMatcher) -> PatternChains {
    let t = matcher.tables();
    let k = t.n_patterns;
    let mut chain: Vec<Option<PatId>> = vec![None; k];
    for (p, prefs) in t.pattern_prefs.iter().enumerate() {
        if prefs.len() >= 2 {
            // Longest pattern prefixing P_p[0..len−1] (proper prefix).
            if let Some(v) = t.longest.get(prefs[prefs.len() - 2]) {
                let (_, pid) = unpack2(v);
                chain[p] = Some(pid);
            }
        }
    }
    // Depths along the chain. Chains follow strictly decreasing length, so
    // resolving in increasing pattern-length order terminates in one pass.
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by_key(|&p| t.pattern_prefs[p].len());
    let mut depth = vec![0u32; k];
    for p in order {
        depth[p] = 1 + chain[p].map_or(0, |q| depth[q as usize]);
    }
    PatternChains { chain, depth }
}

/// Expand a longest-match output into all matches per position.
pub fn enumerate_all(ctx: &Ctx, matcher: &StaticMatcher, out: &MatchOutput) -> AllMatches {
    let chains = pattern_chains(matcher);
    let n = out.longest_pattern.len();
    let counts: Vec<u64> = ctx.map(n, |i| {
        out.longest_pattern[i].map_or(0, |p| chains.depth[p as usize] as u64)
    });
    let (offsets_v, total) = prefix_sums(ctx, &counts);
    let mut offsets = offsets_v;
    offsets.push(total);
    let entries: Vec<PatId> = {
        let cells: Vec<std::sync::atomic::AtomicU32> = (0..total as usize)
            .map(|_| std::sync::atomic::AtomicU32::new(0))
            .collect();
        ctx.for_each(n, |i| {
            let mut cur = out.longest_pattern[i];
            let mut off = offsets[i] as usize;
            while let Some(p) = cur {
                cells[off].store(p, std::sync::atomic::Ordering::Relaxed);
                off += 1;
                cur = chains.chain[p as usize];
            }
        });
        ctx.cost.work(total);
        cells.into_iter().map(|c| c.into_inner()).collect()
    };
    AllMatches { offsets, entries }
}

/// Convenience: match and expand in one call.
pub fn match_all(ctx: &Ctx, matcher: &StaticMatcher, text: &[Sym]) -> AllMatches {
    let out = matcher.match_text(ctx, text);
    enumerate_all(ctx, matcher, &out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::{symbolize, to_symbols};
    use pdm_baselines::naive;

    fn check_all(patterns: &[Vec<u32>], text: &[u32], tag: &str) {
        let ctx = Ctx::seq();
        let m = StaticMatcher::build(&ctx, patterns).unwrap();
        let got = match_all(&ctx, &m, text);
        let occ = naive::find_all(patterns, text);
        // Group the oracle by start position.
        let mut want: Vec<Vec<usize>> = vec![Vec::new(); text.len()];
        for o in occ {
            want[o.start].push(o.pat);
        }
        for w in want.iter_mut() {
            // Longest first (equal lengths impossible among matches here).
            w.sort_by_key(|&p| std::cmp::Reverse(patterns[p].len()));
        }
        #[allow(clippy::needless_range_loop)]
        for i in 0..text.len() {
            let g: Vec<usize> = got.at(i).iter().map(|&p| p as usize).collect();
            assert_eq!(g, want[i], "{tag}: position {i}");
        }
        assert_eq!(
            got.total(),
            want.iter().map(Vec::len).sum::<usize>(),
            "{tag}: totals"
        );
    }

    #[test]
    fn nested_patterns_enumerate_fully() {
        let pats = symbolize(&["a", "ab", "abc", "abcd"]);
        check_all(&pats, &to_symbols("abcdab"), "nested");
    }

    #[test]
    fn cross_pattern_prefix_chains() {
        // "she" has proper-prefix patterns via a *different* pattern "sh".
        let pats = symbolize(&["sh", "she", "s", "he"]);
        check_all(&pats, &to_symbols("sheshhe"), "cross");
    }

    #[test]
    fn no_matches_no_output() {
        let pats = symbolize(&["xyz"]);
        let ctx = Ctx::seq();
        let m = StaticMatcher::build(&ctx, &pats).unwrap();
        let got = match_all(&ctx, &m, &to_symbols("aaaa"));
        assert_eq!(got.total(), 0);
        assert!(got.at(2).is_empty());
    }

    #[test]
    fn chains_and_depths() {
        let ctx = Ctx::seq();
        let pats = symbolize(&["a", "ab", "abc", "x"]);
        let m = StaticMatcher::build(&ctx, &pats).unwrap();
        let ch = pattern_chains(&m);
        assert_eq!(ch.chain, vec![None, Some(0), Some(1), None]);
        assert_eq!(ch.depth, vec![1, 2, 3, 1]);
    }

    #[test]
    fn randomized_heavy_overlap() {
        use pdm_textgen::{strings, Alphabet};
        for seed in 0..8 {
            let mut r = strings::rng(seed);
            let pats = strings::nested_dictionary(&mut r, Alphabet::Binary, 6);
            let mut text = strings::random_text(&mut r, Alphabet::Binary, 150);
            strings::plant_occurrences(&mut r, &mut text, &pats, 8);
            check_all(&pats, &text, &format!("rand-{seed}"));
        }
    }

    #[test]
    fn output_is_linear_in_occurrences() {
        let ctx = Ctx::seq();
        let pats = symbolize(&["a", "aa", "aaa", "aaaa"]);
        let m = StaticMatcher::build(&ctx, &pats).unwrap();
        let text = vec![u32::from(b'a'); 100];
        let got = match_all(&ctx, &m, &text);
        // Position i has min(4, 100−i) matches.
        assert_eq!(got.total(), 4 * 97 + 3 + 2 + 1);
        assert_eq!(got.at(0).len(), 4);
        assert_eq!(got.at(99).len(), 1);
    }
}
