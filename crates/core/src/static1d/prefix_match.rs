//! Text processing: static prefix-matching (§4.1, Theorem 1) and the final
//! longest-pattern lookup (§4.2), in `O(log m)` time and `O(n log m)` work.
//!
//! The paper's recursion, unrolled:
//!
//! * **Ascent (= the spawn side of shrink-and-spawn):** compute level-`k`
//!   block names at *every* text position by doubling, resolving pairs
//!   through the dictionary tables first and a text-local overlay for
//!   blocks the dictionary never saw (§3.1's "special symbols"). Reading the
//!   level-`k` array at stride `2^k` from offset `i` is exactly the paper's
//!   `i`-th spawned copy; storing all offsets in one flat array realizes all
//!   `2^k` copies in `O(n)` space per level.
//! * **Descent (= the unwinding with Extend-Right):** starting from the
//!   deepest level (where at most one block fits), maintain per position the
//!   longest matching shrunk-dictionary prefix as `(block count, prefix
//!   name)`. Arriving at level `k`, the count doubles (same characters, half
//!   the block size), and the paper's argument bounds the extension by
//!   `L − 1 = 1` block: if two more level-`k` blocks matched, one more
//!   level-`k+1` block would have matched. So each level does **one**
//!   namestamp lookup per position — `O(1)` work, `O(n)` per level,
//!   `O(n log m)` overall.
//!
//! The descent starts at `min(K, ⌊log₂ n⌋)`: at that level at most one block
//! fits in the text, so the base case ("shrunk patterns have ≤ 1 block") is
//! satisfied even when the text is shorter than the longest pattern.

use crate::dict::{PatId, Sym};
use crate::static1d::namemap::unpack2;
use pdm_naming::{NamePool, NameTable, IDENTITY};
use pdm_pram::{floor_log2, Ctx};

/// Lookup interface shared by the static tables and the dynamic dictionary
/// (§6 reuses this text side verbatim against growable tables).
pub trait MatchTables: Sync {
    /// `K = ⌈log₂ m⌉` of the (current) dictionary.
    fn levels(&self) -> usize;
    /// Level-0 name of a symbol, if the dictionary contains it.
    fn sym_lookup(&self, c: Sym) -> Option<u32>;
    /// Level-`k` block name for a pair of level-`k−1` names (`1 ≤ k`).
    fn pair_lookup(&self, k: usize, a: u32, b: u32) -> Option<u32>;
    /// Extension: prefix-name extended by one level-`k` block.
    fn ext_lookup(&self, k: usize, pref: u32, block: u32) -> Option<u32>;
    /// `(pattern, length)` of the longest pattern that is a prefix of the
    /// named prefix (Theorem 2's table).
    fn longest_pattern(&self, pref: u32) -> Option<(PatId, u32)>;
    /// Some pattern having the named prefix (retrieve-index, `I_p`).
    fn owner(&self, pref: u32) -> Option<PatId>;
}

/// Per-position output of dictionary matching (the paper's output format:
/// for each location, the longest pattern that matches there; plus the
/// §4.1 prefix-matching artifacts, which the dynamic and small-alphabet
/// layers consume).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchOutput {
    /// `δ_t(τ)` length: longest dictionary prefix matching at each position.
    pub prefix_len: Vec<u32>,
    /// `δ_t(τ)`: its prefix name (`IDENTITY` when no symbol matches).
    pub prefix_name: Vec<u32>,
    /// Longest full pattern matching at each position.
    pub longest_pattern: Vec<Option<PatId>>,
    /// Its length (0 when none).
    pub longest_pattern_len: Vec<u32>,
    /// `I_p(τ)`: some pattern having the matched prefix.
    pub prefix_owner: Vec<Option<PatId>>,
}

impl MatchOutput {
    pub fn empty() -> Self {
        MatchOutput {
            prefix_len: Vec::new(),
            prefix_name: Vec::new(),
            longest_pattern: Vec::new(),
            longest_pattern_len: Vec::new(),
            prefix_owner: Vec::new(),
        }
    }

    /// All `(position, pattern)` pairs with a longest-pattern match.
    pub fn occurrences(&self) -> Vec<(usize, PatId)> {
        self.longest_pattern
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|p| (i, p)))
            .collect()
    }
}

/// Phase-1 result, exposed separately for layers that only need prefixes.
#[derive(Debug, Clone)]
pub struct PrefixMatch {
    pub len: Vec<u32>,
    pub name: Vec<u32>,
}

/// Static prefix-matching (§4.1): longest dictionary prefix per position.
pub fn prefix_match<T: MatchTables>(ctx: &Ctx, tables: &T, text: &[Sym]) -> PrefixMatch {
    let n = text.len();
    if n == 0 {
        return PrefixMatch {
            len: Vec::new(),
            name: Vec::new(),
        };
    }
    let kt = tables.levels().min(floor_log2(n) as usize);
    let text_pool = NamePool::text_local();

    // Ascent: block names at every position, per level.
    let mut names: Vec<Vec<u32>> = Vec::with_capacity(kt + 1);
    ctx.cost.phase("text/ascent", || {
        let local0 = NameTable::with_capacity(n, text_pool.clone());
        names.push(ctx.map(n, |i| {
            tables
                .sym_lookup(text[i])
                .unwrap_or_else(|| local0.name(text[i], 0))
        }));
        for k in 1..=kt {
            let half = 1usize << (k - 1);
            let cnt = n + 1 - (1usize << k);
            let prev = &names[k - 1];
            let local = NameTable::with_capacity(cnt, text_pool.clone());
            let lvl = ctx.map(cnt, |i| {
                let (a, b) = (prev[i], prev[i + half]);
                let dict = if NamePool::is_text_local(a) || NamePool::is_text_local(b) {
                    None
                } else {
                    tables.pair_lookup(k, a, b)
                };
                dict.unwrap_or_else(|| local.name(a, b))
            });
            names.push(lvl);
        }
    });

    // Descent: (blocks, prefix-name) per position; one extension per level.
    let mut state: Vec<(u32, u32)> = vec![(0, IDENTITY); n];
    ctx.cost.phase("text/descent", || {
        for k in (0..=kt).rev() {
            let lvl = &names[k];
            let span = 1usize << k;
            ctx.for_each_mut(&mut state, |i, st| {
                let mut b = if k == kt { 0 } else { st.0 << 1 };
                let mut pref = st.1;
                let clen = (b as usize) << k;
                if i + clen + span <= n {
                    let block = lvl[i + clen];
                    if !NamePool::is_text_local(block) {
                        if let Some(np) = tables.ext_lookup(k, pref, block) {
                            pref = np;
                            b += 1;
                        }
                    }
                }
                *st = (b, pref);
            });
        }
    });

    PrefixMatch {
        len: state.iter().map(|s| s.0).collect(),
        name: state.iter().map(|s| s.1).collect(),
    }
}

/// Full dictionary matching: phase 1 + the longest-pattern lookup.
pub fn match_text<T: MatchTables>(ctx: &Ctx, tables: &T, text: &[Sym]) -> MatchOutput {
    let n = text.len();
    if n == 0 {
        return MatchOutput::empty();
    }
    let pm = prefix_match(ctx, tables, text);
    let mut out = MatchOutput {
        prefix_len: pm.len,
        prefix_name: pm.name,
        longest_pattern: vec![None; n],
        longest_pattern_len: vec![0; n],
        prefix_owner: vec![None; n],
    };
    ctx.cost.phase("text/longest-lookup", || {
        let names = &out.prefix_name;
        let lens = &out.prefix_len;
        let pats: Vec<(Option<PatId>, u32, Option<PatId>)> = ctx.map(n, |i| {
            if lens[i] == 0 {
                return (None, 0, None);
            }
            let owner = tables.owner(names[i]);
            match tables.longest_pattern(names[i]) {
                Some((pid, plen)) => (Some(pid), plen, owner),
                None => (None, 0, owner),
            }
        });
        for (i, (p, l, o)) in pats.into_iter().enumerate() {
            out.longest_pattern[i] = p;
            out.longest_pattern_len[i] = l;
            out.prefix_owner[i] = o;
        }
    });
    out
}

/// Glue for `MatchTables` implementors backed by [`super::tables::StaticTables`].
impl MatchTables for super::tables::StaticTables {
    fn levels(&self) -> usize {
        self.levels
    }

    fn sym_lookup(&self, c: Sym) -> Option<u32> {
        self.sym.lookup(c, 0)
    }

    fn pair_lookup(&self, k: usize, a: u32, b: u32) -> Option<u32> {
        self.pair[k - 1].lookup(a, b)
    }

    fn ext_lookup(&self, k: usize, pref: u32, block: u32) -> Option<u32> {
        self.ext[k].lookup(pref, block)
    }

    fn longest_pattern(&self, pref: u32) -> Option<(PatId, u32)> {
        self.longest.get(pref).map(|v| {
            let (len, pid) = unpack2(v);
            (pid, len)
        })
    }

    fn owner(&self, pref: u32) -> Option<PatId> {
        self.owner.get(pref).map(|v| unpack2(v).1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::{symbolize, to_symbols};
    use crate::static1d::StaticMatcher;

    #[test]
    fn match_output_empty_shape() {
        let e = MatchOutput::empty();
        assert!(e.prefix_len.is_empty());
        assert!(e.occurrences().is_empty());
    }

    #[test]
    fn occurrences_lists_longest_matches_only() {
        let ctx = Ctx::seq();
        let m = StaticMatcher::build(&ctx, &symbolize(&["ab", "abc"])).unwrap();
        let out = m.match_text(&ctx, &to_symbols("xabcab"));
        assert_eq!(out.occurrences(), vec![(1, 1), (4, 0)]);
    }

    #[test]
    fn prefix_match_standalone_agrees_with_full_match() {
        let ctx = Ctx::seq();
        let pats = symbolize(&["he", "hers"]);
        let m = StaticMatcher::build(&ctx, &pats).unwrap();
        let text = to_symbols("hershey");
        let pm = m.prefix_match(&ctx, &text);
        let full = m.match_text(&ctx, &text);
        assert_eq!(pm.len, full.prefix_len);
        assert_eq!(pm.name, full.prefix_name);
    }

    #[test]
    fn descent_starts_below_dictionary_levels_for_short_texts() {
        // m = 16 (K = 4) but the text has 3 symbols: the descent must clamp
        // to ⌊log₂ 3⌋ = 1 and still be correct.
        let ctx = Ctx::seq();
        let pats = symbolize(&["abcdefghijklmnop", "ab", "b"]);
        let m = StaticMatcher::build(&ctx, &pats).unwrap();
        let out = m.match_text(&ctx, &to_symbols("abz"));
        assert_eq!(out.longest_pattern[0], Some(1));
        assert_eq!(out.longest_pattern[1], Some(2));
        assert_eq!(out.prefix_len[2], 0);
    }
}
