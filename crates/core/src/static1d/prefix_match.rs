//! Text processing: static prefix-matching (§4.1, Theorem 1) and the final
//! longest-pattern lookup (§4.2), in `O(log m)` time and `O(n log m)` work.
//!
//! The paper's recursion, unrolled:
//!
//! * **Ascent (= the spawn side of shrink-and-spawn):** compute level-`k`
//!   block names at *every* text position by doubling, resolving pairs
//!   through the dictionary tables. Reading the level-`k` array at stride
//!   `2^k` from offset `i` is exactly the paper's `i`-th spawned copy;
//!   storing all offsets in one flat array realizes all `2^k` copies in
//!   `O(n)` space per level.
//! * **Descent (= the unwinding with Extend-Right):** starting from the
//!   deepest level (where at most one block fits), maintain per position the
//!   longest matching shrunk-dictionary prefix as `(block count, prefix
//!   name)`. Arriving at level `k`, the count doubles (same characters, half
//!   the block size), and the paper's argument bounds the extension by
//!   `L − 1 = 1` block: if two more level-`k` blocks matched, one more
//!   level-`k+1` block would have matched. So each level does **one**
//!   namestamp lookup per position — `O(1)` work, `O(n)` per level,
//!   `O(n log m)` overall.
//!
//! The descent starts at `min(K, ⌊log₂ n⌋)`: at that level at most one block
//! fits in the text, so the base case ("shrunk patterns have ≤ 1 block") is
//! satisfied even when the text is shorter than the longest pattern.
//!
//! ## The sentinel fast path
//!
//! The paper names text blocks the dictionary never saw with "special
//! symbols" — realized historically by a text-local [`Overlay`]-style table
//! allocating fresh names ≥ [`pdm_naming::TEXT_NAME_BASE`] per novel block.
//! But every consumer of those names — the next ascent level's pair lookup,
//! the descent's extension lookup — probes a *dictionary* table, which only
//! contains pairs of dictionary names, so any pair with a text-local half
//! misses identically regardless of which text-local name it carries. The
//! fast path therefore collapses all text-local names to the single
//! [`TEXT_MISS`] sentinel: no atomic pool allocation, no text-side table
//! insertions, no per-level table construction (equivalence argument in
//! DESIGN.md §11, verified by `tests/sentinel_equiv.rs`). The original
//! text-local scheme survives as [`prefix_match_ref`]/[`match_text_ref`] —
//! the proptest oracle and the bench "before" leg.

use crate::dict::{PatId, Sym};
use crate::scratch::{ensure, TextScratch};
use crate::static1d::namemap::unpack2;
use pdm_naming::{NamePool, NameTable, IDENTITY, TEXT_MISS};
use pdm_pram::{floor_log2, Ctx};

/// Lookup interface shared by the static tables and the dynamic dictionary
/// (§6 reuses this text side verbatim against growable tables).
pub trait MatchTables: Sync {
    /// `K = ⌈log₂ m⌉` of the (current) dictionary.
    fn levels(&self) -> usize;
    /// Level-0 name of a symbol, if the dictionary contains it.
    fn sym_lookup(&self, c: Sym) -> Option<u32>;
    /// Level-`k` block name for a pair of level-`k−1` names (`1 ≤ k`).
    fn pair_lookup(&self, k: usize, a: u32, b: u32) -> Option<u32>;
    /// Extension: prefix-name extended by one level-`k` block.
    fn ext_lookup(&self, k: usize, pref: u32, block: u32) -> Option<u32>;
    /// `(pattern, length)` of the longest pattern that is a prefix of the
    /// named prefix (Theorem 2's table).
    fn longest_pattern(&self, pref: u32) -> Option<(PatId, u32)>;
    /// Some pattern having the named prefix (retrieve-index, `I_p`).
    fn owner(&self, pref: u32) -> Option<PatId>;
    /// Overlap (in symbols) a chunked text split must extend each chunk by
    /// for per-position outputs to be split-invariant — `m − 1` for a
    /// dictionary whose longest pattern has `m` symbols (every dictionary
    /// prefix at a position `i` ends within `text[i..i+m]`). `None` opts a
    /// table out of the chunk-grained parallel driver (growing tables whose
    /// `m` can move mid-call, and the reference views).
    fn chunk_overlap(&self) -> Option<usize> {
        None
    }
}

/// Per-position output of dictionary matching (the paper's output format:
/// for each location, the longest pattern that matches there; plus the
/// §4.1 prefix-matching artifacts, which the dynamic and small-alphabet
/// layers consume).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MatchOutput {
    /// `δ_t(τ)` length: longest dictionary prefix matching at each position.
    pub prefix_len: Vec<u32>,
    /// `δ_t(τ)`: its prefix name (`IDENTITY` when no symbol matches).
    pub prefix_name: Vec<u32>,
    /// Longest full pattern matching at each position.
    pub longest_pattern: Vec<Option<PatId>>,
    /// Its length (0 when none).
    pub longest_pattern_len: Vec<u32>,
    /// `I_p(τ)`: some pattern having the matched prefix.
    pub prefix_owner: Vec<Option<PatId>>,
}

impl MatchOutput {
    pub fn empty() -> Self {
        Self::default()
    }

    /// All `(position, pattern)` pairs with a longest-pattern match.
    pub fn occurrences(&self) -> Vec<(usize, PatId)> {
        self.longest_pattern
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|p| (i, p)))
            .collect()
    }

    fn clear(&mut self) {
        self.prefix_len.clear();
        self.prefix_name.clear();
        self.longest_pattern.clear();
        self.longest_pattern_len.clear();
        self.prefix_owner.clear();
    }
}

/// Phase-1 result, exposed separately for layers that only need prefixes.
#[derive(Debug, Clone, Default)]
pub struct PrefixMatch {
    pub len: Vec<u32>,
    pub name: Vec<u32>,
}

/// Append into `dst`, counting a grow event if capacity was insufficient.
#[inline]
fn extend_counted<T>(dst: &mut Vec<T>, n: usize, it: impl Iterator<Item = T>, grows: &mut u64) {
    if dst.capacity() - dst.len() < n {
        *grows += 1;
    }
    dst.extend(it);
}

/// Sentinel-named ascent + descent: leaves `(blocks, prefix-name)` per
/// position in `scratch.state`. Shared by the prefix-only and full paths.
fn ascend_descend<T: MatchTables>(ctx: &Ctx, tables: &T, text: &[Sym], scratch: &mut TextScratch) {
    let n = text.len();
    let kt = tables.levels().min(floor_log2(n) as usize);
    if scratch.levels.len() <= kt {
        scratch.levels.resize_with(kt + 1, Vec::new);
    }
    let mut grows = 0u64;
    let mut lookups = 0u64;

    // Ascent: block names at every position, per level; any pair with a
    // text-local (= sentinel) half misses every dictionary table, so it
    // *is* the sentinel at the next level too.
    ctx.cost.phase("text/ascent", || {
        let l0 = &mut scratch.levels[0];
        ensure(l0, n, &mut grows);
        ctx.for_each_mut(l0, |i, v| {
            *v = tables.sym_lookup(text[i]).unwrap_or(TEXT_MISS);
        });
        lookups += n as u64;
        for k in 1..=kt {
            let half = 1usize << (k - 1);
            let cnt = n + 1 - (1usize << k);
            let (lower, upper) = scratch.levels.split_at_mut(k);
            let prev = &lower[k - 1];
            let cur = &mut upper[0];
            ensure(cur, cnt, &mut grows);
            ctx.for_each_mut(cur, |i, v| {
                let (a, b) = (prev[i], prev[i + half]);
                *v = if a == TEXT_MISS || b == TEXT_MISS {
                    TEXT_MISS
                } else {
                    tables.pair_lookup(k, a, b).unwrap_or(TEXT_MISS)
                };
            });
            lookups += cnt as u64;
        }
    });

    // Descent: (blocks, prefix-name) per position; one extension per level.
    ctx.cost.phase("text/descent", || {
        ensure(&mut scratch.state, n, &mut grows); // default = (0, IDENTITY)
        for k in (0..=kt).rev() {
            let lvl = &scratch.levels[k];
            let span = 1usize << k;
            ctx.for_each_mut(&mut scratch.state, |i, st| {
                let mut b = if k == kt { 0 } else { st.0 << 1 };
                let mut pref = st.1;
                let clen = (b as usize) << k;
                if i + clen + span <= n {
                    let block = lvl[i + clen];
                    if block != TEXT_MISS {
                        if let Some(np) = tables.ext_lookup(k, pref, block) {
                            pref = np;
                            b += 1;
                        }
                    }
                }
                *st = (b, pref);
            });
            lookups += n as u64;
        }
    });

    scratch.grows += grows;
    scratch.lookups += lookups;
}

/// Static prefix-matching (§4.1) into caller-owned buffers: `out` is
/// overwritten, `scratch` buffers are reused across calls (zero steady-state
/// allocation).
pub fn prefix_match_into<T: MatchTables>(
    ctx: &Ctx,
    tables: &T,
    text: &[Sym],
    scratch: &mut TextScratch,
    out: &mut PrefixMatch,
) {
    let n = text.len();
    out.len.clear();
    out.name.clear();
    if n == 0 {
        return;
    }
    ascend_descend(ctx, tables, text, scratch);
    let mut grows = 0u64;
    extend_counted(
        &mut out.len,
        n,
        scratch.state.iter().map(|s| s.0),
        &mut grows,
    );
    extend_counted(
        &mut out.name,
        n,
        scratch.state.iter().map(|s| s.1),
        &mut grows,
    );
    scratch.grows += grows;
}

/// Static prefix-matching (§4.1): longest dictionary prefix per position.
pub fn prefix_match<T: MatchTables>(ctx: &Ctx, tables: &T, text: &[Sym]) -> PrefixMatch {
    let mut scratch = TextScratch::new();
    let mut out = PrefixMatch::default();
    prefix_match_into(ctx, tables, text, &mut scratch, &mut out);
    out
}

/// Full dictionary matching (phase 1 + the longest-pattern lookup) into
/// caller-owned buffers: `out` is overwritten, `scratch` is reused.
pub fn match_text_into<T: MatchTables>(
    ctx: &Ctx,
    tables: &T,
    text: &[Sym],
    scratch: &mut TextScratch,
    out: &mut MatchOutput,
) {
    let n = text.len();
    out.clear();
    if n == 0 {
        return;
    }
    if let Some(k) = chunk_grain(ctx, tables, n) {
        return match_text_chunk_grained(ctx, tables, text, scratch, out, k);
    }
    ascend_descend(ctx, tables, text, scratch);
    let mut grows = 0u64;
    extend_counted(
        &mut out.prefix_len,
        n,
        scratch.state.iter().map(|s| s.0),
        &mut grows,
    );
    extend_counted(
        &mut out.prefix_name,
        n,
        scratch.state.iter().map(|s| s.1),
        &mut grows,
    );
    ctx.cost.phase("text/longest-lookup", || {
        ensure(&mut scratch.pats, n, &mut grows);
        let names = &out.prefix_name;
        let lens = &out.prefix_len;
        ctx.for_each_mut(&mut scratch.pats, |i, v| {
            *v = if lens[i] == 0 {
                (None, 0, None)
            } else {
                let owner = tables.owner(names[i]);
                match tables.longest_pattern(names[i]) {
                    Some((pid, plen)) => (Some(pid), plen, owner),
                    None => (None, 0, owner),
                }
            };
        });
    });
    scratch.lookups += n as u64;
    extend_counted(
        &mut out.longest_pattern,
        n,
        scratch.pats.iter().map(|p| p.0),
        &mut grows,
    );
    extend_counted(
        &mut out.longest_pattern_len,
        n,
        scratch.pats.iter().map(|p| p.1),
        &mut grows,
    );
    extend_counted(
        &mut out.prefix_owner,
        n,
        scratch.pats.iter().map(|p| p.2),
        &mut grows,
    );
    scratch.grows += grows;
}

/// How many coarse chunks a parallel match of `n` symbols should split
/// into, or `None` to run the per-level fine-grained rounds. The per-level
/// rounds dispatch the pool `~3·log m` times per call; on short rounds the
/// wake/park handshake dominates and parallel runs *slower* than
/// sequential (BENCH_text.json's par-width-2 static1d regression). A
/// chunk-grained split pays one dispatch for the whole call instead.
fn chunk_grain<T: MatchTables>(ctx: &Ctx, tables: &T, n: usize) -> Option<usize> {
    if !ctx.is_parallel() || n <= pdm_pram::par_threshold() {
        return None;
    }
    let overlap = tables.chunk_overlap()?;
    // A chunk must dwarf both its overlap (redundant boundary work) and
    // the dispatch threshold for the split to pay.
    let min_chunk = (4 * overlap).max(pdm_pram::par_threshold()).max(1);
    let k = ctx.exec.threads().min(n / min_chunk);
    (k >= 2).then_some(k)
}

/// Chunk-grained parallel matching: one pool round of `k` coarse jobs,
/// each running the *sequential* ascent/descent/lookup pipeline over an
/// overlap-extended slice and writing its proper range of the per-position
/// outputs. Outputs are identical to the whole-text call: every dictionary
/// prefix starting in a chunk ends within its `m − 1` overlap (the
/// [`StaticMatcher::match_text_chunked`](crate::static1d::StaticMatcher)
/// argument), and chunks partition `[0, n)`. Per-chunk scratch lives in
/// `scratch.children`, so steady-state calls stay allocation-free.
fn match_text_chunk_grained<T: MatchTables>(
    ctx: &Ctx,
    tables: &T,
    text: &[Sym],
    scratch: &mut TextScratch,
    out: &mut MatchOutput,
    k: usize,
) {
    let n = text.len();
    let overlap = tables.chunk_overlap().unwrap_or(0);
    let chunk = n.div_ceil(k);
    let mut grows = 0u64;
    ensure(&mut out.prefix_len, n, &mut grows);
    ensure(&mut out.prefix_name, n, &mut grows);
    ensure(&mut out.longest_pattern, n, &mut grows);
    ensure(&mut out.longest_pattern_len, n, &mut grows);
    ensure(&mut out.prefix_owner, n, &mut grows);

    let mut children = std::mem::take(&mut scratch.children);
    if children.len() < k {
        children.resize_with(k, TextScratch::default);
        grows += 1;
    }

    struct Job<'a> {
        text: &'a [Sym],
        take: usize,
        scratch: &'a mut TextScratch,
        pl: &'a mut [u32],
        pn: &'a mut [u32],
        lp: &'a mut [Option<PatId>],
        ll: &'a mut [u32],
        po: &'a mut [Option<PatId>],
    }

    let mut jobs: Vec<Job> = Vec::with_capacity(k);
    {
        let mut pl = &mut out.prefix_len[..];
        let mut pn = &mut out.prefix_name[..];
        let mut lp = &mut out.longest_pattern[..];
        let mut ll = &mut out.longest_pattern_len[..];
        let mut po = &mut out.prefix_owner[..];
        let mut at = 0usize;
        for child in children.iter_mut().take(k) {
            let end = (at + chunk).min(n);
            let ext = (end + overlap).min(n);
            let take = end - at;
            let (pl0, rest) = pl.split_at_mut(take);
            pl = rest;
            let (pn0, rest) = pn.split_at_mut(take);
            pn = rest;
            let (lp0, rest) = lp.split_at_mut(take);
            lp = rest;
            let (ll0, rest) = ll.split_at_mut(take);
            ll = rest;
            let (po0, rest) = po.split_at_mut(take);
            po = rest;
            jobs.push(Job {
                text: &text[at..ext],
                take,
                scratch: child,
                pl: pl0,
                pn: pn0,
                lp: lp0,
                ll: ll0,
                po: po0,
            });
            at = end;
            if at >= n {
                break;
            }
        }
    }

    ctx.for_each_mut_ops(&mut jobs, n as u64, |_, job| {
        // Each job runs the whole pipeline sequentially (sharing the cost
        // model, so phases/work still accrue to this call) and writes its
        // proper output range in place — no intermediate buffer, and the
        // longest-pattern lookup skips the overlap tail entirely.
        let seq = Ctx {
            exec: pdm_pram::ExecPolicy::Seq,
            cost: ctx.cost.clone(),
        };
        ascend_descend(&seq, tables, job.text, job.scratch);
        let take = job.take;
        let state = &job.scratch.state[..take];
        seq.cost.phase("text/longest-lookup", || {
            for (i, &(blocks, name)) in state.iter().enumerate() {
                job.pl[i] = blocks;
                job.pn[i] = name;
                let (lp, ll, po) = if blocks == 0 {
                    (None, 0, None)
                } else {
                    let owner = tables.owner(name);
                    match tables.longest_pattern(name) {
                        Some((pid, plen)) => (Some(pid), plen, owner),
                        None => (None, 0, owner),
                    }
                };
                job.lp[i] = lp;
                job.ll[i] = ll;
                job.po[i] = po;
            }
        });
        job.scratch.lookups += take as u64;
    });
    drop(jobs);

    // Fold child counters into the session scratch (drain-to-zero so the
    // caller's per-call deltas stay meaningful).
    for child in &mut children {
        grows += std::mem::take(&mut child.grows);
        scratch.lookups += std::mem::take(&mut child.lookups);
    }
    scratch.children = children;
    scratch.grows += grows;
}

/// Full dictionary matching: phase 1 + the longest-pattern lookup.
pub fn match_text<T: MatchTables>(ctx: &Ctx, tables: &T, text: &[Sym]) -> MatchOutput {
    let mut scratch = TextScratch::new();
    let mut out = MatchOutput::empty();
    match_text_into(ctx, tables, text, &mut scratch, &mut out);
    out
}

/// Reference prefix-matching with the pre-sentinel text-local naming
/// scheme: novel text blocks get fresh names from a per-call text-local
/// pool, with per-level overlay tables and per-level allocation. Kept as
/// the equivalence oracle for the sentinel fast path (`sentinel_equiv`
/// proptests) and the "before" leg of the `text_throughput` bench.
pub fn prefix_match_ref<T: MatchTables>(ctx: &Ctx, tables: &T, text: &[Sym]) -> PrefixMatch {
    let n = text.len();
    if n == 0 {
        return PrefixMatch::default();
    }
    let kt = tables.levels().min(floor_log2(n) as usize);
    let text_pool = NamePool::text_local();

    // Ascent: block names at every position, per level.
    let mut names: Vec<Vec<u32>> = Vec::with_capacity(kt + 1);
    ctx.cost.phase("text/ascent", || {
        let local0 = NameTable::with_capacity(n, text_pool.clone());
        names.push(ctx.map(n, |i| {
            tables
                .sym_lookup(text[i])
                .unwrap_or_else(|| local0.name(text[i], 0))
        }));
        for k in 1..=kt {
            let half = 1usize << (k - 1);
            let cnt = n + 1 - (1usize << k);
            let prev = &names[k - 1];
            let local = NameTable::with_capacity(cnt, text_pool.clone());
            let lvl = ctx.map(cnt, |i| {
                let (a, b) = (prev[i], prev[i + half]);
                let dict = if NamePool::is_text_local(a) || NamePool::is_text_local(b) {
                    None
                } else {
                    tables.pair_lookup(k, a, b)
                };
                dict.unwrap_or_else(|| local.name(a, b))
            });
            names.push(lvl);
        }
    });

    // Descent: (blocks, prefix-name) per position; one extension per level.
    let mut state: Vec<(u32, u32)> = vec![(0, IDENTITY); n];
    ctx.cost.phase("text/descent", || {
        for k in (0..=kt).rev() {
            let lvl = &names[k];
            let span = 1usize << k;
            ctx.for_each_mut(&mut state, |i, st| {
                let mut b = if k == kt { 0 } else { st.0 << 1 };
                let mut pref = st.1;
                let clen = (b as usize) << k;
                if i + clen + span <= n {
                    let block = lvl[i + clen];
                    if !NamePool::is_text_local(block) {
                        if let Some(np) = tables.ext_lookup(k, pref, block) {
                            pref = np;
                            b += 1;
                        }
                    }
                }
                *st = (b, pref);
            });
        }
    });

    PrefixMatch {
        len: state.iter().map(|s| s.0).collect(),
        name: state.iter().map(|s| s.1).collect(),
    }
}

/// Reference full matching on top of [`prefix_match_ref`] (see there).
pub fn match_text_ref<T: MatchTables>(ctx: &Ctx, tables: &T, text: &[Sym]) -> MatchOutput {
    let n = text.len();
    if n == 0 {
        return MatchOutput::empty();
    }
    let pm = prefix_match_ref(ctx, tables, text);
    let mut out = MatchOutput {
        prefix_len: pm.len,
        prefix_name: pm.name,
        longest_pattern: vec![None; n],
        longest_pattern_len: vec![0; n],
        prefix_owner: vec![None; n],
    };
    ctx.cost.phase("text/longest-lookup", || {
        let names = &out.prefix_name;
        let lens = &out.prefix_len;
        let pats: Vec<(Option<PatId>, u32, Option<PatId>)> = ctx.map(n, |i| {
            if lens[i] == 0 {
                return (None, 0, None);
            }
            let owner = tables.owner(names[i]);
            match tables.longest_pattern(names[i]) {
                Some((pid, plen)) => (Some(pid), plen, owner),
                None => (None, 0, owner),
            }
        });
        for (i, (p, l, o)) in pats.into_iter().enumerate() {
            out.longest_pattern[i] = p;
            out.longest_pattern_len[i] = l;
            out.prefix_owner[i] = o;
        }
    });
    out
}

/// Glue for `MatchTables` implementors backed by [`super::tables::StaticTables`]:
/// all text-side lookups route through the frozen read path (dense symbol
/// map when available, atomics-free open addressing otherwise).
impl MatchTables for super::tables::StaticTables {
    fn levels(&self) -> usize {
        self.levels
    }

    #[inline]
    fn sym_lookup(&self, c: Sym) -> Option<u32> {
        if let Some(d) = &self.read.sym_dense {
            let v = d.get(c as usize).copied().unwrap_or(IDENTITY);
            return (v != IDENTITY).then_some(v);
        }
        self.read.sym.lookup(c, 0)
    }

    #[inline]
    fn pair_lookup(&self, k: usize, a: u32, b: u32) -> Option<u32> {
        self.read.pair[k - 1].lookup(a, b)
    }

    #[inline]
    fn ext_lookup(&self, k: usize, pref: u32, block: u32) -> Option<u32> {
        self.read.ext[k].lookup(pref, block)
    }

    fn longest_pattern(&self, pref: u32) -> Option<(PatId, u32)> {
        self.longest.get(pref).map(|v| {
            let (len, pid) = unpack2(v);
            (pid, len)
        })
    }

    fn owner(&self, pref: u32) -> Option<PatId> {
        self.owner.get(pref).map(|v| unpack2(v).1)
    }

    fn chunk_overlap(&self) -> Option<usize> {
        Some(self.max_len.saturating_sub(1))
    }
}

/// View of a [`StaticTables`](super::tables::StaticTables) that routes the
/// text-side lookups through the *concurrent* build tables instead of the
/// frozen read path — the pre-freeze probing behavior, retained so the
/// `text_throughput` bench can report honest before/after numbers.
pub struct ConcView<'a>(pub &'a super::tables::StaticTables);

impl MatchTables for ConcView<'_> {
    fn levels(&self) -> usize {
        self.0.levels
    }

    fn sym_lookup(&self, c: Sym) -> Option<u32> {
        self.0.write_tables().sym.lookup(c, 0)
    }

    fn pair_lookup(&self, k: usize, a: u32, b: u32) -> Option<u32> {
        self.0.write_tables().pair[k - 1].lookup(a, b)
    }

    fn ext_lookup(&self, k: usize, pref: u32, block: u32) -> Option<u32> {
        self.0.write_tables().ext[k].lookup(pref, block)
    }

    fn longest_pattern(&self, pref: u32) -> Option<(PatId, u32)> {
        self.0.longest_pattern(pref)
    }

    fn owner(&self, pref: u32) -> Option<PatId> {
        self.0.owner(pref)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::{symbolize, to_symbols};
    use crate::static1d::StaticMatcher;

    #[test]
    fn match_output_empty_shape() {
        let e = MatchOutput::empty();
        assert!(e.prefix_len.is_empty());
        assert!(e.occurrences().is_empty());
    }

    #[test]
    fn occurrences_lists_longest_matches_only() {
        let ctx = Ctx::seq();
        let m = StaticMatcher::build(&ctx, &symbolize(&["ab", "abc"])).unwrap();
        let out = m.match_text(&ctx, &to_symbols("xabcab"));
        assert_eq!(out.occurrences(), vec![(1, 1), (4, 0)]);
    }

    #[test]
    fn prefix_match_standalone_agrees_with_full_match() {
        let ctx = Ctx::seq();
        let pats = symbolize(&["he", "hers"]);
        let m = StaticMatcher::build(&ctx, &pats).unwrap();
        let text = to_symbols("hershey");
        let pm = m.prefix_match(&ctx, &text);
        let full = m.match_text(&ctx, &text);
        assert_eq!(pm.len, full.prefix_len);
        assert_eq!(pm.name, full.prefix_name);
    }

    #[test]
    fn descent_starts_below_dictionary_levels_for_short_texts() {
        // m = 16 (K = 4) but the text has 3 symbols: the descent must clamp
        // to ⌊log₂ 3⌋ = 1 and still be correct.
        let ctx = Ctx::seq();
        let pats = symbolize(&["abcdefghijklmnop", "ab", "b"]);
        let m = StaticMatcher::build(&ctx, &pats).unwrap();
        let out = m.match_text(&ctx, &to_symbols("abz"));
        assert_eq!(out.longest_pattern[0], Some(1));
        assert_eq!(out.longest_pattern[1], Some(2));
        assert_eq!(out.prefix_len[2], 0);
    }

    #[test]
    fn sentinel_path_equals_text_local_reference() {
        let ctx = Ctx::seq();
        let pats = symbolize(&["he", "she", "his", "hers", "xyzzy"]);
        let m = StaticMatcher::build(&ctx, &pats).unwrap();
        let text = to_symbols("ushers love xyzzy and xyzzx");
        let fast = match_text(&ctx, m.tables(), &text);
        let slow = match_text_ref(&ctx, m.tables(), &text);
        assert_eq!(fast, slow);
        let slow_conc = match_text_ref(&ctx, &ConcView(m.tables()), &text);
        assert_eq!(fast, slow_conc);
    }

    #[test]
    fn scratch_reuse_is_allocation_free_in_steady_state() {
        let ctx = Ctx::seq();
        let m = StaticMatcher::build(&ctx, &symbolize(&["ab", "abc", "zzz"])).unwrap();
        let mut scratch = TextScratch::new();
        let mut out = MatchOutput::empty();
        let text = to_symbols("xabcabzzzab");
        match_text_into(&ctx, m.tables(), &text, &mut scratch, &mut out);
        let warm = scratch.grow_events();
        assert!(warm > 0, "first call must grow the buffers");
        for _ in 0..10 {
            match_text_into(&ctx, m.tables(), &text, &mut scratch, &mut out);
        }
        assert_eq!(
            scratch.grow_events(),
            warm,
            "steady-state calls must not allocate"
        );
        assert!(scratch.table_lookups() > 0);
    }
}
