//! Index persistence: serialize a built [`StaticTables`] to a compact
//! little-endian binary format and load it back.
//!
//! This is the "preprocess once, match forever" deployment story of
//! Theorem 3: the dictionary side runs offline, the frozen tables ship to
//! matchers. Name *values* are preserved verbatim (they are arbitrary ids;
//! only their equalities matter), so a loaded index behaves identically to
//! the one that was saved.
//!
//! Format (`PDM1`):
//!
//! ```text
//! magic "PDM1" | u32 version | u32 levels | u32 max_len | u32 total_len
//! u32 n_patterns | u32 names_allocated
//! table sym | tables pair[levels] | table fold | tables ext[levels+1]
//! namemap longest | namemap owner
//! vec<u32> pattern_names | n_patterns × vec<u32> pattern_prefs
//! ```
//!
//! where `table` = `u32 count | count × (u32 a, u32 b, u32 v)` and
//! `namemap` = `u32 count | count × u64`.

use crate::static1d::namemap::NameMap;
use crate::static1d::tables::{ReadTables, StaticTables, WriteTables};
use pdm_naming::{NamePool, NameTable};

const MAGIC: &[u8; 4] = b"PDM1";
const VERSION: u32 = 1;

/// Errors from loading a serialized index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadError(pub String);

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid pdm index: {}", self.0)
    }
}

impl std::error::Error for LoadError {}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn table(&mut self, t: &NameTable) {
        let mut e = t.entries();
        e.sort_unstable(); // deterministic output
        self.u32(e.len() as u32);
        for (a, b, v) in e {
            self.u32(a);
            self.u32(b);
            self.u32(v);
        }
    }

    fn namemap(&mut self, m: &NameMap) {
        self.u32(m.slots().len() as u32);
        for &s in m.slots() {
            self.u64(s);
        }
    }

    fn vec_u32(&mut self, v: &[u32]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.u32(x);
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], LoadError> {
        if self.at + n > self.buf.len() {
            return Err(LoadError("truncated".into()));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, LoadError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, LoadError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn table(&mut self, pool: &std::sync::Arc<NamePool>) -> Result<NameTable, LoadError> {
        let n = self.u32()? as usize;
        if n > self.buf.len() / 12 + 1 {
            return Err(LoadError("table count exceeds payload".into()));
        }
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push((self.u32()?, self.u32()?, self.u32()?));
        }
        Ok(NameTable::from_entries(&entries, pool.clone()))
    }

    fn namemap(&mut self) -> Result<NameMap, LoadError> {
        let n = self.u32()? as usize;
        if n > self.buf.len() / 8 + 1 {
            return Err(LoadError("namemap count exceeds payload".into()));
        }
        let mut slots = Vec::with_capacity(n);
        for _ in 0..n {
            slots.push(self.u64()?);
        }
        Ok(NameMap::from_slots(slots))
    }

    fn vec_u32(&mut self) -> Result<Vec<u32>, LoadError> {
        let n = self.u32()? as usize;
        if n > self.buf.len() / 4 + 1 {
            return Err(LoadError("vec count exceeds payload".into()));
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.u32()?);
        }
        Ok(v)
    }
}

impl StaticTables {
    /// Serialize to the `PDM1` binary format.
    ///
    /// `PDM1` is an entry-list format over the *live* build tables, so this
    /// requires the build side (always present except on matchers
    /// cold-loaded from the frozen snapshot form, which serialize through
    /// [`Self::to_frozen_bytes`](crate::static1d::StaticTables::to_frozen_bytes)
    /// instead).
    pub fn to_bytes(&self) -> Vec<u8> {
        let wt = self.write_tables();
        let mut w = Writer { buf: Vec::new() };
        w.buf.extend_from_slice(MAGIC);
        w.u32(VERSION);
        w.u32(self.levels as u32);
        w.u32(self.max_len as u32);
        w.u32(self.total_len as u32);
        w.u32(self.n_patterns as u32);
        w.u32(self.pool.allocated());
        w.table(&wt.sym);
        for p in &wt.pair {
            w.table(p);
        }
        w.table(&wt.fold);
        for e in &wt.ext {
            w.table(e);
        }
        w.namemap(&self.longest);
        w.namemap(&self.owner);
        w.vec_u32(&self.pattern_names);
        for p in &self.pattern_prefs {
            w.vec_u32(p);
        }
        w.buf
    }

    /// Load from the `PDM1` binary format.
    pub fn from_bytes(data: &[u8]) -> Result<Self, LoadError> {
        let mut r = Reader { buf: data, at: 0 };
        if r.take(4)? != MAGIC {
            return Err(LoadError("bad magic".into()));
        }
        if r.u32()? != VERSION {
            return Err(LoadError("unsupported version".into()));
        }
        let levels = r.u32()? as usize;
        let max_len = r.u32()? as usize;
        let total_len = r.u32()? as usize;
        let n_patterns = r.u32()? as usize;
        let allocated = r.u32()?;
        if levels > 32 || n_patterns == 0 || max_len == 0 {
            return Err(LoadError("implausible header".into()));
        }
        let pool = NamePool::dictionary_resumed(allocated);
        let sym = r.table(&pool)?;
        let mut pair = Vec::with_capacity(levels);
        for _ in 0..levels {
            pair.push(r.table(&pool)?);
        }
        let fold = r.table(&pool)?;
        let mut ext = Vec::with_capacity(levels + 1);
        for _ in 0..=levels {
            ext.push(r.table(&pool)?);
        }
        let longest = r.namemap()?;
        let owner = r.namemap()?;
        let pattern_names = r.vec_u32()?;
        if pattern_names.len() != n_patterns {
            return Err(LoadError("pattern_names length mismatch".into()));
        }
        let mut pattern_prefs = Vec::with_capacity(n_patterns);
        for _ in 0..n_patterns {
            pattern_prefs.push(r.vec_u32()?);
        }
        if r.at != data.len() {
            return Err(LoadError("trailing bytes".into()));
        }
        // The frozen read path is derived state, not serialized; rebuild it
        // from the loaded tables so a deserialized matcher fast-paths too.
        let read = ReadTables::build(&sym, &pair, &ext);
        Ok(StaticTables {
            levels,
            max_len,
            total_len,
            n_patterns,
            fold_len: fold.len(),
            write: Some(WriteTables {
                sym,
                pair,
                fold,
                ext,
            }),
            longest,
            owner,
            pattern_names,
            pattern_prefs,
            pool,
            read,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::dict::{symbolize, to_symbols};
    use crate::static1d::{StaticMatcher, StaticTables};
    use pdm_pram::Ctx;

    #[test]
    fn roundtrip_preserves_matching() {
        let ctx = Ctx::seq();
        let pats = symbolize(&["he", "she", "his", "hers", "xyzzy"]);
        let m = StaticMatcher::build(&ctx, &pats).unwrap();
        let bytes = m.tables().to_bytes();
        let loaded = StaticTables::from_bytes(&bytes).expect("load");
        let text = to_symbols("ushers and xyzzyish");
        let a = m.match_text(&ctx, &text);
        let b = crate::static1d::match_text(&ctx, &loaded, &text);
        assert_eq!(a, b);
    }

    #[test]
    fn roundtrip_randomized() {
        use pdm_textgen::{strings, Alphabet};
        let ctx = Ctx::seq();
        for seed in 0..5 {
            let mut r = strings::rng(seed);
            let mut text = strings::random_text(&mut r, Alphabet::Letters, 400);
            let pats = strings::excerpt_dictionary(&mut r, &text, 15, 2, 40);
            strings::plant_occurrences(&mut r, &mut text, &pats, 10);
            let m = StaticMatcher::build(&ctx, &pats).unwrap();
            let loaded = StaticTables::from_bytes(&m.tables().to_bytes()).unwrap();
            let a = m.match_text(&ctx, &text);
            let b = crate::static1d::match_text(&ctx, &loaded, &text);
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn serialized_form_is_deterministic() {
        let ctx = Ctx::seq();
        let pats = symbolize(&["aa", "ab", "ba"]);
        let m = StaticMatcher::build(&ctx, &pats).unwrap();
        assert_eq!(m.tables().to_bytes(), m.tables().to_bytes());
    }

    #[test]
    fn rejects_corrupt_input() {
        assert!(StaticTables::from_bytes(b"").is_err());
        assert!(StaticTables::from_bytes(b"NOPE").is_err());
        assert!(StaticTables::from_bytes(b"PDM1\x02\x00\x00\x00").is_err());
        let ctx = Ctx::seq();
        let m = StaticMatcher::build(&ctx, &symbolize(&["ab"])).unwrap();
        let mut bytes = m.tables().to_bytes();
        bytes.truncate(bytes.len() - 3);
        assert!(StaticTables::from_bytes(&bytes).is_err(), "truncation");
        let mut bytes = m.tables().to_bytes();
        bytes.push(0);
        assert!(StaticTables::from_bytes(&bytes).is_err(), "trailing bytes");
    }
}
