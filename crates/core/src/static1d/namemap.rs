//! Direct-addressed maps keyed by dictionary names.
//!
//! Names come from a monotone pool, so the dictionary name space is dense:
//! `1 ..= pool.allocated()`. That lets the per-prefix attributes the
//! algorithms need (owning pattern, longest pattern that is a prefix) live
//! in flat arrays — the faithful analogue of the paper's direct-addressed
//! tables, at `O(#names)` instead of `O(M²)` space.

use std::sync::atomic::{AtomicU64, Ordering};

const EMPTY: u64 = u64::MAX;

/// Pack `(hi, lo)` into the stored `u64`. `hi = u32::MAX` is reserved.
#[inline]
pub fn pack2(hi: u32, lo: u32) -> u64 {
    ((hi as u64) << 32) | lo as u64
}

/// Unpack a stored value.
#[inline]
pub fn unpack2(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

/// Concurrent name-indexed map used during dictionary builds.
#[derive(Debug)]
pub struct AtomicNameMap {
    slots: Vec<AtomicU64>,
}

impl AtomicNameMap {
    /// Map covering names `0 .. n_names`.
    pub fn new(n_names: usize) -> Self {
        Self {
            slots: (0..n_names).map(|_| AtomicU64::new(EMPTY)).collect(),
        }
    }

    /// Arbitrary-winner write (all concurrent writers carry equal values in
    /// our uses: the value is a function of the name's string content).
    #[inline]
    pub fn set(&self, name: u32, v: u64) {
        debug_assert_ne!(v, EMPTY);
        self.slots[name as usize].store(v, Ordering::Relaxed);
    }

    /// Min-priority write (deterministic representative selection).
    #[inline]
    pub fn set_min(&self, name: u32, v: u64) {
        debug_assert_ne!(v, EMPTY);
        self.slots[name as usize].fetch_min(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self, name: u32) -> Option<u64> {
        let v = self.slots[name as usize].load(Ordering::Relaxed);
        (v != EMPTY).then_some(v)
    }

    /// Freeze into the read-only form used at match time.
    pub fn freeze(self) -> NameMap {
        NameMap {
            slots: self.slots.into_iter().map(|a| a.into_inner()).collect(),
        }
    }
}

/// Read-only name-indexed map (post-build).
#[derive(Debug, Clone)]
pub struct NameMap {
    slots: Vec<u64>,
}

impl NameMap {
    #[inline]
    pub fn get(&self, name: u32) -> Option<u64> {
        let v = *self.slots.get(name as usize)?;
        (v != EMPTY).then_some(v)
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Raw slots (`u64::MAX` = empty) for serialization.
    pub fn slots(&self) -> &[u64] {
        &self.slots
    }

    /// Rebuild from raw slots.
    pub fn from_slots(slots: Vec<u64>) -> Self {
        NameMap { slots }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        assert_eq!(unpack2(pack2(7, 9)), (7, 9));
        assert_eq!(unpack2(pack2(0, 0)), (0, 0));
    }

    #[test]
    fn set_get_freeze() {
        let m = AtomicNameMap::new(10);
        assert_eq!(m.get(3), None);
        m.set(3, pack2(1, 2));
        assert_eq!(m.get(3), Some(pack2(1, 2)));
        let f = m.freeze();
        assert_eq!(f.get(3), Some(pack2(1, 2)));
        assert_eq!(f.get(4), None);
        assert_eq!(f.get(99), None, "out of range reads are None");
    }

    #[test]
    fn set_min_keeps_minimum() {
        let m = AtomicNameMap::new(4);
        m.set_min(0, 50);
        m.set_min(0, 20);
        m.set_min(0, 90);
        assert_eq!(m.get(0), Some(20));
    }
}
