//! The frozen-snapshot form (`PDMT`): serialize a built [`StaticTables`]
//! as its *read path* — raw frozen slot arrays — so loading is `O(file
//! size)` byte shuffling with **zero naming rounds and zero rehashing**.
//!
//! The `PDM1` entry-list format ([`super::serial`]) stores `(a, b, name)`
//! triples and re-inserts every one on load, paying a full round of hashing
//! and table construction. This format instead dumps each
//! [`FrozenPairTable`]'s key/value slot arrays verbatim. That is sound
//! because a frozen table's probe sequence is a pure function of (key, slot
//! count): `mix64(pack(a, b)) & (slots − 1)` with linear probing. Identical
//! slot arrays ⇒ identical lookups, so the bytes on disk *are* the table.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "PDMT" | u32 version (1)
//! u32 levels | u32 max_len | u64 total_len | u32 n_patterns
//! u32 names_allocated | u64 fold_len
//! frozen sym | levels × frozen pair | (levels+1) × frozen ext
//! namemap longest | namemap owner
//! vec<u32> pattern_names | n_patterns × vec<u32> pattern_prefs
//! ```
//!
//! where `frozen` = `u64 entries | u64 slots | slots × u64 keys |
//! slots × u32 vals` and `namemap` = `u64 count | count × u64`.
//!
//! There is no CRC at this layer: the `.snap` v2 container that carries
//! these bytes has a whole-file CRC-32 trailer (see `pdm_primitives::codec`
//! and the pdm-dict snapshot module). Structural validation (bounds,
//! power-of-two slot counts, entry-count consistency) still happens here so
//! a logic error upstream cannot produce a table that panics at match time.
//!
//! Tables loaded this way have no build side ([`StaticTables::write`] is
//! `None`): text matching never needs it, and the name pool is resumed past
//! the serialized allocation watermark so any future build-side use would
//! allocate fresh, non-colliding names.

use crate::static1d::namemap::NameMap;
use crate::static1d::serial::LoadError;
use crate::static1d::tables::{ReadTables, StaticTables};
use pdm_naming::{FrozenNameTable, NamePool};
use pdm_primitives::codec;
use pdm_primitives::FrozenPairTable;

pub const FROZEN_MAGIC: [u8; 4] = *b"PDMT";
pub const FROZEN_VERSION: u32 = 1;

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_frozen(buf: &mut Vec<u8>, t: &FrozenNameTable) {
    let raw = t.raw();
    put_u64(buf, raw.len() as u64);
    put_u64(buf, raw.slots_len() as u64);
    for &k in raw.keys() {
        buf.extend_from_slice(&k.to_le_bytes());
    }
    for &v in raw.vals() {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_namemap(buf: &mut Vec<u8>, m: &NameMap) {
    put_u64(buf, m.slots().len() as u64);
    for &s in m.slots() {
        buf.extend_from_slice(&s.to_le_bytes());
    }
}

fn put_vec_u32(buf: &mut Vec<u8>, v: &[u32]) {
    put_u32(buf, v.len() as u32);
    for &x in v {
        buf.extend_from_slice(&x.to_le_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], LoadError> {
        if n > self.buf.len() - self.at {
            return Err(LoadError("truncated".into()));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, LoadError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, LoadError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A declared count that must describe at most the remaining bytes at
    /// `width` bytes per element — rejects length bombs before allocating.
    fn count(&mut self, width: usize) -> Result<usize, LoadError> {
        let n = self.u64()?;
        if n > (self.buf.len() - self.at) as u64 / width as u64 {
            return Err(LoadError("count exceeds payload".into()));
        }
        Ok(n as usize)
    }

    fn u64s(&mut self, n: usize) -> Result<Vec<u64>, LoadError> {
        let bytes = self.take(n * 8)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn u32s(&mut self, n: usize) -> Result<Vec<u32>, LoadError> {
        let bytes = self.take(n * 4)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn frozen(&mut self) -> Result<FrozenNameTable, LoadError> {
        let entries = self.u64()? as usize;
        let slots = self.count(12)?;
        let keys = self.u64s(slots)?.into_boxed_slice();
        let vals = self.u32s(slots)?.into_boxed_slice();
        FrozenPairTable::from_raw_parts(keys, vals, entries)
            .map(FrozenNameTable::from_raw)
            .ok_or_else(|| LoadError("inconsistent frozen table".into()))
    }

    fn namemap(&mut self) -> Result<NameMap, LoadError> {
        let n = self.count(8)?;
        Ok(NameMap::from_slots(self.u64s(n)?))
    }

    fn vec_u32(&mut self) -> Result<Vec<u32>, LoadError> {
        let n = self.u32()? as usize;
        if n > (self.buf.len() - self.at) / 4 {
            return Err(LoadError("vec count exceeds payload".into()));
        }
        self.u32s(n)
    }
}

impl StaticTables {
    /// Serialize the frozen read path to the `PDMT` layout. Works on any
    /// tables — built, `PDM1`-loaded, or themselves cold-loaded — because
    /// it touches only the read side.
    pub fn to_frozen_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        codec::write_header(&mut buf, FROZEN_MAGIC, FROZEN_VERSION);
        put_u32(&mut buf, self.levels as u32);
        put_u32(&mut buf, self.max_len as u32);
        put_u64(&mut buf, self.total_len as u64);
        put_u32(&mut buf, self.n_patterns as u32);
        put_u32(&mut buf, self.pool.allocated());
        put_u64(&mut buf, self.fold_len as u64);
        put_frozen(&mut buf, &self.read.sym);
        for p in &self.read.pair {
            put_frozen(&mut buf, p);
        }
        for e in &self.read.ext {
            put_frozen(&mut buf, e);
        }
        put_namemap(&mut buf, &self.longest);
        put_namemap(&mut buf, &self.owner);
        put_vec_u32(&mut buf, &self.pattern_names);
        for p in &self.pattern_prefs {
            put_vec_u32(&mut buf, p);
        }
        buf
    }

    /// Load tables from the `PDMT` layout: `O(file size)` byte-to-integer
    /// conversion, no naming rounds, no rehashing. The result has no build
    /// side (see module docs).
    pub fn from_frozen_bytes(data: &[u8]) -> Result<Self, LoadError> {
        let version = codec::read_header(data, FROZEN_MAGIC)
            .and_then(|v| codec::require_version(v, FROZEN_VERSION).map(|()| v))
            .map_err(|e| LoadError(e.to_string()))?;
        debug_assert_eq!(version, FROZEN_VERSION);
        let mut r = Reader {
            buf: data,
            at: codec::HEADER_LEN,
        };
        let levels = r.u32()? as usize;
        let max_len = r.u32()? as usize;
        let total_len = r.u64()? as usize;
        let n_patterns = r.u32()? as usize;
        let allocated = r.u32()?;
        let fold_len = r.u64()? as usize;
        if levels > 32 || n_patterns == 0 || max_len == 0 {
            return Err(LoadError("implausible header".into()));
        }
        let sym = r.frozen()?;
        let mut pair = Vec::with_capacity(levels);
        for _ in 0..levels {
            pair.push(r.frozen()?);
        }
        let mut ext = Vec::with_capacity(levels + 1);
        for _ in 0..=levels {
            ext.push(r.frozen()?);
        }
        let longest = r.namemap()?;
        let owner = r.namemap()?;
        let pattern_names = r.vec_u32()?;
        if pattern_names.len() != n_patterns {
            return Err(LoadError("pattern_names length mismatch".into()));
        }
        let mut pattern_prefs = Vec::with_capacity(n_patterns);
        for _ in 0..n_patterns {
            pattern_prefs.push(r.vec_u32()?);
        }
        if r.at != data.len() {
            return Err(LoadError("trailing bytes".into()));
        }
        Ok(StaticTables {
            levels,
            max_len,
            total_len,
            n_patterns,
            write: None,
            fold_len,
            longest,
            owner,
            pattern_names,
            pattern_prefs,
            pool: NamePool::dictionary_resumed(allocated),
            read: ReadTables::from_frozen(sym, pair, ext),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::{symbolize, to_symbols};
    use crate::static1d::{match_text, StaticMatcher};
    use pdm_pram::Ctx;

    #[test]
    fn frozen_roundtrip_preserves_matching() {
        let ctx = Ctx::seq();
        let pats = symbolize(&["he", "she", "his", "hers", "xyzzy"]);
        let m = StaticMatcher::build(&ctx, &pats).unwrap();
        let bytes = m.tables().to_frozen_bytes();
        let loaded = StaticTables::from_frozen_bytes(&bytes).expect("load");
        assert!(
            loaded.write.is_none(),
            "cold-loaded tables ship no build side"
        );
        let text = to_symbols("ushers and xyzzyish");
        assert_eq!(m.match_text(&ctx, &text), match_text(&ctx, &loaded, &text));
    }

    #[test]
    fn frozen_roundtrip_randomized_and_reserializable() {
        use pdm_textgen::{strings, Alphabet};
        let ctx = Ctx::seq();
        for seed in 0..5 {
            let mut r = strings::rng(seed);
            let mut text = strings::random_text(&mut r, Alphabet::Letters, 400);
            let pats = strings::excerpt_dictionary(&mut r, &text, 15, 2, 40);
            strings::plant_occurrences(&mut r, &mut text, &pats, 10);
            let m = StaticMatcher::build(&ctx, &pats).unwrap();
            let bytes = m.tables().to_frozen_bytes();
            let loaded = StaticTables::from_frozen_bytes(&bytes).unwrap();
            assert_eq!(
                m.match_text(&ctx, &text),
                match_text(&ctx, &loaded, &text),
                "seed {seed}"
            );
            // A cold-loaded table re-serializes to identical bytes — the
            // frozen form is a fixed point.
            assert_eq!(loaded.to_frozen_bytes(), bytes, "seed {seed}");
        }
    }

    #[test]
    fn frozen_stats_survive_the_round_trip() {
        let ctx = Ctx::seq();
        let pats = symbolize(&["abc", "abd", "xy"]);
        let m = StaticMatcher::build(&ctx, &pats).unwrap();
        let loaded = StaticTables::from_frozen_bytes(&m.tables().to_frozen_bytes()).unwrap();
        assert_eq!(loaded.fold_len, m.tables().fold_len);
        assert_eq!(loaded.pool.allocated(), m.tables().pool.allocated());
        assert_eq!(loaded.read.sym.len(), m.tables().read.sym.len());
        assert_eq!(loaded.n_patterns, 3);
    }

    #[test]
    fn rejects_corrupt_frozen_input() {
        assert!(StaticTables::from_frozen_bytes(b"").is_err());
        assert!(StaticTables::from_frozen_bytes(b"NOPE\x01\x00\x00\x00").is_err());
        // Wrong version.
        let mut v2 = Vec::new();
        codec::write_header(&mut v2, FROZEN_MAGIC, 9);
        assert!(StaticTables::from_frozen_bytes(&v2).is_err());
        let ctx = Ctx::seq();
        let m = StaticMatcher::build(&ctx, &symbolize(&["ab", "cd"])).unwrap();
        let bytes = m.tables().to_frozen_bytes();
        for cut in [bytes.len() - 1, bytes.len() / 2, 9] {
            assert!(
                StaticTables::from_frozen_bytes(&bytes[..cut]).is_err(),
                "cut {cut}"
            );
        }
        let mut long = bytes.clone();
        long.push(0);
        assert!(StaticTables::from_frozen_bytes(&long).is_err(), "trailing");
    }
}
