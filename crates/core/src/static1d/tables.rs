//! Dictionary preprocessing for static matching (§4, dictionary side of
//! Theorem 3: `O(log m)` time, `O(M)` work).
//!
//! The paper's recursion shrinks the dictionary by `L = 2` per level. Laid
//! out iteratively, preprocessing computes, per level `k ≤ K = ⌈log₂ m⌉`:
//!
//! 1. **aligned block names** — the shrunk patterns: `name_k(P, b·2^k)`
//!    (`Σ_k M/2^k = O(M)` names overall);
//! 2. **prefix names** (Fact 2) — every `pref(P, ℓ)` via the dyadic
//!    left-fold, scheduled in popcount-grouped rounds (`O(log m)` rounds,
//!    `O(M)` combines);
//! 3. **extension tables** — `(pref(b·2^k), name_k(b·2^k)) → pref((b+1)·2^k)`,
//!    the namestamped "incremental extension" of §4.1's Extend-Right step;
//! 4. **pattern attribution** (§4.2, Theorem 2) — which prefixes are full
//!    patterns, and for every prefix the longest pattern that prefixes it,
//!    via the nearest-one-to-the-left scan.

#![allow(clippy::needless_range_loop)] // test helpers index parallel fixtures

use crate::dict::{validate_dictionary, BuildError, Sym};
use crate::static1d::namemap::{pack2, AtomicNameMap, NameMap};
use pdm_naming::{FrozenNameTable, NamePool, NameTable, IDENTITY};
use pdm_pram::{ceil_log2, Ctx};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Read-optimized snapshots of the text-side tables, built once after
/// preprocessing: atomics-free open-addressing copies of `sym`/`pair`/`ext`
/// plus a dense level-0 symbol map for small alphabets. All text-side
/// lookups go through these; the concurrent originals remain the write side
/// (builds, serialization, the §6 dynamic path).
#[derive(Debug)]
pub struct ReadTables {
    pub sym: FrozenNameTable,
    pub pair: Vec<FrozenNameTable>,
    pub ext: Vec<FrozenNameTable>,
    /// `sym_dense[c]` = level-0 name of symbol `c`, or [`IDENTITY`] when
    /// the dictionary lacks `c` (symbol names are never `IDENTITY`). Built
    /// when the largest symbol value is small enough for a flat array.
    pub sym_dense: Option<Box<[u32]>>,
}

impl ReadTables {
    /// Largest symbol value for which the dense level-0 map is built
    /// (bytes and UTF-8 code points of most texts fit; huge symbolized
    /// alphabets fall back to the frozen hash table).
    const DENSE_SYM_LIMIT: u32 = 1 << 16;

    /// Freeze the text-side tables of a finished build.
    pub fn build(sym: &NameTable, pair: &[NameTable], ext: &[NameTable]) -> Self {
        let entries = sym.entries();
        let sym_dense = entries.iter().map(|e| e.0).max().and_then(|max_c| {
            (max_c < Self::DENSE_SYM_LIMIT).then(|| {
                let mut d = vec![IDENTITY; max_c as usize + 1].into_boxed_slice();
                for &(c, _, name) in &entries {
                    d[c as usize] = name;
                }
                d
            })
        });
        ReadTables {
            sym: FrozenNameTable::from_entries(&entries),
            pair: pair.iter().map(NameTable::freeze).collect(),
            ext: ext.iter().map(NameTable::freeze).collect(),
            sym_dense,
        }
    }

    /// Assemble from already-frozen tables (the cold-load path: the frozen
    /// slot arrays come straight off disk). Only the dense level-0 map is
    /// derived — an `O(|Σ|)` scan of the symbol table's entries, no
    /// rehashing of anything.
    pub fn from_frozen(
        sym: FrozenNameTable,
        pair: Vec<FrozenNameTable>,
        ext: Vec<FrozenNameTable>,
    ) -> Self {
        let sym_dense = sym.entries().map(|(c, _, _)| c).max().and_then(|max_c| {
            (max_c < Self::DENSE_SYM_LIMIT).then(|| {
                let mut d = vec![IDENTITY; max_c as usize + 1].into_boxed_slice();
                for (c, _, name) in sym.entries() {
                    d[c as usize] = name;
                }
                d
            })
        });
        ReadTables {
            sym,
            pair,
            ext,
            sym_dense,
        }
    }
}

/// The live (concurrent, write-capable) build-side tables. Text matching
/// never touches these — every text-side lookup goes through
/// [`ReadTables`] — so a matcher cold-loaded from a serialized snapshot
/// carries none (see [`StaticTables::write`]).
#[derive(Debug)]
pub struct WriteTables {
    /// Level-0 naming of symbols.
    pub sym: NameTable,
    /// `pair[k-1]` produces level-`k` block names from level-`k−1` names.
    pub pair: Vec<NameTable>,
    /// Prefix-name fold table (shared across levels; see `pdm-naming`).
    pub fold: NameTable,
    /// `ext[k]`: `(prefix-name, level-k block name) → longer prefix-name`.
    pub ext: Vec<NameTable>,
}

/// Frozen dictionary tables: everything text processing needs.
#[derive(Debug)]
pub struct StaticTables {
    /// `K = ⌈log₂ m⌉`.
    pub levels: usize,
    pub max_len: usize,
    pub total_len: usize,
    pub n_patterns: usize,
    /// Build-side live tables. `Some` for tables produced by
    /// [`Self::build`] or the `PDM1` entry-list loader; `None` for tables
    /// cold-loaded from the frozen-snapshot form, which ship only the read
    /// path. Only `PDM1` serialization and the pre-freeze
    /// [`ConcView`](crate::static1d::ConcView) bench path need them.
    pub write: Option<WriteTables>,
    /// Entry count of the fold table at freeze time (the fold itself is
    /// build-only state and is not part of the frozen form; the count keeps
    /// size diagnostics meaningful on cold-loaded tables).
    pub fold_len: usize,
    /// prefix-name → packed `(len, pat)` of the longest pattern that is a
    /// prefix of it (Theorem 2's output).
    pub longest: NameMap,
    /// prefix-name → packed `(0, pat)`: the smallest-index pattern having
    /// this prefix (the retrieve-index answer, `I_p`).
    pub owner: NameMap,
    /// Full-string prefix name of each pattern.
    pub pattern_names: Vec<u32>,
    /// All prefix names, `pattern_prefs[p][ℓ-1]` names `P_p[0..ℓ]`.
    /// Kept because the §4.4 and all-matches layers consume them.
    pub pattern_prefs: Vec<Vec<u32>>,
    pub pool: Arc<NamePool>,
    /// Frozen read path for text processing (see [`ReadTables`]).
    pub read: ReadTables,
}

impl StaticTables {
    /// Preprocess the dictionary.
    pub fn build(ctx: &Ctx, patterns: &[Vec<Sym>]) -> Result<Self, BuildError> {
        let (total, max_len) = validate_dictionary(patterns)?;
        let k_levels = ceil_log2(max_len) as usize;
        let npat = patterns.len();
        let pool = NamePool::dictionary();

        let sym = NameTable::with_capacity(total, pool.clone());
        let pair: Vec<NameTable> = (1..=k_levels)
            .map(|k| {
                let cap: usize = patterns.iter().map(|p| p.len() >> k).sum();
                NameTable::with_capacity(cap.max(1), pool.clone())
            })
            .collect();
        let fold = NameTable::with_capacity(total, pool.clone());

        // 1. Aligned block names (the shrunk dictionaries), level by level.
        //    blocks[k][p][b] names P_p[b·2^k .. (b+1)·2^k].
        let mut blocks: Vec<Vec<Vec<u32>>> = Vec::with_capacity(k_levels + 1);
        ctx.cost.phase("dict/blocks", || {
            let lvl0 = ctx.map(npat, |p| {
                patterns[p]
                    .iter()
                    .map(|&c| sym.name(c, 0))
                    .collect::<Vec<u32>>()
            });
            ctx.cost.work(total as u64);
            blocks.push(lvl0);
            for k in 1..=k_levels {
                let prev = &blocks[k - 1];
                let t = &pair[k - 1];
                let lvl = ctx.map(npat, |p| {
                    let pr = &prev[p];
                    (0..pr.len() / 2)
                        .map(|b| t.name(pr[2 * b], pr[2 * b + 1]))
                        .collect::<Vec<u32>>()
                });
                ctx.cost.work((total >> k) as u64);
                blocks.push(lvl);
            }
        });

        // 2. Prefix names in popcount-grouped rounds (Fact 2 schedule):
        //    pref(ℓ) depends on pref(ℓ − 2^z), which has one fewer set bit,
        //    so all lengths with equal popcount resolve in one round.
        let prefs: Vec<Vec<u32>> = ctx.cost.phase("dict/prefix-naming", || {
            let cells: Vec<Vec<AtomicU32>> = patterns
                .iter()
                .map(|p| (0..p.len()).map(|_| AtomicU32::new(IDENTITY)).collect())
                .collect();
            let bits = usize::BITS - max_len.leading_zeros();
            let mut groups: Vec<Vec<(u32, u32)>> = vec![Vec::new(); bits as usize];
            for (p, pat) in patterns.iter().enumerate() {
                for l in 1..=pat.len() {
                    groups[l.count_ones() as usize - 1].push((p as u32, l as u32));
                }
            }
            for g in groups.iter().filter(|g| !g.is_empty()) {
                ctx.for_each(g.len(), |gi| {
                    let (p, l) = g[gi];
                    let (p, l) = (p as usize, l as usize);
                    // Same formula as pdm_naming::prefix::combine_one: the
                    // fold shape must be identical everywhere.
                    let low = l & l.wrapping_neg();
                    let k = low.trailing_zeros() as usize;
                    let hi = l - low;
                    let block = blocks[k][p][hi / low];
                    let v = if hi == 0 {
                        block
                    } else {
                        fold.name(cells[p][hi - 1].load(Ordering::Relaxed), block)
                    };
                    cells[p][l - 1].store(v, Ordering::Relaxed);
                });
            }
            cells
                .into_iter()
                .map(|v| v.into_iter().map(|a| a.into_inner()).collect())
                .collect()
        });

        // 3. Extension tables: one entry per aligned block per level.
        let ext: Vec<NameTable> = (0..=k_levels)
            .map(|k| {
                let cap: usize = patterns.iter().map(|p| p.len() >> k).sum();
                NameTable::with_capacity(cap.max(1), pool.clone())
            })
            .collect();
        ctx.cost.phase("dict/ext-tables", || {
            for (k, ext_k) in ext.iter().enumerate() {
                ctx.for_each(npat, |p| {
                    let bl = &blocks[k][p];
                    let pf = &prefs[p];
                    for (b, &block) in bl.iter().enumerate() {
                        let key_pref = if b == 0 { IDENTITY } else { pf[(b << k) - 1] };
                        let val = pf[((b + 1) << k) - 1];
                        ext_k.insert_assoc(key_pref, block, val);
                    }
                });
                ctx.cost.work((total >> k) as u64);
            }
        });

        // 4. Pattern attribution (§4.2 / Theorem 2).
        let pattern_names: Vec<u32> = patterns
            .iter()
            .enumerate()
            .map(|(p, pat)| prefs[p][pat.len() - 1])
            .collect();
        let n_names = pool.allocated() as usize + 1;
        let (longest, owner) = ctx.cost.phase("dict/longest-pattern", || {
            let by_name = AtomicNameMap::new(n_names);
            ctx.for_each(npat, |p| {
                by_name.set_min(pattern_names[p], pack2(0, p as u32));
            });
            let longest = AtomicNameMap::new(n_names);
            let owner = AtomicNameMap::new(n_names);
            // Host-side: left-to-right scan per pattern. PRAM-side this is
            // the nearest-one-to-the-left prefix-max (O(log m) rounds, O(M)
            // work) — charge that schedule.
            ctx.for_each(npat, |p| {
                let mut last: Option<(u32, u32)> = None;
                for l in 1..=patterns[p].len() {
                    let nm = prefs[p][l - 1];
                    owner.set_min(nm, pack2(0, p as u32));
                    if let Some(v) = by_name.get(nm) {
                        last = Some((l as u32, (v & 0xFFFF_FFFF) as u32));
                    }
                    if let Some((ll, pid)) = last {
                        longest.set(nm, pack2(ll, pid));
                    }
                }
            });
            ctx.cost.rounds(ceil_log2(max_len) as u64, total as u64);
            (longest.freeze(), owner.freeze())
        });

        let read = ctx.cost.phase("dict/freeze-read-path", || {
            ReadTables::build(&sym, &pair, &ext)
        });

        Ok(Self {
            levels: k_levels,
            max_len,
            total_len: total,
            n_patterns: npat,
            fold_len: fold.len(),
            write: Some(WriteTables {
                sym,
                pair,
                fold,
                ext,
            }),
            longest,
            owner,
            pattern_names,
            pattern_prefs: prefs,
            pool,
            read,
        })
    }

    /// Build-side tables, which exist unless this value was cold-loaded
    /// from the frozen-snapshot form. Callers that genuinely need the live
    /// tables (`PDM1` serialization, the pre-freeze bench view) should go
    /// through here so the panic message names the contract.
    pub fn write_tables(&self) -> &WriteTables {
        self.write
            .as_ref()
            .expect("build-side tables absent: this matcher was cold-loaded from a frozen snapshot")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::symbolize;

    #[test]
    fn builds_and_prefix_names_are_shared() {
        let ctx = Ctx::seq();
        let pats = symbolize(&["abcd", "abce", "xbcd"]);
        let t = StaticTables::build(&ctx, &pats).unwrap();
        assert_eq!(t.levels, 2);
        // Shared prefixes "ab" / "abc" of patterns 0 and 1 share names.
        assert_eq!(t.pattern_prefs[0][0], t.pattern_prefs[1][0]);
        assert_eq!(t.pattern_prefs[0][1], t.pattern_prefs[1][1]);
        assert_eq!(t.pattern_prefs[0][2], t.pattern_prefs[1][2]);
        assert_ne!(t.pattern_prefs[0][3], t.pattern_prefs[1][3]);
        assert_ne!(t.pattern_prefs[0][0], t.pattern_prefs[2][0]);
    }

    #[test]
    fn longest_pattern_attribution() {
        let ctx = Ctx::seq();
        let pats = symbolize(&["ab", "abcd", "bc"]);
        let t = StaticTables::build(&ctx, &pats).unwrap();
        // Prefix "abc" of pattern 1: longest pattern-prefix is "ab" (pat 0).
        let abc = t.pattern_prefs[1][2];
        let v = t.longest.get(abc).unwrap();
        let (len, pid) = crate::static1d::namemap::unpack2(v);
        assert_eq!((len, pid), (2, 0));
        // Full "abcd": longest is itself.
        let abcd = t.pattern_prefs[1][3];
        let (len, pid) = crate::static1d::namemap::unpack2(t.longest.get(abcd).unwrap());
        assert_eq!((len, pid), (4, 1));
        // Prefix "b" of "bc" is not a pattern and has no pattern prefix.
        let b = t.pattern_prefs[2][0];
        assert!(t.longest.get(b).is_none());
    }

    #[test]
    fn owner_is_min_pattern_index() {
        let ctx = Ctx::seq();
        let pats = symbolize(&["zq", "za"]);
        let t = StaticTables::build(&ctx, &pats).unwrap();
        let z = t.pattern_prefs[1][0];
        assert_eq!(t.pattern_prefs[0][0], z, "shared prefix 'z'");
        let (_, pid) = crate::static1d::namemap::unpack2(t.owner.get(z).unwrap());
        assert_eq!(pid, 0);
    }

    #[test]
    fn rejects_bad_dictionaries() {
        let ctx = Ctx::seq();
        assert!(StaticTables::build(&ctx, &[]).is_err());
        assert!(StaticTables::build(&ctx, &symbolize(&["a", "a"])).is_err());
    }

    #[test]
    fn single_char_pattern_dictionary() {
        let ctx = Ctx::seq();
        let pats = symbolize(&["a", "b"]);
        let t = StaticTables::build(&ctx, &pats).unwrap();
        assert_eq!(t.levels, 0);
        assert_eq!(t.read.ext.len(), 1);
        // ext[0] must contain (IDENTITY, name(a)) → pref("a").
        let na = t.read.sym.lookup(u32::from(b'a'), 0).unwrap();
        assert_eq!(
            t.read.ext[0].lookup(IDENTITY, na),
            Some(t.pattern_prefs[0][0])
        );
    }

    #[test]
    fn parallel_build_matches_sequential_semantics() {
        // Name values differ across executions, but the derived relations
        // (shared prefixes, longest-pattern lengths) must agree.
        let pats = symbolize(&["aab", "aabb", "ab", "bbb", "bb"]);
        let t1 = StaticTables::build(&Ctx::seq(), &pats).unwrap();
        let t2 = StaticTables::build(&Ctx::par(), &pats).unwrap();
        for p in 0..pats.len() {
            for l in 1..=pats[p].len() {
                let v1 = t1
                    .longest
                    .get(t1.pattern_prefs[p][l - 1])
                    .map(crate::static1d::namemap::unpack2);
                let v2 = t2
                    .longest
                    .get(t2.pattern_prefs[p][l - 1])
                    .map(crate::static1d::namemap::unpack2);
                assert_eq!(v1, v2, "pattern {p} prefix len {l}");
            }
        }
    }

    #[test]
    fn dictionary_work_is_linear() {
        // Work charged for preprocessing should be O(M) — within a small
        // constant of total size, independent of n.
        let ctx = Ctx::seq();
        let pats: Vec<Vec<u32>> = (0..64)
            .map(|i| {
                (0..128)
                    .map(|j| ((i * 131 + j * 17) % 256) as u32)
                    .collect()
            })
            .collect();
        let m_total: usize = pats.iter().map(Vec::len).sum();
        let before = ctx.cost.snapshot();
        let _t = StaticTables::build(&ctx, &pats).unwrap();
        let d = ctx.cost.snapshot().since(before);
        assert!(
            d.work <= 12 * m_total as u64,
            "dictionary work {} not O(M={m_total})",
            d.work
        );
        assert!(
            d.rounds <= 12 * (ceil_log2(128) as u64 + 2),
            "rounds {} not O(log m)",
            d.rounds
        );
    }
}
