//! Static dictionary matching with strings (paper §4, Theorems 1–3).
//!
//! ```
//! use pdm_core::static1d::StaticMatcher;
//! use pdm_core::dict::{symbolize, to_symbols};
//! use pdm_pram::Ctx;
//!
//! let ctx = Ctx::seq();
//! let matcher = StaticMatcher::build(&ctx, &symbolize(&["he", "she", "hers"])).unwrap();
//! let out = matcher.match_text(&ctx, &to_symbols("ushers"));
//! assert_eq!(out.longest_pattern[1], Some(1)); // "she" at position 1
//! assert_eq!(out.longest_pattern[2], Some(2)); // "hers" at position 2
//! assert_eq!(out.prefix_len[3], 0);            // nothing starts with 'r'
//! ```

pub mod namemap;
pub mod prefix_match;
pub mod serial;
pub mod tables;

pub use prefix_match::{match_text, prefix_match, MatchOutput, MatchTables, PrefixMatch};
pub use tables::StaticTables;

use crate::dict::{BuildError, PatId, Sym};
use pdm_pram::Ctx;

/// The static dictionary matcher: preprocess once (`O(log m)` time, `O(M)`
/// work), match any number of texts (`O(log m)` time, `O(n log m)` work
/// each) — Theorem 3.
#[derive(Debug)]
pub struct StaticMatcher {
    tables: StaticTables,
}

/// Size diagnostics for a built dictionary (see [`StaticMatcher::stats`]).
/// Total table entries are `O(M)` — the paper's dictionary-side space after
/// the hash-table substitution (DESIGN.md §2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DictStats {
    pub levels: usize,
    pub n_patterns: usize,
    pub dictionary_size: usize,
    pub max_pattern_len: usize,
    pub names_allocated: usize,
    pub sym_entries: usize,
    pub pair_entries: usize,
    pub fold_entries: usize,
    pub ext_entries: usize,
}

impl DictStats {
    /// All table entries combined.
    pub fn table_entry_count(&self) -> usize {
        self.sym_entries + self.pair_entries + self.fold_entries + self.ext_entries
    }

    #[deprecated(since = "0.2.0", note = "renamed to `table_entry_count`")]
    pub fn total_entries(&self) -> usize {
        self.table_entry_count()
    }
}

impl StaticMatcher {
    /// Preprocess a dictionary of distinct, non-empty patterns.
    pub fn build(ctx: &Ctx, patterns: &[Vec<Sym>]) -> Result<Self, BuildError> {
        Ok(Self {
            tables: StaticTables::build(ctx, patterns)?,
        })
    }

    /// Longest pattern (and prefix) starting at every text position.
    pub fn match_text(&self, ctx: &Ctx, text: &[Sym]) -> MatchOutput {
        match_text(ctx, &self.tables, text)
    }

    /// Match a *set* of texts (the paper's problem statement takes
    /// `T = {T₁, …}`); tables are shared, so total work is
    /// `O(Σ nᵢ · log m)` with no per-text dictionary cost.
    pub fn match_texts(&self, ctx: &Ctx, texts: &[Vec<Sym>]) -> Vec<MatchOutput> {
        texts.iter().map(|t| self.match_text(ctx, t)).collect()
    }

    /// Phase 1 only: longest dictionary *prefix* per position (Theorem 1).
    pub fn prefix_match(&self, ctx: &Ctx, text: &[Sym]) -> PrefixMatch {
        prefix_match(ctx, &self.tables, text)
    }

    /// Memory-lean variant of [`Self::match_text`] for long texts: process
    /// the text in chunks of `chunk` symbols, each extended by `m − 1`
    /// overlap symbols, so peak memory is `O(chunk · log m)` instead of
    /// `O(n · log m)`. A match starting inside a chunk lies entirely within
    /// the extended window (prefixes are ≤ `m` long), so outputs are
    /// identical to the whole-text call.
    pub fn match_text_chunked(&self, ctx: &Ctx, text: &[Sym], chunk: usize) -> MatchOutput {
        assert!(chunk > 0, "chunk size must be positive");
        let n = text.len();
        let overlap = self.tables.max_len.saturating_sub(1);
        let mut out = MatchOutput::empty();
        let mut at = 0usize;
        while at < n {
            let end_proper = (at + chunk).min(n);
            let end = (end_proper + overlap).min(n);
            let part = self.match_text(ctx, &text[at..end]);
            let take = end_proper - at;
            out.prefix_len.extend_from_slice(&part.prefix_len[..take]);
            out.prefix_name.extend_from_slice(&part.prefix_name[..take]);
            out.longest_pattern
                .extend_from_slice(&part.longest_pattern[..take]);
            out.longest_pattern_len
                .extend_from_slice(&part.longest_pattern_len[..take]);
            out.prefix_owner
                .extend_from_slice(&part.prefix_owner[..take]);
            at = end_proper;
        }
        out
    }

    /// All `(start, pattern)` occurrences, sorted by start then pattern —
    /// the classical sequential output format, produced from the
    /// longest-match output plus the §2 all-matches expansion.
    pub fn find_all(&self, ctx: &Ctx, text: &[Sym]) -> Vec<(usize, PatId)> {
        let out = self.match_text(ctx, text);
        let all = crate::allmatches::enumerate_all(ctx, self, &out);
        let mut v = Vec::with_capacity(all.total());
        for i in 0..text.len() {
            let mut here: Vec<PatId> = all.at(i).to_vec();
            here.sort_unstable();
            v.extend(here.into_iter().map(|p| (i, p)));
        }
        v
    }

    /// Access the underlying tables (consumed by §4.4 and the experiments).
    pub fn tables(&self) -> &StaticTables {
        &self.tables
    }

    /// Size diagnostics: names allocated and per-table entry counts.
    pub fn stats(&self) -> DictStats {
        let t = &self.tables;
        DictStats {
            levels: t.levels,
            n_patterns: t.n_patterns,
            dictionary_size: t.total_len,
            max_pattern_len: t.max_len,
            names_allocated: t.pool.allocated() as usize,
            sym_entries: t.sym.len(),
            pair_entries: t.pair.iter().map(|x| x.len()).sum(),
            fold_entries: t.fold.len(),
            ext_entries: t.ext.iter().map(|x| x.len()).sum(),
        }
    }

    /// Serialize the frozen index (see [`serial`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.tables.to_bytes()
    }

    /// Load a matcher from a serialized index.
    pub fn from_bytes(data: &[u8]) -> Result<Self, serial::LoadError> {
        Ok(Self {
            tables: StaticTables::from_bytes(data)?,
        })
    }

    /// Longest pattern length in the dictionary (`m`).
    pub fn max_pattern_len(&self) -> usize {
        self.tables.max_len
    }

    /// Length of pattern `p` in symbols (available even on a matcher
    /// loaded via [`Self::from_bytes`] — the streaming layer needs it to
    /// decide which window a match's *end* falls in).
    pub fn pattern_len(&self, p: PatId) -> u32 {
        self.tables.pattern_prefs[p as usize].len() as u32
    }

    /// Total dictionary size in symbols (`M`).
    pub fn symbol_count(&self) -> usize {
        self.tables.total_len
    }

    /// Number of patterns (`κ`).
    pub fn pattern_count(&self) -> usize {
        self.tables.n_patterns
    }

    /// All namestamp-table entries combined (the paper's `O(M)` space).
    pub fn table_entry_count(&self) -> usize {
        self.stats().table_entry_count()
    }

    #[deprecated(since = "0.2.0", note = "renamed to `symbol_count`")]
    pub fn dictionary_size(&self) -> usize {
        self.symbol_count()
    }

    #[deprecated(since = "0.2.0", note = "renamed to `pattern_count`")]
    pub fn n_patterns(&self) -> usize {
        self.pattern_count()
    }
}
