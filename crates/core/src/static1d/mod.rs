//! Static dictionary matching with strings (paper §4, Theorems 1–3).
//!
//! ```
//! use pdm_core::static1d::StaticMatcher;
//! use pdm_core::dict::{symbolize, to_symbols};
//! use pdm_pram::Ctx;
//!
//! let ctx = Ctx::seq();
//! let matcher = StaticMatcher::build(&ctx, &symbolize(&["he", "she", "hers"])).unwrap();
//! let out = matcher.match_text(&ctx, &to_symbols("ushers"));
//! assert_eq!(out.longest_pattern[1], Some(1)); // "she" at position 1
//! assert_eq!(out.longest_pattern[2], Some(2)); // "hers" at position 2
//! assert_eq!(out.prefix_len[3], 0);            // nothing starts with 'r'
//! ```

pub mod frozen_serial;
pub mod namemap;
pub mod prefix_match;
pub mod serial;
pub mod tables;

pub use prefix_match::{
    match_text, match_text_into, match_text_ref, prefix_match, prefix_match_into, prefix_match_ref,
    ConcView, MatchOutput, MatchTables, PrefixMatch,
};
pub use tables::{StaticTables, WriteTables};

use crate::allmatches::PatternChains;
use crate::dict::{BuildError, PatId, Sym};
use crate::prefilter::{Prefilter, PrefilterCounters, PrefilterDecision, ScanVerdict};
use crate::prefilter::{PREFILTER_MIN_TEXT, REASON_NO_PATTERNS};
use crate::scratch::TextScratch;
use pdm_pram::Ctx;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Cumulative text-side counters, aggregated across every scratch that
/// passes through this matcher (surfaced by `pdm stats` and
/// [`MatcherStats`](crate::matcher::MatcherStats)).
#[derive(Debug, Default)]
struct Metrics {
    match_calls: AtomicU64,
    alloc_events: AtomicU64,
    table_lookups: AtomicU64,
}

/// The static dictionary matcher: preprocess once (`O(log m)` time, `O(M)`
/// work), match any number of texts (`O(log m)` time, `O(n log m)` work
/// each) — Theorem 3.
#[derive(Debug)]
pub struct StaticMatcher {
    tables: StaticTables,
    /// Pattern suffix-chains for all-matches expansion, built lazily on the
    /// first `find_all_into` call and shared by every session thereafter.
    chains: OnceLock<PatternChains>,
    /// SWAR candidate prefilter for `find_all_into` (DESIGN.md §16).
    /// `None` when pattern texts were unavailable (e.g. a bare frozen
    /// index); snapshot loaders can attach one via [`Self::set_prefilter`].
    prefilter: Option<Prefilter>,
    metrics: Metrics,
    /// Whether this matcher was cold-loaded from the frozen snapshot form
    /// (no parallel build ran). Surfaced through
    /// [`MatcherStats::cold_loaded`](crate::matcher::MatcherStats) so boot
    /// paths can *assert* that a snapshot spared them the rebuild.
    cold_loaded: bool,
}

/// Size diagnostics for a built dictionary (see [`StaticMatcher::stats`]).
/// Total table entries are `O(M)` — the paper's dictionary-side space after
/// the hash-table substitution (DESIGN.md §2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DictStats {
    pub levels: usize,
    pub n_patterns: usize,
    pub dictionary_size: usize,
    pub max_pattern_len: usize,
    pub names_allocated: usize,
    pub sym_entries: usize,
    pub pair_entries: usize,
    pub fold_entries: usize,
    pub ext_entries: usize,
    /// Text-side `match_*` calls served so far.
    pub match_calls: u64,
    /// Scratch-buffer (re)allocation events across those calls — flat in
    /// steady state (see [`crate::scratch::TextScratch`]).
    pub alloc_events: u64,
    /// Name-table probes issued across those calls.
    pub table_lookups: u64,
    /// Prefilter strategy in effect (or why it is off).
    pub prefilter: PrefilterDecision,
    /// Cumulative prefilter scan/verify counters.
    pub prefilter_counters: PrefilterCounters,
}

impl DictStats {
    /// All table entries combined.
    pub fn table_entry_count(&self) -> usize {
        self.sym_entries + self.pair_entries + self.fold_entries + self.ext_entries
    }
}

impl StaticMatcher {
    /// Preprocess a dictionary of distinct, non-empty patterns. The SWAR
    /// candidate prefilter is analyzed from the same pattern texts and
    /// attached automatically (possibly in its disabled state — see
    /// [`Prefilter::analyze`]).
    pub fn build(ctx: &Ctx, patterns: &[Vec<Sym>]) -> Result<Self, BuildError> {
        let mut m = Self::from_tables(StaticTables::build(ctx, patterns)?);
        m.prefilter = Some(Prefilter::analyze(patterns));
        Ok(m)
    }

    fn from_tables(tables: StaticTables) -> Self {
        Self {
            tables,
            chains: OnceLock::new(),
            prefilter: None,
            metrics: Metrics::default(),
            cold_loaded: false,
        }
    }

    /// Fold a scratch's counter deltas into the matcher-wide metrics.
    fn record(&self, scratch: &TextScratch, grows0: u64, lookups0: u64) {
        self.metrics.match_calls.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .alloc_events
            .fetch_add(scratch.grow_events() - grows0, Ordering::Relaxed);
        self.metrics
            .table_lookups
            .fetch_add(scratch.table_lookups() - lookups0, Ordering::Relaxed);
    }

    /// Longest pattern (and prefix) starting at every text position.
    pub fn match_text(&self, ctx: &Ctx, text: &[Sym]) -> MatchOutput {
        let mut scratch = TextScratch::new();
        let mut out = MatchOutput::empty();
        self.match_into(ctx, text, &mut scratch, &mut out);
        out
    }

    /// [`Self::match_text`] into caller-owned buffers: `out` is overwritten
    /// and `scratch` is reused across calls, so a session matching chunk
    /// after chunk allocates nothing once warm.
    pub fn match_into(
        &self,
        ctx: &Ctx,
        text: &[Sym],
        scratch: &mut TextScratch,
        out: &mut MatchOutput,
    ) {
        let (g0, l0) = (scratch.grow_events(), scratch.table_lookups());
        match_text_into(ctx, &self.tables, text, scratch, out);
        self.record(scratch, g0, l0);
    }

    /// Match a *set* of texts (the paper's problem statement takes
    /// `T = {T₁, …}`); tables are shared, so total work is
    /// `O(Σ nᵢ · log m)` with no per-text dictionary cost.
    pub fn match_texts(&self, ctx: &Ctx, texts: &[Vec<Sym>]) -> Vec<MatchOutput> {
        texts.iter().map(|t| self.match_text(ctx, t)).collect()
    }

    /// Phase 1 only: longest dictionary *prefix* per position (Theorem 1).
    pub fn prefix_match(&self, ctx: &Ctx, text: &[Sym]) -> PrefixMatch {
        let mut scratch = TextScratch::new();
        let mut out = PrefixMatch::default();
        self.prefix_match_into(ctx, text, &mut scratch, &mut out);
        out
    }

    /// [`Self::prefix_match`] into caller-owned buffers (see
    /// [`Self::match_into`]).
    pub fn prefix_match_into(
        &self,
        ctx: &Ctx,
        text: &[Sym],
        scratch: &mut TextScratch,
        out: &mut PrefixMatch,
    ) {
        let (g0, l0) = (scratch.grow_events(), scratch.table_lookups());
        prefix_match_into(ctx, &self.tables, text, scratch, out);
        self.record(scratch, g0, l0);
    }

    /// Memory-lean variant of [`Self::match_text`] for long texts: process
    /// the text in chunks of `chunk` symbols, each extended by `m − 1`
    /// overlap symbols, so peak memory is `O(chunk · log m)` instead of
    /// `O(n · log m)`. A match starting inside a chunk lies entirely within
    /// the extended window (prefixes are ≤ `m` long), so outputs are
    /// identical to the whole-text call.
    pub fn match_text_chunked(&self, ctx: &Ctx, text: &[Sym], chunk: usize) -> MatchOutput {
        assert!(chunk > 0, "chunk size must be positive");
        let n = text.len();
        let overlap = self.tables.max_len.saturating_sub(1);
        let mut out = MatchOutput::empty();
        let mut scratch = TextScratch::new();
        let mut part = MatchOutput::empty();
        let mut at = 0usize;
        while at < n {
            let end_proper = (at + chunk).min(n);
            let end = (end_proper + overlap).min(n);
            self.match_into(ctx, &text[at..end], &mut scratch, &mut part);
            let take = end_proper - at;
            out.prefix_len.extend_from_slice(&part.prefix_len[..take]);
            out.prefix_name.extend_from_slice(&part.prefix_name[..take]);
            out.longest_pattern
                .extend_from_slice(&part.longest_pattern[..take]);
            out.longest_pattern_len
                .extend_from_slice(&part.longest_pattern_len[..take]);
            out.prefix_owner
                .extend_from_slice(&part.prefix_owner[..take]);
            at = end_proper;
        }
        out
    }

    /// All `(start, pattern)` occurrences, sorted by start then pattern —
    /// the classical sequential output format, produced from the
    /// longest-match output plus the §2 all-matches expansion.
    pub fn find_all(&self, ctx: &Ctx, text: &[Sym]) -> Vec<(usize, PatId)> {
        let mut scratch = TextScratch::new();
        let mut out = Vec::new();
        self.find_all_into(ctx, text, &mut scratch, &mut out);
        out
    }

    /// [`Self::find_all`] into caller-owned buffers. When the SWAR
    /// prefilter is active (DESIGN.md §16) the text is scanned for
    /// candidate windows first and only those run the KMR pipeline; the
    /// match set is identical to the unfiltered path either way. Uses the
    /// lazily-built per-pattern prefix chains (`chain[p]` = longest
    /// pattern properly prefixing `p`): the patterns matching at a
    /// position are exactly the chain from the longest match downward, so
    /// the expansion needs no allocation beyond the reused scratch.
    pub fn find_all_into(
        &self,
        ctx: &Ctx,
        text: &[Sym],
        scratch: &mut TextScratch,
        out: &mut Vec<(usize, PatId)>,
    ) {
        out.clear();
        let (g0, l0) = (scratch.grow_events(), scratch.table_lookups());
        if !self.find_all_prefiltered(ctx, text, scratch, out) {
            self.find_all_core(ctx, text, scratch, out);
        }
        self.record(scratch, g0, l0);
    }

    /// Prefiltered path: scan → candidate windows → per-window KMR
    /// verification. Returns `false` when the prefilter is absent,
    /// inactive, the text is too short, or the scan bailed out on density
    /// (the caller then runs the unfiltered path).
    fn find_all_prefiltered(
        &self,
        ctx: &Ctx,
        text: &[Sym],
        scratch: &mut TextScratch,
        out: &mut Vec<(usize, PatId)>,
    ) -> bool {
        let Some(pf) = &self.prefilter else {
            return false;
        };
        let n = text.len();
        if n < PREFILTER_MIN_TEXT {
            return false;
        }
        let mut shadow = std::mem::take(&mut scratch.pf_shadow);
        let mut starts = std::mem::take(&mut scratch.pf_starts);
        let mut windows = std::mem::take(&mut scratch.pf_windows);
        let caps0 = shadow.capacity() + starts.capacity() + windows.capacity();
        let verdict = pf.scan(text, &mut shadow, &mut starts, &mut windows);
        if shadow.capacity() + starts.capacity() + windows.capacity() != caps0 {
            scratch.grows += 1;
        }
        scratch.pf_shadow = shadow;
        scratch.pf_starts = starts;
        if verdict != ScanVerdict::Windows {
            scratch.pf_windows = windows;
            return false;
        }
        // Verify each window through the ordinary KMR path. A window
        // `(ws, we)` owns candidate *starts* in `[ws, we)`; its slice
        // extends `m − 1` past the last owned start so any pattern
        // starting inside fits. Matches with a relative start ≥ `we − ws`
        // belong to (and are re-found by) a later window — windows are
        // disjoint in start space, so each occurrence is emitted exactly
        // once, in ascending order.
        let m = self.tables.max_len.max(1);
        let mut wout = std::mem::take(&mut scratch.pf_out);
        let mut verified = 0u64;
        for &(ws, we) in &windows {
            let end = (we - 1 + m).min(n);
            let slice = &text[ws..end];
            verified += slice.len() as u64;
            self.find_all_core(ctx, slice, scratch, &mut wout);
            for &(rel, pid) in wout.iter() {
                if rel < we - ws {
                    out.push((ws + rel, pid));
                }
            }
        }
        pf.note_verified(verified, windows.len() as u64);
        scratch.pf_out = wout;
        scratch.pf_windows = windows;
        true
    }

    /// The unfiltered all-matches expansion (also the per-window verifier).
    fn find_all_core(
        &self,
        ctx: &Ctx,
        text: &[Sym],
        scratch: &mut TextScratch,
        out: &mut Vec<(usize, PatId)>,
    ) {
        out.clear();
        let mut mo = std::mem::take(&mut scratch.match_out);
        match_text_into(ctx, &self.tables, text, scratch, &mut mo);
        let chains = self
            .chains
            .get_or_init(|| crate::allmatches::pattern_chains(self));
        let cap0 = out.capacity() + scratch.pats_here.capacity();
        for (i, &longest) in mo.longest_pattern.iter().enumerate() {
            scratch.pats_here.clear();
            let mut cur = longest;
            while let Some(p) = cur {
                scratch.pats_here.push(p);
                cur = chains.chain[p as usize];
            }
            scratch.pats_here.sort_unstable();
            out.extend(scratch.pats_here.iter().map(|&p| (i, p)));
        }
        if out.capacity() + scratch.pats_here.capacity() != cap0 {
            scratch.grows += 1;
            self.metrics.alloc_events.fetch_add(1, Ordering::Relaxed);
        }
        scratch.match_out = mo;
    }

    /// The prefilter attached to this matcher, if any.
    pub fn prefilter(&self) -> Option<&Prefilter> {
        self.prefilter.as_ref()
    }

    /// Attach (or detach) a prefilter: snapshot loaders prime one decoded
    /// from the sidecar; benchmarks pass `None` to measure the unfiltered
    /// path. The prefilter must describe exactly this dictionary.
    pub fn set_prefilter(&mut self, pf: Option<Prefilter>) {
        self.prefilter = pf;
    }

    /// Build-time prefilter decision (strategy or disable reason).
    pub fn prefilter_decision(&self) -> PrefilterDecision {
        self.prefilter
            .as_ref()
            .map(|pf| pf.decision())
            .unwrap_or(PrefilterDecision::Disabled(REASON_NO_PATTERNS))
    }

    /// Access the underlying tables (consumed by §4.4 and the experiments).
    pub fn tables(&self) -> &StaticTables {
        &self.tables
    }

    /// Size diagnostics: names allocated and per-table entry counts.
    /// Entry counts come from the frozen read path (identical to the live
    /// counts — freezing preserves every entry), so they are available on
    /// cold-loaded matchers too.
    pub fn stats(&self) -> DictStats {
        let t = &self.tables;
        DictStats {
            levels: t.levels,
            n_patterns: t.n_patterns,
            dictionary_size: t.total_len,
            max_pattern_len: t.max_len,
            names_allocated: t.pool.allocated() as usize,
            sym_entries: t.read.sym.len(),
            pair_entries: t.read.pair.iter().map(|x| x.len()).sum(),
            fold_entries: t.fold_len,
            ext_entries: t.read.ext.iter().map(|x| x.len()).sum(),
            match_calls: self.metrics.match_calls.load(Ordering::Relaxed),
            alloc_events: self.metrics.alloc_events.load(Ordering::Relaxed),
            table_lookups: self.metrics.table_lookups.load(Ordering::Relaxed),
            prefilter: self.prefilter_decision(),
            prefilter_counters: self
                .prefilter
                .as_ref()
                .map(|pf| pf.counters())
                .unwrap_or_default(),
        }
    }

    /// Serialize the frozen index (see [`serial`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.tables.to_bytes()
    }

    /// Load a matcher from a serialized index.
    pub fn from_bytes(data: &[u8]) -> Result<Self, serial::LoadError> {
        Ok(Self::from_tables(StaticTables::from_bytes(data)?))
    }

    /// Serialize the read path to the frozen snapshot form (see
    /// [`frozen_serial`]).
    pub fn to_frozen_bytes(&self) -> Vec<u8> {
        self.tables.to_frozen_bytes()
    }

    /// Cold-load a matcher from the frozen snapshot form: `O(bytes)` work,
    /// no naming rounds, no parallel build. The result reports
    /// `cold_loaded = true` in its [`MatcherStats`](crate::matcher::Matcher)
    /// so callers can verify the rebuild was actually skipped.
    pub fn from_frozen_bytes(data: &[u8]) -> Result<Self, serial::LoadError> {
        let mut m = Self::from_tables(StaticTables::from_frozen_bytes(data)?);
        m.cold_loaded = true;
        Ok(m)
    }

    /// Whether this matcher was cold-loaded (see [`Self::from_frozen_bytes`]).
    pub fn cold_loaded(&self) -> bool {
        self.cold_loaded
    }

    /// Seed the all-matches prefix chains with precomputed values (a
    /// snapshot loader restoring serialized chains). A no-op if the chains
    /// were already built; `chains` must describe exactly this dictionary.
    pub fn prime_chains(&self, chains: PatternChains) {
        debug_assert_eq!(chains.chain.len(), self.pattern_count());
        let _ = self.chains.set(chains);
    }

    /// Longest pattern length in the dictionary (`m`).
    pub fn max_pattern_len(&self) -> usize {
        self.tables.max_len
    }

    /// Length of pattern `p` in symbols (available even on a matcher
    /// loaded via [`Self::from_bytes`] — the streaming layer needs it to
    /// decide which window a match's *end* falls in).
    pub fn pattern_len(&self, p: PatId) -> u32 {
        self.tables.pattern_prefs[p as usize].len() as u32
    }

    /// Total dictionary size in symbols (`M`).
    pub fn symbol_count(&self) -> usize {
        self.tables.total_len
    }

    /// Number of patterns (`κ`).
    pub fn pattern_count(&self) -> usize {
        self.tables.n_patterns
    }

    /// All namestamp-table entries combined (the paper's `O(M)` space).
    pub fn table_entry_count(&self) -> usize {
        self.stats().table_entry_count()
    }
}
