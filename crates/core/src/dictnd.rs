//! d-dimensional dictionary matching (paper §5: "Extensions to
//! d-dimensional dictionary matching for a fixed d are straightforward").
//!
//! Generalizes the 2-D matcher ([`crate::dict2d`]) to hypercube patterns in
//! any fixed dimension `d`: a `s^d` cube is identified by the names of its
//! `2^d` overlapping `2^⌊log₂ s⌋` corner subcubes; "some `s`-cube-prefix of
//! a dictionary pattern matches at `x`" is monotone decreasing in `s`, so
//! each text position binary-searches its largest `s` with one
//! `2^d`-way namestamp per probe. For fixed `d` the constants are `O(2^d)`:
//! text `O(log m)` time, `O(n·2^d·log m)` work.
//!
//! ```
//! use pdm_core::dictnd::DictNdMatcher;
//! use pdm_core::multidim::Tensor;
//! use pdm_pram::Ctx;
//!
//! let ctx = Ctx::seq();
//! let cube = Tensor::from_fn(vec![2, 2, 2], |_| 7);
//! let m = DictNdMatcher::build(&ctx, &[cube]).unwrap();
//! let text = Tensor::from_fn(vec![3, 3, 3], |_| 7);
//! let out = m.match_tensor(&ctx, &text);
//! assert_eq!(out.largest_pattern[0], Some(0)); // fits at the origin
//! ```

#![allow(clippy::needless_range_loop)] // corner masks index parallel buffers

use crate::dict::{BuildError, PatId, Sym};
use crate::multidim::Tensor;
use pdm_naming::{NamePool, NameTable};
use pdm_pram::{floor_log2, Ctx};
use pdm_primitives::FxHashMap;

/// Sentinel for text blocks unseen in the dictionary.
const UNKNOWN: u32 = u32::MAX - 1;

/// d-dimensional cube-dictionary matcher.
#[derive(Debug)]
pub struct DictNdMatcher {
    ndim: usize,
    levels: usize,
    max_side: usize,
    n_patterns: usize,
    total_cells: usize,
    sym: NameTable,
    /// `corner[k-1]`: level-`k` names from `2^d` level-`k−1` corner names.
    corner: Vec<NameTable>,
    /// `(2^d corner names …, s)` chained → certificate name.
    cert: NameTable,
    /// certificate → best full pattern `(id, side)` with side ≤ s.
    best: FxHashMap<u32, (PatId, u32)>,
}

/// Output: flattened per text position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchNdOutput {
    pub dims: Vec<usize>,
    /// Largest matching cube-prefix side per position (0 = none).
    pub prefix_side: Vec<u32>,
    pub largest_pattern: Vec<Option<PatId>>,
    pub largest_pattern_side: Vec<u32>,
}

/// Per-level geometry of a tensor: the region where a `2^k` cube fits.
struct LevelGeom {
    dims: Vec<usize>,
    strides: Vec<usize>,
}

impl LevelGeom {
    fn new(base: &[usize], span: usize) -> Option<Self> {
        let mut dims = Vec::with_capacity(base.len());
        for &d in base {
            if d < span {
                return None;
            }
            dims.push(d + 1 - span);
        }
        let mut strides = vec![1usize; dims.len()];
        for ax in (0..dims.len().saturating_sub(1)).rev() {
            strides[ax] = strides[ax + 1] * dims[ax + 1];
        }
        Some(LevelGeom { dims, strides })
    }

    fn len(&self) -> usize {
        self.dims.iter().product()
    }
}

impl DictNdMatcher {
    /// Preprocess a dictionary of distinct `d`-dimensional hypercubes.
    pub fn build(ctx: &Ctx, patterns: &[Tensor]) -> Result<Self, BuildError> {
        if patterns.is_empty() {
            return Err(BuildError::EmptyDictionary);
        }
        let ndim = patterns[0].ndim();
        if ndim > 4 {
            // Fixed small d, as in the paper; the corner tuples use
            // stack-allocated 2^d buffers.
            return Err(BuildError::Unsupported(format!(
                "dimension {ndim} > 4 not supported"
            )));
        }
        let mut seen: FxHashMap<&[Sym], usize> = FxHashMap::default();
        for (i, p) in patterns.iter().enumerate() {
            if p.ndim() != ndim {
                return Err(BuildError::Unsupported(format!(
                    "pattern {i} has {} dims, expected {ndim}",
                    p.ndim()
                )));
            }
            let side = p.dims[0];
            if p.dims.iter().any(|&d| d != side) {
                return Err(BuildError::Unsupported(format!(
                    "pattern {i} is not a cube"
                )));
            }
            if side == 0 {
                return Err(BuildError::EmptyPattern(i));
            }
            if let Some(&j) = seen.get(p.data.as_slice()) {
                return Err(BuildError::DuplicatePattern(j, i));
            }
            seen.insert(&p.data, i);
        }
        let max_side = patterns.iter().map(|p| p.dims[0]).max().unwrap();
        let levels = floor_log2(max_side) as usize;
        let total_cells: usize = patterns.iter().map(Tensor::len).sum();
        let pool = NamePool::dictionary();
        let sym = NameTable::with_capacity(total_cells, pool.clone());
        let corners = 1usize << ndim;
        let corner: Vec<NameTable> = (0..levels)
            .map(|_| NameTable::with_capacity((corners * total_cells).max(1), pool.clone()))
            .collect();
        let cert = NameTable::with_capacity(
            (2 * corners * patterns.iter().map(|p| p.dims[0]).sum::<usize>()).max(1),
            pool.clone(),
        );

        // Level names at every pattern position where the block fits.
        let lvls: Vec<Vec<Vec<u32>>> = ctx.map(patterns.len(), |pi| {
            let p = &patterns[pi];
            let mut per: Vec<Vec<u32>> = Vec::with_capacity(levels + 1);
            per.push(p.data.iter().map(|&c| sym.name(c, 0)).collect());
            for k in 1..=levels {
                let h = 1usize << (k - 1);
                let Some(geom) = LevelGeom::new(&p.dims, 1 << k) else {
                    per.push(Vec::new());
                    continue;
                };
                let prev_geom = LevelGeom::new(&p.dims, h).expect("smaller span fits");
                let prev = &per[k - 1];
                let cur = cube_names(&geom, &prev_geom, prev, h, ndim, |t| {
                    corner[k - 1].name_tuple(t)
                });
                per.push(cur);
            }
            per
        });
        ctx.cost.work((total_cells * (levels + 1)) as u64);

        // Certificates per (pattern, s) and best-pattern attribution.
        let cert_of = |pi: usize, s: usize| -> u32 {
            let p = &patterns[pi];
            let k = floor_log2(s) as usize;
            let h = s - (1 << k);
            let geom = LevelGeom::new(&p.dims, 1 << k).expect("fits");
            let lv = &lvls[pi][k];
            let mut tup = Vec::with_capacity((1 << ndim) + 1);
            for mask in 0..1usize << ndim {
                let mut off = 0usize;
                for ax in 0..ndim {
                    if mask & (1 << ax) != 0 {
                        off += h * geom.strides[ax];
                    }
                }
                tup.push(lv[off]);
            }
            tup.push(s as u32);
            cert.name_tuple(&tup)
        };
        let mut full: FxHashMap<u32, PatId> = FxHashMap::default();
        for (pi, p) in patterns.iter().enumerate() {
            full.entry(cert_of(pi, p.dims[0])).or_insert(pi as PatId);
        }
        let mut best: FxHashMap<u32, (PatId, u32)> = FxHashMap::default();
        for (pi, p) in patterns.iter().enumerate() {
            let mut last: Option<(PatId, u32)> = None;
            for s in 1..=p.dims[0] {
                let c = cert_of(pi, s);
                if let Some(&pid) = full.get(&c) {
                    last = Some((pid, s as u32));
                }
                if let Some(v) = last {
                    best.insert(c, v);
                }
            }
        }
        ctx.cost.rounds(
            (floor_log2(max_side) + 1) as u64,
            patterns.iter().map(|p| p.dims[0]).sum::<usize>() as u64,
        );

        Ok(Self {
            ndim,
            levels,
            max_side,
            n_patterns: patterns.len(),
            total_cells,
            sym,
            corner,
            cert,
            best,
        })
    }

    pub fn ndim(&self) -> usize {
        self.ndim
    }

    pub fn max_side(&self) -> usize {
        self.max_side
    }

    pub fn n_patterns(&self) -> usize {
        self.n_patterns
    }

    pub fn dictionary_cells(&self) -> usize {
        self.total_cells
    }

    /// Match a text tensor: largest cube pattern at every position.
    pub fn match_tensor(&self, ctx: &Ctx, text: &Tensor) -> MatchNdOutput {
        assert_eq!(text.ndim(), self.ndim, "dimensionality mismatch");
        let n = text.len();
        let mut out = MatchNdOutput {
            dims: text.dims.clone(),
            prefix_side: vec![0; n],
            largest_pattern: vec![None; n],
            largest_pattern_side: vec![0; n],
        };
        if n == 0 {
            return out;
        }
        let min_dim = *text.dims.iter().min().unwrap();
        let kt = self.levels.min(floor_log2(min_dim.max(1)) as usize);
        let ndim = self.ndim;

        // Text level names (lookup-only; UNKNOWN collapse).
        let mut lvls: Vec<Vec<u32>> = Vec::with_capacity(kt + 1);
        lvls.push(ctx.map(n, |i| self.sym.lookup(text.data[i], 0).unwrap_or(UNKNOWN)));
        let mut geoms: Vec<LevelGeom> = vec![LevelGeom::new(&text.dims, 1).expect("unit fits")];
        for k in 1..=kt {
            let h = 1usize << (k - 1);
            let geom = LevelGeom::new(&text.dims, 1 << k).expect("kt bounds");
            let prev = &lvls[k - 1];
            let prev_geom = &geoms[k - 1];
            let cur = {
                let q = &self.corner[k - 1];
                // Parallel over output positions.
                let strides = geom.strides.clone();
                let dims = geom.dims.clone();
                let pstr = prev_geom.strides.clone();
                ctx.map(geom.len(), |idx| {
                    // Decode idx into coordinates, compute prev base offset.
                    let mut rem = idx;
                    let mut base = 0usize;
                    for ax in 0..ndim {
                        let c = rem / strides[ax];
                        rem %= strides[ax];
                        base += c * pstr[ax];
                    }
                    let _ = &dims;
                    let mut tup = [0u32; 16];
                    let corners = 1usize << ndim;
                    for mask in 0..corners {
                        let mut off = base;
                        for ax in 0..ndim {
                            if mask & (1 << ax) != 0 {
                                off += h * pstr[ax];
                            }
                        }
                        let v = prev[off];
                        if v == UNKNOWN {
                            return UNKNOWN;
                        }
                        tup[mask] = v;
                    }
                    q.lookup_tuple(&tup[..corners]).unwrap_or(UNKNOWN)
                })
            };
            lvls.push(cur);
            geoms.push(geom);
        }

        // Per-position binary search over s.
        let results: Vec<(u32, Option<(PatId, u32)>)> = {
            let text_dims = text.dims.clone();
            let mut tstrides = vec![1usize; ndim];
            for ax in (0..ndim.saturating_sub(1)).rev() {
                tstrides[ax] = tstrides[ax + 1] * text_dims[ax + 1];
            }
            let check = |coord: &[usize], s: usize| -> Option<u32> {
                let k = floor_log2(s) as usize;
                if k > kt {
                    return None;
                }
                let h = s - (1 << k);
                let geom = &geoms[k];
                let lv = &lvls[k];
                let mut base = 0usize;
                for ax in 0..ndim {
                    base += coord[ax] * geom.strides[ax];
                }
                let corners = 1usize << ndim;
                let mut tup = [0u32; 17];
                for mask in 0..corners {
                    let mut off = base;
                    for ax in 0..ndim {
                        if mask & (1 << ax) != 0 {
                            off += h * geom.strides[ax];
                        }
                    }
                    let v = lv[off];
                    if v == UNKNOWN {
                        return None;
                    }
                    tup[mask] = v;
                }
                tup[corners] = s as u32;
                self.cert.lookup_tuple(&tup[..corners + 1])
            };
            ctx.map(n, |idx| {
                let mut coord = vec![0usize; ndim];
                let mut rem = idx;
                for ax in 0..ndim {
                    coord[ax] = rem / tstrides[ax];
                    rem %= tstrides[ax];
                }
                let cap = (0..ndim)
                    .map(|ax| text_dims[ax] - coord[ax])
                    .min()
                    .unwrap()
                    .min(self.max_side);
                let (mut lo, mut hi) = (0usize, cap);
                while lo < hi {
                    let mid = (lo + hi).div_ceil(2);
                    if check(&coord, mid).is_some() {
                        lo = mid;
                    } else {
                        hi = mid - 1;
                    }
                }
                if lo == 0 {
                    (0, None)
                } else {
                    let c = check(&coord, lo).expect("verified");
                    (lo as u32, self.best.get(&c).copied())
                }
            })
        };
        for (idx, (side, bp)) in results.into_iter().enumerate() {
            out.prefix_side[idx] = side;
            if let Some((pid, ps)) = bp {
                out.largest_pattern[idx] = Some(pid);
                out.largest_pattern_side[idx] = ps;
            }
        }
        out
    }
}

/// Level-`k` names over a geometry from level-`k−1` names (dictionary side,
/// sequential per pattern — patterns parallelize across each other).
fn cube_names(
    geom: &LevelGeom,
    prev_geom: &LevelGeom,
    prev: &[u32],
    h: usize,
    ndim: usize,
    mut name: impl FnMut(&[u32]) -> u32,
) -> Vec<u32> {
    let corners = 1usize << ndim;
    let total = geom.len();
    let mut out = Vec::with_capacity(total);
    let mut tup = vec![0u32; corners];
    for idx in 0..total {
        let mut rem = idx;
        let mut base = 0usize;
        for ax in 0..ndim {
            let c = rem / geom.strides[ax];
            rem %= geom.strides[ax];
            base += c * prev_geom.strides[ax];
        }
        for (mask, t) in tup.iter_mut().enumerate() {
            let mut off = base;
            for ax in 0..ndim {
                if mask & (1 << ax) != 0 {
                    off += h * prev_geom.strides[ax];
                }
            }
            *t = prev[off];
        }
        out.push(name(&tup));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_textgen::{grid, strings, Alphabet};

    /// Naive oracle: largest cube pattern per position.
    fn naive_nd(patterns: &[Tensor], text: &Tensor) -> Vec<Option<usize>> {
        let d = text.ndim();
        (0..text.len())
            .map(|idx| {
                let mut coord = vec![0usize; d];
                let mut rem = idx;
                for ax in (0..d).rev() {
                    coord[ax] = rem % text.dims[ax];
                    rem /= text.dims[ax];
                }
                let mut best: Option<(usize, usize)> = None;
                'pat: for (pi, p) in patterns.iter().enumerate() {
                    let s = p.dims[0];
                    if (0..d).any(|ax| coord[ax] + s > text.dims[ax]) {
                        continue;
                    }
                    // Compare the whole cube.
                    let mut pc = vec![0usize; d];
                    loop {
                        let tc: Vec<usize> = (0..d).map(|ax| coord[ax] + pc[ax]).collect();
                        if text.data[text.offset(&tc)] != p.data[p.offset(&pc)] {
                            continue 'pat;
                        }
                        let mut ax = d;
                        loop {
                            if ax == 0 {
                                if best.is_none_or(|b| s > b.0) {
                                    best = Some((s, pi));
                                }
                                continue 'pat;
                            }
                            ax -= 1;
                            pc[ax] += 1;
                            if pc[ax] < s {
                                break;
                            }
                            pc[ax] = 0;
                        }
                    }
                }
                best.map(|(_, pi)| pi)
            })
            .collect()
    }

    fn check(patterns: &[Tensor], text: &Tensor, tag: &str) {
        let ctx = Ctx::seq();
        let m = DictNdMatcher::build(&ctx, patterns).expect("build");
        let got: Vec<Option<usize>> = m
            .match_tensor(&ctx, text)
            .largest_pattern
            .into_iter()
            .map(|o| o.map(|p| p as usize))
            .collect();
        let want = naive_nd(patterns, text);
        assert_eq!(got, want, "{tag}");
    }

    #[test]
    fn agrees_with_dict2d_semantics() {
        let mut r = strings::rng(1);
        let tg = grid::random_grid(&mut r, Alphabet::Dna, 20, 20);
        let pats2 = grid::excerpt_square_dictionary(&mut r, &tg, 5, 1, 6);
        let tensors: Vec<Tensor> = pats2
            .iter()
            .map(|g| Tensor::new(vec![g.rows, g.cols], g.data.clone()))
            .collect();
        let text = Tensor::new(vec![20, 20], tg.data.clone());
        check(&tensors, &text, "2d");
        // Also compare against the dedicated 2-D matcher directly.
        let ctx = Ctx::seq();
        let nd = DictNdMatcher::build(&ctx, &tensors).unwrap();
        let g_pats: Vec<crate::dict2d::Grid2> = pats2
            .iter()
            .map(|g| crate::dict2d::Grid2::new(g.rows, g.cols, g.data.clone()))
            .collect();
        let d2 = crate::dict2d::Dict2DMatcher::build(&ctx, &g_pats).unwrap();
        let a = nd.match_tensor(&ctx, &text);
        let b = d2.match_grid(&ctx, &crate::dict2d::Grid2::new(20, 20, tg.data.clone()));
        assert_eq!(a.largest_pattern, b.largest_pattern);
        assert_eq!(a.prefix_side, b.prefix_side);
    }

    #[test]
    fn three_d_cube_dictionary() {
        use rand::Rng;
        let mut r = strings::rng(3);
        let text = Tensor::from_fn(vec![12, 12, 12], |_| r.gen_range(0..3u32));
        // Excerpt cubes of sides 2 and 3 from the text.
        let mut pats = Vec::new();
        for (o, s) in [([1usize, 2, 3], 2usize), ([5, 0, 7], 3), ([9, 9, 0], 2)] {
            let mut data = Vec::new();
            for i in 0..s {
                for j in 0..s {
                    for k in 0..s {
                        data.push(text.data[text.offset(&[o[0] + i, o[1] + j, o[2] + k])]);
                    }
                }
            }
            let t = Tensor::new(vec![s, s, s], data);
            if !pats.contains(&t) {
                pats.push(t);
            }
        }
        check(&pats, &text, "3d");
    }

    #[test]
    fn one_d_degenerate() {
        // d = 1 degenerates to 1-D dictionary matching (equal semantics).
        let pats = vec![
            Tensor::new(vec![2], vec![1, 2]),
            Tensor::new(vec![3], vec![1, 2, 3]),
        ];
        let text = Tensor::new(vec![8], vec![0, 1, 2, 3, 1, 2, 0, 1]);
        check(&pats, &text, "1d");
    }

    #[test]
    fn rejects_bad_dictionaries() {
        let ctx = Ctx::seq();
        assert!(DictNdMatcher::build(&ctx, &[]).is_err());
        let cube = Tensor::new(vec![2, 2], vec![1, 2, 3, 4]);
        let rect = Tensor::new(vec![1, 2], vec![1, 2]);
        assert!(DictNdMatcher::build(&ctx, &[rect]).is_err());
        let other_dim = Tensor::new(vec![2], vec![1, 2]);
        assert!(DictNdMatcher::build(&ctx, &[cube.clone(), other_dim]).is_err());
        assert!(DictNdMatcher::build(&ctx, &[cube.clone(), cube]).is_err());
    }

    #[test]
    fn uniform_3d_overlaps() {
        let pats = vec![
            Tensor::from_fn(vec![1, 1, 1], |_| 7),
            Tensor::from_fn(vec![2, 2, 2], |_| 7),
            Tensor::from_fn(vec![4, 4, 4], |_| 7),
        ];
        let text = Tensor::from_fn(vec![6, 6, 6], |_| 7);
        check(&pats, &text, "uniform3d");
    }

    #[test]
    fn parallel_matches_sequential() {
        use rand::Rng;
        let mut r = strings::rng(8);
        let text = Tensor::from_fn(vec![16, 16, 16], |_| r.gen_range(0..4u32));
        let mut data = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..4 {
                    data.push(text.data[text.offset(&[3 + i, 2 + j, 1 + k])]);
                }
            }
        }
        let pats = vec![Tensor::new(vec![4, 4, 4], data)];
        let ctx = Ctx::seq();
        let m = DictNdMatcher::build(&ctx, &pats).unwrap();
        let a = m.match_tensor(&Ctx::seq(), &text);
        let b = m.match_tensor(&Ctx::par(), &text);
        assert_eq!(a, b);
    }
}
