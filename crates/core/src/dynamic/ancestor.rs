//! Dynamic nearest-marked-ancestor on a growing tree.
//!
//! The §6 dictionary layers reduce "longest pattern that is a prefix of this
//! prefix" to marked-ancestor queries on the pattern trie: pattern-end nodes
//! are marked, inserts add nodes and marks, deletes unmark. The paper cites
//! the Euler-tour-in-balanced-tree machinery of \[AFM92\]/\[PVW83\]; we
//! substitute heavy-path decomposition with per-path ordered mark sets and
//! periodic rebuilds (DESIGN.md §2) — same role, polylogarithmic queries and
//! updates, amortized rebuilds (which §6 already uses for its tables).
//!
//! * query: walk the path chain upward; on each path one predecessor search
//!   in its mark set — `O(log N)` paths after a rebuild (fresh single-node
//!   chains inserted since may add more; the doubling rebuild bounds the
//!   amortized cost);
//! * mark/unmark: one ordered-set update;
//! * rebuild: recompute heavy paths when the node count doubles.

use std::collections::BTreeSet;

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Path {
    nodes: Vec<u32>,
    /// Positions (indices into `nodes`) that are marked.
    marked: BTreeSet<u32>,
}

/// Growing rooted tree with dynamic marks and nearest-marked-ancestor
/// queries (ancestor-or-self).
#[derive(Debug, Clone)]
pub struct MarkedAncestorTree {
    parent: Vec<u32>,
    depth: Vec<u32>,
    children: Vec<u32>, // child count only (for path extension heuristics)
    marked: Vec<bool>,
    path_id: Vec<u32>,
    path_pos: Vec<u32>,
    paths: Vec<Path>,
    nodes_at_rebuild: usize,
    rebuilds: usize,
}

impl Default for MarkedAncestorTree {
    fn default() -> Self {
        Self::new()
    }
}

impl MarkedAncestorTree {
    /// A tree with a single unmarked root (node `0`).
    pub fn new() -> Self {
        MarkedAncestorTree {
            parent: vec![NIL],
            depth: vec![0],
            children: vec![0],
            marked: vec![false],
            path_id: vec![0],
            path_pos: vec![0],
            paths: vec![Path {
                nodes: vec![0],
                marked: BTreeSet::new(),
            }],
            nodes_at_rebuild: 1,
            rebuilds: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.parent.len()
    }

    pub fn is_empty(&self) -> bool {
        false // the root always exists
    }

    pub fn root() -> u32 {
        0
    }

    pub fn depth(&self, v: u32) -> u32 {
        self.depth[v as usize]
    }

    pub fn parent(&self, v: u32) -> Option<u32> {
        let p = self.parent[v as usize];
        (p != NIL).then_some(p)
    }

    pub fn is_marked(&self, v: u32) -> bool {
        self.marked[v as usize]
    }

    /// Times the decomposition was rebuilt (diagnostics for E8).
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// Add a child of `p`; returns the new node id.
    pub fn add_child(&mut self, p: u32) -> u32 {
        let v = self.parent.len() as u32;
        self.parent.push(p);
        self.depth.push(self.depth[p as usize] + 1);
        self.children.push(0);
        self.marked.push(false);
        self.children[p as usize] += 1;
        // Extend the parent's path when p is its tail and this is p's first
        // child — keeps freshly inserted pattern chains on one path.
        let pp = self.path_id[p as usize] as usize;
        if self.children[p as usize] == 1 && *self.paths[pp].nodes.last().unwrap() == p {
            self.path_id.push(pp as u32);
            self.path_pos.push(self.paths[pp].nodes.len() as u32);
            self.paths[pp].nodes.push(v);
        } else {
            let id = self.paths.len() as u32;
            self.paths.push(Path {
                nodes: vec![v],
                marked: BTreeSet::new(),
            });
            self.path_id.push(id);
            self.path_pos.push(0);
        }
        if self.parent.len() >= 2 * self.nodes_at_rebuild {
            self.rebuild();
        }
        v
    }

    /// Mark `v` (idempotent).
    pub fn mark(&mut self, v: u32) {
        if !self.marked[v as usize] {
            self.marked[v as usize] = true;
            let p = self.path_id[v as usize] as usize;
            self.paths[p].marked.insert(self.path_pos[v as usize]);
        }
    }

    /// Unmark `v` (idempotent).
    pub fn unmark(&mut self, v: u32) {
        if self.marked[v as usize] {
            self.marked[v as usize] = false;
            let p = self.path_id[v as usize] as usize;
            self.paths[p].marked.remove(&self.path_pos[v as usize]);
        }
    }

    /// Nearest marked node on the root path of `v`, including `v` itself.
    pub fn nearest_marked(&self, v: u32) -> Option<u32> {
        let mut v = v;
        loop {
            let p = &self.paths[self.path_id[v as usize] as usize];
            let pos = self.path_pos[v as usize];
            if let Some(&hit) = p.marked.range(..=pos).next_back() {
                return Some(p.nodes[hit as usize]);
            }
            let head = p.nodes[0];
            let up = self.parent[head as usize];
            if up == NIL {
                return None;
            }
            v = up;
        }
    }

    /// Recompute the heavy-path decomposition from scratch.
    fn rebuild(&mut self) {
        let n = self.parent.len();
        self.rebuilds += 1;
        self.nodes_at_rebuild = n;
        // Children lists.
        let mut child_lists: Vec<Vec<u32>> = vec![Vec::new(); n];
        for v in 1..n {
            child_lists[self.parent[v] as usize].push(v as u32);
        }
        // Subtree sizes, processing nodes in reverse insertion order works
        // because children always have larger ids than parents.
        let mut size = vec![1u32; n];
        for v in (1..n).rev() {
            size[self.parent[v] as usize] += size[v];
        }
        // Heavy paths: iterative DFS from the root, following max-size child.
        self.paths.clear();
        let mut stack = vec![0u32];
        let mut assigned = vec![false; n];
        while let Some(start) = stack.pop() {
            if assigned[start as usize] {
                continue;
            }
            let id = self.paths.len() as u32;
            let mut nodes = Vec::new();
            let mut v = start;
            loop {
                assigned[v as usize] = true;
                self.path_id[v as usize] = id;
                self.path_pos[v as usize] = nodes.len() as u32;
                nodes.push(v);
                // Heavy child continues the path; the rest start new ones.
                let kids = &child_lists[v as usize];
                if kids.is_empty() {
                    break;
                }
                let heavy = *kids.iter().max_by_key(|&&c| size[c as usize]).unwrap();
                for &c in kids {
                    if c != heavy {
                        stack.push(c);
                    }
                }
                v = heavy;
            }
            let marked = nodes
                .iter()
                .enumerate()
                .filter(|(_, &nd)| self.marked[nd as usize])
                .map(|(i, _)| i as u32)
                .collect();
            self.paths.push(Path { nodes, marked });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Oracle: walk parents checking marks.
    fn naive_nearest(t: &MarkedAncestorTree, mut v: u32) -> Option<u32> {
        loop {
            if t.is_marked(v) {
                return Some(v);
            }
            v = t.parent(v)?;
        }
    }

    #[test]
    fn chain_marks() {
        let mut t = MarkedAncestorTree::new();
        let mut v = 0;
        let mut chain = vec![0u32];
        for _ in 0..20 {
            v = t.add_child(v);
            chain.push(v);
        }
        assert_eq!(t.nearest_marked(v), None);
        t.mark(chain[5]);
        t.mark(chain[12]);
        assert_eq!(t.nearest_marked(chain[20]), Some(chain[12]));
        assert_eq!(t.nearest_marked(chain[12]), Some(chain[12]));
        assert_eq!(t.nearest_marked(chain[11]), Some(chain[5]));
        assert_eq!(t.nearest_marked(chain[4]), None);
        t.unmark(chain[12]);
        assert_eq!(t.nearest_marked(chain[20]), Some(chain[5]));
    }

    #[test]
    fn branching_tree_matches_naive() {
        // Deterministic pseudo-random tree + mark churn.
        let mut t = MarkedAncestorTree::new();
        let mut nodes = vec![0u32];
        let mut x = 12345u64;
        let mut rnd = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..500 {
            let p = nodes[(rnd() % nodes.len() as u64) as usize];
            nodes.push(t.add_child(p));
        }
        for _ in 0..300 {
            let v = nodes[(rnd() % nodes.len() as u64) as usize];
            match rnd() % 3 {
                0 => t.mark(v),
                1 => t.unmark(v),
                _ => {}
            }
            let q = nodes[(rnd() % nodes.len() as u64) as usize];
            assert_eq!(t.nearest_marked(q), naive_nearest(&t, q));
        }
        assert!(t.rebuilds() > 0, "doubling rebuilds should have fired");
    }

    #[test]
    fn mark_unmark_idempotent() {
        let mut t = MarkedAncestorTree::new();
        let a = t.add_child(0);
        t.mark(a);
        t.mark(a);
        t.unmark(a);
        t.unmark(a);
        assert_eq!(t.nearest_marked(a), None);
        t.mark(a);
        assert_eq!(t.nearest_marked(a), Some(a));
    }

    #[test]
    fn root_can_be_marked() {
        let mut t = MarkedAncestorTree::new();
        let a = t.add_child(0);
        let b = t.add_child(a);
        t.mark(0);
        assert_eq!(t.nearest_marked(b), Some(0));
    }

    #[test]
    fn depths_track_parents() {
        let mut t = MarkedAncestorTree::new();
        let a = t.add_child(0);
        let b = t.add_child(a);
        let c = t.add_child(0);
        assert_eq!(t.depth(0), 0);
        assert_eq!(t.depth(a), 1);
        assert_eq!(t.depth(b), 2);
        assert_eq!(t.depth(c), 1);
        assert_eq!(t.parent(b), Some(a));
        assert_eq!(t.parent(0), None);
    }

    #[test]
    fn queries_after_many_rebuilds() {
        let mut t = MarkedAncestorTree::new();
        let mut chain = vec![0u32];
        for i in 0..2000 {
            let v = t.add_child(*chain.last().unwrap());
            chain.push(v);
            if i % 97 == 0 {
                t.mark(v);
            }
        }
        for (i, &v) in chain.iter().enumerate().step_by(53) {
            assert_eq!(t.nearest_marked(v), naive_nearest(&t, v), "i={i}");
        }
    }
}
