//! Dynamic dictionary matching (paper §6, Theorems 7–10).
//!
//! * **insert** (§6.1): run the dictionary side of the §4 algorithm on the
//!   new pattern alone against *shared growable* tables (partly-dynamic
//!   namestamping): `O(λ)` new table entries — the per-level block, fold and
//!   extension entries form a geometric series — plus the trie path and its
//!   marked-ancestor bookkeeping.
//! * **delete** (§6.2): the pattern is only *unmarked*; its table entries
//!   are reference-counted away (dynamic stamp-counting), its retrieve-index
//!   stamps removed (dynamic stamp-listing). When the live size drops below
//!   half of everything inserted since the last rebuild, the dictionary is
//!   squeezed out and rebuilt — the paper's amortization, verbatim.
//! * **match**: exactly the static text-side algorithm (`O(log m)` time,
//!   `O(n log m)` work) running against the current tables through the
//!   [`MatchTables`] trait, plus trie marked-ancestor lookups for the
//!   longest-pattern layer.
//!
//! ```
//! use pdm_core::dynamic::DynamicMatcher;
//! use pdm_core::dict::to_symbols;
//! use pdm_pram::Ctx;
//!
//! let ctx = Ctx::seq();
//! let mut d = DynamicMatcher::new();
//! let he = d.insert(&ctx, &to_symbols("he")).unwrap();
//! d.insert(&ctx, &to_symbols("hers")).unwrap();
//! let out = d.match_text(&ctx, &to_symbols("ushers"));
//! assert_eq!(out.longest_pattern[2], Some(1)); // "hers"
//! d.delete(&ctx, &to_symbols("hers")).unwrap();
//! let out = d.match_text(&ctx, &to_symbols("ushers"));
//! assert_eq!(out.longest_pattern[2], Some(he)); // now "he"
//! ```

pub mod ancestor;
pub mod trie;

use crate::dict::{PatId, Sym};
use crate::static1d::{self, MatchOutput, MatchTables, PrefixMatch};
use pdm_naming::dynamic::{DynTable, StampList};
use pdm_naming::{NamePool, IDENTITY};
use pdm_pram::{ceil_log2, Ctx};
use pdm_primitives::FxHashMap;
use std::sync::Arc;
use trie::PatternTrie;

/// Errors from dynamic operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DynError {
    EmptyPattern,
    /// Insert of a pattern already live in the dictionary.
    AlreadyPresent(PatId),
    /// Delete of a pattern that is not live.
    NotFound,
}

impl std::fmt::Display for DynError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DynError::EmptyPattern => write!(f, "empty pattern"),
            DynError::AlreadyPresent(p) => write!(f, "pattern already present as id {p}"),
            DynError::NotFound => write!(f, "pattern not in dictionary"),
        }
    }
}

impl std::error::Error for DynError {}

/// Fully dynamic dictionary matcher (insert + delete + match). Using only
/// `insert`/`match_text` gives the partly dynamic variant of §6.1.
///
/// Cloning copies every table but shares the name pool (an atomic
/// allocator), so a clone may be frozen as an immutable snapshot while the
/// original keeps taking updates — names allocated after the clone never
/// collide with names visible in the copy.
#[derive(Debug, Clone)]
pub struct DynamicMatcher {
    pool: Arc<NamePool>,
    /// `K`: tables exist for levels `1..=levels` (grows with insertions).
    levels: usize,
    sym: DynTable,
    pair: Vec<DynTable>,
    fold: DynTable,
    ext: Vec<DynTable>,
    trie: PatternTrie,
    /// prefix name → trie node.
    pref_node: FxHashMap<u32, u32>,
    /// prefix name → live patterns carrying it (stamp-listing; the
    /// retrieve-index table).
    owners: StampList,
    /// Slot per assigned id; `None` = deleted.
    patterns: Vec<Option<Vec<Sym>>>,
    /// full-prefix name → live pattern.
    name_to_pat: FxHashMap<u32, PatId>,
    live_syms: usize,
    total_syms: usize,
    rebuilds: usize,
}

impl Default for DynamicMatcher {
    fn default() -> Self {
        Self::new()
    }
}

impl DynamicMatcher {
    /// An empty dictionary.
    pub fn new() -> Self {
        let pool = NamePool::dictionary();
        DynamicMatcher {
            sym: DynTable::new(pool.clone()),
            fold: DynTable::new(pool.clone()),
            pool,
            levels: 0,
            pair: Vec::new(),
            ext: vec![],
            trie: PatternTrie::new(),
            pref_node: FxHashMap::default(),
            owners: StampList::new(),
            patterns: Vec::new(),
            name_to_pat: FxHashMap::default(),
            live_syms: 0,
            total_syms: 0,
            rebuilds: 0,
        }
    }

    /// Start from an initial dictionary `D₀`.
    pub fn with_dictionary(ctx: &Ctx, patterns: &[Vec<Sym>]) -> Result<Self, DynError> {
        let mut d = Self::new();
        for p in patterns {
            d.insert(ctx, p)?;
        }
        Ok(d)
    }

    /// Number of live (inserted, not deleted) patterns.
    pub fn pattern_count(&self) -> usize {
        self.patterns.iter().filter(|p| p.is_some()).count()
    }

    /// Total live symbols (`M` of the current dictionary).
    pub fn symbol_count(&self) -> usize {
        self.live_syms
    }

    /// Longest live pattern length (`m`; 0 when the dictionary is empty).
    pub fn max_pattern_len(&self) -> usize {
        self.patterns
            .iter()
            .flatten()
            .map(Vec::len)
            .max()
            .unwrap_or(0)
    }

    /// Squeeze-out rebuilds performed so far (E8 diagnostics).
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// Current table entries across all levels (space diagnostics).
    pub fn table_entry_count(&self) -> usize {
        self.sym.len()
            + self.fold.len()
            + self.pair.iter().map(DynTable::len).sum::<usize>()
            + self.ext.iter().map(DynTable::len).sum::<usize>()
    }

    /// Insert a pattern; returns its id. `O(λ)` table work, `O(log λ)` time
    /// on the PRAM schedule (Theorem 7), plus `O(λ log M)`-style trie
    /// bookkeeping (Theorem 8).
    pub fn insert(&mut self, ctx: &Ctx, pattern: &[Sym]) -> Result<PatId, DynError> {
        if pattern.is_empty() {
            return Err(DynError::EmptyPattern);
        }
        if let Some(node) = self.trie.find(pattern) {
            if let Some(pid) = self.trie.pattern_at(node) {
                return Err(DynError::AlreadyPresent(pid));
            }
        }
        let pid = self.patterns.len() as PatId;
        self.patterns.push(Some(pattern.to_vec()));
        self.insert_into_tables(ctx, pid);
        Ok(pid)
    }

    /// Delete a live pattern by content; returns the id it had.
    /// Amortized `O(λ)` table work (stamp-counting) + rebuild amortization.
    pub fn delete(&mut self, ctx: &Ctx, pattern: &[Sym]) -> Result<PatId, DynError> {
        let node = self.trie.find(pattern).ok_or(DynError::NotFound)?;
        let pid = self.trie.pattern_at(node).ok_or(DynError::NotFound)?;
        self.release_from_tables(ctx, pid, node);
        self.patterns[pid as usize] = None;
        if self.live_syms * 2 < self.total_syms {
            self.rebuild(ctx);
        }
        Ok(pid)
    }

    /// Batch insert (paper §6.1.1: "our description carries over to the
    /// case when several pattern strings are inserted simultaneously").
    /// Per-pattern results in input order; later duplicates of earlier
    /// batch members fail individually, earlier successes stand.
    pub fn insert_batch(
        &mut self,
        ctx: &Ctx,
        patterns: &[Vec<Sym>],
    ) -> Vec<Result<PatId, DynError>> {
        patterns.iter().map(|p| self.insert(ctx, p)).collect()
    }

    /// Batch delete; at most one squeeze-out rebuild at the end instead of
    /// per-delete checks (the batched amortization of §6.2.1).
    pub fn delete_batch(
        &mut self,
        ctx: &Ctx,
        patterns: &[Vec<Sym>],
    ) -> Vec<Result<PatId, DynError>> {
        let out = patterns
            .iter()
            .map(|p| {
                let node = self.trie.find(p).ok_or(DynError::NotFound)?;
                let pid = self.trie.pattern_at(node).ok_or(DynError::NotFound)?;
                self.release_from_tables(ctx, pid, node);
                self.patterns[pid as usize] = None;
                Ok(pid)
            })
            .collect();
        if self.live_syms * 2 < self.total_syms {
            self.rebuild(ctx);
        }
        out
    }

    /// Match a text against the *current* dictionary (Theorem 8/10 output:
    /// longest live pattern per position).
    pub fn match_text(&self, ctx: &Ctx, text: &[Sym]) -> MatchOutput {
        static1d::match_text(ctx, self, text)
    }

    /// Phase 1 only (Theorems 7/9): longest live dictionary prefix per
    /// position.
    pub fn prefix_match(&self, ctx: &Ctx, text: &[Sym]) -> PrefixMatch {
        static1d::prefix_match(ctx, self, text)
    }

    // ---- internals ---------------------------------------------------------

    /// Aligned block names and prefix names of one pattern, via `name`:
    /// either allocating+refcounting (insert) or pure lookups (delete).
    fn names_of(&mut self, pattern: &[Sym], alloc: bool) -> (Vec<Vec<u32>>, Vec<u32>) {
        let lam = pattern.len();
        let k_max = pdm_pram::floor_log2(lam) as usize;
        let mut blocks: Vec<Vec<u32>> = Vec::with_capacity(k_max + 1);
        blocks.push(
            pattern
                .iter()
                .map(|&c| {
                    if alloc {
                        self.sym.name_ref(c, 0)
                    } else {
                        self.sym.lookup(c, 0).expect("sym entry present")
                    }
                })
                .collect(),
        );
        for k in 1..=k_max {
            let cnt = blocks[k - 1].len() / 2;
            let mut lvl = Vec::with_capacity(cnt);
            for b in 0..cnt {
                let (x, y) = (blocks[k - 1][2 * b], blocks[k - 1][2 * b + 1]);
                lvl.push(if alloc {
                    self.pair[k - 1].name_ref(x, y)
                } else {
                    self.pair[k - 1].lookup(x, y).expect("pair entry present")
                });
            }
            blocks.push(lvl);
        }
        // Prefix names (same dyadic left-fold as the static build).
        let mut prefs = vec![IDENTITY; lam];
        for l in 1..=lam {
            let low = l & l.wrapping_neg();
            let k = low.trailing_zeros() as usize;
            let hi = l - low;
            let block = blocks[k][hi / low];
            prefs[l - 1] = if hi == 0 {
                block
            } else {
                let a = prefs[hi - 1];
                if alloc {
                    self.fold.name_ref(a, block)
                } else {
                    self.fold.lookup(a, block).expect("fold entry present")
                }
            };
        }
        (blocks, prefs)
    }

    fn insert_into_tables(&mut self, ctx: &Ctx, pid: PatId) {
        let pattern = self.patterns[pid as usize].clone().expect("live slot");
        let lam = pattern.len();
        // Grow level structure as the longest pattern grows (no rebuild
        // needed: higher levels start empty and only this pattern fills
        // them).
        let needed = ceil_log2(lam) as usize;
        while self.levels < needed {
            self.pair.push(DynTable::new(self.pool.clone()));
            self.levels += 1;
        }
        while self.ext.len() < self.levels + 1 {
            self.ext.push(DynTable::new(self.pool.clone()));
        }
        let (blocks, prefs) = self.names_of(&pattern, true);
        // Extension entries per level.
        for (k, lvl) in blocks.iter().enumerate() {
            for (b, &block) in lvl.iter().enumerate() {
                let key = if b == 0 {
                    IDENTITY
                } else {
                    prefs[(b << k) - 1]
                };
                let val = prefs[((b + 1) << k) - 1];
                self.ext[k].assoc_ref(key, block, val);
            }
        }
        // Trie path, prefix→node map, retrieve-index stamps, pattern mark.
        let path = self.trie.insert_path(&pattern);
        for l in 1..=lam {
            self.pref_node.entry(prefs[l - 1]).or_insert(path[l - 1]);
            self.owners.insert(prefs[l - 1], pid);
        }
        self.trie.mark(path[lam - 1], pid);
        self.name_to_pat.insert(prefs[lam - 1], pid);
        self.live_syms += lam;
        self.total_syms += lam;
        // PRAM schedule of the insert (Theorem 7): O(log λ) rounds, O(λ) ops.
        ctx.cost.rounds(ceil_log2(lam) as u64 + 2, 4 * lam as u64);
    }

    fn release_from_tables(&mut self, ctx: &Ctx, pid: PatId, node: u32) {
        let pattern = self.patterns[pid as usize].clone().expect("live slot");
        let lam = pattern.len();
        let (blocks, prefs) = self.names_of(&pattern, false);
        // Release in the reverse order of insertion so lookups stay valid
        // while we still need them (they don't — names are all computed —
        // but symmetric order keeps the refcount audit trivial).
        for (k, lvl) in blocks.iter().enumerate() {
            for (b, &block) in lvl.iter().enumerate() {
                let key = if b == 0 {
                    IDENTITY
                } else {
                    prefs[(b << k) - 1]
                };
                self.ext[k].release(key, block);
            }
        }
        for l in 1..=lam {
            let low = l & l.wrapping_neg();
            let hi = l - low;
            if hi > 0 {
                let k = low.trailing_zeros() as usize;
                self.fold.release(prefs[hi - 1], blocks[k][hi / low]);
            }
        }
        for (k, lvl) in blocks.iter().enumerate().skip(1) {
            for (b, _) in lvl.iter().enumerate() {
                self.pair[k - 1].release(blocks[k - 1][2 * b], blocks[k - 1][2 * b + 1]);
            }
        }
        for &c in &pattern {
            self.sym.release(c, 0);
        }
        for l in 1..=lam {
            self.owners.remove(prefs[l - 1], pid);
            if self.owners.count(prefs[l - 1]) == 0 {
                self.pref_node.remove(&prefs[l - 1]);
            }
        }
        self.trie.unmark(node);
        self.name_to_pat.remove(&prefs[lam - 1]);
        self.live_syms -= lam;
        ctx.cost.rounds(ceil_log2(lam) as u64 + 2, 4 * lam as u64);
    }

    /// The paper's squeeze-out: drop everything, re-insert live patterns
    /// (ids preserved). Amortized against the deletions that shrank us.
    fn rebuild(&mut self, ctx: &Ctx) {
        self.rebuilds += 1;
        self.pool = NamePool::dictionary();
        self.sym = DynTable::new(self.pool.clone());
        self.fold = DynTable::new(self.pool.clone());
        self.pair.clear();
        self.ext.clear();
        self.levels = 0;
        self.trie = PatternTrie::new();
        self.pref_node.clear();
        self.owners = StampList::new();
        self.name_to_pat.clear();
        self.live_syms = 0;
        self.total_syms = 0;
        let live: Vec<PatId> = self
            .patterns
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_ref().map(|_| i as PatId))
            .collect();
        for pid in live {
            self.insert_into_tables(ctx, pid);
        }
    }
}

impl MatchTables for DynamicMatcher {
    fn levels(&self) -> usize {
        self.levels
    }

    fn sym_lookup(&self, c: Sym) -> Option<u32> {
        self.sym.lookup(c, 0)
    }

    fn pair_lookup(&self, k: usize, a: u32, b: u32) -> Option<u32> {
        self.pair[k - 1].lookup(a, b)
    }

    fn ext_lookup(&self, k: usize, pref: u32, block: u32) -> Option<u32> {
        self.ext.get(k)?.lookup(pref, block)
    }

    fn longest_pattern(&self, pref: u32) -> Option<(PatId, u32)> {
        let node = *self.pref_node.get(&pref)?;
        self.trie.longest_pattern_prefix(node)
    }

    fn owner(&self, pref: u32) -> Option<PatId> {
        self.owners.any(pref)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::to_symbols;

    #[test]
    fn insert_match_delete_roundtrip() {
        let ctx = Ctx::seq();
        let mut d = DynamicMatcher::new();
        let a = d.insert(&ctx, &to_symbols("ab")).unwrap();
        let b = d.insert(&ctx, &to_symbols("abcd")).unwrap();
        let text = to_symbols("xabcdx");
        let out = d.match_text(&ctx, &text);
        assert_eq!(out.longest_pattern[1], Some(b));
        d.delete(&ctx, &to_symbols("abcd")).unwrap();
        let out = d.match_text(&ctx, &text);
        assert_eq!(out.longest_pattern[1], Some(a));
        d.delete(&ctx, &to_symbols("ab")).unwrap();
        let out = d.match_text(&ctx, &text);
        assert_eq!(out.longest_pattern[1], None);
        assert_eq!(out.prefix_len[1], 0);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let ctx = Ctx::seq();
        let mut d = DynamicMatcher::new();
        let id = d.insert(&ctx, &to_symbols("xy")).unwrap();
        assert_eq!(
            d.insert(&ctx, &to_symbols("xy")),
            Err(DynError::AlreadyPresent(id))
        );
        // Delete, then re-insert is fine (fresh id).
        d.delete(&ctx, &to_symbols("xy")).unwrap();
        assert!(d.insert(&ctx, &to_symbols("xy")).is_ok());
    }

    #[test]
    fn delete_absent_rejected() {
        let ctx = Ctx::seq();
        let mut d = DynamicMatcher::new();
        d.insert(&ctx, &to_symbols("abc")).unwrap();
        assert_eq!(d.delete(&ctx, &to_symbols("ab")), Err(DynError::NotFound));
        assert_eq!(d.delete(&ctx, &to_symbols("zz")), Err(DynError::NotFound));
    }

    #[test]
    fn empty_pattern_rejected() {
        let ctx = Ctx::seq();
        let mut d = DynamicMatcher::new();
        assert_eq!(d.insert(&ctx, &[]), Err(DynError::EmptyPattern));
    }

    #[test]
    fn empty_dictionary_matches_nothing() {
        let ctx = Ctx::seq();
        let d = DynamicMatcher::new();
        let out = d.match_text(&ctx, &to_symbols("abc"));
        assert!(out.longest_pattern.iter().all(Option::is_none));
    }

    #[test]
    fn rebuild_fires_and_preserves_ids() {
        let ctx = Ctx::seq();
        let mut d = DynamicMatcher::new();
        let keep = d.insert(&ctx, &to_symbols("keepme")).unwrap();
        let mut victims = Vec::new();
        for i in 0..20u32 {
            let p: Vec<u32> = vec![1000 + i, 2000 + i, 3000 + i, 4000 + i];
            victims.push(p.clone());
            d.insert(&ctx, &p).unwrap();
        }
        for v in &victims {
            d.delete(&ctx, v).unwrap();
        }
        assert!(d.rebuilds() > 0, "squeeze-out must have fired");
        assert_eq!(d.pattern_count(), 1);
        let out = d.match_text(&ctx, &to_symbols("xxkeepmex"));
        assert_eq!(out.longest_pattern[2], Some(keep));
    }

    #[test]
    fn refcounts_shared_prefixes_survive_partial_delete() {
        let ctx = Ctx::seq();
        let mut d = DynamicMatcher::new();
        d.insert(&ctx, &to_symbols("abcde")).unwrap();
        let keep = d.insert(&ctx, &to_symbols("abcxy")).unwrap();
        d.delete(&ctx, &to_symbols("abcde")).unwrap();
        // Shared "abc" entries must still support matching "abcxy".
        let out = d.match_text(&ctx, &to_symbols("zabcxyz"));
        assert_eq!(out.longest_pattern[1], Some(keep));
        // And prefix lengths reflect only the live pattern.
        assert_eq!(out.prefix_len[1], 5);
    }

    #[test]
    fn table_entries_return_to_zero() {
        let ctx = Ctx::seq();
        let mut d = DynamicMatcher::new();
        d.insert(&ctx, &to_symbols("hello")).unwrap();
        d.insert(&ctx, &to_symbols("help")).unwrap();
        d.delete(&ctx, &to_symbols("hello")).unwrap();
        d.delete(&ctx, &to_symbols("help")).unwrap();
        // After deleting everything a rebuild leaves no live entries.
        assert_eq!(d.symbol_count(), 0);
        assert_eq!(d.table_entry_count(), 0);
    }

    #[test]
    fn batch_insert_and_delete() {
        let ctx = Ctx::seq();
        let mut d = DynamicMatcher::new();
        let batch = vec![
            to_symbols("alpha"),
            to_symbols("beta"),
            to_symbols("alpha"), // duplicate within the batch
            to_symbols("gamma"),
        ];
        let res = d.insert_batch(&ctx, &batch);
        assert!(res[0].is_ok() && res[1].is_ok() && res[3].is_ok());
        assert_eq!(
            res[2],
            Err(DynError::AlreadyPresent(*res[0].as_ref().unwrap()))
        );
        assert_eq!(d.pattern_count(), 3);

        let res = d.delete_batch(&ctx, &[to_symbols("beta"), to_symbols("nope")]);
        assert!(res[0].is_ok());
        assert_eq!(res[1], Err(DynError::NotFound));
        assert_eq!(d.pattern_count(), 2);
        let out = d.match_text(&ctx, &to_symbols("xbetaxalphax"));
        assert_eq!(out.longest_pattern[1], None, "beta deleted");
        assert!(out.longest_pattern[6].is_some(), "alpha still live");
    }

    #[test]
    fn delete_batch_rebuilds_once() {
        let ctx = Ctx::seq();
        let mut d = DynamicMatcher::new();
        let pats: Vec<Vec<u32>> = (0..30u32).map(|i| vec![i, i + 1, i + 2, i + 3]).collect();
        d.insert_batch(&ctx, &pats)
            .into_iter()
            .for_each(|r| assert!(r.is_ok()));
        let dels: Vec<Vec<u32>> = pats[..25].to_vec();
        d.delete_batch(&ctx, &dels)
            .into_iter()
            .for_each(|r| assert!(r.is_ok()));
        // One rebuild at batch end, not one per threshold crossing.
        assert_eq!(d.rebuilds(), 1);
        assert_eq!(d.pattern_count(), 5);
    }

    #[test]
    fn owner_is_a_live_pattern_with_prefix() {
        let ctx = Ctx::seq();
        let mut d = DynamicMatcher::new();
        d.insert(&ctx, &to_symbols("abc")).unwrap();
        let id2 = d.insert(&ctx, &to_symbols("abd")).unwrap();
        d.delete(&ctx, &to_symbols("abc")).unwrap();
        let out = d.match_text(&ctx, &to_symbols("abz"));
        // Prefix "ab" is still live (via "abd"); owner must be the live one.
        assert_eq!(out.prefix_len[0], 2);
        assert_eq!(out.prefix_owner[0], Some(id2));
    }
}
