//! The pattern trie of §6: one node per live dictionary prefix, marked at
//! pattern ends, with nearest-marked-ancestor queries answering "longest
//! pattern that is a prefix of this prefix".
//!
//! The trie is *append-only* between rebuilds (the paper likewise only
//! "marks" deleted patterns and squeezes them out during rebuilds); deletes
//! just unmark.

use crate::dict::{PatId, Sym};
use crate::dynamic::ancestor::MarkedAncestorTree;
use pdm_primitives::FxHashMap;

/// Pattern trie with dynamic marks.
#[derive(Debug, Default, Clone)]
pub struct PatternTrie {
    tree: MarkedAncestorTree,
    /// `(node, symbol) → child`.
    child: FxHashMap<(u32, Sym), u32>,
    /// Pattern id marked at each node (parallel to tree marks).
    pattern_at: FxHashMap<u32, PatId>,
}

impl PatternTrie {
    pub fn new() -> Self {
        PatternTrie {
            tree: MarkedAncestorTree::new(),
            child: FxHashMap::default(),
            pattern_at: FxHashMap::default(),
        }
    }

    pub fn nodes(&self) -> usize {
        self.tree.len()
    }

    /// Walk/extend the trie along `pattern`; returns the node per position
    /// (node for prefix length `ℓ` at index `ℓ-1`).
    pub fn insert_path(&mut self, pattern: &[Sym]) -> Vec<u32> {
        let mut v = MarkedAncestorTree::root();
        let mut out = Vec::with_capacity(pattern.len());
        for &c in pattern {
            v = match self.child.get(&(v, c)) {
                Some(&u) => u,
                None => {
                    let u = self.tree.add_child(v);
                    self.child.insert((v, c), u);
                    u
                }
            };
            out.push(v);
        }
        out
    }

    /// Node for `pattern` if every prefix exists (no insertion).
    pub fn find(&self, pattern: &[Sym]) -> Option<u32> {
        let mut v = MarkedAncestorTree::root();
        for &c in pattern {
            v = *self.child.get(&(v, c))?;
        }
        Some(v)
    }

    /// Mark `node` as the end of pattern `pid`.
    pub fn mark(&mut self, node: u32, pid: PatId) {
        self.tree.mark(node);
        self.pattern_at.insert(node, pid);
    }

    /// Remove the pattern mark at `node`; returns the pattern that was there.
    pub fn unmark(&mut self, node: u32) -> Option<PatId> {
        self.tree.unmark(node);
        self.pattern_at.remove(&node)
    }

    /// Pattern marked exactly at `node`.
    pub fn pattern_at(&self, node: u32) -> Option<PatId> {
        self.pattern_at.get(&node).copied()
    }

    /// Longest marked prefix at or above `node`: `(pattern, length)`.
    pub fn longest_pattern_prefix(&self, node: u32) -> Option<(PatId, u32)> {
        let hit = self.tree.nearest_marked(node)?;
        let pid = *self
            .pattern_at
            .get(&hit)
            .expect("marked nodes carry patterns");
        Some((pid, self.tree.depth(hit)))
    }

    pub fn depth(&self, node: u32) -> u32 {
        self.tree.depth(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::to_symbols;

    #[test]
    fn insert_and_find() {
        let mut t = PatternTrie::new();
        let path = t.insert_path(&to_symbols("abc"));
        assert_eq!(path.len(), 3);
        assert_eq!(t.find(&to_symbols("abc")), Some(path[2]));
        assert_eq!(t.find(&to_symbols("ab")), Some(path[1]));
        assert_eq!(t.find(&to_symbols("abd")), None);
        // Shared prefixes reuse nodes.
        let path2 = t.insert_path(&to_symbols("abd"));
        assert_eq!(path2[0], path[0]);
        assert_eq!(path2[1], path[1]);
        assert_ne!(path2[2], path[2]);
        assert_eq!(t.nodes(), 1 + 4);
    }

    #[test]
    fn longest_pattern_prefix_queries() {
        let mut t = PatternTrie::new();
        let ab = t.insert_path(&to_symbols("ab"));
        let abcd = t.insert_path(&to_symbols("abcd"));
        t.mark(ab[1], 0); // "ab" is pattern 0
        t.mark(abcd[3], 1); // "abcd" is pattern 1
                            // At "abc": longest marked prefix is "ab".
        assert_eq!(t.longest_pattern_prefix(abcd[2]), Some((0, 2)));
        // At "abcd": itself.
        assert_eq!(t.longest_pattern_prefix(abcd[3]), Some((1, 4)));
        // Delete "ab": "abc" now has no pattern prefix.
        assert_eq!(t.unmark(ab[1]), Some(0));
        assert_eq!(t.longest_pattern_prefix(abcd[2]), None);
        assert_eq!(t.longest_pattern_prefix(abcd[3]), Some((1, 4)));
    }

    #[test]
    fn unmark_absent_is_none() {
        let mut t = PatternTrie::new();
        let p = t.insert_path(&to_symbols("x"));
        assert_eq!(t.unmark(p[0]), None);
    }
}
