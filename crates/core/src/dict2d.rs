//! Two-dimensional dictionary matching (paper §5, Theorem 6).
//!
//! The dictionary is a set of square patterns; the output, for each text
//! cell, is the pattern of largest side whose square matches with its
//! top-left corner there.
//!
//! Two pieces, both from the paper's toolbox:
//!
//! * [`prefix_names_2d`] — **Lemma 1**: 2-D prefix naming by row
//!   prefix-naming followed by column prefix-naming of the row-name arrays.
//!   Names agree iff rectangle prefixes agree.
//! * [`Dict2DMatcher`] — the matcher. Where the paper recurses with 2×2
//!   shrinks, `P ∪ P^r ∪ P^c` strips and odd/even unwinding, we use the
//!   equivalent **dyadic square certificate** form of the same primitive
//!   (KMR names + namestamped extension checks; DESIGN.md §4.4): an `s×s`
//!   square is identified by the names of its four overlapping
//!   `2^⌊log₂ s⌋` corner subsquares; "some `s×s` square-prefix of a
//!   dictionary pattern matches at `(i,j)`" is monotone decreasing in `s`
//!   (the `(s−1)`-square-prefix of the same pattern also matches), so each
//!   text cell binary-searches its largest `s` with `O(1)` namestamp checks
//!   per probe.
//!
//! Text bounds match the paper (`O(log m)` time, `O(n log m)` work);
//! dictionary preprocessing is `O(M log m)` here versus the paper's `O(M)`
//! — the one asymptotic deviation in this reproduction, measured and
//! reported in EXPERIMENTS.md (E6).
//!
//! ```
//! use pdm_core::dict2d::{Dict2DMatcher, Grid2};
//! use pdm_pram::Ctx;
//!
//! let ctx = Ctx::seq();
//! let pattern = Grid2::new(2, 2, vec![1, 2, 3, 4]);
//! let m = Dict2DMatcher::build(&ctx, &[pattern]).unwrap();
//! let text = Grid2::new(3, 3, vec![0, 0, 0, 0, 1, 2, 0, 3, 4]);
//! let out = m.match_grid(&ctx, &text);
//! assert_eq!(out.at(1, 1), Some(0)); // the 2×2 pattern sits at (1,1)
//! assert_eq!(out.at(0, 0), None);
//! ```

use crate::dict::{BuildError, PatId, Sym};
use pdm_naming::{FrozenNameTable, NamePool, NameTable, IDENTITY};
use pdm_pram::{floor_log2, Ctx};
use pdm_primitives::FxHashMap;
use std::sync::Arc;

/// Row-major 2-D array of symbols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grid2 {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<Sym>,
}

impl Grid2 {
    pub fn new(rows: usize, cols: usize, data: Vec<Sym>) -> Self {
        assert_eq!(rows * cols, data.len());
        Grid2 { rows, cols, data }
    }

    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Sym) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for k in 0..rows * cols {
            data.push(f(k / cols, k % cols));
        }
        Grid2 { rows, cols, data }
    }

    #[inline]
    pub fn at(&self, r: usize, c: usize) -> Sym {
        self.data[r * self.cols + c]
    }

    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }
}

/// Lemma 1: prefix names for every rectangle prefix `g[0..i+1, 0..j+1]`.
///
/// Step one prefix-names each row (left-chain shape — fixed per column
/// index, so names are comparable across grids sharing the tables); step
/// two prefix-names each *column of row names*. The returned `names[i][j]`
/// identifies the rectangle prefix: equal across grids iff the rectangle
/// contents are equal (Lemma 1's proof verbatim).
#[allow(clippy::needless_range_loop)] // parallel-array indexing is the clearer shape here
pub fn prefix_names_2d(g: &Grid2, row_chain: &NameTable, col_chain: &NameTable) -> Vec<Vec<u32>> {
    let mut row_names = vec![vec![IDENTITY; g.cols]; g.rows];
    for i in 0..g.rows {
        let mut cur = IDENTITY;
        for j in 0..g.cols {
            cur = row_chain.name(cur, g.at(i, j));
            row_names[i][j] = cur;
        }
    }
    let mut out = vec![vec![IDENTITY; g.cols]; g.rows];
    for j in 0..g.cols {
        let mut cur = IDENTITY;
        for (i, row) in row_names.iter().enumerate() {
            cur = col_chain.name(cur, row[j]);
            out[i][j] = cur;
        }
    }
    out
}

/// Sentinel for text blocks unseen in the dictionary.
const UNKNOWN: u32 = u32::MAX - 1;

/// 2-D square-dictionary matcher (Theorem 6).
#[derive(Debug)]
pub struct Dict2DMatcher {
    /// `⌊log₂ max-side⌋`.
    levels: usize,
    max_side: usize,
    n_patterns: usize,
    total_cells: usize,
    /// Atomics-free snapshots of the build-side `sym` / `quad` / `cert`
    /// tables — the dictionary side finishes inserting at build time, and
    /// the text side only ever reads, so only the frozen forms are kept.
    /// `frozen_quad[k-1]`: level-`k` block names from four level-`k−1`
    /// quadrant names (chained 4-tuple namestamp); `frozen_cert`:
    /// `(n00, n01, n10, n11, s)` chained → cert name.
    frozen_sym: FrozenNameTable,
    frozen_quad: Vec<FrozenNameTable>,
    frozen_cert: FrozenNameTable,
    /// cert name → best full pattern `(id, side)` with side ≤ s whose square
    /// prefixes agree (the 2-D analogue of Theorem 2's table).
    best: FxHashMap<u32, (PatId, u32)>,
    #[allow(dead_code)]
    pool: Arc<NamePool>,
}

/// Output: per text cell, the largest-side pattern matching there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Match2DOutput {
    pub rows: usize,
    pub cols: usize,
    /// Largest matching square-prefix side per cell (0 = none).
    pub prefix_side: Vec<u32>,
    pub largest_pattern: Vec<Option<PatId>>,
    pub largest_pattern_side: Vec<u32>,
}

impl Match2DOutput {
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> Option<PatId> {
        self.largest_pattern[r * self.cols + c]
    }
}

impl Dict2DMatcher {
    /// Preprocess a dictionary of distinct square patterns.
    pub fn build(ctx: &Ctx, patterns: &[Grid2]) -> Result<Self, BuildError> {
        if patterns.is_empty() {
            return Err(BuildError::EmptyDictionary);
        }
        let mut seen: FxHashMap<&[Sym], usize> = FxHashMap::default();
        for (i, p) in patterns.iter().enumerate() {
            if !p.is_square() {
                return Err(BuildError::Unsupported(format!(
                    "pattern {i} is not square"
                )));
            }
            if p.rows == 0 {
                return Err(BuildError::EmptyPattern(i));
            }
            if let Some(&j) = seen.get(p.data.as_slice()) {
                return Err(BuildError::DuplicatePattern(j, i));
            }
            seen.insert(&p.data, i);
        }
        let max_side = patterns.iter().map(|p| p.rows).max().unwrap();
        let levels = floor_log2(max_side) as usize;
        let total_cells: usize = patterns.iter().map(|p| p.data.len()).sum();
        let pool = NamePool::dictionary();
        let sym = NameTable::with_capacity(total_cells, pool.clone());
        let quad: Vec<NameTable> = (0..levels)
            .map(|_| NameTable::with_capacity(3 * total_cells.max(1), pool.clone()))
            .collect();
        let cert = NameTable::with_capacity(
            8 * patterns.iter().map(|p| p.rows).sum::<usize>().max(1),
            pool.clone(),
        );

        // Level names at every pattern cell where the block fits.
        // lvls[p][k] is a (side−2^k+1)² row-major array.
        let lvls: Vec<Vec<Vec<u32>>> = ctx.map(patterns.len(), |pi| {
            let p = &patterns[pi];
            let side = p.rows;
            let mut per: Vec<Vec<u32>> = Vec::with_capacity(levels + 1);
            per.push(p.data.iter().map(|&c| sym.name(c, 0)).collect());
            for k in 1..=levels {
                let h = 1usize << (k - 1);
                let dim = side.saturating_sub((1 << k) - 1);
                if dim == 0 {
                    // `levels` is set by the largest pattern; 2^k blocks no
                    // longer fit in this (smaller) one, so its level is
                    // empty — and `side + 1 - h` below would underflow.
                    per.push(Vec::new());
                    continue;
                }
                let dim_prev = side + 1 - h;
                let prev = &per[k - 1];
                let mut cur = Vec::with_capacity(dim * dim);
                for i in 0..dim {
                    for j in 0..dim {
                        cur.push(quad[k - 1].name_tuple(&[
                            prev[i * dim_prev + j],
                            prev[i * dim_prev + j + h],
                            prev[(i + h) * dim_prev + j],
                            prev[(i + h) * dim_prev + j + h],
                        ]));
                    }
                }
                per.push(cur);
            }
            per
        });
        ctx.cost.work((total_cells * (levels + 1)) as u64);

        // Certificates per (pattern, s); full-pattern marks; best ≤ s scan.
        let cert_of = |pi: usize, s: usize| -> u32 {
            let p = &patterns[pi];
            let k = floor_log2(s) as usize;
            let h = s - (1 << k);
            let dim = p.rows + 1 - (1 << k);
            let lv = &lvls[pi][k];
            cert.name_tuple(&[lv[0], lv[h], lv[h * dim], lv[h * dim + h], s as u32])
        };
        let mut full: FxHashMap<u32, PatId> = FxHashMap::default();
        for (pi, p) in patterns.iter().enumerate() {
            let c = cert_of(pi, p.rows);
            full.entry(c).or_insert(pi as PatId);
        }
        let mut best: FxHashMap<u32, (PatId, u32)> = FxHashMap::default();
        for (pi, p) in patterns.iter().enumerate() {
            let mut last: Option<(PatId, u32)> = None;
            for s in 1..=p.rows {
                let c = cert_of(pi, s);
                if let Some(&pid) = full.get(&c) {
                    last = Some((pid, s as u32));
                }
                if let Some(v) = last {
                    best.insert(c, v);
                }
            }
        }
        ctx.cost.rounds(
            (floor_log2(max_side) + 1) as u64,
            patterns.iter().map(|p| p.rows).sum::<usize>() as u64,
        );

        Ok(Dict2DMatcher {
            levels,
            max_side,
            n_patterns: patterns.len(),
            total_cells,
            frozen_sym: sym.freeze(),
            frozen_quad: quad.iter().map(NameTable::freeze).collect(),
            frozen_cert: cert.freeze(),
            best,
            pool,
        })
    }

    pub fn max_side(&self) -> usize {
        self.max_side
    }

    pub fn n_patterns(&self) -> usize {
        self.n_patterns
    }

    pub fn dictionary_cells(&self) -> usize {
        self.total_cells
    }

    /// Match a text grid: `O(log m)` time, `O(n log m)` work.
    pub fn match_grid(&self, ctx: &Ctx, text: &Grid2) -> Match2DOutput {
        let (rows, cols) = (text.rows, text.cols);
        let n = rows * cols;
        let mut out = Match2DOutput {
            rows,
            cols,
            prefix_side: vec![0; n],
            largest_pattern: vec![None; n],
            largest_pattern_side: vec![0; n],
        };
        if n == 0 {
            return out;
        }
        let tl = TextLevels::build(ctx, self, text);
        let results: Vec<(u32, Option<(PatId, u32)>)> = ctx.map(n, |idx| {
            let (i, j) = (idx / cols, idx % cols);
            let (side, cert) = tl.largest_prefix(i, j);
            (side, cert.and_then(|c| self.best.get(&c).copied()))
        });
        for (idx, (side, bp)) in results.into_iter().enumerate() {
            out.prefix_side[idx] = side;
            if let Some((pid, ps)) = bp {
                out.largest_pattern[idx] = Some(pid);
                out.largest_pattern_side[idx] = ps;
            }
        }
        out
    }

    /// All patterns matching at every cell, largest side first (the 2-D
    /// analogue of the §2 all-matches remark). Output-linear beyond the
    /// per-cell binary search: each further pattern costs one certificate
    /// lookup via the best-≤-s chain.
    pub fn match_grid_all(&self, ctx: &Ctx, text: &Grid2) -> AllMatches2D {
        let (rows, cols) = (text.rows, text.cols);
        let n = rows * cols;
        if n == 0 {
            return AllMatches2D {
                rows,
                cols,
                offsets: vec![0],
                entries: Vec::new(),
            };
        }
        let tl = TextLevels::build(ctx, self, text);
        let per_cell: Vec<Vec<(PatId, u32)>> = ctx.map(n, |idx| {
            let (i, j) = (idx / cols, idx % cols);
            let (side, _) = tl.largest_prefix(i, j);
            let mut s = side as usize;
            let mut v = Vec::new();
            // Chain downward: best(cert(s)) is the largest pattern ≤ s;
            // every matching pattern appears once, in decreasing side.
            while s >= 1 {
                let c = tl.check(i, j, s).expect("monotone: s ≤ largest prefix");
                match self.best.get(&c) {
                    Some(&(pid, ps)) => {
                        v.push((pid, ps));
                        s = ps as usize - 1;
                    }
                    None => break,
                }
            }
            v
        });
        let mut offsets = Vec::with_capacity(n + 1);
        let mut entries = Vec::new();
        offsets.push(0u64);
        for v in per_cell {
            entries.extend(v);
            offsets.push(entries.len() as u64);
        }
        ctx.cost.round(entries.len() as u64);
        AllMatches2D {
            rows,
            cols,
            offsets,
            entries,
        }
    }
}

/// CSR-style all-matches output for grids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllMatches2D {
    pub rows: usize,
    pub cols: usize,
    pub offsets: Vec<u64>,
    /// `(pattern, side)` pairs, largest side first within each cell.
    pub entries: Vec<(PatId, u32)>,
}

impl AllMatches2D {
    /// Patterns matching with their top-left corner at `(r, c)`.
    pub fn at(&self, r: usize, c: usize) -> &[(PatId, u32)] {
        let i = r * self.cols + c;
        &self.entries[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    pub fn total(&self) -> usize {
        self.entries.len()
    }
}

/// Per-text level names + certificate checks, shared by the match entry
/// points. Text blocks unseen in the dictionary collapse to `UNKNOWN`.
struct TextLevels<'a> {
    matcher: &'a Dict2DMatcher,
    rows: usize,
    cols: usize,
    kt: usize,
    lvls: Vec<Vec<u32>>,
}

impl<'a> TextLevels<'a> {
    fn build(ctx: &Ctx, matcher: &'a Dict2DMatcher, text: &Grid2) -> Self {
        let (rows, cols) = (text.rows, text.cols);
        let n = rows * cols;
        let kt = matcher
            .levels
            .min(floor_log2(rows.min(cols).max(1)) as usize);
        let mut lvls: Vec<Vec<u32>> = Vec::with_capacity(kt + 1);
        lvls.push(ctx.map(n, |idx| {
            matcher
                .frozen_sym
                .lookup(text.data[idx], 0)
                .unwrap_or(UNKNOWN)
        }));
        for k in 1..=kt {
            let h = 1usize << (k - 1);
            let span = 1usize << k;
            let dim_r = rows + 1 - span;
            let dim_c = cols + 1 - span;
            let prev_c = cols + 1 - h;
            let prev = &lvls[k - 1];
            let q = &matcher.frozen_quad[k - 1];
            let cur = ctx.map(dim_r * dim_c, |idx| {
                let (i, j) = (idx / dim_c, idx % dim_c);
                let a = prev[i * prev_c + j];
                let b = prev[i * prev_c + j + h];
                let c = prev[(i + h) * prev_c + j];
                let d = prev[(i + h) * prev_c + j + h];
                if a == UNKNOWN || b == UNKNOWN || c == UNKNOWN || d == UNKNOWN {
                    return UNKNOWN;
                }
                q.lookup_tuple(&[a, b, c, d]).unwrap_or(UNKNOWN)
            });
            lvls.push(cur);
        }
        TextLevels {
            matcher,
            rows,
            cols,
            kt,
            lvls,
        }
    }

    /// Certificate of the `s×s` square at `(i, j)` if some pattern's
    /// square-prefix matches there.
    fn check(&self, i: usize, j: usize, s: usize) -> Option<u32> {
        let k = floor_log2(s) as usize;
        if k > self.kt {
            return None;
        }
        let h = s - (1 << k);
        let span = 1usize << k;
        let dim_c = self.cols + 1 - span;
        let lv = &self.lvls[k];
        let g = |r: usize, c: usize| lv[r * dim_c + c];
        let (a, b, c_, d) = (g(i, j), g(i, j + h), g(i + h, j), g(i + h, j + h));
        if a == UNKNOWN || b == UNKNOWN || c_ == UNKNOWN || d == UNKNOWN {
            return None;
        }
        self.matcher
            .frozen_cert
            .lookup_tuple(&[a, b, c_, d, s as u32])
    }

    /// Binary search the largest matching square-prefix side at `(i, j)`.
    fn largest_prefix(&self, i: usize, j: usize) -> (u32, Option<u32>) {
        let cap = self.matcher.max_side.min(self.rows - i).min(self.cols - j);
        let (mut lo, mut hi) = (0usize, cap);
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if self.check(i, j, mid).is_some() {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        if lo == 0 {
            (0, None)
        } else {
            (lo as u32, self.check(i, j, lo))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_baselines::naive;

    fn to_naive(g: &Grid2) -> naive::Grid {
        naive::Grid::new(g.rows, g.cols, g.data.clone())
    }

    fn check(patterns: &[Grid2], text: &Grid2, tag: &str) {
        let ctx = Ctx::seq();
        let m = Dict2DMatcher::build(&ctx, patterns).expect("build");
        let got: Vec<Option<usize>> = m
            .match_grid(&ctx, text)
            .largest_pattern
            .into_iter()
            .map(|o| o.map(|p| p as usize))
            .collect();
        let np: Vec<naive::Grid> = patterns.iter().map(to_naive).collect();
        let want = naive::largest_square_pattern_per_cell(&np, &to_naive(text));
        assert_eq!(got, want, "{tag}");
    }

    #[test]
    fn lemma1_prefix_names_2d() {
        let pool = NamePool::dictionary();
        let rc = NameTable::with_capacity(4096, pool.clone());
        let cc = NameTable::with_capacity(4096, pool.clone());
        let a = Grid2::from_fn(4, 4, |i, j| ((i * 5 + j) % 3) as u32);
        let b = Grid2::from_fn(3, 5, |i, j| {
            if i < 3 && j < 3 {
                ((i * 5 + j) % 3) as u32 // shares a's 3x3 top-left corner
            } else {
                9
            }
        });
        let na = prefix_names_2d(&a, &rc, &cc);
        let nb = prefix_names_2d(&b, &rc, &cc);
        // Equal rectangle prefixes get equal names...
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(na[i][j], nb[i][j], "({i},{j})");
            }
        }
        // ...and differing ones differ.
        assert_ne!(na[2][3], nb[2][3]);
        // Injectivity across all rectangles of both grids.
        let mut seen: FxHashMap<u32, (usize, usize, usize, Vec<u32>)> = FxHashMap::default();
        for (gi, (g, names)) in [(&a, &na), (&b, &nb)].iter().enumerate() {
            for i in 0..g.rows {
                for j in 0..g.cols {
                    let mut content = Vec::new();
                    for r in 0..=i {
                        for c in 0..=j {
                            content.push(g.at(r, c));
                        }
                    }
                    if let Some(prev) = seen.get(&names[i][j]) {
                        assert_eq!((prev.1, prev.2), (i, j), "dims must agree");
                        assert_eq!(prev.3, content, "name collision g{gi}");
                    } else {
                        seen.insert(names[i][j], (gi, i, j, content));
                    }
                }
            }
        }
    }

    #[test]
    fn single_cell_patterns() {
        let pats = vec![Grid2::new(1, 1, vec![5]), Grid2::new(1, 1, vec![7])];
        let text = Grid2::new(2, 3, vec![5, 7, 5, 0, 7, 7]);
        check(&pats, &text, "1x1");
    }

    #[test]
    fn planted_multi_size() {
        let p1 = Grid2::from_fn(2, 2, |i, j| (i * 2 + j) as u32 + 1);
        let p3 = Grid2::from_fn(3, 3, |i, j| {
            if i < 2 && j < 2 {
                (i * 2 + j) as u32 + 1 // p1 is p3's square prefix!
            } else {
                (10 + i + j) as u32
            }
        });
        let mut text = Grid2::from_fn(8, 8, |_, _| 0);
        for i in 0..3 {
            for j in 0..3 {
                text.data[(2 + i) * 8 + (4 + j)] = p3.at(i, j);
            }
        }
        check(&[p1, p3], &text, "nested-sizes");
    }

    #[test]
    fn uniform_grid_overlaps() {
        let pats = vec![
            Grid2::from_fn(1, 1, |_, _| 3),
            Grid2::from_fn(2, 2, |_, _| 3),
            Grid2::from_fn(4, 4, |_, _| 3),
        ];
        let text = Grid2::from_fn(6, 6, |_, _| 3);
        check(&pats, &text, "uniform");
    }

    #[test]
    fn randomized_against_naive() {
        use pdm_textgen::{grid, strings, Alphabet};
        for seed in 0..8 {
            let mut r = strings::rng(seed);
            let mut t = grid::random_grid(&mut r, Alphabet::Dna, 24, 24);
            let pats = grid::excerpt_square_dictionary(&mut r, &t, 6, 1, 7);
            grid::plant_squares(&mut r, &mut t, &pats, 5);
            let g_pats: Vec<Grid2> = pats
                .iter()
                .map(|g| Grid2::new(g.rows, g.cols, g.data.clone()))
                .collect();
            let g_text = Grid2::new(t.rows, t.cols, t.data.clone());
            check(&g_pats, &g_text, &format!("rand-{seed}"));
        }
    }

    #[test]
    fn text_smaller_than_patterns() {
        let p = Grid2::from_fn(4, 4, |_, _| 1);
        let text = Grid2::from_fn(2, 2, |_, _| 1);
        check(&[p], &text, "small-text");
    }

    #[test]
    fn non_square_pattern_rejected() {
        let ctx = Ctx::seq();
        let p = Grid2::new(1, 2, vec![1, 2]);
        assert!(Dict2DMatcher::build(&ctx, &[p]).is_err());
    }

    #[test]
    fn duplicate_pattern_rejected() {
        let ctx = Ctx::seq();
        let p = Grid2::new(1, 1, vec![1]);
        assert!(Dict2DMatcher::build(&ctx, &[p.clone(), p]).is_err());
    }

    #[test]
    fn parallel_matches_sequential() {
        use pdm_textgen::{grid, strings, Alphabet};
        let mut r = strings::rng(42);
        let mut t = grid::random_grid(&mut r, Alphabet::Letters, 48, 48);
        let pats = grid::excerpt_square_dictionary(&mut r, &t, 8, 2, 9);
        grid::plant_squares(&mut r, &mut t, &pats, 10);
        let g_pats: Vec<Grid2> = pats
            .iter()
            .map(|g| Grid2::new(g.rows, g.cols, g.data.clone()))
            .collect();
        let g_text = Grid2::new(t.rows, t.cols, t.data.clone());
        let ctx = Ctx::seq();
        let m = Dict2DMatcher::build(&ctx, &g_pats).unwrap();
        let a = m.match_grid(&Ctx::seq(), &g_text);
        let b = m.match_grid(&Ctx::par(), &g_text);
        assert_eq!(a, b);
    }

    /// Oracle: every pattern matching at every cell.
    fn naive_all(patterns: &[Grid2], text: &Grid2) -> Vec<Vec<(usize, u32)>> {
        let mut out = vec![Vec::new(); text.rows * text.cols];
        for r in 0..text.rows {
            for c in 0..text.cols {
                let mut v: Vec<(usize, u32)> = patterns
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| {
                        r + p.rows <= text.rows
                            && c + p.cols <= text.cols
                            && (0..p.rows)
                                .all(|i| (0..p.cols).all(|j| text.at(r + i, c + j) == p.at(i, j)))
                    })
                    .map(|(pi, p)| (pi, p.rows as u32))
                    .collect();
                v.sort_by_key(|&(_, s)| std::cmp::Reverse(s));
                out[r * text.cols + c] = v;
            }
        }
        out
    }

    #[test]
    fn all_matches_2d_nested_sizes() {
        // Patterns where smaller ones are square-prefixes of bigger ones.
        let p1 = Grid2::new(1, 1, vec![1]);
        let p2 = Grid2::new(2, 2, vec![1, 2, 3, 4]);
        let p3 = Grid2::from_fn(3, 3, |i, j| if i < 2 && j < 2 { p2_at(i, j) } else { 9 });
        fn p2_at(i: usize, j: usize) -> u32 {
            [[1, 2], [3, 4]][i][j]
        }
        let mut text = Grid2::from_fn(6, 6, |_, _| 0);
        for i in 0..3 {
            for j in 0..3 {
                text.data[(1 + i) * 6 + (2 + j)] = p3.at(i, j);
            }
        }
        let pats = vec![p1, p2, p3];
        let ctx = Ctx::seq();
        let m = Dict2DMatcher::build(&ctx, &pats).unwrap();
        let all = m.match_grid_all(&ctx, &text);
        let want = naive_all(&pats, &text);
        for r in 0..6 {
            for c in 0..6 {
                let got: Vec<(usize, u32)> =
                    all.at(r, c).iter().map(|&(p, s)| (p as usize, s)).collect();
                assert_eq!(got, want[r * 6 + c], "cell ({r},{c})");
            }
        }
        // At the plant site all three nest.
        assert_eq!(all.at(1, 2).len(), 3);
        assert_eq!(all.total(), want.iter().map(Vec::len).sum::<usize>());
    }

    #[test]
    fn all_matches_2d_randomized() {
        use pdm_textgen::{grid, strings, Alphabet};
        for seed in 0..5 {
            let mut r = strings::rng(seed);
            let mut t = grid::random_grid(&mut r, Alphabet::Binary, 14, 14);
            let pats = grid::excerpt_square_dictionary(&mut r, &t, 5, 1, 4);
            grid::plant_squares(&mut r, &mut t, &pats, 4);
            let g_pats: Vec<Grid2> = pats
                .iter()
                .map(|g| Grid2::new(g.rows, g.cols, g.data.clone()))
                .collect();
            let text = Grid2::new(t.rows, t.cols, t.data.clone());
            let ctx = Ctx::seq();
            let m = Dict2DMatcher::build(&ctx, &g_pats).unwrap();
            let all = m.match_grid_all(&ctx, &text);
            let want = naive_all(&g_pats, &text);
            for rr in 0..text.rows {
                for cc in 0..text.cols {
                    let got: Vec<(usize, u32)> = all
                        .at(rr, cc)
                        .iter()
                        .map(|&(p, s)| (p as usize, s))
                        .collect();
                    assert_eq!(got, want[rr * text.cols + cc], "seed {seed} ({rr},{cc})");
                }
            }
        }
    }

    #[test]
    fn prefix_side_is_largest_matching_square_prefix() {
        let p = Grid2::new(2, 2, vec![1, 2, 3, 4]);
        let mut text = Grid2::from_fn(4, 4, |_, _| 0);
        // Plant only the top row of p at (0,0): 1x1 prefix matches, 2x2 not.
        text.data[0] = 1;
        text.data[1] = 2;
        let ctx = Ctx::seq();
        let m = Dict2DMatcher::build(&ctx, &[p]).unwrap();
        let out = m.match_grid(&ctx, &text);
        assert_eq!(out.prefix_side[0], 1);
        assert_eq!(out.largest_pattern[0], None); // 1x1 prefix isn't a pattern
    }
}
