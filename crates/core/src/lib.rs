//! # pdm-core — shrink-and-spawn parallel dictionary matching
//!
//! The algorithms of *Highly Efficient Dictionary Matching in Parallel*
//! (Muthukrishnan & Palem, SPAA 1993), built on the `pdm-pram`,
//! `pdm-primitives` and `pdm-naming` substrates:
//!
//! | module | paper | result |
//! |--------|-------|--------|
//! | [`static1d`] | §4, Thms 1–3 | static dictionary matching: dict `O(M)` work, text `O(log m)` time / `O(n log m)` work |
//! | [`smallalpha`] | §4.4, Thms 4–5 | small-alphabet refinement: text `O(n log m / L)` work |
//! | [`dict2d`] | §5, Thm 6 | 2-D square-dictionary matching |
//! | [`dynamic`] | §6, Thms 7–10 | insert / delete / match on a changing dictionary |
//! | [`equal_len`] | §7, Thm 11 | equal-length multi-pattern matching with **optimal** `O(n + M)` work |
//! | [`multidim`] | §7 | d-dimensional single-pattern matching via dimension reduction |
//! | [`allmatches`] | §2 remark | all-patterns-per-position output in output-linear work |
//!
//! The **shrink-and-spawn** idea (paper §3.1): to find occurrences of `V` in
//! `U`, name all length-`l` blocks (Karp–Miller–Rosenberg), *shrink* `V` by
//! composing the names of its `l`-aligned blocks, and *spawn* `l` views of
//! `U` (one per offset class mod `l`). Matches of `V` in `U` correspond
//! exactly to matches of the shrunk `V` in the spawned views, so the problem
//! recurses at `1/l` the pattern size; unwinding extends each partial match
//! by `< l` blocks with constant-time namestamp lookups.
//!
//! Every matcher here validates against the `pdm-baselines` oracles in this
//! crate's test suite, and charges the PRAM cost model so the experiment
//! harness can verify the paper's time/work exponents.

pub mod allmatches;
pub mod dict;
pub mod dict2d;
pub mod dictnd;
pub mod dynamic;
pub mod equal_len;
pub mod matcher;
pub mod multidim;
pub mod prefilter;
pub mod scratch;
pub mod smallalpha;
pub mod static1d;

pub use dict::{BuildError, PatId, Sym};
pub use matcher::{Matcher, MatcherBuilder, MatcherKind, MatcherStats};
pub use prefilter::{Prefilter, PrefilterCounters, PrefilterDecision};
pub use scratch::TextScratch;
pub use static1d::{MatchOutput, StaticMatcher};

/// Everything needed to build a matcher and match a text:
///
/// ```
/// use pdm_core::prelude::*;
///
/// let ctx = Ctx::seq();
/// let m = MatcherBuilder::new()
///     .patterns(symbolize(&["he", "she", "hers"]))
///     .build(&ctx)
///     .unwrap();
/// assert_eq!(m.match_text(&ctx, &to_symbols("ushers")).longest_pattern[2], Some(2));
/// ```
pub mod prelude {
    pub use crate::dict::{symbolize, to_symbols, BuildError, PatId, Sym};
    pub use crate::dynamic::DynamicMatcher;
    pub use crate::equal_len::EqualLenMatcher;
    pub use crate::matcher::{Matcher, MatcherBuilder, MatcherKind, MatcherStats};
    pub use crate::scratch::TextScratch;
    pub use crate::smallalpha::{BinaryEncodedMatcher, SmallAlphaMatcher};
    pub use crate::static1d::{MatchOutput, StaticMatcher};
    pub use pdm_pram::Ctx;
}
