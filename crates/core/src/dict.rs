//! Dictionary and text types shared by all matchers.
//!
//! Symbols are `u32` — the paper assumes an alphabet polynomial in `n` and
//! `M`, which a machine word covers. Patterns are plain symbol vectors; the
//! dictionary invariants (non-empty, distinct) are checked at build time by
//! each matcher via [`validate_dictionary`].

/// A text/pattern symbol. The value `u32::MAX` is reserved.
pub type Sym = u32;

/// Index of a pattern in the dictionary (its position in the build slice).
pub type PatId = u32;

/// Why a dictionary was rejected at build time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// Pattern at this index is empty.
    EmptyPattern(usize),
    /// Patterns at these two indices are identical (the paper requires a set
    /// of *distinct* pattern strings).
    DuplicatePattern(usize, usize),
    /// The dictionary itself is empty.
    EmptyDictionary,
    /// A constraint specific to one matcher (e.g. equal lengths for §7).
    Unsupported(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::EmptyPattern(i) => write!(f, "pattern {i} is empty"),
            BuildError::DuplicatePattern(i, j) => {
                write!(f, "patterns {i} and {j} are identical")
            }
            BuildError::EmptyDictionary => write!(f, "dictionary has no patterns"),
            BuildError::Unsupported(s) => write!(f, "unsupported dictionary: {s}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Check the paper's dictionary invariants: non-empty set of non-empty,
/// pairwise-distinct patterns. Returns `(M, m)` — total and maximum length.
pub fn validate_dictionary(patterns: &[Vec<Sym>]) -> Result<(usize, usize), BuildError> {
    if patterns.is_empty() {
        return Err(BuildError::EmptyDictionary);
    }
    let mut total = 0usize;
    let mut maxlen = 0usize;
    let mut seen: pdm_primitives::FxHashMap<&[Sym], usize> = Default::default();
    for (i, p) in patterns.iter().enumerate() {
        if p.is_empty() {
            return Err(BuildError::EmptyPattern(i));
        }
        if let Some(&j) = seen.get(p.as_slice()) {
            return Err(BuildError::DuplicatePattern(j, i));
        }
        seen.insert(p.as_slice(), i);
        total += p.len();
        maxlen = maxlen.max(p.len());
    }
    Ok((total, maxlen))
}

/// Convert a `&str` to symbols (one per byte). Convenience for examples and
/// tests; real workloads come from `pdm-textgen`.
pub fn to_symbols(s: &str) -> Vec<Sym> {
    s.bytes().map(Sym::from).collect()
}

/// Convert several `&str`s to a dictionary.
pub fn symbolize(strs: &[&str]) -> Vec<Vec<Sym>> {
    strs.iter().map(|s| to_symbols(s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_good_dictionary() {
        let d = symbolize(&["ab", "abc", "b"]);
        assert_eq!(validate_dictionary(&d), Ok((6, 3)));
    }

    #[test]
    fn rejects_empty_dictionary() {
        assert_eq!(validate_dictionary(&[]), Err(BuildError::EmptyDictionary));
    }

    #[test]
    fn rejects_empty_pattern() {
        let d = vec![to_symbols("a"), vec![]];
        assert_eq!(validate_dictionary(&d), Err(BuildError::EmptyPattern(1)));
    }

    #[test]
    fn rejects_duplicates() {
        let d = symbolize(&["xy", "z", "xy"]);
        assert_eq!(
            validate_dictionary(&d),
            Err(BuildError::DuplicatePattern(0, 2))
        );
    }

    #[test]
    fn error_display() {
        assert_eq!(
            BuildError::DuplicatePattern(0, 2).to_string(),
            "patterns 0 and 2 are identical"
        );
    }
}
