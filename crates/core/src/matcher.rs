//! A unified facade over the crate's matchers: the [`Matcher`] trait, the
//! [`MatcherStats`] size report, and the [`MatcherBuilder`] entry point.
//!
//! Each algorithm in this crate earns its keep with a different paper bound
//! (§4 static, §4.4 small-alphabet, §6 dynamic, §7 equal-length), and their
//! native APIs reflect that: different constructors, different output
//! shapes, different size accessors. The facade gives callers that only
//! need *"longest pattern at each position"* one trait object to hold and
//! one builder to call, while the native APIs stay available for anything
//! bound-specific (chunked matching, prefix matching, insert/delete, …).
//!
//! ## Output contract
//!
//! [`Matcher::match_text`] always fills `longest_pattern` and
//! `longest_pattern_len` exactly: entry `i` is the longest dictionary
//! pattern starting at text position `i`, or `None`/`0`. Those two fields
//! are the portable part of [`MatchOutput`].
//!
//! The prefix fields (`prefix_len`, `prefix_name`, `prefix_owner`) are
//! native only to the §4-family matchers. Implementations without prefix
//! machinery fill them *degenerately*: `prefix_len` mirrors
//! `longest_pattern_len`, `prefix_owner` mirrors `longest_pattern`, and
//! `prefix_name` is [`IDENTITY`] everywhere (name spaces are per-matcher
//! anyway, so no cross-implementation meaning is lost). Code that needs
//! real prefix semantics should use [`StaticMatcher`] or
//! [`DynamicMatcher`] directly.
//!
//! ## Example
//!
//! ```
//! use pdm_core::prelude::*;
//!
//! let ctx = Ctx::par();
//! let matcher = MatcherBuilder::new()
//!     .patterns(symbolize(&["he", "she", "hers"]))
//!     .build(&ctx)
//!     .unwrap();
//! let out = matcher.match_text(&ctx, &to_symbols("ushers"));
//! assert_eq!(out.longest_pattern[1], Some(1)); // "she" at position 1
//! assert_eq!(out.longest_pattern[2], Some(2)); // "hers" at position 2
//! assert_eq!(matcher.stats().pattern_count, 3);
//! assert_eq!(matcher.max_pattern_len(), 4);
//! ```

use crate::dict::{validate_dictionary, BuildError, Sym};
use crate::dynamic::DynamicMatcher;
use crate::equal_len::EqualLenMatcher;
use crate::prefilter::{PrefilterCounters, PrefilterDecision};
use crate::smallalpha::{BinaryEncodedMatcher, SmallAlphaMatcher, SmallAlphaOutput};
use crate::static1d::{MatchOutput, StaticMatcher};
use pdm_naming::IDENTITY;
use pdm_pram::Ctx;

/// Canonical size report shared by every matcher (see the per-matcher
/// inherent accessors of the same names).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatcherStats {
    /// Number of patterns (`κ`; live patterns for the dynamic matcher).
    pub pattern_count: usize,
    /// Total dictionary size in symbols (`M`).
    pub symbol_count: usize,
    /// Longest pattern length (`m`).
    pub max_pattern_len: usize,
    /// Entries across all namestamp tables (the paper's space bound).
    pub table_entry_count: usize,
    /// Text-side scratch (re)allocation events so far — flat in steady
    /// state for matchers with a zero-alloc hot path; `0` for matchers
    /// that do not track allocations.
    pub alloc_events: u64,
    /// Name-table probes issued by text-side calls so far (`0` when not
    /// tracked).
    pub lookup_count: u64,
    /// Whether this matcher was cold-loaded from a serialized snapshot
    /// instead of built by the parallel preprocessing — `true` means no
    /// naming round ran for it. Always `false` for matchers without a
    /// snapshot form.
    pub cold_loaded: bool,
    /// SWAR candidate-prefilter decision for `find_all`-style calls
    /// (DESIGN.md §16). Only the static matcher carries a prefilter; the
    /// others report it disabled.
    pub prefilter: PrefilterDecision,
    /// Cumulative prefilter scan/candidate/verify counters (all zero for
    /// matchers without a prefilter, or before any `find_all` call).
    pub prefilter_counters: PrefilterCounters,
}

/// Dictionary matching behind one object-safe interface.
///
/// `Send + Sync` is a supertrait so a built matcher can be shared across
/// the worker pool (`Arc<dyn Matcher>`) — every implementation here
/// matches through `&self`.
pub trait Matcher: Send + Sync {
    /// Longest pattern starting at every text position (see the module
    /// docs for which [`MatchOutput`] fields are portable).
    fn match_text(&self, ctx: &Ctx, text: &[Sym]) -> MatchOutput;

    /// Canonical size report.
    fn stats(&self) -> MatcherStats;

    /// Longest pattern length in the dictionary (`m`).
    fn max_pattern_len(&self) -> usize;
}

impl Matcher for StaticMatcher {
    fn match_text(&self, ctx: &Ctx, text: &[Sym]) -> MatchOutput {
        StaticMatcher::match_text(self, ctx, text)
    }

    fn stats(&self) -> MatcherStats {
        let d = StaticMatcher::stats(self);
        MatcherStats {
            pattern_count: self.pattern_count(),
            symbol_count: self.symbol_count(),
            max_pattern_len: StaticMatcher::max_pattern_len(self),
            table_entry_count: self.table_entry_count(),
            alloc_events: d.alloc_events,
            lookup_count: d.table_lookups,
            cold_loaded: self.cold_loaded(),
            prefilter: d.prefilter,
            prefilter_counters: d.prefilter_counters,
        }
    }

    fn max_pattern_len(&self) -> usize {
        StaticMatcher::max_pattern_len(self)
    }
}

impl Matcher for DynamicMatcher {
    fn match_text(&self, ctx: &Ctx, text: &[Sym]) -> MatchOutput {
        DynamicMatcher::match_text(self, ctx, text)
    }

    fn stats(&self) -> MatcherStats {
        MatcherStats {
            pattern_count: self.pattern_count(),
            symbol_count: self.symbol_count(),
            max_pattern_len: DynamicMatcher::max_pattern_len(self),
            table_entry_count: self.table_entry_count(),
            alloc_events: 0,
            lookup_count: 0,
            cold_loaded: false,
            prefilter: PrefilterDecision::Disabled("not supported by this matcher"),
            prefilter_counters: PrefilterCounters::default(),
        }
    }

    fn max_pattern_len(&self) -> usize {
        DynamicMatcher::max_pattern_len(self)
    }
}

/// Degenerate prefix fields from full-match data (module docs, "Output
/// contract").
fn output_from_hits(
    hits: Vec<Option<crate::dict::PatId>>,
    len_of: impl Fn(usize) -> u32,
) -> MatchOutput {
    let lens: Vec<u32> = hits
        .iter()
        .enumerate()
        .map(|(i, h)| if h.is_some() { len_of(i) } else { 0 })
        .collect();
    MatchOutput {
        prefix_len: lens.clone(),
        prefix_name: vec![IDENTITY; hits.len()],
        longest_pattern: hits.clone(),
        longest_pattern_len: lens,
        prefix_owner: hits,
    }
}

impl Matcher for EqualLenMatcher {
    fn match_text(&self, ctx: &Ctx, text: &[Sym]) -> MatchOutput {
        let m = EqualLenMatcher::max_pattern_len(self) as u32;
        output_from_hits(EqualLenMatcher::match_text(self, ctx, text), |_| m)
    }

    fn stats(&self) -> MatcherStats {
        MatcherStats {
            pattern_count: self.pattern_count(),
            symbol_count: self.symbol_count(),
            max_pattern_len: EqualLenMatcher::max_pattern_len(self),
            table_entry_count: 0, // builds its tables per match_text call
            alloc_events: 0,
            lookup_count: 0,
            cold_loaded: false,
            prefilter: PrefilterDecision::Disabled("not supported by this matcher"),
            prefilter_counters: PrefilterCounters::default(),
        }
    }

    fn max_pattern_len(&self) -> usize {
        EqualLenMatcher::max_pattern_len(self)
    }
}

fn output_from_smallalpha(out: SmallAlphaOutput) -> MatchOutput {
    let SmallAlphaOutput {
        longest_pattern,
        longest_pattern_len,
    } = out;
    MatchOutput {
        prefix_len: longest_pattern_len.clone(),
        prefix_name: vec![IDENTITY; longest_pattern.len()],
        longest_pattern: longest_pattern.clone(),
        longest_pattern_len,
        prefix_owner: longest_pattern,
    }
}

impl Matcher for SmallAlphaMatcher {
    fn match_text(&self, ctx: &Ctx, text: &[Sym]) -> MatchOutput {
        output_from_smallalpha(SmallAlphaMatcher::match_text(self, ctx, text))
    }

    fn stats(&self) -> MatcherStats {
        MatcherStats {
            pattern_count: self.pattern_count(),
            symbol_count: self.symbol_count(),
            max_pattern_len: SmallAlphaMatcher::max_pattern_len(self),
            table_entry_count: self.table_entry_count(),
            alloc_events: 0,
            lookup_count: 0,
            cold_loaded: false,
            prefilter: PrefilterDecision::Disabled("not supported by this matcher"),
            prefilter_counters: PrefilterCounters::default(),
        }
    }

    fn max_pattern_len(&self) -> usize {
        SmallAlphaMatcher::max_pattern_len(self)
    }
}

impl Matcher for BinaryEncodedMatcher {
    fn match_text(&self, ctx: &Ctx, text: &[Sym]) -> MatchOutput {
        output_from_smallalpha(BinaryEncodedMatcher::match_text(self, ctx, text))
    }

    fn stats(&self) -> MatcherStats {
        MatcherStats {
            pattern_count: self.pattern_count(),
            symbol_count: self.symbol_count(),
            max_pattern_len: BinaryEncodedMatcher::max_pattern_len(self),
            table_entry_count: self.table_entry_count(),
            alloc_events: 0,
            lookup_count: 0,
            cold_loaded: false,
            prefilter: PrefilterDecision::Disabled("not supported by this matcher"),
            prefilter_counters: PrefilterCounters::default(),
        }
    }

    fn max_pattern_len(&self) -> usize {
        BinaryEncodedMatcher::max_pattern_len(self)
    }
}

/// Which algorithm [`MatcherBuilder::build`] instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatcherKind {
    /// Pick for the dictionary's shape: [`SmallAlpha`](Self::SmallAlpha)
    /// when an alphabet size was given, else
    /// [`EqualLen`](Self::EqualLen) when every pattern has one length
    /// (the optimal-work Theorem 11 bound), else
    /// [`Static`](Self::Static).
    #[default]
    Auto,
    /// §4 static matcher (Theorems 1–3).
    Static,
    /// §7 equal-length matcher (Theorem 11); patterns must share a length.
    EqualLen,
    /// §4.4 small-alphabet matcher (Theorem 4); needs an alphabet size.
    SmallAlpha,
    /// §4.4 bit-encoded variant (Theorem 5); needs an alphabet size.
    BinaryEncoded,
    /// §6 dynamic matcher (Theorems 7–10), seeded with the patterns.
    Dynamic,
}

/// One entry point for all matchers.
///
/// ```
/// use pdm_core::prelude::*;
///
/// let ctx = Ctx::seq();
/// // Equal-length patterns with Auto pick the optimal Theorem-11 matcher;
/// // forcing a kind is one call.
/// let m = MatcherBuilder::new()
///     .patterns(symbolize(&["abc", "bca"]))
///     .kind(MatcherKind::Static)
///     .build(&ctx)
///     .unwrap();
/// assert_eq!(m.stats().symbol_count, 6);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MatcherBuilder {
    patterns: Vec<Vec<Sym>>,
    kind: MatcherKind,
    sigma: Option<u32>,
}

impl MatcherBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the dictionary (replaces any previously added patterns).
    pub fn patterns(mut self, patterns: Vec<Vec<Sym>>) -> Self {
        self.patterns = patterns;
        self
    }

    /// Add one pattern.
    pub fn pattern(mut self, pattern: Vec<Sym>) -> Self {
        self.patterns.push(pattern);
        self
    }

    /// Force a specific algorithm (default: [`MatcherKind::Auto`]).
    pub fn kind(mut self, kind: MatcherKind) -> Self {
        self.kind = kind;
        self
    }

    /// Declare the alphabet size `|Σ|`. Under [`MatcherKind::Auto`] this
    /// selects the small-alphabet matcher; it is required for
    /// [`MatcherKind::SmallAlpha`] / [`MatcherKind::BinaryEncoded`].
    pub fn alphabet_size(mut self, sigma: u32) -> Self {
        self.sigma = Some(sigma);
        self
    }

    /// Validate the dictionary and build the selected matcher.
    pub fn build(self, ctx: &Ctx) -> Result<Box<dyn Matcher>, BuildError> {
        let (_, m) = validate_dictionary(&self.patterns)?;
        let kind = match self.kind {
            MatcherKind::Auto => {
                if self.sigma.is_some() {
                    MatcherKind::SmallAlpha
                } else if self.patterns.iter().all(|p| p.len() == m) {
                    MatcherKind::EqualLen
                } else {
                    MatcherKind::Static
                }
            }
            k => k,
        };
        let need_sigma = || {
            self.sigma.ok_or_else(|| {
                BuildError::Unsupported("this matcher kind needs `alphabet_size(..)`".into())
            })
        };
        Ok(match kind {
            MatcherKind::Auto => unreachable!("resolved above"),
            MatcherKind::Static => Box::new(StaticMatcher::build(ctx, &self.patterns)?),
            MatcherKind::EqualLen => Box::new(EqualLenMatcher::new(&self.patterns)?),
            MatcherKind::SmallAlpha => Box::new(SmallAlphaMatcher::build(
                ctx,
                &self.patterns,
                need_sigma()?,
            )?),
            MatcherKind::BinaryEncoded => Box::new(BinaryEncodedMatcher::build(
                ctx,
                &self.patterns,
                need_sigma()?,
            )?),
            MatcherKind::Dynamic => Box::new(
                DynamicMatcher::with_dictionary(ctx, &self.patterns).map_err(|e| {
                    // validate_dictionary precedes, so only duplicates recur.
                    BuildError::Unsupported(format!("dynamic build: {e}"))
                })?,
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::{symbolize, to_symbols};

    fn hits(out: &MatchOutput) -> Vec<Option<u32>> {
        out.longest_pattern.clone()
    }

    /// Every kind agrees with the static matcher on the portable fields.
    #[test]
    fn all_kinds_agree_on_longest_pattern_fields() {
        let ctx = Ctx::seq();
        let pats = symbolize(&["abc", "bca", "cab"]);
        let text = to_symbols("abcabcab");
        let reference = StaticMatcher::build(&ctx, &pats).unwrap();
        let want = reference.match_text(&ctx, &text);
        for kind in [
            MatcherKind::Static,
            MatcherKind::EqualLen,
            MatcherKind::SmallAlpha,
            MatcherKind::BinaryEncoded,
            MatcherKind::Dynamic,
        ] {
            let m = MatcherBuilder::new()
                .patterns(pats.clone())
                .kind(kind)
                .alphabet_size(128) // to_symbols yields byte values
                .build(&ctx)
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            let out = m.match_text(&ctx, &text);
            assert_eq!(hits(&out), hits(&want), "{kind:?}");
            assert_eq!(
                out.longest_pattern_len, want.longest_pattern_len,
                "{kind:?}"
            );
            assert_eq!(m.stats().pattern_count, 3, "{kind:?}");
            assert_eq!(m.stats().symbol_count, 9, "{kind:?}");
            assert_eq!(m.max_pattern_len(), 3, "{kind:?}");
        }
    }

    #[test]
    fn auto_prefers_equal_len_then_static() {
        let ctx = Ctx::seq();
        let equal = MatcherBuilder::new()
            .patterns(symbolize(&["ab", "cd"]))
            .build(&ctx)
            .unwrap();
        // Theorem 11 builds no persistent tables; §4 always does.
        assert_eq!(equal.stats().table_entry_count, 0);
        let mixed = MatcherBuilder::new()
            .patterns(symbolize(&["ab", "cde"]))
            .build(&ctx)
            .unwrap();
        assert!(mixed.stats().table_entry_count > 0);
    }

    #[test]
    fn small_alpha_kinds_require_sigma() {
        let ctx = Ctx::seq();
        let err = MatcherBuilder::new()
            .patterns(symbolize(&["ab"]))
            .kind(MatcherKind::SmallAlpha)
            .build(&ctx);
        assert!(matches!(err, Err(BuildError::Unsupported(_))));
    }

    #[test]
    fn builder_rejects_invalid_dictionaries() {
        let ctx = Ctx::seq();
        assert!(matches!(
            MatcherBuilder::new().build(&ctx),
            Err(BuildError::EmptyDictionary)
        ));
        assert!(matches!(
            MatcherBuilder::new()
                .pattern(vec![1])
                .pattern(vec![])
                .build(&ctx),
            Err(BuildError::EmptyPattern(1))
        ));
    }

    #[test]
    fn trait_objects_share_across_threads() {
        use std::sync::Arc;
        let ctx = Ctx::seq();
        let m: Arc<dyn Matcher> = Arc::from(
            MatcherBuilder::new()
                .patterns(symbolize(&["he", "she"]))
                .build(&ctx)
                .unwrap(),
        );
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    let ctx = Ctx::seq();
                    m.match_text(&ctx, &to_symbols("ushers")).longest_pattern
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap()[1], Some(1));
        }
    }
}
