//! Small-alphabet dictionary matching (paper §4.4, Theorems 4–5 and
//! Corollaries 1–2).
//!
//! The base algorithm (§4) spends `O(log m)` work per text position. For a
//! small alphabet `Σ` the paper trades dictionary work for text work with a
//! collapse parameter `L`:
//!
//! * **Modified shrink-and-spawn:** build `𝒫`, the `≤(L−1)`-depth suffixes
//!   of every pattern (depths `0..L`, the paper's "`L` copies obtained by
//!   successively dropping the leading symbol"); shrink text and `𝒫` by `L`
//!   and keep only text positions `≡ 0 (mod L)` — the text *collapses* to
//!   `n/L` positions.
//! * **Step 2:** match the collapsed text against the shrunk `𝒫` with the
//!   §4 matcher — `O((n/L)·log m)` work: the win.
//! * **Step 3 (Extend-Right):** `< L` per-symbol extensions at each aligned
//!   position give `ψ(i)`, the longest `𝒫`-prefix at `i`.
//! * **Step 4 (Extend-Left):** recover the `L−1` dropped positions per
//!   window from their aligned right neighbour:
//!   `α(0) = ψ(i)`, `α(ℓ) = g(T(i−ℓ), α(ℓ−1))`, where
//!   `g(σ, B)` = longest prefix of `σ‖B` that is a `𝒫`-prefix — the
//!   alphabet-dependent table of size `O(M·L·|Σ|)` precomputed from
//!   `𝒫'' = Σ × 𝒫`. The longest *pattern* at `i−ℓ` is then the longest
//!   pattern-prefix of `α(ℓ)` (correctness: every pattern matching at
//!   `i−ℓ` lifts along the suffix chain into `ψ(i)`, all intermediate
//!   depths `≤ ℓ < L` being members of `𝒫`; and `α(ℓ)` itself matches at
//!   `i−ℓ`).
//!
//! One implementation augmentation (DESIGN.md §4.2): prefix names are also
//! computed for depth-`L` suffixes — naming only, never membership — so the
//! membership tuples `(D(1), δ(D(2..)))` exist for *every* member prefix
//! `D`, replacing the paper's per-step `≤(L−ℓ)`-suffix bookkeeping with a
//! constant-factor preprocessing cost.
//!
//! Bounds (Theorem 4): dictionary `O(M·L·|Σ|)` work; text
//! `O(n·log m / L + n)` work, `O(L + log m)` time. Corollary 1's sweet spot
//! is `L ≈ √(log m / |Σ|)`.
//!
//! ```
//! use pdm_core::smallalpha::SmallAlphaMatcher;
//! use pdm_pram::Ctx;
//!
//! let ctx = Ctx::seq();
//! // DNA dictionary (|Σ| = 4): collapse parameter chosen per Corollary 1.
//! let pats: Vec<Vec<u32>> = vec![vec![0, 1, 0], vec![1, 1]];
//! let m = SmallAlphaMatcher::build(&ctx, &pats, 4).unwrap();
//! let out = m.match_text(&ctx, &[2, 0, 1, 0, 1, 1, 3]);
//! assert_eq!(out.longest_pattern[1], Some(0)); // [0,1,0] at 1
//! assert_eq!(out.longest_pattern[4], Some(1)); // [1,1] at 4
//! ```

use crate::dict::{validate_dictionary, BuildError, PatId, Sym};
use crate::scratch::{ensure, TextScratch};
use crate::static1d::{PrefixMatch, StaticMatcher};
use pdm_naming::{FrozenNameTable, NamePool, NameTable, IDENTITY};
use pdm_pram::{ceil_log2, Ctx};
use pdm_primitives::table::pack;
use pdm_primitives::FxHashMap;

/// Sentinel symbol for text blocks absent from the shrunk dictionary.
const UNKNOWN_SYM: u32 = u32::MAX - 1;

/// Per-position output of the §4.4 matcher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallAlphaOutput {
    pub longest_pattern: Vec<Option<PatId>>,
    pub longest_pattern_len: Vec<u32>,
}

/// Small-alphabet matcher (Theorem 4).
#[derive(Debug)]
pub struct SmallAlphaMatcher {
    l_param: usize,
    sigma: u32,
    max_len: usize,
    n_patterns: usize,
    total_len: usize,
    /// §4 matcher over the shrunk members (None if every member is < L).
    inner: Option<StaticMatcher>,
    /// `L`-block naming, shared by dictionary and text shrinking.
    block_tuple: NameTable,
    /// Atomics-free snapshot of `block_tuple` for text-side shrinking (the
    /// dictionary side finished inserting at build time).
    frozen_block_tuple: FrozenNameTable,
    /// inner (block-level) prefix name → `(char-level prefix name, chars)`.
    block_to_char: FxHashMap<u32, (u32, u32)>,
    /// `(char-level prefix name, symbol) → extended prefix name`, member
    /// prefixes only (drives Extend-Right).
    rightext: FxHashMap<u64, u32>,
    /// `g`: `(symbol, prefix name) → (prefix name, len)` — longest
    /// `𝒫`-prefix of `σ‖B`. Key `(σ, IDENTITY)` handles empty `B`.
    g: FxHashMap<u64, (u32, u32)>,
    /// char-level prefix name → longest pattern `(id, len)` prefixing it.
    longest_pat: FxHashMap<u32, (u32, u32)>,
}

impl SmallAlphaMatcher {
    /// Corollary 1's collapse parameter for a given `m` and `|Σ|`.
    pub fn default_l(max_len: usize, sigma: u32) -> usize {
        let lg = ceil_log2(max_len).max(1) as f64;
        ((lg / sigma as f64).sqrt().round() as usize).clamp(1, max_len)
    }

    /// Build with the Corollary-1 default `L`.
    pub fn build(ctx: &Ctx, patterns: &[Vec<Sym>], sigma: u32) -> Result<Self, BuildError> {
        let (_, m) = validate_dictionary(patterns)?;
        Self::build_with_l(ctx, patterns, sigma, Self::default_l(m, sigma))
    }

    /// Build with an explicit `L ≥ 1` (Theorem 4 is parameterized by it).
    pub fn build_with_l(
        ctx: &Ctx,
        patterns: &[Vec<Sym>],
        sigma: u32,
        l_param: usize,
    ) -> Result<Self, BuildError> {
        let (total, max_len) = validate_dictionary(patterns)?;
        if l_param < 1 {
            return Err(BuildError::Unsupported("L must be ≥ 1".into()));
        }
        if let Some(p) = patterns.iter().flatten().find(|&&c| c >= sigma) {
            return Err(BuildError::Unsupported(format!(
                "symbol {p} outside alphabet of size {sigma}"
            )));
        }
        let l = l_param.min(max_len);
        let pool = NamePool::dictionary();

        // ---- 𝒫⁺: suffixes of depth 0..=L (depth L: naming only) ----------
        // members[(pat, depth)] with depth ≤ L−1; naming layer adds depth L.
        struct SufStr {
            pat: u32,
            depth: u32,
            start: usize,
        }
        let mut sufs: Vec<SufStr> = Vec::new();
        for (pid, p) in patterns.iter().enumerate() {
            for depth in 0..=l {
                if depth < p.len() {
                    sufs.push(SufStr {
                        pat: pid as u32,
                        depth: depth as u32,
                        start: depth,
                    });
                }
            }
        }
        let str_of = |s: &SufStr| -> &[Sym] { &patterns[s.pat as usize][s.start..] };

        // ---- char-level prefix names: left-chain naming ------------------
        // chain also *is* the extension relation; member entries are copied
        // into `rightext`.
        let chain = NameTable::with_capacity(total * (l + 2) + 16, pool.clone());
        let mut prefs: Vec<Vec<u32>> = Vec::with_capacity(sufs.len());
        let mut rightext: FxHashMap<u64, u32> = FxHashMap::default();
        for s in &sufs {
            let st = str_of(s);
            let mut pv = Vec::with_capacity(st.len());
            let mut cur = IDENTITY;
            for &c in st {
                let nx = chain.name(cur, c);
                if s.depth < l as u32 {
                    rightext.insert(pack(cur, c), nx);
                }
                pv.push(nx);
                cur = nx;
            }
            prefs.push(pv);
        }
        // Index: (pat, depth) → suffix index, for the σ-extension tuples.
        let mut suf_idx: FxHashMap<(u32, u32), usize> = FxHashMap::default();
        for (i, s) in sufs.iter().enumerate() {
            suf_idx.insert((s.pat, s.depth), i);
        }

        // ---- longest-pattern attribution over member prefixes ------------
        let mut pattern_name: FxHashMap<u32, u32> = FxHashMap::default(); // full name → pid
        for (i, s) in sufs.iter().enumerate() {
            if s.depth == 0 {
                pattern_name.insert(*prefs[i].last().unwrap(), s.pat);
            }
        }
        let mut longest_pat: FxHashMap<u32, (u32, u32)> = FxHashMap::default();
        for (i, s) in sufs.iter().enumerate() {
            if s.depth as usize >= l {
                continue; // members only
            }
            let mut last: Option<(u32, u32)> = None;
            for (t, &nm) in prefs[i].iter().enumerate() {
                if let Some(&pid) = pattern_name.get(&nm) {
                    last = Some((pid, t as u32 + 1));
                }
                if let Some(v) = last {
                    longest_pat.insert(nm, v);
                }
            }
        }

        // ---- σ-extension tuples: σ‖C membership --------------------------
        // Member prefix D = suffix(pat, j)[..t+1], j ≤ L−1: key
        // (D[0], δ(D[1..])) where D[1..] = suffix(pat, j+1)[..t] — named
        // thanks to the depth-L naming layer.
        let mut sigext: FxHashMap<u64, (u32, u32)> = FxHashMap::default();
        for (i, s) in sufs.iter().enumerate() {
            if s.depth as usize >= l {
                continue;
            }
            let st = str_of(s);
            let nxt = suf_idx.get(&(s.pat, s.depth + 1)).copied();
            for t in 0..st.len() {
                // D = st[..t+1]; D[1..] has length t.
                let tail_name = if t == 0 {
                    IDENTITY
                } else {
                    let ni = nxt.expect("depth+1 suffix exists when t ≥ 1");
                    prefs[ni][t - 1]
                };
                sigext
                    .entry(pack(st[0], tail_name))
                    .or_insert((prefs[i][t], t as u32 + 1));
            }
        }

        // ---- g-table: nearest-membership scan per (σ, member string) -----
        let mut g: FxHashMap<u64, (u32, u32)> = FxHashMap::default();
        for (i, s) in sufs.iter().enumerate() {
            if s.depth as usize >= l {
                continue;
            }
            let len = prefs[i].len();
            for sym in 0..sigma {
                let mut cur: Option<(u32, u32)> = sigext.get(&pack(sym, IDENTITY)).copied();
                if let Some(v) = cur {
                    g.insert(pack(sym, IDENTITY), v);
                }
                for t in 1..=len {
                    let b_name = prefs[i][t - 1];
                    if let Some(&v) = sigext.get(&pack(sym, b_name)) {
                        cur = Some(v);
                    }
                    match cur {
                        Some(v) => {
                            g.insert(pack(sym, b_name), v);
                        }
                        None => { /* absent key ⇒ empty α */ }
                    }
                }
            }
        }

        // ---- shrink members by L; build the inner §4 matcher -------------
        let block_tuple = NameTable::with_capacity(total * 2 + 16, pool.clone());
        let mut shrunk: Vec<Vec<u32>> = Vec::new();
        let mut shrunk_owner: Vec<usize> = Vec::new(); // suffix index per shrunk
        {
            let mut seen: FxHashMap<Vec<u32>, ()> = FxHashMap::default();
            for (i, s) in sufs.iter().enumerate() {
                if s.depth as usize >= l {
                    continue;
                }
                let st = str_of(s);
                let nb = st.len() / l;
                if nb == 0 {
                    continue;
                }
                let sv: Vec<u32> = (0..nb)
                    .map(|b| block_tuple.name_tuple(&st[b * l..(b + 1) * l]))
                    .collect();
                if seen.insert(sv.clone(), ()).is_none() {
                    shrunk.push(sv);
                    shrunk_owner.push(i);
                }
            }
        }
        let inner = if shrunk.is_empty() {
            None
        } else {
            Some(StaticMatcher::build(ctx, &shrunk).expect("shrunk members are deduped"))
        };

        // Map inner block-level prefix names to char-level prefix names.
        let mut block_to_char: FxHashMap<u32, (u32, u32)> = FxHashMap::default();
        if let Some(ref im) = inner {
            let iprefs = &im.tables().pattern_prefs;
            for (ip, &si) in shrunk_owner.iter().enumerate() {
                for b in 1..=iprefs[ip].len() {
                    block_to_char
                        .entry(iprefs[ip][b - 1])
                        .or_insert((prefs[si][b * l - 1], (b * l) as u32));
                }
            }
        }

        // Charge the paper's dictionary schedule: O(M·L·|Σ|) work,
        // O(log m + L) rounds (host build above is sequential; the PRAM
        // algorithm runs it as rounds of namestamps + prefix-max scans).
        ctx.cost.rounds(
            (ceil_log2(max_len) + l as u32) as u64,
            (total * l * sigma as usize) as u64,
        );

        let frozen_block_tuple = block_tuple.freeze();
        Ok(SmallAlphaMatcher {
            l_param: l,
            sigma,
            max_len,
            n_patterns: patterns.len(),
            total_len: total,
            inner,
            block_tuple,
            frozen_block_tuple,
            block_to_char,
            rightext,
            g,
            longest_pat,
        })
    }

    pub fn l_param(&self) -> usize {
        self.l_param
    }

    pub fn sigma(&self) -> u32 {
        self.sigma
    }

    /// Number of patterns (`κ`).
    pub fn pattern_count(&self) -> usize {
        self.n_patterns
    }

    /// Total dictionary size in symbols (`M`).
    pub fn symbol_count(&self) -> usize {
        self.total_len
    }

    /// Longest pattern length in the dictionary (`m`).
    pub fn max_pattern_len(&self) -> usize {
        self.max_len
    }

    /// Entries across the collapse tables plus the inner §4 matcher.
    pub fn table_entry_count(&self) -> usize {
        self.block_tuple.len()
            + self.block_to_char.len()
            + self.rightext.len()
            + self.g.len()
            + self.longest_pat.len()
            + self
                .inner
                .as_ref()
                .map_or(0, StaticMatcher::table_entry_count)
    }

    /// Longest pattern per text position.
    pub fn match_text(&self, ctx: &Ctx, text: &[Sym]) -> SmallAlphaOutput {
        let mut scratch = SmallAlphaScratch::new();
        let mut out = SmallAlphaOutput {
            longest_pattern: Vec::new(),
            longest_pattern_len: Vec::new(),
        };
        self.match_text_into(ctx, text, &mut scratch, &mut out);
        out
    }

    /// [`Self::match_text`] into caller-owned buffers: `out` is overwritten
    /// and `scratch` is reused across calls, so a session matching chunk
    /// after chunk allocates nothing once warm (the static1d
    /// `match_into` contract, extended to §4.4).
    pub fn match_text_into(
        &self,
        ctx: &Ctx,
        text: &[Sym],
        scratch: &mut SmallAlphaScratch,
        out: &mut SmallAlphaOutput,
    ) {
        self.match_text_impl(ctx, text, true, scratch, out);
    }

    /// Reference leg probing the concurrent `block_tuple` instead of its
    /// frozen snapshot (equivalence tests, bench before leg). Allocates its
    /// scratch per call — the pre-overhaul behavior.
    pub fn match_text_ref(&self, ctx: &Ctx, text: &[Sym]) -> SmallAlphaOutput {
        let mut scratch = SmallAlphaScratch::new();
        let mut out = SmallAlphaOutput {
            longest_pattern: Vec::new(),
            longest_pattern_len: Vec::new(),
        };
        self.match_text_impl(ctx, text, false, &mut scratch, &mut out);
        out
    }

    fn match_text_impl(
        &self,
        ctx: &Ctx,
        text: &[Sym],
        use_frozen: bool,
        scratch: &mut SmallAlphaScratch,
        out: &mut SmallAlphaOutput,
    ) {
        let n = text.len();
        let l = self.l_param;
        let mut grows = 0u64;
        ensure(&mut out.longest_pattern, n, &mut grows);
        ensure(&mut out.longest_pattern_len, n, &mut grows);
        if n == 0 {
            scratch.grows += grows;
            return;
        }

        // Step 1: collapse the text — L-block names at aligned positions.
        let nb = n / l;
        ensure(&mut scratch.t_shrunk, nb, &mut grows);
        ctx.for_each_mut(&mut scratch.t_shrunk, |k, v| {
            let block = &text[k * l..(k + 1) * l];
            *v = if use_frozen {
                self.frozen_block_tuple.lookup_tuple(block)
            } else {
                self.block_tuple.lookup_tuple(block)
            }
            .unwrap_or(UNKNOWN_SYM)
        });

        // Step 2: §4 prefix matching on the collapsed text.
        let pm = match &self.inner {
            Some(im) => {
                im.prefix_match_into(ctx, &scratch.t_shrunk, &mut scratch.inner, &mut scratch.pm);
                Some(&scratch.pm)
            }
            None => None,
        };

        // Steps 3–4, chunk-grained: window w owns positions
        // [wL−L+1, wL] ∩ [0, n) — contiguous, disjoint ranges that
        // partition the text — so coarse jobs over window runs write the
        // output arrays in place: no per-window buffers, no merge pass
        // (the per-window `Vec` collection dominated this path's profile),
        // and one pool dispatch instead of a fine-grained round.
        let n_windows = n.div_ceil(l) + 1;
        let jobs_n = if ctx.is_parallel() && n > pdm_pram::par_threshold() {
            ctx.exec.threads().clamp(1, n_windows)
        } else {
            1
        };
        // First owned position of window w (clipped; window 0 owns just 0).
        let start = |w: usize| if w == 0 { 0 } else { ((w - 1) * l + 1).min(n) };

        struct Job<'a> {
            wa: usize,
            wb: usize,
            base: usize,
            lp: &'a mut [Option<PatId>],
            ll: &'a mut [u32],
        }
        let mut jobs: Vec<Job> = Vec::with_capacity(jobs_n);
        {
            let mut lp = &mut out.longest_pattern[..];
            let mut ll = &mut out.longest_pattern_len[..];
            let per = n_windows.div_ceil(jobs_n);
            let mut wa = 0usize;
            while wa < n_windows {
                let wb = (wa + per).min(n_windows);
                let take = start(wb) - start(wa);
                let (lp0, rest) = lp.split_at_mut(take);
                lp = rest;
                let (ll0, rest) = ll.split_at_mut(take);
                ll = rest;
                jobs.push(Job {
                    wa,
                    wb,
                    base: start(wa),
                    lp: lp0,
                    ll: ll0,
                });
                wa = wb;
            }
        }

        ctx.for_each_mut_ops(&mut jobs, n as u64, |_, job| {
            for w in job.wa..job.wb {
                let i = w * l;
                // ψ(i): longest member prefix at i.
                let mut alpha: (u32, u32) = (IDENTITY, 0);
                if i < n {
                    let (mut name, mut clen) = match pm {
                        Some(pm) if w < pm.len.len() && pm.len[w] > 0 => {
                            let bc = self.block_to_char[&pm.name[w]];
                            debug_assert_eq!(bc.1, pm.len[w] * l as u32);
                            bc
                        }
                        _ => (IDENTITY, 0),
                    };
                    // Extend-Right: fewer than L per-symbol extensions.
                    for _ in 0..l {
                        let pos = i + clen as usize;
                        if pos >= n || clen as usize >= self.max_len {
                            break;
                        }
                        match self.rightext.get(&pack(name, text[pos])) {
                            Some(&nx) => {
                                name = nx;
                                clen += 1;
                            }
                            None => break,
                        }
                    }
                    alpha = (name, clen);
                    if let Some(&(pid, plen)) =
                        (clen > 0).then(|| self.longest_pat.get(&name)).flatten()
                    {
                        job.lp[i - job.base] = Some(pid);
                        job.ll[i - job.base] = plen;
                    }
                }
                // Extend-Left: α(ℓ) = g(T(i−ℓ), α(ℓ−1)).
                for step in 1..l {
                    let Some(j) = i.checked_sub(step) else { break };
                    if j >= n {
                        continue;
                    }
                    alpha = match self.g.get(&pack(text[j], alpha.0)) {
                        Some(&v) => v,
                        None => (IDENTITY, 0),
                    };
                    if alpha.1 > 0 {
                        if let Some(&(pid, plen)) = self.longest_pat.get(&alpha.0) {
                            job.lp[j - job.base] = Some(pid);
                            job.ll[j - job.base] = plen;
                        }
                    }
                }
            }
        });
        drop(jobs);
        scratch.grows += grows;
    }
}

/// Reusable per-session buffers for [`SmallAlphaMatcher::match_text_into`]:
/// the collapsed text, the inner §4 matcher's [`TextScratch`], and its
/// prefix-match output. Steady-state calls allocate nothing once warm.
#[derive(Debug, Default)]
pub struct SmallAlphaScratch {
    /// Collapsed text: L-block names at aligned positions.
    t_shrunk: Vec<u32>,
    /// Inner §4 matcher scratch.
    inner: TextScratch,
    /// Inner prefix-match output (block-level names/lengths).
    pm: PrefixMatch,
    grows: u64,
}

impl SmallAlphaScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Cumulative buffer (re)allocation events (this scratch plus the inner
    /// matcher's).
    pub fn grow_events(&self) -> u64 {
        self.grows + self.inner.grow_events()
    }
}

/// Binary-encoded matching (Theorem 5).
///
/// For alphabets too large for the `O(M·L·|Σ|)` table, the paper encodes
/// each symbol as `b = ⌈log₂|Σ|⌉` bits and runs the Extend-Left machinery
/// bit by bit: dictionary work drops to `O(M·L·log|Σ|)`-style (the
/// alphabet-dependent factor becomes 2), at the cost of `log|Σ|` more
/// left-steps per window. Matches of the bit-encoded dictionary at bit
/// positions `≡ 0 (mod b)` are exactly the symbol-level matches (the
/// fixed-width encoding is aligned, and we only read aligned positions).
#[derive(Debug)]
pub struct BinaryEncodedMatcher {
    inner: SmallAlphaMatcher,
    /// Bits per symbol.
    bits: u32,
}

impl BinaryEncodedMatcher {
    /// Encode one symbol as `bits` bits, MSB first.
    fn encode_into(out: &mut Vec<Sym>, c: Sym, bits: u32) {
        for k in (0..bits).rev() {
            out.push((c >> k) & 1);
        }
    }

    fn encode(s: &[Sym], bits: u32) -> Vec<Sym> {
        let mut out = Vec::with_capacity(s.len() * bits as usize);
        for &c in s {
            Self::encode_into(&mut out, c, bits);
        }
        out
    }

    /// Build with the Corollary-1 default `L` over the bit domain.
    pub fn build(ctx: &Ctx, patterns: &[Vec<Sym>], sigma: u32) -> Result<Self, BuildError> {
        let (_, m) = validate_dictionary(patterns)?;
        let bits = 32 - (sigma.max(2) - 1).leading_zeros();
        let l = SmallAlphaMatcher::default_l(m * bits as usize, 2).max(bits as usize);
        Self::build_with_l(ctx, patterns, sigma, l)
    }

    /// Build with an explicit `L` (in *bit* units, per Theorem 5's step
    /// structure).
    pub fn build_with_l(
        ctx: &Ctx,
        patterns: &[Vec<Sym>],
        sigma: u32,
        l_bits: usize,
    ) -> Result<Self, BuildError> {
        validate_dictionary(patterns)?;
        if let Some(p) = patterns.iter().flatten().find(|&&c| c >= sigma) {
            return Err(BuildError::Unsupported(format!(
                "symbol {p} outside alphabet of size {sigma}"
            )));
        }
        let bits = 32 - (sigma.max(2) - 1).leading_zeros();
        let bit_patterns: Vec<Vec<Sym>> = patterns.iter().map(|p| Self::encode(p, bits)).collect();
        // Distinct symbol patterns stay distinct under fixed-width encoding.
        let inner = SmallAlphaMatcher::build_with_l(ctx, &bit_patterns, 2, l_bits)?;
        Ok(Self { inner, bits })
    }

    /// Bits per symbol used by the encoding.
    pub fn bits_per_symbol(&self) -> u32 {
        self.bits
    }

    /// Collapse parameter of the underlying bit-domain matcher.
    pub fn l_param(&self) -> usize {
        self.inner.l_param()
    }

    /// Number of patterns (`κ`).
    pub fn pattern_count(&self) -> usize {
        self.inner.pattern_count()
    }

    /// Total dictionary size in *symbols* (the bit-domain size divided out).
    pub fn symbol_count(&self) -> usize {
        self.inner.symbol_count() / self.bits as usize
    }

    /// Longest pattern length in *symbols*.
    pub fn max_pattern_len(&self) -> usize {
        self.inner.max_pattern_len() / self.bits as usize
    }

    /// Entries across the bit-domain matcher's tables.
    pub fn table_entry_count(&self) -> usize {
        self.inner.table_entry_count()
    }

    /// Longest pattern per (symbol) text position.
    pub fn match_text(&self, ctx: &Ctx, text: &[Sym]) -> SmallAlphaOutput {
        let bit_text = Self::encode(text, self.bits);
        let bit_out = self.inner.match_text(ctx, &bit_text);
        let b = self.bits as usize;
        let longest_pattern: Vec<Option<PatId>> = (0..text.len())
            .map(|i| bit_out.longest_pattern[i * b])
            .collect();
        let longest_pattern_len: Vec<u32> = (0..text.len())
            .map(|i| bit_out.longest_pattern_len[i * b] / self.bits)
            .collect();
        ctx.cost.round(text.len() as u64);
        SmallAlphaOutput {
            longest_pattern,
            longest_pattern_len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::{symbolize, to_symbols};
    use pdm_baselines::naive;

    fn check_l(patterns: &[Vec<u32>], text: &[u32], sigma: u32, l: usize, tag: &str) {
        let ctx = Ctx::seq();
        let m = SmallAlphaMatcher::build_with_l(&ctx, patterns, sigma, l).expect("build");
        let got: Vec<Option<usize>> = m
            .match_text(&ctx, text)
            .longest_pattern
            .into_iter()
            .map(|o| o.map(|p| p as usize))
            .collect();
        let want = naive::longest_pattern_per_position(patterns, text);
        assert_eq!(got, want, "{tag} (L={l})");
    }

    fn check_all_l(patterns: &[Vec<u32>], text: &[u32], sigma: u32, tag: &str) {
        let maxl = patterns.iter().map(Vec::len).max().unwrap();
        for l in 1..=(maxl + 1).min(6) {
            check_l(patterns, text, sigma, l, tag);
        }
    }

    #[test]
    fn binary_handcrafted() {
        let pats: Vec<Vec<u32>> = vec![vec![0, 1], vec![0, 1, 1, 0], vec![1, 1], vec![0]];
        let text: Vec<u32> = vec![0, 1, 1, 0, 0, 1, 1, 1, 0, 1, 0, 0, 1, 1, 0];
        check_all_l(&pats, &text, 2, "binary");
    }

    #[test]
    fn ascii_words() {
        let pats = symbolize(&["he", "she", "his", "hers"]);
        let text = to_symbols("ushers and shehis");
        check_all_l(&pats, &text, 128, "ascii");
    }

    #[test]
    fn l_larger_than_patterns() {
        let pats: Vec<Vec<u32>> = vec![vec![0], vec![1, 0]];
        let text: Vec<u32> = vec![1, 0, 0, 1, 0, 1];
        // L exceeding max pattern length gets clamped; all members < L means
        // no inner matcher at L=2.. — pure extend paths.
        for l in 1..=5 {
            check_l(&pats, &text, 2, l, "tiny");
        }
    }

    #[test]
    fn dna_randomized_many_seeds() {
        use pdm_textgen::{strings, Alphabet};
        for seed in 0..12 {
            let mut r = strings::rng(seed);
            let mut text = strings::random_text(&mut r, Alphabet::Dna, 300);
            let pats = strings::excerpt_dictionary(&mut r, &text, 8, 1, 17);
            strings::plant_occurrences(&mut r, &mut text, &pats, 10);
            for l in [1usize, 2, 3, 5] {
                check_l(&pats, &text, 4, l, &format!("dna-{seed}"));
            }
        }
    }

    #[test]
    fn binary_periodic_adversarial() {
        use pdm_textgen::{strings, Alphabet};
        let mut r = strings::rng(5);
        let text = strings::periodic_text(&mut r, Alphabet::Binary, 3, 120);
        let pats: Vec<Vec<u32>> = vec![
            text[0..7].to_vec(),
            text[1..5].to_vec(),
            text[2..4].to_vec(),
            vec![1, 1, 1, 1, 1],
        ];
        // Dedup just in case the period made two equal.
        let mut uniq = pats;
        uniq.sort();
        uniq.dedup();
        check_all_l(&uniq, &text, 2, "periodic");
    }

    #[test]
    fn frozen_fast_path_matches_reference() {
        use pdm_textgen::{strings, Alphabet};
        let mut r = strings::rng(21);
        let mut text = strings::random_text(&mut r, Alphabet::Dna, 600);
        let pats = strings::excerpt_dictionary(&mut r, &text, 8, 2, 20);
        strings::plant_occurrences(&mut r, &mut text, &pats, 10);
        let ctx = Ctx::seq();
        for l in [1usize, 2, 3] {
            let m = SmallAlphaMatcher::build_with_l(&ctx, &pats, 4, l).unwrap();
            assert_eq!(
                m.match_text(&ctx, &text),
                m.match_text_ref(&ctx, &text),
                "L={l}"
            );
        }
    }

    #[test]
    fn default_l_formula() {
        assert_eq!(SmallAlphaMatcher::default_l(1024, 2), 2); // √(10/2) ≈ 2.2
        assert_eq!(SmallAlphaMatcher::default_l(1024, 256), 1);
        assert!(SmallAlphaMatcher::default_l(2, 2) >= 1);
    }

    #[test]
    fn rejects_out_of_alphabet_symbols() {
        let ctx = Ctx::seq();
        let pats: Vec<Vec<u32>> = vec![vec![0, 5]];
        assert!(SmallAlphaMatcher::build(&ctx, &pats, 4).is_err());
    }

    #[test]
    fn parallel_matches_sequential() {
        use pdm_textgen::{strings, Alphabet};
        let mut r = strings::rng(8);
        let mut text = strings::random_text(&mut r, Alphabet::Dna, 4000);
        let pats = strings::excerpt_dictionary(&mut r, &text, 15, 4, 40);
        strings::plant_occurrences(&mut r, &mut text, &pats, 30);
        let ctx = Ctx::seq();
        let m = SmallAlphaMatcher::build_with_l(&ctx, &pats, 4, 3).unwrap();
        let seq = m.match_text(&Ctx::seq(), &text);
        let par = m.match_text(&Ctx::par(), &text);
        assert_eq!(seq, par);
    }

    #[test]
    fn binary_encoded_matches_naive() {
        use pdm_textgen::{strings, Alphabet};
        // Theorem 5: larger alphabets via bit encoding.
        for (sigma, alpha) in [(16u32, Alphabet::Wide(16)), (26, Alphabet::Letters)] {
            for seed in 0..6 {
                let mut r = strings::rng(seed);
                let mut text = strings::random_text(&mut r, alpha, 250);
                let pats = strings::excerpt_dictionary(&mut r, &text, 6, 1, 12);
                strings::plant_occurrences(&mut r, &mut text, &pats, 8);
                let ctx = Ctx::seq();
                let m = BinaryEncodedMatcher::build(&ctx, &pats, sigma).unwrap();
                let got: Vec<Option<usize>> = m
                    .match_text(&ctx, &text)
                    .longest_pattern
                    .into_iter()
                    .map(|o| o.map(|p| p as usize))
                    .collect();
                let want = naive::longest_pattern_per_position(&pats, &text);
                assert_eq!(got, want, "σ={sigma} seed={seed}");
            }
        }
    }

    #[test]
    fn binary_encoded_length_fields_are_symbol_units() {
        let ctx = Ctx::seq();
        let pats: Vec<Vec<u32>> = vec![vec![5, 9, 12]];
        let m = BinaryEncodedMatcher::build(&ctx, &pats, 16).unwrap();
        assert_eq!(m.bits_per_symbol(), 4);
        let out = m.match_text(&ctx, &[5, 9, 12, 3]);
        assert_eq!(out.longest_pattern[0], Some(0));
        assert_eq!(out.longest_pattern_len[0], 3, "length in symbols, not bits");
    }

    #[test]
    fn binary_encoded_rejects_out_of_range() {
        let ctx = Ctx::seq();
        let pats: Vec<Vec<u32>> = vec![vec![99]];
        assert!(BinaryEncodedMatcher::build(&ctx, &pats, 16).is_err());
    }

    #[test]
    fn binary_encoded_explicit_l_sweep() {
        use pdm_textgen::{strings, Alphabet};
        let mut r = strings::rng(9);
        let mut text = strings::random_text(&mut r, Alphabet::Wide(8), 160);
        let pats = strings::excerpt_dictionary(&mut r, &text, 4, 2, 10);
        strings::plant_occurrences(&mut r, &mut text, &pats, 6);
        let want = naive::longest_pattern_per_position(&pats, &text);
        for l in 1..=8 {
            let ctx = Ctx::seq();
            let m = BinaryEncodedMatcher::build_with_l(&ctx, &pats, 8, l).unwrap();
            let got: Vec<Option<usize>> = m
                .match_text(&ctx, &text)
                .longest_pattern
                .into_iter()
                .map(|o| o.map(|p| p as usize))
                .collect();
            assert_eq!(got, want, "L={l}");
        }
    }

    #[test]
    fn text_work_decreases_with_l() {
        use pdm_textgen::{strings, Alphabet};
        let mut r = strings::rng(3);
        let text = strings::random_text(&mut r, Alphabet::Binary, 30_000);
        let pats = strings::random_dictionary(&mut r, Alphabet::Binary, 6, 128, 256);
        let mut works = Vec::new();
        for l in [1usize, 4] {
            let build_ctx = Ctx::seq();
            let m = SmallAlphaMatcher::build_with_l(&build_ctx, &pats, 2, l).unwrap();
            let ctx = Ctx::seq();
            let _ = m.match_text(&ctx, &text);
            works.push(ctx.cost.snapshot().work as f64);
        }
        // Text work should drop substantially from L=1 to L=4 (Theorem 4:
        // the log m term divides by L).
        assert!(
            works[1] < works[0] * 0.6,
            "text work did not collapse: {works:?}"
        );
    }
}
