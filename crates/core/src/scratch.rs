//! Reusable per-session scratch for text matching.
//!
//! Every text-side phase (ascent levels, descent state, longest-pattern
//! lookups, all-matches expansion) writes into buffers owned by a
//! [`TextScratch`], so a session that matches chunk after chunk — a
//! [`Matcher`](crate::matcher::Matcher) in a loop, a `StreamMatcher`
//! session — performs **zero heap allocation per chunk** once its buffers
//! have grown to the working-set size (DESIGN.md §11, "scratch-arena
//! lifecycle"). The arena tracks two cheap counters:
//!
//! * `grow_events` — how many times a buffer had to (re)allocate because a
//!   call needed more capacity than any previous call. In steady state this
//!   stops moving; the streaming tests assert exactly that.
//! * `table_lookups` — aggregate count of name-table probes issued through
//!   this scratch (computed per phase from the loop bounds, not counted in
//!   the hot loop).

use crate::dict::PatId;
use crate::static1d::MatchOutput;

/// Grow-aware buffer reuse: clear + resize, counting a grow event when the
/// existing capacity did not cover `n`.
#[inline]
pub(crate) fn ensure<T: Clone + Default>(v: &mut Vec<T>, n: usize, grows: &mut u64) {
    if v.capacity() < n {
        *grows += 1;
    }
    v.clear();
    v.resize(n, T::default());
}

/// Reusable buffers + counters for the text-matching hot path. Create one
/// per session (or per thread) and thread it through
/// [`prefix_match_into`](crate::static1d::prefix_match_into) /
/// [`match_text_into`](crate::static1d::match_text_into) /
/// `StaticMatcher::{match_into, find_all_into}`.
#[derive(Debug, Default)]
pub struct TextScratch {
    /// Ascent block names, one buffer per level (the descent reads every
    /// level, so ping-pong reuse of two buffers is not possible; capacity
    /// reuse across calls gives the same zero-steady-state-alloc property).
    pub(crate) levels: Vec<Vec<u32>>,
    /// Descent state: `(blocks, prefix-name)` per position.
    pub(crate) state: Vec<(u32, u32)>,
    /// Longest-pattern lookup results before scatter.
    pub(crate) pats: Vec<(Option<PatId>, u32, Option<PatId>)>,
    /// Full match output reused by `find_all_into`.
    pub(crate) match_out: MatchOutput,
    /// Per-position chain expansion buffer for `find_all_into`.
    pub(crate) pats_here: Vec<PatId>,
    /// Per-chunk child scratches for the chunk-grained parallel driver
    /// (one per coarse job; their counters are drained into this scratch
    /// after every parallel call).
    pub(crate) children: Vec<TextScratch>,
    /// `u8` shadow of the symbol text for SWAR prefilter scans.
    pub(crate) pf_shadow: Vec<u8>,
    /// Screened candidate starts from the prefilter scan.
    pub(crate) pf_starts: Vec<usize>,
    /// Merged candidate-start windows `(ws, we)`, starts-space.
    pub(crate) pf_windows: Vec<(usize, usize)>,
    /// Per-window `find_all` output before translation to text positions.
    pub(crate) pf_out: Vec<(usize, PatId)>,
    pub(crate) grows: u64,
    pub(crate) lookups: u64,
}

impl TextScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Cumulative buffer (re)allocation events served by this scratch.
    pub fn grow_events(&self) -> u64 {
        self.grows
    }

    /// Cumulative name-table lookups issued through this scratch.
    pub fn table_lookups(&self) -> u64 {
        self.lookups
    }

    /// Borrow the reusable [`MatchOutput`] out of the scratch (leaves an
    /// empty one behind). Pair with [`Self::put_match_out`] so the buffers'
    /// capacity survives into the next call.
    pub fn take_match_out(&mut self) -> MatchOutput {
        std::mem::take(&mut self.match_out)
    }

    /// Return a [`MatchOutput`] taken via [`Self::take_match_out`].
    pub fn put_match_out(&mut self, mo: MatchOutput) {
        self.match_out = mo;
    }

    /// Reusable per-position chain-expansion buffer (for callers outside
    /// this crate that walk pattern chains, e.g. snapshot matching).
    pub fn pats_here_mut(&mut self) -> &mut Vec<PatId> {
        &mut self.pats_here
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_counts_growth_not_reuse() {
        let mut g = 0u64;
        let mut v: Vec<u32> = Vec::new();
        ensure(&mut v, 100, &mut g);
        assert_eq!(v.len(), 100);
        assert_eq!(g, 1);
        v.iter_mut().for_each(|x| *x = 7);
        ensure(&mut v, 50, &mut g);
        assert_eq!(v.len(), 50);
        assert!(v.iter().all(|&x| x == 0), "stale contents cleared");
        assert_eq!(g, 1, "shrinking reuses capacity");
        ensure(&mut v, 100, &mut g);
        assert_eq!(g, 1, "regrowth within capacity is free");
        ensure(&mut v, 101, &mut g);
        assert_eq!(g, 2);
    }
}
