//! Bounded-queue guarantee: with a slow (here: absent) consumer, the
//! service never holds more than `queue_cap + workers` chunks in flight —
//! extra producers get `WouldBlock`, not unbounded buffering.

use std::sync::Arc;

use pdm_core::dict::{symbolize, to_symbols};
use pdm_core::static1d::StaticMatcher;
use pdm_pram::{Ctx, ExecPolicy};
use pdm_stream::{ServiceConfig, ShardedService, TryPushError};

#[test]
fn in_flight_chunks_stay_bounded_under_slow_consumer() {
    const WORKERS: usize = 1;
    const QUEUE_CAP: usize = 4;

    let ctx = Ctx::seq();
    let dict = Arc::new(StaticMatcher::build(&ctx, &symbolize(&["ab"])).unwrap());
    let svc = ShardedService::start(
        Arc::clone(&dict),
        ServiceConfig {
            workers: WORKERS,
            queue_cap: QUEUE_CAP,
            // Every chunk matches, and nobody drains: the worker wedges on
            // the second match batch, so the job queue must fill and push
            // back rather than grow.
            events_cap: 1,
            exec: ExecPolicy::Seq,
        },
    );
    let session = svc.open();
    let chunk = to_symbols("abab");

    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let mut depth_high_water = 0u64;
    for _ in 0..200 {
        match session.try_push(chunk.clone()) {
            Ok(()) => accepted += 1,
            Err(TryPushError::WouldBlock(_)) => rejected += 1,
            Err(TryPushError::Closed(_)) => panic!("service died"),
        }
        let g = svc.metrics();
        depth_high_water = depth_high_water.max(g.queue_depth).max(g.queue_depth_max);
        assert!(
            g.queue_depth <= (QUEUE_CAP + WORKERS) as u64,
            "in-flight chunks {} exceed queue_cap + workers = {}",
            g.queue_depth,
            QUEUE_CAP + WORKERS
        );
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    // The producer must have been pushed back, and the bound must have
    // actually been exercised (queue filled at some point).
    assert!(rejected > 0, "producer was never told WouldBlock");
    assert!(
        accepted <= QUEUE_CAP as u64 + WORKERS as u64 + 2,
        "service absorbed {accepted} chunks with nobody consuming"
    );
    assert!(depth_high_water >= QUEUE_CAP as u64);
    assert!(svc.metrics().stalls >= rejected);

    // Drain everything; totals must reconcile exactly once the wedge is
    // released.
    let (matches, summary) = session.close();
    let summary = summary.expect("summary after drain");
    assert_eq!(summary.chunks, accepted);
    assert_eq!(summary.consumed, accepted * chunk.len() as u64);
    // "abab" holds 2 occurrences of "ab", and no occurrence spans the
    // chunk boundary ("b" then "a" is not in the dictionary), so it is
    // exactly 2 per accepted chunk.
    assert_eq!(matches.len() as u64, summary.matches);
    assert_eq!(summary.matches, 2 * accepted);
    let g = svc.metrics();
    assert_eq!(g.queue_depth, 0, "all in-flight chunks retired");
    svc.shutdown();
}
